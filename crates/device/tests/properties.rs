//! Property-based tests over tag-hardware invariants.

use fdb_device::antenna::ReflectionSwitch;
use fdb_device::harvester::{Harvester, HarvesterConfig};
use fdb_dsp::Iq;
use proptest::prelude::*;

proptest! {
    /// Reflected power + passed power = incident power, in both states,
    /// for every coefficient pair.
    #[test]
    fn antenna_conserves_power(
        rho in 0.0f64..1.0,
        residual in 0.0f64..1.0,
        state in any::<bool>(),
        amp in 0.01f64..100.0,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let mut sw = ReflectionSwitch::new(rho, residual).with_phase(phase);
        sw.set_state(state);
        let incident = Iq::from_polar(amp, phase / 2.0);
        let reflected = sw.reflected(incident).norm_sq();
        let passed = sw.pass_power_fraction() * incident.norm_sq();
        prop_assert!(
            (reflected + passed - incident.norm_sq()).abs() < 1e-9 * incident.norm_sq()
        );
    }

    /// Stored energy never goes negative, never exceeds capacity, and the
    /// ledger of successful draws is consistent.
    #[test]
    fn harvester_storage_invariants(
        ops in proptest::collection::vec((any::<bool>(), 0.0f64..1e-2, 0.0f64..0.1), 0..100),
    ) {
        let cfg = HarvesterConfig::typical();
        let mut h = Harvester::new(cfg);
        let mut drawn = 0.0f64;
        for (is_harvest, power, dt) in ops {
            if is_harvest {
                h.harvest(power, dt);
            } else if h.consume(power, dt) {
                drawn += power * dt;
            }
            prop_assert!(h.stored_j() >= -1e-18);
            prop_assert!(h.stored_j() <= cfg.storage_j + 1e-18);
        }
        // Can never draw more than initial + everything harvested.
        prop_assert!(drawn <= cfg.initial_j + h.harvested_total_j() + 1e-15);
    }

    /// Efficiency is monotone in input power and bounded by the maximum.
    #[test]
    fn harvester_efficiency_monotone(p1 in 1e-7f64..1e-1, factor in 1.0f64..100.0) {
        let h = Harvester::new(HarvesterConfig::typical());
        let e1 = h.efficiency(p1);
        let e2 = h.efficiency(p1 * factor);
        prop_assert!(e2 + 1e-12 >= e1);
        prop_assert!(e2 <= 0.4 + 1e-12);
    }

    /// Failed draws leave the store untouched (no partial drain).
    #[test]
    fn failed_draw_is_atomic(load in 1e-3f64..1.0, dt in 0.1f64..10.0) {
        let mut h = Harvester::new(HarvesterConfig::typical());
        let before = h.stored_j();
        // This demand (≥ 100 µJ) always exceeds the 50 µJ initial store.
        prop_assume!(load * dt > before);
        prop_assert!(!h.consume(load, dt));
        prop_assert_eq!(h.stored_j(), before);
        prop_assert_eq!(h.outages(), 1);
    }
}
