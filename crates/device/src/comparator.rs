//! Hysteresis comparator — the tag's one-bit "ADC".
//!
//! Passive receivers slice the detector output with an analog comparator.
//! Real comparators need hysteresis to avoid chattering on noise near the
//! threshold; the hysteresis width also sets a minimum usable modulation
//! depth, which is why it is a first-class parameter here rather than an
//! implementation detail.

use serde::{Deserialize, Serialize};

/// A comparator with symmetric hysteresis around an externally supplied
/// threshold.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Comparator {
    /// Full hysteresis width (output flips only when the input crosses
    /// `threshold ± width/2` in the flipping direction).
    width: f64,
    state: bool,
}

impl Comparator {
    /// Creates a comparator with the given hysteresis width (≥ 0).
    pub fn new(width: f64) -> Self {
        Comparator {
            width: width.max(0.0),
            state: false,
        }
    }

    /// A hysteresis-free ideal comparator.
    pub fn ideal() -> Self {
        Comparator::new(0.0)
    }

    /// Current output state.
    pub fn state(&self) -> bool {
        self.state
    }

    /// Hysteresis width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Compares `x` against `threshold`, honouring hysteresis.
    #[inline]
    pub fn process(&mut self, x: f64, threshold: f64) -> bool {
        let half = self.width / 2.0;
        if self.state {
            if x < threshold - half {
                self.state = false;
            }
        } else if x > threshold + half {
            self.state = true;
        }
        self.state
    }

    /// Forces the output state (power-on initialisation).
    pub fn set_state(&mut self, state: bool) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_is_plain_threshold() {
        let mut c = Comparator::ideal();
        assert!(c.process(1.1, 1.0));
        assert!(!c.process(0.9, 1.0));
        assert!(c.process(1.0001, 1.0));
    }

    #[test]
    fn hysteresis_rejects_chatter() {
        let mut c = Comparator::new(0.2);
        c.process(2.0, 1.0); // go high
        assert!(c.state());
        // Noise wiggles within the dead band must not flip it.
        for &x in &[1.05, 0.95, 1.02, 0.92, 1.08] {
            assert!(c.process(x, 1.0), "flipped at {x}");
        }
        // A real transition does flip it.
        assert!(!c.process(0.85, 1.0));
    }

    #[test]
    fn flip_requires_crossing_band_edge() {
        let mut c = Comparator::new(0.4);
        // From low, exactly threshold is not enough.
        assert!(!c.process(1.0, 1.0));
        assert!(!c.process(1.19, 1.0));
        assert!(c.process(1.21, 1.0));
        // From high, must cross below threshold − 0.2.
        assert!(c.process(0.81, 1.0));
        assert!(!c.process(0.79, 1.0));
    }

    #[test]
    fn set_state_overrides() {
        let mut c = Comparator::new(0.2);
        c.set_state(true);
        assert!(c.state());
        assert!(c.process(0.95, 1.0)); // inside dead band, stays high
    }

    #[test]
    fn moving_threshold_tracks() {
        // The threshold input is external (from the adaptive slicer); the
        // comparator must honour per-call thresholds.
        let mut c = Comparator::new(0.0);
        assert!(c.process(5.0, 4.0));
        assert!(!c.process(5.0, 6.0));
    }
}
