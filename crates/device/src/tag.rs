//! The composed passive tag.
//!
//! [`TagHardware`] wires the reflection switch, detector chain, comparator,
//! harvester and clock into one device with a single configuration struct.
//! The PHY (`fdb-core`) owns *when* the antenna toggles and *what* the
//! incident field is; this type owns the physics at the antenna reference
//! plane: the reflect/pass power split, detection, harvesting and the
//! energy ledger.

use crate::antenna::ReflectionSwitch;
use crate::comparator::Comparator;
use crate::detector::DetectorChain;
use crate::harvester::{Harvester, HarvesterConfig};
use crate::oscillator::{TagClock, TagClockConfig};
use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Full tag configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TagConfig {
    /// Power reflection coefficient in the reflect state.
    pub rho: f64,
    /// Structural (absorb-state) residual reflection.
    pub rho_residual: f64,
    /// Detector RC time constant (seconds).
    pub detector_tau_s: f64,
    /// Detector envelope-noise standard deviation (watts).
    pub detector_noise_w: f64,
    /// Comparator hysteresis width (watts of envelope).
    pub comparator_hysteresis_w: f64,
    /// Harvester and storage parameters.
    pub harvester: HarvesterConfig,
    /// Clock imperfections.
    pub clock: TagClockConfig,
    /// Power drawn while the receive chain is active (watts).
    pub rx_load_w: f64,
    /// Power drawn by control logic whenever awake (watts).
    pub logic_load_w: f64,
    /// Energy per antenna-state toggle (joules) — switching loss.
    pub toggle_energy_j: f64,
}

impl TagConfig {
    /// A representative ambient-backscatter tag.
    ///
    /// Numbers follow the passive-tag literature: µW-scale loads, ~−20 dBm
    /// harvesting floor, ρ ≈ 0.3 reflection, detector fast relative to
    /// kilobit chips.
    pub fn typical(sample_period_s: f64) -> Self {
        let _ = sample_period_s; // reserved: detector tau is absolute
        TagConfig {
            rho: 0.3,
            rho_residual: 0.005,
            detector_tau_s: 5e-6,
            detector_noise_w: 0.0,
            comparator_hysteresis_w: 0.0,
            harvester: HarvesterConfig::typical(),
            clock: TagClockConfig::ideal(),
            rx_load_w: 0.5e-6,
            logic_load_w: 0.2e-6,
            toggle_energy_j: 1e-11,
        }
    }
}

/// A running tag device.
#[derive(Debug, Clone)]
pub struct TagHardware {
    switch: ReflectionSwitch,
    detector: DetectorChain,
    comparator: Comparator,
    harvester: Harvester,
    clock: TagClock,
    cfg: TagConfig,
    toggles: u64,
    consumed_j: f64,
    alive: bool,
    /// Per-state reflection coefficient and pass amplitude, cached at
    /// construction. The switch's ρ/phase never change after `new`, so
    /// these are exactly the values the switch would recompute (with a
    /// `sqrt` and a `cos`/`sin`) on every sample of the link hot loop.
    coeff: [Iq; 2],
    pass_amp: [f64; 2],
}

impl TagHardware {
    /// Builds a tag for a simulation running at sample period `dt` seconds.
    pub fn new(cfg: TagConfig, dt: f64) -> Self {
        let mut switch = ReflectionSwitch::new(cfg.rho, cfg.rho_residual);
        let mut coeff = [Iq::ZERO; 2];
        let mut pass_amp = [0.0f64; 2];
        for (i, state) in [false, true].into_iter().enumerate() {
            switch.set_state(state);
            coeff[i] = switch.reflection_coeff();
            pass_amp[i] = switch.pass_power_fraction().sqrt();
        }
        switch.set_state(false);
        TagHardware {
            switch,
            detector: DetectorChain::new(cfg.detector_tau_s, dt, cfg.detector_noise_w),
            comparator: Comparator::new(cfg.comparator_hysteresis_w),
            harvester: Harvester::new(cfg.harvester),
            clock: TagClock::new(cfg.clock),
            cfg,
            toggles: 0,
            consumed_j: 0.0,
            alive: true,
            coeff,
            pass_amp,
        }
    }

    /// Sets the antenna state; counts and charges toggles.
    pub fn set_antenna(&mut self, reflect: bool) {
        if self.switch.state() != reflect {
            self.toggles += 1;
            if !self.draw_energy(self.cfg.toggle_energy_j) {
                self.alive = false;
            }
        }
        self.switch.set_state(reflect);
    }

    /// The field this tag re-radiates for an incident field sample.
    #[inline]
    pub fn reflected(&self, incident: Iq) -> Iq {
        incident * self.coeff[self.switch.state() as usize]
    }

    /// One sample step on the receive/harvest side: the incident field is
    /// split by the current antenna state; the passed power feeds both the
    /// detector (measurement) and the harvester (energy), and the noisy
    /// envelope sample is returned.
    pub fn step_receive<R: Rng + ?Sized>(&mut self, incident: Iq, dt: f64, rng: &mut R) -> f64 {
        let pass_amp = self.pass_amp[self.switch.state() as usize];
        let field_in = incident * pass_amp;
        self.harvester.harvest(field_in.norm_sq(), dt);
        self.detector.process(field_in, rng)
    }

    /// Slices an envelope sample against a threshold using the comparator.
    #[inline]
    pub fn slice(&mut self, envelope: f64, threshold: f64) -> bool {
        self.comparator.process(envelope, threshold)
    }

    /// Charges the load for an awake interval. Returns `false` (and marks
    /// the tag dead) on energy outage.
    pub fn charge_awake(&mut self, dt: f64, receiving: bool) -> bool {
        let load = self.cfg.logic_load_w + if receiving { self.cfg.rx_load_w } else { 0.0 };
        let ok = self.harvester.consume(load, dt);
        self.consumed_j += if ok { load * dt } else { 0.0 };
        if !ok {
            self.alive = false;
        }
        ok
    }

    fn draw_energy(&mut self, joules: f64) -> bool {
        // Express a one-shot energy draw as consume(P, 1s).
        let ok = self.harvester.consume(joules, 1.0);
        if ok {
            self.consumed_j += joules;
        }
        ok
    }

    /// Access to the clock (rate ratio, jitter stepping).
    pub fn clock_mut(&mut self) -> &mut TagClock {
        &mut self.clock
    }

    /// Access to the harvester state.
    pub fn harvester(&self) -> &Harvester {
        &self.harvester
    }

    /// Current antenna state.
    pub fn antenna_state(&self) -> bool {
        self.switch.state()
    }

    /// The configured reflection coefficient ρ.
    pub fn rho(&self) -> f64 {
        self.cfg.rho
    }

    /// Number of antenna toggles so far.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Total energy drawn from storage (joules).
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// `false` once an energy outage has killed the tag.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Revives a dead tag (new experiment run without rebuilding).
    pub fn revive(&mut self) {
        self.alive = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tag() -> TagHardware {
        TagHardware::new(TagConfig::typical(1e-6), 1e-6)
    }

    #[test]
    fn reflect_state_reduces_detected_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let mut t = tag();
        // Ideal detector for this check.
        t.detector = DetectorChain::ideal();
        t.set_antenna(false);
        let e_absorb = t.step_receive(Iq::ONE, 1e-6, &mut rng);
        t.set_antenna(true);
        let e_reflect = t.step_receive(Iq::ONE, 1e-6, &mut rng);
        // Absorb passes (1−0.005), reflect passes (1−0.3).
        assert!((e_absorb - 0.995).abs() < 1e-9, "{e_absorb}");
        assert!((e_reflect - 0.7).abs() < 1e-9, "{e_reflect}");
    }

    #[test]
    fn harvesting_accumulates_while_receiving() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let mut t = tag();
        let before = t.harvester().stored_j();
        // Strong field: 1 mW incident (−0 dBm ≫ sensitivity).
        let field = Iq::real((1e-3f64).sqrt());
        for _ in 0..10_000 {
            t.step_receive(field, 1e-6, &mut rng);
        }
        assert!(t.harvester().stored_j() > before, "no harvest");
    }

    #[test]
    fn toggle_counting() {
        let mut t = tag();
        t.set_antenna(true);
        t.set_antenna(true); // no-op
        t.set_antenna(false);
        assert_eq!(t.toggles(), 2);
    }

    #[test]
    fn outage_kills_tag() {
        let mut cfg = TagConfig::typical(1e-6);
        cfg.harvester.initial_j = 1e-12;
        cfg.rx_load_w = 1e-3;
        let mut t = TagHardware::new(cfg, 1e-6);
        assert!(t.is_alive());
        assert!(!t.charge_awake(1.0, true));
        assert!(!t.is_alive());
        t.revive();
        assert!(t.is_alive());
    }

    #[test]
    fn energy_ledger_tracks_consumption() {
        let mut t = tag();
        assert!(t.charge_awake(0.01, true));
        let expect = (0.5e-6 + 0.2e-6) * 0.01;
        assert!((t.consumed_j() - expect).abs() < 1e-15);
    }

    #[test]
    fn cached_switch_values_bit_match_recomputation() {
        let mut t = tag();
        for state in [false, true, false] {
            t.set_antenna(state);
            let inc = Iq::new(0.3, -0.7);
            assert_eq!(t.reflected(inc), t.switch.reflected(inc));
            assert_eq!(
                t.pass_amp[state as usize].to_bits(),
                t.switch.pass_power_fraction().sqrt().to_bits()
            );
        }
    }

    #[test]
    fn reflected_field_uses_switch() {
        let mut t = tag();
        t.set_antenna(true);
        let r = t.reflected(Iq::ONE);
        assert!((r.abs() - 0.3f64.sqrt()).abs() < 1e-12);
        t.set_antenna(false);
        let r = t.reflected(Iq::ONE);
        assert!((r.abs() - 0.005f64.sqrt()).abs() < 1e-12);
    }
}
