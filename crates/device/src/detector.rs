//! The tag receive chain: square-law rectifier → RC low-pass → noise.
//!
//! A passive receiver has no LNA; its diode rectifier is driven directly by
//! the antenna voltage. Consequences modelled here:
//!
//! * Detection is **square-law**: the output follows the incident *power*,
//!   phase is invisible (forcing the non-coherent designs of this stack).
//! * The RC corner bounds how fast bits can be sliced.
//! * The dominant noise is the *detector's own* input-referred noise
//!   (flicker + comparator offset wander), modelled as additive Gaussian on
//!   the envelope after the RC — distinct from the channel's RF AWGN, which
//!   `fdb-core` adds to the field before detection.

use fdb_dsp::envelope::EnvelopeDetector;
use fdb_dsp::Iq;
use rand::Rng;

/// Square-law detector chain with envelope-domain noise.
#[derive(Debug, Clone, Copy)]
pub struct DetectorChain {
    env: EnvelopeDetector,
    /// Standard deviation of envelope-domain detector noise (same units as
    /// the squared field, i.e. watts at the antenna reference plane).
    noise_sigma: f64,
}

impl DetectorChain {
    /// Creates a chain with RC time constant `tau` seconds at sample period
    /// `dt`, and envelope-noise standard deviation `noise_sigma` (watts).
    pub fn new(tau: f64, dt: f64, noise_sigma: f64) -> Self {
        DetectorChain {
            env: EnvelopeDetector::new(tau, dt),
            noise_sigma: noise_sigma.max(0.0),
        }
    }

    /// An ideal noiseless, instantaneous detector.
    pub fn ideal() -> Self {
        DetectorChain {
            env: EnvelopeDetector::ideal(),
            noise_sigma: 0.0,
        }
    }

    /// Processes one incident-field sample (already scaled by the antenna
    /// pass fraction) into a noisy envelope sample.
    #[inline]
    pub fn process<R: Rng + ?Sized>(&mut self, field: Iq, rng: &mut R) -> f64 {
        let clean = self.env.process(field);
        if self.noise_sigma == 0.0 {
            clean
        } else {
            clean + self.noise_sigma * gaussian(rng)
        }
    }

    /// Noise standard deviation in envelope units.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Pre-charges the RC state to an expected level.
    pub fn precharge(&mut self, level: f64) {
        self.env.precharge(level);
    }

    /// Resets the chain.
    pub fn reset(&mut self) {
        self.env.reset();
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_chain_is_pure_square_law() {
        let mut d = DetectorChain::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!((d.process(Iq::new(0.0, 2.0), &mut rng) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn noise_statistics() {
        let mut d = DetectorChain::new(0.0, 1e-6, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 100_000;
        let mut mean = 0.0;
        let mut var = 0.0;
        for _ in 0..n {
            let y = d.process(Iq::ONE, &mut rng);
            mean += y;
            var += (y - 1.0) * (y - 1.0);
        }
        mean /= n as f64;
        var /= n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    fn rc_limits_slew() {
        let dt = 1e-6;
        let mut d = DetectorChain::new(20e-6, dt, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first = d.process(Iq::ONE, &mut rng);
        assert!(first < 0.1, "RC should slew-limit, got {first}");
    }

    #[test]
    fn noiseless_does_not_consume_rng() {
        let mut d = DetectorChain::ideal();
        let mut a = ChaCha8Rng::seed_from_u64(4);
        let mut b = ChaCha8Rng::seed_from_u64(4);
        d.process(Iq::ONE, &mut a);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
