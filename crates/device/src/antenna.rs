//! The backscatter reflection switch.
//!
//! A tag "transmits" by toggling its antenna between two impedance states:
//!
//! * **Reflect** — deliberately mismatched; a fraction `ρ` of the incident
//!   *power* is re-radiated (amplitude `√ρ`), the rest continues into the
//!   tag front end.
//! * **Absorb** — matched; nominally everything flows into the tag, except
//!   a small *structural* reflection that any physical antenna has even
//!   when terminated (parameterised because it sets the floor of the OOK
//!   modulation depth a receiver can exploit).
//!
//! The same switch is the source of full-duplex *self-interference*: while
//! a device toggles its own antenna it simultaneously changes how much of
//! the incident field reaches its own detector. That coupling is exposed
//! here as [`ReflectionSwitch::pass_power_fraction`] and cancelled digitally
//! in `fdb-core::sic`.

use fdb_dsp::Iq;
use serde::{Deserialize, Serialize};

/// Two-state antenna reflection switch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReflectionSwitch {
    /// Power reflection coefficient in the reflect state, `ρ ∈ [0, 1]`.
    rho: f64,
    /// Residual power reflection in the absorb state (structural mode).
    rho_residual: f64,
    /// Phase of the reflected wave (radians) relative to the incident wave.
    phase: f64,
    /// Current state: `true` = reflect.
    state: bool,
}

impl ReflectionSwitch {
    /// Creates a switch with reflect-state power coefficient `rho` and a
    /// structural residual `rho_residual` (both clamped to `[0, 1]`,
    /// residual clamped below `rho`).
    pub fn new(rho: f64, rho_residual: f64) -> Self {
        let rho = rho.clamp(0.0, 1.0);
        ReflectionSwitch {
            rho,
            rho_residual: rho_residual.clamp(0.0, rho),
            phase: 0.0,
            state: false,
        }
    }

    /// An idealised switch: perfect absorption in the absorb state.
    pub fn ideal(rho: f64) -> Self {
        ReflectionSwitch::new(rho, 0.0)
    }

    /// Sets the reflection phase (electrical length of the mismatch).
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Sets the antenna state (`true` = reflect).
    #[inline]
    pub fn set_state(&mut self, reflect: bool) {
        self.state = reflect;
    }

    /// Current state.
    pub fn state(&self) -> bool {
        self.state
    }

    /// Power reflection coefficient of the *current* state.
    pub fn current_rho(&self) -> f64 {
        if self.state {
            self.rho
        } else {
            self.rho_residual
        }
    }

    /// Configured reflect-state coefficient.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Complex reflection coefficient of the *current* state: amplitude
    /// `√ρ` at the configured phase. Constant per state, so callers on a
    /// per-sample hot path may cache it per antenna state.
    #[inline]
    pub fn reflection_coeff(&self) -> Iq {
        Iq::from_polar(self.current_rho().sqrt(), self.phase)
    }

    /// The complex field this antenna re-radiates for a given incident
    /// field sample.
    #[inline]
    pub fn reflected(&self, incident: Iq) -> Iq {
        incident * self.reflection_coeff()
    }

    /// Fraction of incident *power* that continues past the antenna into
    /// the tag (detector + harvester share it downstream).
    #[inline]
    pub fn pass_power_fraction(&self) -> f64 {
        1.0 - self.current_rho()
    }

    /// OOK modulation depth at a far receiver: difference in reflected
    /// *amplitude* between the two states, relative to the incident field.
    pub fn modulation_depth(&self) -> f64 {
        self.rho.sqrt() - self.rho_residual.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflect_state_scales_amplitude_by_sqrt_rho() {
        let mut sw = ReflectionSwitch::ideal(0.25);
        sw.set_state(true);
        let out = sw.reflected(Iq::real(2.0));
        assert!((out.re - 1.0).abs() < 1e-12); // 2·√0.25
        assert!(out.im.abs() < 1e-12);
    }

    #[test]
    fn absorb_state_reflects_only_residual() {
        let mut sw = ReflectionSwitch::new(0.5, 0.01);
        sw.set_state(false);
        let out = sw.reflected(Iq::real(1.0));
        assert!((out.abs() - 0.1).abs() < 1e-12); // √0.01
    }

    #[test]
    fn power_conservation_per_state() {
        for rho in [0.0, 0.3, 1.0] {
            let mut sw = ReflectionSwitch::ideal(rho);
            sw.set_state(true);
            let refl = sw.reflected(Iq::ONE).norm_sq();
            let pass = sw.pass_power_fraction();
            assert!((refl + pass - 1.0).abs() < 1e-12, "rho {rho}");
        }
    }

    #[test]
    fn phase_applies_to_reflection() {
        let sw = ReflectionSwitch::ideal(1.0).with_phase(std::f64::consts::PI);
        let mut sw = sw;
        sw.set_state(true);
        let out = sw.reflected(Iq::ONE);
        assert!((out.re + 1.0).abs() < 1e-12, "{out:?}");
    }

    #[test]
    fn modulation_depth() {
        let sw = ReflectionSwitch::new(0.49, 0.09);
        assert!((sw.modulation_depth() - 0.4).abs() < 1e-12); // 0.7 − 0.3
        let ideal = ReflectionSwitch::ideal(0.49);
        assert!((ideal.modulation_depth() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn residual_clamped_below_rho() {
        let sw = ReflectionSwitch::new(0.2, 0.9);
        assert!(sw.modulation_depth() >= 0.0);
    }

    #[test]
    fn rho_clamped_to_unit_interval() {
        let sw = ReflectionSwitch::ideal(1.7);
        assert_eq!(sw.rho(), 1.0);
        let sw = ReflectionSwitch::ideal(-0.5);
        assert_eq!(sw.rho(), 0.0);
    }
}
