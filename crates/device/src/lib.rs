//! # fdb-device — behavioural models of passive backscatter hardware
//!
//! Everything a battery-free tag is made of, modelled at the level that
//! determines link behaviour:
//!
//! * [`antenna`] — the reflection switch: two impedance states, a residual
//!   structural reflection, and the power split between the reflected and
//!   absorbed fractions. This is where the *self-interference* of
//!   full-duplex backscatter physically originates.
//! * [`detector`] — the receive chain: square-law rectifier + RC low-pass +
//!   input-referred detector noise.
//! * [`comparator`] — the hysteresis slicer that digitises the envelope.
//! * [`harvester`] — RF-harvesting front end with a sensitivity floor and
//!   saturating efficiency, feeding a storage capacitor that powers the
//!   tag's load (energy-outage experiments read this).
//! * [`oscillator`] — the cheap RC clock whose ppm error and jitter bound
//!   how long a tag can stay bit-synchronised.
//! * [`tag`] — the composed device with one configuration struct.
//!
//! No RF magic happens here: field-level combining of multiple propagation
//! paths lives in `fdb-core`, which hands each device the complex incident
//! field at its antenna.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod antenna;
pub mod comparator;
pub mod detector;
pub mod harvester;
pub mod oscillator;
pub mod tag;

pub use antenna::ReflectionSwitch;
pub use comparator::Comparator;
pub use detector::DetectorChain;
pub use harvester::{Harvester, HarvesterConfig};
pub use oscillator::TagClock;
pub use tag::{TagConfig, TagHardware};
