//! The tag's timing source: a cheap RC relaxation oscillator.
//!
//! A crystal costs more than the rest of a passive tag combined, so tags
//! free-run on RC oscillators with two imperfections that bound how long a
//! frame can be:
//!
//! * A **static frequency error** (hundreds to thousands of ppm, set at
//!   power-up by process/temperature).
//! * **Cycle-to-cycle jitter** (a small random walk on top).
//!
//! The clock exposes its instantaneous rate ratio; `fdb-core` feeds that to
//! a fractional resampler so the tag literally samples the world on its own
//! skewed clock (experiment E9 sweeps the static error).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for a tag clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagClockConfig {
    /// Static frequency error in parts-per-million (positive = fast).
    pub static_ppm: f64,
    /// Standard deviation of the per-update random-walk increment, in ppm.
    pub jitter_ppm: f64,
    /// Random-walk reversion factor toward the static error per update
    /// (keeps drift bounded; 0 = pure random walk, 1 = no memory).
    pub reversion: f64,
}

impl TagClockConfig {
    /// A perfect clock.
    pub fn ideal() -> Self {
        TagClockConfig {
            static_ppm: 0.0,
            jitter_ppm: 0.0,
            reversion: 1.0,
        }
    }

    /// A typical RC oscillator: configurable static error, mild jitter.
    pub fn rc(static_ppm: f64) -> Self {
        TagClockConfig {
            static_ppm,
            jitter_ppm: 5.0,
            reversion: 0.01,
        }
    }
}

/// Stateful tag clock.
#[derive(Debug, Clone, Copy)]
pub struct TagClock {
    cfg: TagClockConfig,
    current_ppm: f64,
}

impl TagClock {
    /// Creates a clock at its static error.
    pub fn new(cfg: TagClockConfig) -> Self {
        TagClock {
            cfg,
            current_ppm: cfg.static_ppm,
        }
    }

    /// Instantaneous frequency error in ppm.
    pub fn current_ppm(&self) -> f64 {
        self.current_ppm
    }

    /// Instantaneous rate ratio `f_tag / f_nominal`.
    pub fn rate_ratio(&self) -> f64 {
        1.0 + self.current_ppm * 1e-6
    }

    /// Advances the jitter process by one update (call once per bit or per
    /// block — the jitter scale is per-update).
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.cfg.jitter_ppm > 0.0 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let rev = self.cfg.reversion.clamp(0.0, 1.0);
            self.current_ppm += rev * (self.cfg.static_ppm - self.current_ppm)
                + self.cfg.jitter_ppm * g;
        }
        self.current_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_clock_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        let mut c = TagClock::new(TagClockConfig::ideal());
        assert_eq!(c.rate_ratio(), 1.0);
        for _ in 0..100 {
            c.advance(&mut rng);
        }
        assert_eq!(c.rate_ratio(), 1.0);
    }

    #[test]
    fn static_error_sets_ratio() {
        let c = TagClock::new(TagClockConfig::rc(1000.0));
        assert!((c.rate_ratio() - 1.001).abs() < 1e-12);
        let c = TagClock::new(TagClockConfig::rc(-500.0));
        assert!((c.rate_ratio() - 0.9995).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_bounded_by_reversion() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let mut c = TagClock::new(TagClockConfig {
            static_ppm: 200.0,
            jitter_ppm: 5.0,
            reversion: 0.02,
        });
        let mut max_dev: f64 = 0.0;
        let mut mean = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let ppm = c.advance(&mut rng);
            max_dev = max_dev.max((ppm - 200.0).abs());
            mean += ppm;
        }
        mean /= n as f64;
        // Stationary std = jitter/√(2·rev − rev²) ≈ 25 ppm → 6σ ≈ 150.
        assert!(max_dev < 200.0, "max deviation {max_dev}");
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn zero_jitter_does_not_consume_rng() {
        let mut a = ChaCha8Rng::seed_from_u64(52);
        let mut b = ChaCha8Rng::seed_from_u64(52);
        let mut c = TagClock::new(TagClockConfig::ideal());
        c.advance(&mut a);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
