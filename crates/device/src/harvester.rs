//! RF energy harvesting and storage.
//!
//! The harvester converts the non-reflected fraction of incident RF power
//! into stored charge. Two non-idealities dominate real designs and are
//! modelled explicitly:
//!
//! * **Sensitivity floor** — below roughly −20 dBm a diode rectifier
//!   harvests nothing at all.
//! * **Saturating efficiency** — conversion efficiency rises from zero at
//!   the floor towards a maximum (~30–50 %) and is taken constant above a
//!   saturation input (real curves roll off; the rising edge is what the
//!   distance sweeps exercise).
//!
//! The storage capacitor integrates harvested energy and supplies the tag's
//! load; an **energy outage** occurs whenever the load demand cannot be met.
//! Experiment E10 and the energy accounting of E5 read this model.

use serde::{Deserialize, Serialize};

/// Harvester front-end + storage configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarvesterConfig {
    /// Input power below which nothing is harvested (watts).
    pub sensitivity_w: f64,
    /// Input power at which efficiency reaches its maximum (watts).
    pub saturation_w: f64,
    /// Peak conversion efficiency `(0, 1]`.
    pub max_efficiency: f64,
    /// Storage capacity in joules.
    pub storage_j: f64,
    /// Initial stored energy in joules.
    pub initial_j: f64,
}

impl HarvesterConfig {
    /// A typical UHF harvester: −20 dBm sensitivity, peak η = 0.4 at
    /// −5 dBm, 100 µJ storage starting half full.
    pub fn typical() -> Self {
        HarvesterConfig {
            sensitivity_w: 1e-5,  // −20 dBm
            saturation_w: 3.16e-4, // −5 dBm
            max_efficiency: 0.4,
            storage_j: 100e-6,
            initial_j: 50e-6,
        }
    }
}

/// Stateful harvester + storage capacitor.
#[derive(Debug, Clone, Copy)]
pub struct Harvester {
    cfg: HarvesterConfig,
    stored_j: f64,
    harvested_total_j: f64,
    outages: u64,
}

impl Harvester {
    /// Creates a harvester from its configuration.
    pub fn new(cfg: HarvesterConfig) -> Self {
        Harvester {
            stored_j: cfg.initial_j.clamp(0.0, cfg.storage_j),
            cfg,
            harvested_total_j: 0.0,
            outages: 0,
        }
    }

    /// Conversion efficiency at a given input power: 0 below the floor,
    /// log-linear rise to `max_efficiency` at saturation, constant above.
    pub fn efficiency(&self, input_w: f64) -> f64 {
        let c = &self.cfg;
        if input_w <= c.sensitivity_w || c.sensitivity_w <= 0.0 {
            return 0.0;
        }
        if input_w >= c.saturation_w {
            return c.max_efficiency;
        }
        // Log-linear interpolation between floor (η=0) and saturation.
        let f = (input_w / c.sensitivity_w).ln() / (c.saturation_w / c.sensitivity_w).ln();
        c.max_efficiency * f
    }

    /// Harvests from `input_w` watts for `dt` seconds.
    pub fn harvest(&mut self, input_w: f64, dt: f64) {
        let e = self.efficiency(input_w) * input_w.max(0.0) * dt.max(0.0);
        self.harvested_total_j += e;
        self.stored_j = (self.stored_j + e).min(self.cfg.storage_j);
    }

    /// Attempts to draw `load_w` watts for `dt` seconds from storage.
    /// Returns `true` on success; on failure nothing is drawn and an outage
    /// is recorded.
    pub fn consume(&mut self, load_w: f64, dt: f64) -> bool {
        let need = load_w.max(0.0) * dt.max(0.0);
        if self.stored_j >= need {
            self.stored_j -= need;
            true
        } else {
            self.outages += 1;
            false
        }
    }

    /// Currently stored energy (joules).
    pub fn stored_j(&self) -> f64 {
        self.stored_j
    }

    /// Total energy harvested since creation (joules, before storage cap).
    pub fn harvested_total_j(&self) -> f64 {
        self.harvested_total_j
    }

    /// Number of failed [`Harvester::consume`] calls.
    pub fn outages(&self) -> u64 {
        self.outages
    }

    /// Fraction of storage filled.
    pub fn fill_fraction(&self) -> f64 {
        if self.cfg.storage_j <= 0.0 {
            0.0
        } else {
            self.stored_j / self.cfg.storage_j
        }
    }

    /// The maximum duty cycle a load of `load_w` can sustain at a steady
    /// input of `input_w`: harvested power / load power, capped at 1.
    pub fn sustainable_duty_cycle(&self, input_w: f64, load_w: f64) -> f64 {
        if load_w <= 0.0 {
            return 1.0;
        }
        (self.efficiency(input_w) * input_w / load_w).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Harvester {
        Harvester::new(HarvesterConfig::typical())
    }

    #[test]
    fn below_sensitivity_harvests_nothing() {
        let mut hv = h();
        let before = hv.stored_j();
        hv.harvest(1e-6, 1.0); // −30 dBm
        assert_eq!(hv.stored_j(), before);
        assert_eq!(hv.efficiency(1e-6), 0.0);
    }

    #[test]
    fn efficiency_monotone_and_capped() {
        let hv = h();
        let mut prev = 0.0;
        for &p in &[1.2e-5, 3e-5, 1e-4, 3e-4, 1e-3, 1e-2] {
            let e = hv.efficiency(p);
            assert!(e >= prev, "non-monotone at {p}");
            assert!(e <= 0.4 + 1e-12);
            prev = e;
        }
        assert!((hv.efficiency(1e-2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn storage_caps_at_capacity() {
        let mut hv = h();
        hv.harvest(1e-2, 1000.0); // huge energy
        assert!((hv.stored_j() - 100e-6).abs() < 1e-18);
        assert!(hv.harvested_total_j() > 100e-6);
    }

    #[test]
    fn consume_success_and_outage() {
        let mut hv = h(); // starts at 50 µJ
        assert!(hv.consume(1e-3, 0.04)); // 40 µJ
        assert!((hv.stored_j() - 10e-6).abs() < 1e-12);
        assert!(!hv.consume(1e-3, 0.02)); // needs 20 µJ, only 10 left
        assert_eq!(hv.outages(), 1);
        assert!((hv.stored_j() - 10e-6).abs() < 1e-12, "failed draw must not drain");
    }

    #[test]
    fn energy_conservation() {
        let mut hv = Harvester::new(HarvesterConfig {
            initial_j: 0.0,
            storage_j: 1.0, // effectively uncapped for this test
            ..HarvesterConfig::typical()
        });
        let input = 1e-3;
        let dt = 0.5;
        hv.harvest(input, dt);
        let expect = 0.4 * input * dt;
        assert!((hv.stored_j() - expect).abs() < 1e-15);
        assert!((hv.harvested_total_j() - expect).abs() < 1e-15);
    }

    #[test]
    fn sustainable_duty_cycle() {
        let hv = h();
        // At saturation input 3.16e-4 W, harvest = 0.4·3.16e-4 ≈ 126 µW.
        let d = hv.sustainable_duty_cycle(3.16e-4, 1e-3);
        assert!((d - 0.1264).abs() < 0.01, "duty {d}");
        assert_eq!(hv.sustainable_duty_cycle(1e-6, 1e-3), 0.0);
        assert_eq!(hv.sustainable_duty_cycle(1.0, 1e-6), 1.0);
    }

    #[test]
    fn fill_fraction() {
        let hv = h();
        assert!((hv.fill_fraction() - 0.5).abs() < 1e-12);
    }
}
