//! End-to-end exercise of the Unix-socket transport: one service, one
//! client, the full protocol conversation — liveness, compute, cached
//! replay with byte-identical result lines, live trace streaming,
//! cache recheck, shutdown.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::Arc;

use fdb_core::link::LinkConfig;
use fdb_service::{serve_unix, Client, Request, Response, Service, ServiceConfig};
use fdb_sim::{JobSpec, MeasureSpec};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdb-socket-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn link_job(frames: u64, seed: u64) -> JobSpec {
    JobSpec::Link {
        link: LinkConfig::default_fd(),
        spec: MeasureSpec {
            frames,
            seed,
            ..MeasureSpec::default()
        },
    }
}

fn connect_with_retry(path: &std::path::Path) -> Client {
    for _ in 0..200 {
        if let Ok(client) = Client::connect(path) {
            return client;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("service socket never came up at {}", path.display());
}

/// Drives a submission to its terminal response, returning
/// `(result_json, trace_text, cached)` where `result_json` is the raw
/// serialization of the `Done` response's result payload (the
/// byte-identity unit) and `trace_text` is the concatenation of streamed
/// trace chunks.
fn submit(client: &mut Client, job: JobSpec, stream_trace: bool) -> (String, String, bool) {
    client
        .send(&Request::Submit {
            job,
            stream_trace,
            timeout_ms: 0,
        })
        .unwrap();
    let mut trace = String::new();
    let mut saw_accept = false;
    loop {
        match client.recv().unwrap().expect("service hung up mid-job") {
            Response::Accepted { .. } => saw_accept = true,
            Response::Progress { .. } => continue,
            Response::Trace { text, .. } => trace.push_str(&text),
            Response::Done { result, cached, .. } => {
                assert!(saw_accept, "Done before Accepted");
                return (serde_json::to_string(&result).unwrap(), trace, cached);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}

#[test]
fn socket_conversation_end_to_end() {
    let dir = scratch("e2e");
    let socket = dir.join("service.sock");
    let service = Arc::new(
        Service::start(ServiceConfig::new(dir.join("cache"))).expect("service starts"),
    );
    let serve = {
        let service = Arc::clone(&service);
        let socket = socket.clone();
        std::thread::spawn(move || serve_unix(service, &socket).expect("serve loop"))
    };
    let mut client = connect_with_retry(&socket);

    // Liveness: an empty cache and an idle pool.
    client.send(&Request::Ping).unwrap();
    match client.recv().unwrap().unwrap() {
        Response::Pong { cache_entries, .. } => assert_eq!(cache_entries, 0),
        other => panic!("expected Pong, got {other:?}"),
    }

    // Cold submission computes; warm submission replays byte-identically.
    let (cold, _, cold_cached) = submit(&mut client, link_job(3, 11), false);
    assert!(!cold_cached, "cold cache must compute");
    let (warm, _, warm_cached) = submit(&mut client, link_job(3, 11), false);
    assert!(warm_cached, "second submission must be a recorded cache hit");
    assert_eq!(
        cold, warm,
        "cached result must replay the computed one byte-for-byte"
    );

    // A different seed is a different content address: computes again.
    let (_, _, other_cached) = submit(&mut client, link_job(3, 12), false);
    assert!(!other_cached, "a changed seed must miss the cache");

    // Ping again: 2 entries, 1 hit recorded.
    client.send(&Request::Ping).unwrap();
    match client.recv().unwrap().unwrap() {
        Response::Pong {
            cache_entries,
            cache_hits,
            ..
        } => {
            assert_eq!(cache_entries, 2);
            assert_eq!(cache_hits, 1);
        }
        other => panic!("expected Pong, got {other:?}"),
    }

    // Integrity pass over everything the conversation cached.
    client.send(&Request::Recheck { sample_every: 1 }).unwrap();
    match client.recv().unwrap().unwrap() {
        Response::RecheckReport {
            checked,
            matched,
            mismatched,
        } => {
            assert_eq!(checked, 2);
            assert_eq!(matched, 2);
            assert_eq!(mismatched, Vec::<String>::new());
        }
        other => panic!("expected RecheckReport, got {other:?}"),
    }

    // Cancelling an id that already finished is acknowledged as unknown.
    client.send(&Request::Cancel { id: 1 }).unwrap();
    match client.recv().unwrap().unwrap() {
        Response::CancelAck { id: 1, known } => assert!(!known),
        other => panic!("expected CancelAck, got {other:?}"),
    }

    client.send(&Request::Shutdown).unwrap();
    match client.recv().unwrap().unwrap() {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    serve.join().expect("serve thread");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
    Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("service still shared"))
        .shutdown();
}

/// The tentpole trace contract over the real socket: the concatenated
/// `Trace` chunk text of a streamed link job equals the file a
/// `JsonlFileSink` writes for the same `(config, spec, seed)`, byte for
/// byte — and streamed submissions never populate the cache.
#[cfg(feature = "trace")]
#[test]
fn socket_streamed_trace_matches_file_sink() {
    use fdb_core::trace::JsonlFileSink;
    use fdb_sim::RunControl;

    let dir = scratch("trace");
    let socket = dir.join("service.sock");
    let service = Arc::new(
        Service::start(ServiceConfig::new(dir.join("cache"))).expect("service starts"),
    );
    let serve = {
        let service = Arc::clone(&service);
        let socket = socket.clone();
        std::thread::spawn(move || serve_unix(service, &socket).expect("serve loop"))
    };
    let mut client = connect_with_retry(&socket);

    let (_, streamed, cached) = submit(&mut client, link_job(4, 21), true);
    assert!(!cached);
    assert!(!streamed.is_empty(), "streamed trace captured nothing");

    // Reference: the identical job straight into a file sink.
    let ref_path = dir.join("reference.jsonl");
    let mut sink = JsonlFileSink::create(&ref_path).unwrap();
    link_job(4, 21)
        .run(RunControl::new().with_sink(&mut sink))
        .unwrap();
    sink.finish().unwrap();
    assert_eq!(
        streamed,
        std::fs::read_to_string(&ref_path).unwrap(),
        "socket-streamed trace must equal the JsonlFileSink file byte-for-byte"
    );

    // Streamed submissions bypass the cache in both directions.
    client.send(&Request::Ping).unwrap();
    match client.recv().unwrap().unwrap() {
        Response::Pong { cache_entries, .. } => assert_eq!(cache_entries, 0),
        other => panic!("expected Pong, got {other:?}"),
    }

    client.send(&Request::Shutdown).unwrap();
    let _ = client.recv();
    serve.join().expect("serve thread");
    Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("service still shared"))
        .shutdown();
}

/// Submissions refused by the validator are answered with `Rejected` and
/// leave the connection usable.
#[test]
fn invalid_submission_is_rejected_inline() {
    let dir = scratch("reject");
    let socket = dir.join("service.sock");
    let service = Arc::new(
        Service::start(ServiceConfig::new(dir.join("cache"))).expect("service starts"),
    );
    let serve = {
        let service = Arc::clone(&service);
        let socket = socket.clone();
        std::thread::spawn(move || serve_unix(service, &socket).expect("serve loop"))
    };
    let mut client = connect_with_retry(&socket);

    client
        .send(&Request::Submit {
            job: link_job(0, 1), // frames: 0 fails validation
            stream_trace: false,
            timeout_ms: 0,
        })
        .unwrap();
    match client.recv().unwrap().unwrap() {
        Response::Rejected { reason } => assert!(reason.contains("invalid job")),
        other => panic!("expected Rejected, got {other:?}"),
    }

    // The connection still works afterwards.
    let (_, _, cached) = submit(&mut client, link_job(2, 1), false);
    assert!(!cached);

    client.send(&Request::Shutdown).unwrap();
    let _ = client.recv();
    serve.join().expect("serve thread");
    Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("service still shared"))
        .shutdown();
}
