//! # fdb-service — the long-running sweep/scenario job service
//!
//! Turns the workspace's one-shot runners into a resident service:
//! clients submit serde-typed jobs ([`fdb_sim::JobSpec`] — link
//! measurements, fault-matrix grids, MAC scenario/ablation sessions) and
//! get a streamed response — progress ticks, live trace chunks, then one
//! terminal `Done`/`Failed`/`Cancelled` line.
//!
//! * [`protocol`] — the line-delimited JSON request/response surface,
//!   symmetric across transports.
//! * [`pool`] — persistent worker threads over one bounded queue, with
//!   per-job cancellation flags and wall-clock timeouts folded into the
//!   cooperative predicate [`fdb_sim::JobSpec::run`] polls.
//! * [`cache`] — the content-addressed result store: one file per job
//!   content hash, seeded from the repo's golden corpus, replaying
//!   byte-identical result JSON on repeat submissions, with an integrity
//!   `recheck` pass that recomputes entries from their stored specs.
//! * [`service`] — the assembled service plus its transports: an
//!   in-process blocking handle for tests/embedding and a Unix-socket
//!   server/client pair (`probe serve` / `probe submit`).
//!
//! The end-to-end contracts this crate owes the rest of the workspace:
//! submitting the same job twice yields a recorded cache hit whose
//! result bytes are identical to the first reply, and a trace-streamed
//! link job's concatenated chunk text equals the
//! [`JsonlFileSink`](fdb_core::trace::JsonlFileSink) file a direct run
//! of the same spec would write, byte for byte.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod pool;
pub mod protocol;
pub mod service;

pub use cache::{CachedResult, RecheckOutcome, ResultStore};
pub use pool::{JobEvent, JobEvents, SubmitError, SubmitHandle, WorkerPool};
pub use protocol::{Request, Response};
#[cfg(unix)]
pub use service::{serve_unix, Client};
pub use service::{Service, ServiceConfig, SubmitOutcome};
