//! The execution engine: a fixed set of persistent worker threads pulling
//! jobs off one bounded queue.
//!
//! This extends the workspace's scoped-sweep idiom (`fdb_sim::sweep`'s
//! atomic work stealing) to a *long-running* pool: workers park on a
//! condvar instead of exiting when the queue drains, submissions are
//! refused (not blocked) past the queue bound, and every job carries its
//! own cancellation flag and wall-clock deadline, both folded into the
//! cooperative predicate [`JobSpec::run`] polls between frames.
//!
//! Results flow back through a per-job event callback
//! ([`JobEvents`]) rather than a return value, because a job emits a
//! *stream* — progress ticks, trace chunks, then exactly one terminal
//! event ([`JobEvent::Done`] / [`Failed`](JobEvent::Failed) /
//! [`Cancelled`](JobEvent::Cancelled)).
//!
//! Cache interplay lives here so every transport gets it for free:
//! untraced submissions are answered from the
//! [`ResultStore`](crate::cache::ResultStore) when the job's content
//! address is present (terminal event emitted synchronously from
//! [`submit`](WorkerPool::submit), no queueing), and computed results are
//! inserted on completion. Trace-streaming submissions bypass the cache
//! in both directions: their metrics carry sink counters, which must not
//! leak into replies to untraced submissions of the same job.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fdb_core::trace::TraceChunk;
use fdb_sim::{JobProgress, JobSpec, RunControl};

use crate::cache::ResultStore;

/// One event in a job's response stream.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// Progress tick (frames / grid cells completed).
    Progress(JobProgress),
    /// One streamed trace chunk (`trace` builds, link jobs only).
    Trace(TraceChunk),
    /// Terminal: the job produced a result.
    Done {
        /// Canonical result JSON (replayed bytes when `cached`).
        result_json: String,
        /// `true` when the result came from the store, not a run.
        cached: bool,
    },
    /// Terminal: the job failed.
    Failed {
        /// Error description (PHY error or `timeout after N ms`).
        error: String,
    },
    /// Terminal: the job observed its cancellation flag.
    Cancelled {
        /// Units completed before the flag was observed.
        frames_done: u64,
    },
}

/// The per-job event callback. Shared with the trace forwarder thread,
/// hence `Arc` + `Sync`.
pub type JobEvents = Arc<dyn Fn(JobEvent) + Send + Sync>;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job spec failed [`JobSpec::validate`].
    Invalid(String),
    /// The queue is at its bound; retry later.
    QueueFull {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// Trace streaming was requested but this build lacks the `trace`
    /// feature.
    TraceUnavailable,
    /// The pool is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(why) => write!(f, "invalid job: {why}"),
            SubmitError::QueueFull { depth } => {
                write!(f, "queue full ({depth} jobs waiting)")
            }
            SubmitError::TraceUnavailable => {
                write!(f, "trace streaming requires a `trace`-feature build")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Handle returned by [`WorkerPool::submit`].
pub struct SubmitHandle {
    /// Pool-assigned job id (monotonic).
    pub id: u64,
    /// The job's content address, as 32 hex digits.
    pub job_hash: String,
    /// Job kind label.
    pub kind: &'static str,
    /// Set to request cooperative cancellation.
    pub cancel: Arc<AtomicBool>,
}

struct Queued {
    job: JobSpec,
    stream_trace: bool,
    timeout: Option<Duration>,
    cancel: Arc<AtomicBool>,
    events: JobEvents,
}

struct PoolShared {
    queue: Mutex<VecDeque<Queued>>,
    available: Condvar,
    shutdown: AtomicBool,
    running: AtomicU64,
    next_id: AtomicU64,
    max_queue: usize,
    store: Arc<ResultStore>,
}

/// A persistent pool of worker threads with a bounded submission queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (min 1) serving a queue bounded at
    /// `max_queue` pending jobs, backed by `store` for result replay.
    pub fn new(workers: usize, max_queue: usize, store: Arc<ResultStore>) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            max_queue: max_queue.max(1),
            store,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fdb-service-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Jobs currently executing.
    pub fn running(&self) -> u64 {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> u64 {
        self.shared.queue.lock().expect("queue lock").len() as u64
    }

    /// The result store backing this pool.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.shared.store
    }

    /// Validates and admits a job. The event stream lands on `events`
    /// (from a worker thread, or synchronously from this call on a cache
    /// hit). A timeout of [`Duration::ZERO`]/`None` means none.
    pub fn submit(
        &self,
        job: JobSpec,
        stream_trace: bool,
        timeout: Option<Duration>,
        events: JobEvents,
    ) -> Result<SubmitHandle, SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        if stream_trace && !cfg!(feature = "trace") {
            return Err(SubmitError::TraceUnavailable);
        }
        job.validate().map_err(SubmitError::Invalid)?;
        let hash = job.content_hash();
        let handle = SubmitHandle {
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            job_hash: hash.to_hex(),
            kind: job.kind(),
            cancel: Arc::new(AtomicBool::new(false)),
        };
        // Cache replay: untraced submissions only (see module docs).
        if !stream_trace {
            if let Some(hit) = self.shared.store.lookup(&hash) {
                events(JobEvent::Done {
                    result_json: hit.result_json,
                    cached: true,
                });
                return Ok(handle);
            }
        }
        let queued = Queued {
            job,
            stream_trace,
            timeout: timeout.filter(|t| !t.is_zero()),
            cancel: Arc::clone(&handle.cancel),
            events,
        };
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            if queue.len() >= self.shared.max_queue {
                return Err(SubmitError::QueueFull { depth: queue.len() });
            }
            queue.push_back(queued);
        }
        self.shared.available.notify_one();
        Ok(handle)
    }

    /// Stops accepting work, fails everything still queued, and joins the
    /// workers (jobs already running finish normally — cancel them first
    /// for a fast stop).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let drained: Vec<Queued> = {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.drain(..).collect()
        };
        for job in drained {
            (job.events)(JobEvent::Failed {
                error: "service shut down before the job started".to_string(),
            });
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        shared.running.fetch_add(1, Ordering::Relaxed);
        execute(shared, job);
        shared.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs one job to its terminal event.
fn execute(shared: &PoolShared, job: Queued) {
    let Queued {
        job: spec,
        stream_trace,
        timeout,
        cancel,
        events,
    } = job;
    let deadline = timeout.map(|t| Instant::now() + t);
    let timed_out = AtomicBool::new(false);
    let cancel_pred = {
        let cancel = Arc::clone(&cancel);
        let timed_out = &timed_out;
        move || {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    timed_out.store(true, Ordering::Relaxed);
                    return true;
                }
            }
            false
        }
    };
    let progress_events = Arc::clone(&events);
    let mut progress = move |p: JobProgress| {
        progress_events(JobEvent::Progress(p));
    };

    let outcome = run_with_optional_trace(&spec, stream_trace, &cancel_pred, &mut progress, &events);

    match outcome {
        Ok(result_json) => {
            if !stream_trace {
                // Best-effort: a failed insert only costs future replays.
                let _ = shared.store.insert(&spec, &result_json, "computed");
            }
            events(JobEvent::Done {
                result_json,
                cached: false,
            });
        }
        Err(fdb_core::PhyError::Cancelled { frames_done }) => {
            if timed_out.load(Ordering::Relaxed) && !cancel.load(Ordering::Relaxed) {
                events(JobEvent::Failed {
                    error: format!(
                        "timeout after {} ms ({frames_done} units done)",
                        timeout.map(|t| t.as_millis()).unwrap_or(0)
                    ),
                });
            } else {
                events(JobEvent::Cancelled { frames_done });
            }
        }
        Err(e) => events(JobEvent::Failed {
            error: e.to_string(),
        }),
    }
}

/// Runs the job, attaching a [`ChannelSink`](fdb_core::trace::ChannelSink)
/// plus a forwarder thread when trace streaming was requested (the
/// forwarder relays each staged frame to `events` as it completes, so
/// clients see trace text *live*, not after the run).
fn run_with_optional_trace(
    spec: &JobSpec,
    stream_trace: bool,
    cancel_pred: &dyn Fn() -> bool,
    progress: &mut dyn FnMut(JobProgress),
    events: &JobEvents,
) -> Result<String, fdb_core::PhyError> {
    let ctrl = RunControl::new()
        .with_cancel(cancel_pred)
        .with_progress(progress);
    if !stream_trace {
        let _ = events; // only the traced path forwards through `events`
        return spec.run(ctrl).map(|r| r.canonical_json());
    }
    #[cfg(not(feature = "trace"))]
    {
        // submit() already rejected this combination.
        unreachable!("stream_trace admitted without the trace feature")
    }
    #[cfg(feature = "trace")]
    {
        let (tx, rx) = std::sync::mpsc::channel::<TraceChunk>();
        let forward_events = Arc::clone(events);
        let forwarder = std::thread::spawn(move || {
            for chunk in rx {
                forward_events(JobEvent::Trace(chunk));
            }
        });
        // Match the frame cap a spec-built JsonlFileSink would use for
        // this job, so streamed chunks stay byte-identical to the file a
        // direct traced run writes even for configs with a custom cap.
        let mut sink = fdb_core::trace::ChannelSink::new(tx);
        if let JobSpec::Link { link, .. } = spec {
            sink = sink.with_frame_cap(link.phy.trace_ring_capacity());
        }
        let outcome = spec.run(ctrl.with_sink(&mut sink)).map(|r| r.canonical_json());
        drop(sink); // hang up so the forwarder drains and exits
        let _ = forwarder.join();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_core::link::LinkConfig;
    use fdb_sim::MeasureSpec;
    use std::sync::mpsc;

    fn store(tag: &str) -> Arc<ResultStore> {
        let dir = std::env::temp_dir().join(format!(
            "fdb-pool-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(ResultStore::open(dir).unwrap())
    }

    fn job(frames: u64, seed: u64) -> JobSpec {
        JobSpec::Link {
            link: LinkConfig::default_fd(),
            spec: MeasureSpec {
                frames,
                seed,
                ..MeasureSpec::default()
            },
        }
    }

    fn collector() -> (JobEvents, mpsc::Receiver<JobEvent>) {
        let (tx, rx) = mpsc::channel();
        let tx = Mutex::new(tx);
        (
            Arc::new(move |ev| {
                let _ = tx.lock().expect("event tx lock").send(ev);
            }),
            rx,
        )
    }

    fn wait_terminal(rx: &mpsc::Receiver<JobEvent>) -> JobEvent {
        for ev in rx.iter() {
            match ev {
                JobEvent::Progress(_) | JobEvent::Trace(_) => continue,
                terminal => return terminal,
            }
        }
        panic!("event stream ended without a terminal event");
    }

    #[test]
    fn second_submission_replays_from_cache() {
        let pool = WorkerPool::new(2, 8, store("replay"));
        let (events, rx) = collector();
        pool.submit(job(2, 1), false, None, Arc::clone(&events)).unwrap();
        let first = match wait_terminal(&rx) {
            JobEvent::Done { result_json, cached } => {
                assert!(!cached, "cold cache must compute");
                result_json
            }
            other => panic!("first run ended with {other:?}"),
        };
        pool.submit(job(2, 1), false, None, events).unwrap();
        match wait_terminal(&rx) {
            JobEvent::Done { result_json, cached } => {
                assert!(cached, "second submission must hit the cache");
                assert_eq!(result_json, first, "replayed bytes drifted");
            }
            other => panic!("second run ended with {other:?}"),
        }
        assert_eq!(pool.store().hits(), 1);
        pool.shutdown();
    }

    #[test]
    fn cancel_flag_stops_a_long_job() {
        let pool = WorkerPool::new(1, 8, store("cancel"));
        let (events, rx) = collector();
        let handle = pool.submit(job(100_000, 2), false, None, events).unwrap();
        // Let it start, then pull the flag.
        match rx.recv().expect("job events") {
            JobEvent::Progress(_) => handle.cancel.store(true, Ordering::SeqCst),
            other => panic!("expected progress first, got {other:?}"),
        }
        match wait_terminal(&rx) {
            JobEvent::Cancelled { frames_done } => {
                assert!(frames_done < 100_000, "cancel observed before the end")
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        pool.shutdown();
    }

    #[test]
    fn timeout_fails_the_job() {
        let pool = WorkerPool::new(1, 8, store("timeout"));
        let (events, rx) = collector();
        pool.submit(
            job(100_000, 3),
            false,
            Some(Duration::from_millis(30)),
            events,
        )
        .unwrap();
        match wait_terminal(&rx) {
            JobEvent::Failed { error } => {
                assert!(error.contains("timeout"), "unexpected error: {error}")
            }
            other => panic!("expected a timeout failure, got {other:?}"),
        }
        pool.shutdown();
    }

    #[test]
    fn queue_bound_refuses_excess_submissions() {
        let pool = WorkerPool::new(1, 1, store("bound"));
        let (events, rx) = collector();
        // One long job occupies the single worker...
        let running = pool
            .submit(job(100_000, 4), false, None, Arc::clone(&events))
            .unwrap();
        // Wait until it is actually running (first progress tick) so the
        // queued job below cannot be picked up first.
        for ev in rx.iter() {
            if matches!(ev, JobEvent::Progress(_)) {
                break;
            }
        }
        // ...one more fits in the queue...
        let queued = pool
            .submit(job(2, 5), false, None, Arc::clone(&events))
            .unwrap();
        // ...and the next is refused.
        match pool.submit(job(2, 6), false, None, Arc::clone(&events)) {
            Err(SubmitError::QueueFull { depth }) => assert_eq!(depth, 1),
            other => panic!("expected QueueFull, got {:?}", other.map(|h| h.id)),
        }
        running.cancel.store(true, Ordering::SeqCst);
        let _ = queued;
        // Both admitted jobs reach a terminal event.
        let mut terminals = 0;
        for ev in rx.iter() {
            match ev {
                JobEvent::Progress(_) | JobEvent::Trace(_) => continue,
                _ => {
                    terminals += 1;
                    if terminals == 2 {
                        break;
                    }
                }
            }
        }
        pool.shutdown();
    }

    #[test]
    fn invalid_jobs_are_rejected_up_front() {
        let pool = WorkerPool::new(1, 4, store("invalid"));
        let (events, _rx) = collector();
        let bad = JobSpec::Link {
            link: LinkConfig::default_fd(),
            spec: MeasureSpec {
                frames: 0,
                ..MeasureSpec::default()
            },
        };
        match pool.submit(bad, false, None, events) {
            Err(SubmitError::Invalid(why)) => assert!(why.contains("frames")),
            other => panic!("expected Invalid, got {:?}", other.map(|h| h.id)),
        }
        pool.shutdown();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn streamed_trace_matches_file_sink_bytes() {
        use fdb_core::trace::JsonlFileSink;

        let pool = WorkerPool::new(1, 4, store("trace"));
        let (events, rx) = collector();
        pool.submit(job(3, 7), true, None, events).unwrap();
        let mut streamed = String::new();
        let mut done_json = None;
        for ev in rx.iter() {
            match ev {
                JobEvent::Trace(chunk) => streamed.push_str(&chunk.text),
                JobEvent::Done { result_json, cached } => {
                    assert!(!cached, "traced submissions must bypass the cache");
                    done_json = Some(result_json);
                    break;
                }
                JobEvent::Progress(_) => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(done_json.is_some());

        // Reference: the same job through a JsonlFileSink.
        let path = std::env::temp_dir().join(format!(
            "fdb-pool-trace-ref-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlFileSink::create(&path).unwrap();
        job(3, 7)
            .run(RunControl::new().with_sink(&mut sink))
            .unwrap();
        sink.finish().unwrap();
        let file_bytes = std::fs::read_to_string(&path).unwrap();
        assert!(!file_bytes.is_empty(), "reference sink captured nothing");
        assert_eq!(
            streamed, file_bytes,
            "socket-streamed trace must equal the file sink byte-for-byte"
        );

        // The traced run must not have populated the cache.
        assert!(pool.store().is_empty());
        pool.shutdown();
    }
}
