//! Content-addressed result store.
//!
//! One flat directory, one file per completed job, named by the job's
//! [`content hash`](JobSpec::content_hash) (`<root>/<32 hex>.json`). Each
//! file is a self-describing envelope:
//!
//! ```text
//! {"job_hash":"9f2c...","origin":"computed","job":{...},"result":{...}}
//! ```
//!
//! * `job` is the full [`JobSpec`] the address was derived from, so the
//!   store can recompute any entry from first principles (the
//!   [`recheck`](ResultStore::recheck) integrity pass does exactly that).
//! * `result` is the job's canonical result JSON. Lookups hand back a
//!   re-serialization of these exact bytes: the workspace JSON writer
//!   keeps object order and prints shortest-round-trip floats, so
//!   parse → serialize is the identity on anything it wrote.
//!
//! The store is seeded from the repo's golden corpus
//! ([`seed_from_golden`](ResultStore::seed_from_golden)): the three
//! bundled fault plans against `configs/default_link.json` are exactly
//! the jobs `results/golden/fault_*.json` records, so a fresh service
//! starts with those grid corners pre-warmed and `recheck` doubles as a
//! golden-conformance probe.
//!
//! Invalidation is structural, not manual: the content address covers
//! `(PhyConfig, JobSpec, seed)` via the canonical job JSON under
//! [`JobSpec::HASH_DOMAIN`], so changing any input moves the address and
//! stale entries simply go unreachable. A PHY behaviour change that moves
//! results *without* moving specs is what `recheck` exists to catch.

use serde::{Deserialize, Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fdb_core::hash::ContentHash;
use fdb_sim::{JobSpec, RunControl};

/// The on-disk envelope wrapped around every cached result.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    /// The job's content address (redundant with the filename; kept so
    /// an envelope is self-describing when copied around).
    job_hash: String,
    /// Where the entry came from: `computed` or `golden:<name>`.
    origin: String,
    /// The full job spec the address hashes.
    job: Value,
    /// The job's canonical result JSON.
    result: Value,
}

/// A hit returned by [`ResultStore::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// The stored result, re-serialized to its canonical bytes.
    pub result_json: String,
    /// Provenance of the entry (`computed` or `golden:<name>`).
    pub origin: String,
}

/// Outcome of a cache-integrity [`recheck`](ResultStore::recheck) pass.
#[derive(Debug, Clone, Default)]
pub struct RecheckOutcome {
    /// Entries recomputed.
    pub checked: u64,
    /// Entries whose recomputation reproduced the stored bytes.
    pub matched: u64,
    /// One diff summary per entry that no longer reproduces.
    pub mismatched: Vec<String>,
}

/// The content-addressed result store (thread-safe; lookups and inserts
/// take `&self`).
pub struct ResultStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ResultStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, hash: &ContentHash) -> PathBuf {
        self.root.join(format!("{}.json", hash.to_hex()))
    }

    /// Looks up a job's stored result, counting the hit or miss. Returns
    /// the canonical result bytes; a corrupt entry reads as a miss.
    pub fn lookup(&self, hash: &ContentHash) -> Option<CachedResult> {
        match self.read_envelope(&self.entry_path(hash)) {
            Some(env) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(CachedResult {
                    result_json: serde_json::to_string(&env.result)
                        .expect("stored value re-serializes"),
                    origin: env.origin,
                })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `result_json` (canonical result bytes) for `job` under its
    /// content address. Last writer wins; the write is atomic (temp file
    /// + rename) so concurrent readers never observe a torn entry.
    pub fn insert(&self, job: &JobSpec, result_json: &str, origin: &str) -> io::Result<()> {
        let hash = job.content_hash();
        let job_value = serde_json::value_from_str(
            &serde_json::to_string(job)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let result = serde_json::value_from_str(result_json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let env = Envelope {
            job_hash: hash.to_hex(),
            origin: origin.to_string(),
            job: job_value,
            result,
        };
        let text = serde_json::to_string(&env)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = self.entry_path(&hash);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text + "\n")?;
        std::fs::rename(&tmp, &path)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> u64 {
        self.entry_paths().len() as u64
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits recorded by [`lookup`](ResultStore::lookup) so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses recorded by [`lookup`](ResultStore::lookup) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn entry_paths(&self) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.root)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
            .collect();
        paths.sort();
        paths
    }

    fn read_envelope(&self, path: &Path) -> Option<Envelope> {
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Seeds the store from the repo's golden corpus: for each bundled
    /// fault plan, the `(default_link, 6 frames, plan)` link job whose
    /// metrics `results/golden/fault_<name>.json` records. Existing
    /// entries are left alone. Returns how many entries were written.
    pub fn seed_from_golden(&self, repo_root: &Path) -> io::Result<usize> {
        let mut seeded = 0;
        for name in ["burst_collision", "drift_ramp", "sic_step"] {
            let job = golden_job(repo_root, name)?;
            if self.entry_path(&job.content_hash()).exists() {
                continue;
            }
            let golden = std::fs::read_to_string(
                repo_root.join(format!("results/golden/fault_{name}.json")),
            )?;
            let metrics = serde_json::value_from_str(&golden)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            // Wrap the bare metrics object the same way
            // `JobResult::Link { metrics }` serializes.
            let result = Value::Object(vec![(
                "Link".to_string(),
                Value::Object(vec![("metrics".to_string(), metrics)]),
            )]);
            let result_json = serde_json::to_string(&result)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            self.insert(&job, &result_json, &format!("golden:fault_{name}"))?;
            seeded += 1;
        }
        Ok(seeded)
    }

    /// Integrity pass: recompute every `sample_every`-th entry (0 and 1
    /// both mean every entry) from its stored job spec and diff the
    /// canonical result bytes against what the store holds. Trace-free
    /// recomputation, so counters match what untraced submissions cached.
    pub fn recheck(&self, sample_every: u64) -> RecheckOutcome {
        let step = sample_every.max(1) as usize;
        let mut out = RecheckOutcome::default();
        for path in self.entry_paths().into_iter().step_by(step) {
            let Some(env) = self.read_envelope(&path) else {
                out.checked += 1;
                out.mismatched
                    .push(format!("{}: unreadable envelope", path.display()));
                continue;
            };
            out.checked += 1;
            let job: JobSpec = match serde_json::from_str(
                &serde_json::to_string(&env.job).expect("stored value re-serializes"),
            ) {
                Ok(job) => job,
                Err(e) => {
                    out.mismatched
                        .push(format!("{}: stored job invalid: {e}", env.job_hash));
                    continue;
                }
            };
            let stored = serde_json::to_string(&env.result).expect("stored value re-serializes");
            match job.run(RunControl::new()) {
                Ok(result) => {
                    let recomputed = result.canonical_json();
                    if recomputed == stored {
                        out.matched += 1;
                    } else {
                        out.mismatched.push(format!(
                            "{} ({}): recomputed result diverges from stored bytes \
                             ({} vs {} bytes)",
                            env.job_hash,
                            env.origin,
                            recomputed.len(),
                            stored.len()
                        ));
                    }
                }
                Err(e) => out
                    .mismatched
                    .push(format!("{} ({}): recompute failed: {e}", env.job_hash, env.origin)),
            }
        }
        out
    }
}

/// The link job whose metrics `results/golden/fault_<name>.json` records:
/// `configs/default_link.json` with `configs/faults/<name>.json` at 6
/// frames — exactly what `probe link --config configs/default_link.json
/// --faults configs/faults/<name>.json --frames 6` runs.
pub fn golden_job(repo_root: &Path, name: &str) -> io::Result<JobSpec> {
    #[derive(Deserialize)]
    struct Scenario {
        link: fdb_core::link::LinkConfig,
        spec: fdb_sim::MeasureSpec,
    }
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    let text = std::fs::read_to_string(repo_root.join("configs/default_link.json"))?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(|e| invalid(e.to_string()))?;
    let plan: fdb_sim::FaultPlan = serde_json::from_str(&std::fs::read_to_string(
        repo_root.join(format!("configs/faults/{name}.json")),
    )?)
    .map_err(|e| invalid(e.to_string()))?;
    let mut spec = scenario.spec.with_faults(plan);
    spec.frames = 6;
    Ok(JobSpec::Link {
        link: scenario.link,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_core::link::LinkConfig;
    use fdb_sim::MeasureSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fdb-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::Link {
            link: LinkConfig::default_fd(),
            spec: MeasureSpec {
                frames: 2,
                seed,
                ..MeasureSpec::default()
            },
        }
    }

    #[test]
    fn insert_then_lookup_replays_exact_bytes() {
        let store = ResultStore::open(tmpdir("roundtrip")).unwrap();
        let job = small_job(3);
        let result = job.run(RunControl::new()).unwrap().canonical_json();
        assert!(store.lookup(&job.content_hash()).is_none());
        store.insert(&job, &result, "computed").unwrap();
        let hit = store.lookup(&job.content_hash()).expect("entry stored");
        assert_eq!(hit.result_json, result, "replayed bytes drifted");
        assert_eq!(hit.origin, "computed");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn golden_seed_populates_three_entries_that_recheck_clean() {
        let store = ResultStore::open(tmpdir("golden")).unwrap();
        let seeded = store.seed_from_golden(&repo_root()).unwrap();
        assert_eq!(seeded, 3);
        // Seeding again is a no-op: the addresses already exist.
        assert_eq!(store.seed_from_golden(&repo_root()).unwrap(), 0);
        assert_eq!(store.len(), 3);
        let out = store.recheck(0);
        assert_eq!(out.checked, 3);
        assert_eq!(
            out.mismatched,
            Vec::<String>::new(),
            "golden-seeded entries must recompute to their stored bytes"
        );
        assert_eq!(out.matched, 3);
    }

    #[test]
    fn recheck_flags_a_poisoned_entry() {
        let store = ResultStore::open(tmpdir("poison")).unwrap();
        let job = small_job(5);
        let good = job.run(RunControl::new()).unwrap().canonical_json();
        // Store a result that belongs to a different job.
        let wrong = small_job(6).run(RunControl::new()).unwrap().canonical_json();
        assert_ne!(good, wrong, "seeds 5 and 6 should differ");
        store.insert(&job, &wrong, "computed").unwrap();
        let out = store.recheck(1);
        assert_eq!(out.checked, 1);
        assert_eq!(out.matched, 0);
        assert_eq!(out.mismatched.len(), 1);
    }
}
