//! The wire protocol: line-delimited JSON over a byte stream.
//!
//! Every request and every response is one [`serde_json`] document on one
//! line (`\n`-terminated, no intra-document newlines — embedded trace text
//! rides inside JSON strings where the newlines are escaped). The framing
//! is symmetric and transport-agnostic: the Unix-socket server, the
//! in-process [`Service`](crate::service::Service) handle and the `probe
//! submit` client all speak exactly this.
//!
//! A submission produces a response *stream*, not a single reply:
//!
//! ```text
//! -> {"Submit":{"job":{...},"stream_trace":false}}
//! <- {"Accepted":{"id":3,"job_hash":"9f2c...","kind":"link"}}
//! <- {"Progress":{"id":3,"done":1,"total":6}}
//! <- ...
//! <- {"Done":{"id":3,"job_hash":"9f2c...","cached":false,"result":{...}}}
//! ```
//!
//! `Done.result` is the job's canonical result JSON. The cache stores and
//! replays those exact bytes, and the workspace's JSON writer is
//! parse-stable (objects keep insertion order, floats print
//! shortest-round-trip), so a cached `Done` is byte-identical to the
//! `Done` of the run that populated it.

use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};

use fdb_sim::JobSpec;

/// A client-to-service request (one JSON line).
#[derive(Debug, Clone, Serialize, Deserialize)]
// One Request lives per protocol line; Submit's inline JobSpec dominates
// the size but boxing it would need Box support in the vendored serde.
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Run a job (or replay its cached result).
    Submit {
        /// The job to run; its content hash is the cache key.
        job: JobSpec,
        /// Stream per-frame trace chunks as [`Response::Trace`] lines
        /// (link jobs, `trace` builds only). Traced submissions bypass
        /// the result cache: their metrics carry sink counters, which
        /// would poison replies to untraced submissions of the same job.
        #[serde(default)]
        stream_trace: bool,
        /// Per-job wall-clock timeout in milliseconds (0 = none, the
        /// default). A timed-out job fails with a `timeout` error.
        #[serde(default)]
        timeout_ms: u64,
    },
    /// Request cooperative cancellation of a queued or running job.
    Cancel {
        /// The id from the job's [`Response::Accepted`].
        id: u64,
    },
    /// Liveness probe; answered with [`Response::Pong`] and counters.
    Ping,
    /// Cache-integrity recheck: recompute a sample of stored entries and
    /// diff against the stored result bytes.
    Recheck {
        /// Recompute every n-th entry (0 and 1 both mean every entry).
        #[serde(default)]
        sample_every: u64,
    },
    /// Stop accepting work and shut the service down.
    Shutdown,
}

/// A service-to-client response (one JSON line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// The submission was validated and admitted (possibly served
    /// straight from cache — watch for `Done.cached`).
    Accepted {
        /// Service-assigned id; the handle for [`Request::Cancel`].
        id: u64,
        /// The job's content address (32 hex digits).
        job_hash: String,
        /// Job kind label (`link` / `matrix` / `scenario` / `ablation`).
        kind: String,
    },
    /// The submission was refused (invalid spec, full queue, trace
    /// streaming without the `trace` feature, shutdown in progress).
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Progress tick (frames for link jobs, cells for matrix jobs).
    Progress {
        /// Job id.
        id: u64,
        /// Units completed so far.
        done: u64,
        /// Total units in the job.
        total: u64,
    },
    /// One streamed trace chunk: the exact JSONL text a
    /// [`JsonlFileSink`](fdb_core::trace::JsonlFileSink) would have
    /// written for this frame. Concatenating `text` over all chunks
    /// reproduces the sink's file byte-for-byte.
    Trace {
        /// Job id.
        id: u64,
        /// Frame index the chunk brackets.
        frame: u64,
        /// The frame's JSONL block (embedded newlines, JSON-escaped).
        text: String,
    },
    /// The job finished; `result` is its canonical result JSON.
    Done {
        /// Job id.
        id: u64,
        /// The job's content address.
        job_hash: String,
        /// `true` when `result` was replayed from the content-addressed
        /// cache instead of recomputed.
        cached: bool,
        /// The job's result (canonical form, byte-stable on replay).
        result: Value,
    },
    /// The job failed (PHY error, timeout, worker loss).
    Failed {
        /// Job id.
        id: u64,
        /// Error description.
        error: String,
    },
    /// The job was cancelled via [`Request::Cancel`].
    Cancelled {
        /// Job id.
        id: u64,
        /// Units completed before the cancellation was observed.
        frames_done: u64,
    },
    /// Acknowledges a [`Request::Cancel`].
    CancelAck {
        /// The id the cancel targeted.
        id: u64,
        /// `false` when no live job had that id (already finished, or
        /// never existed) — the cancel was a no-op.
        known: bool,
    },
    /// Liveness answer with service counters.
    Pong {
        /// Jobs currently executing on the pool.
        running: u64,
        /// Jobs waiting in the bounded queue.
        queued: u64,
        /// Entries in the content-addressed result store.
        cache_entries: u64,
        /// Cache lookups that replayed a stored result.
        cache_hits: u64,
        /// Cache lookups that fell through to computation.
        cache_misses: u64,
    },
    /// Outcome of a [`Request::Recheck`] pass.
    RecheckReport {
        /// Entries recomputed.
        checked: u64,
        /// Entries whose recomputation matched the stored bytes.
        matched: u64,
        /// Diff summaries for entries that no longer reproduce.
        mismatched: Vec<String>,
    },
    /// The service acknowledged [`Request::Shutdown`] and is stopping.
    ShuttingDown,
}

/// Serializes `msg` as one protocol line and flushes it.
pub fn write_line<T: Serialize, W: Write>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let line = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one protocol line and parses it; `Ok(None)` on clean EOF.
pub fn read_line<T: Deserialize, R: BufRead>(r: &mut R) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        return serde_json::from_str(line.trim_end())
            .map(Some)
            .map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_core::link::LinkConfig;
    use fdb_sim::MeasureSpec;

    fn link_job() -> JobSpec {
        JobSpec::Link {
            link: LinkConfig::default_fd(),
            spec: MeasureSpec::default(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit {
                job: link_job(),
                stream_trace: false,
                timeout_ms: 250,
            },
            Request::Cancel { id: 9 },
            Request::Ping,
            Request::Recheck { sample_every: 3 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(line, serde_json::to_string(&back).unwrap());
        }
    }

    #[test]
    fn submit_defaults_apply() {
        let line = format!(
            "{{\"Submit\":{{\"job\":{}}}}}",
            serde_json::to_string(&link_job()).unwrap()
        );
        let req: Request = serde_json::from_str(&line).unwrap();
        match req {
            Request::Submit {
                stream_trace,
                timeout_ms,
                ..
            } => {
                assert!(!stream_trace);
                assert_eq!(timeout_ms, 0);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn line_framing_round_trips() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Ping).unwrap();
        write_line(&mut buf, &Request::Cancel { id: 1 }).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let a: Option<Request> = read_line(&mut r).unwrap();
        let b: Option<Request> = read_line(&mut r).unwrap();
        let c: Option<Request> = read_line(&mut r).unwrap();
        assert!(matches!(a, Some(Request::Ping)));
        assert!(matches!(b, Some(Request::Cancel { id: 1 })));
        assert!(c.is_none());
    }
}
