//! The service shell: protocol dispatch over the pool, plus transports.
//!
//! [`Service`] owns the [`WorkerPool`] and [`ResultStore`] and exposes
//! one dispatch entry point, [`Service::handle`], that maps a
//! [`Request`] to its [`Response`] stream. Two transports wrap it:
//!
//! * **In-process** — [`Service::submit_blocking`] for tests and embedding:
//!   submit, block until the terminal response, collect everything.
//! * **Unix socket** — [`serve_unix`]: line-delimited JSON over
//!   `UnixListener`, one thread per connection, responses interleaved
//!   onto the connection under a write lock so event lines from worker
//!   threads never tear.
//!
//! A [`Request::Shutdown`] from any connection stops the accept loop,
//! drains the pool, and removes the socket file.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fdb_core::trace::TraceChunk;
use fdb_sim::JobSpec;

use crate::cache::ResultStore;
use crate::pool::{JobEvent, JobEvents, SubmitError, WorkerPool};
use crate::protocol::{Request, Response};

/// Construction parameters for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (min 1).
    pub workers: usize,
    /// Bound on jobs waiting in the queue; submissions past it are
    /// refused with a `queue full` rejection.
    pub max_queue: usize,
    /// Root directory of the content-addressed result store.
    pub cache_dir: PathBuf,
    /// When set, seed the store from this repo root's golden corpus
    /// (`configs/` + `results/golden/`) before accepting work.
    pub seed_golden_from: Option<PathBuf>,
}

impl ServiceConfig {
    /// Two workers, queue depth 32, cache under `cache_dir`, no seeding.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            workers: 2,
            max_queue: 32,
            cache_dir: cache_dir.into(),
            seed_golden_from: None,
        }
    }
}

/// The assembled job service (pool + store + live-job table).
pub struct Service {
    pool: WorkerPool,
    store: Arc<ResultStore>,
    /// Cancellation flags of jobs that have been admitted and not yet
    /// reached a terminal event, keyed by job id.
    live: Arc<Mutex<HashMap<u64, Arc<std::sync::atomic::AtomicBool>>>>,
    stopping: AtomicBool,
}

/// Everything a blocking in-process submission collected.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Pool-assigned job id.
    pub id: u64,
    /// The job's content address (32 hex digits).
    pub job_hash: String,
    /// The terminal response ([`Response::Done`] / [`Failed`](Response::Failed) /
    /// [`Cancelled`](Response::Cancelled)).
    pub terminal: Response,
    /// Progress ticks observed, in order.
    pub progress: Vec<(u64, u64)>,
    /// Trace chunks observed, in order (trace-streaming submissions).
    pub trace: Vec<TraceChunk>,
}

impl SubmitOutcome {
    /// The canonical result bytes, when the job finished with `Done`.
    pub fn result_json(&self) -> Option<String> {
        match &self.terminal {
            Response::Done { result, .. } => {
                Some(serde_json::to_string(result).expect("result re-serializes"))
            }
            _ => None,
        }
    }

    /// Whether the terminal `Done` was replayed from the cache.
    pub fn cached(&self) -> bool {
        matches!(&self.terminal, Response::Done { cached: true, .. })
    }
}

impl Service {
    /// Builds the pool and store, seeding the golden corpus when asked.
    pub fn start(config: ServiceConfig) -> std::io::Result<Self> {
        let store = Arc::new(ResultStore::open(&config.cache_dir)?);
        if let Some(repo_root) = &config.seed_golden_from {
            store.seed_from_golden(repo_root)?;
        }
        Ok(Service {
            pool: WorkerPool::new(config.workers, config.max_queue, Arc::clone(&store)),
            store,
            live: Arc::new(Mutex::new(HashMap::new())),
            stopping: AtomicBool::new(false),
        })
    }

    /// The store backing this service.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// Drains the pool and consumes the service.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }

    /// Dispatches one request; every response (zero or more lines, in
    /// order) lands on `emit` — possibly from worker threads after this
    /// call returns. Returns `false` when the request was [`Request::Shutdown`]
    /// and the transport should stop reading.
    pub fn handle(&self, req: Request, emit: Arc<dyn Fn(Response) + Send + Sync>) -> bool {
        match req {
            Request::Submit {
                job,
                stream_trace,
                timeout_ms,
            } => {
                self.submit(job, stream_trace, timeout_ms, emit);
                true
            }
            Request::Cancel { id } => {
                let known = {
                    let live = self.live.lock().expect("live-job lock");
                    match live.get(&id) {
                        Some(flag) => {
                            flag.store(true, Ordering::SeqCst);
                            true
                        }
                        None => false,
                    }
                };
                emit(Response::CancelAck { id, known });
                true
            }
            Request::Ping => {
                emit(Response::Pong {
                    running: self.pool.running(),
                    queued: self.pool.queued(),
                    cache_entries: self.store.len(),
                    cache_hits: self.store.hits(),
                    cache_misses: self.store.misses(),
                });
                true
            }
            Request::Recheck { sample_every } => {
                let out = self.store.recheck(sample_every);
                emit(Response::RecheckReport {
                    checked: out.checked,
                    matched: out.matched,
                    mismatched: out.mismatched,
                });
                true
            }
            Request::Shutdown => {
                self.stopping.store(true, Ordering::SeqCst);
                emit(Response::ShuttingDown);
                false
            }
        }
    }

    fn submit(
        &self,
        job: JobSpec,
        stream_trace: bool,
        timeout_ms: u64,
        emit: Arc<dyn Fn(Response) + Send + Sync>,
    ) {
        if self.stopping.load(Ordering::SeqCst) {
            emit(Response::Rejected {
                reason: SubmitError::ShuttingDown.to_string(),
            });
            return;
        }
        // The event callback needs the job id and hash, which the pool
        // assigns on admission — events fired before then (the
        // synchronous cache-hit `Done`) buffer inside the gate, and the
        // gate's mutex keeps direct and drained emissions in order.
        let gate = Arc::new(EventGate {
            emit: Arc::clone(&emit),
            live: Arc::clone(&self.live),
            state: Mutex::new(GateState {
                identity: None,
                buffered: Vec::new(),
            }),
        });
        let events: JobEvents = {
            let gate = Arc::clone(&gate);
            Arc::new(move |ev: JobEvent| gate.deliver(ev))
        };
        let timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
        match self.pool.submit(job, stream_trace, timeout, events) {
            Ok(handle) => {
                self.live
                    .lock()
                    .expect("live-job lock")
                    .insert(handle.id, Arc::clone(&handle.cancel));
                emit(Response::Accepted {
                    id: handle.id,
                    job_hash: handle.job_hash.clone(),
                    kind: handle.kind.to_string(),
                });
                gate.open(handle.id, handle.job_hash);
            }
            Err(e) => emit(Response::Rejected {
                reason: e.to_string(),
            }),
        }
    }

    /// In-process client: submits and blocks until the terminal response,
    /// returning everything observed. `Err` carries the rejection reason.
    pub fn submit_blocking(
        &self,
        job: JobSpec,
        stream_trace: bool,
        timeout_ms: u64,
    ) -> Result<SubmitOutcome, String> {
        let (tx, rx) = std::sync::mpsc::channel::<Response>();
        let tx = Mutex::new(tx);
        let emit = Arc::new(move |resp: Response| {
            let _ = tx.lock().expect("response tx lock").send(resp);
        });
        self.handle(
            Request::Submit {
                job,
                stream_trace,
                timeout_ms,
            },
            emit,
        );
        let mut id = 0;
        let mut job_hash = String::new();
        let mut progress = Vec::new();
        let mut trace = Vec::new();
        for resp in rx.iter() {
            match resp {
                Response::Accepted {
                    id: got,
                    job_hash: hash,
                    ..
                } => {
                    id = got;
                    job_hash = hash;
                }
                Response::Rejected { reason } => return Err(reason),
                Response::Progress { done, total, .. } => progress.push((done, total)),
                Response::Trace { frame, text, .. } => trace.push(TraceChunk { frame, text }),
                terminal @ (Response::Done { .. }
                | Response::Failed { .. }
                | Response::Cancelled { .. }) => {
                    return Ok(SubmitOutcome {
                        id,
                        job_hash,
                        terminal,
                        progress,
                        trace,
                    })
                }
                other => return Err(format!("unexpected response {other:?}")),
            }
        }
        Err("response stream ended without a terminal response".to_string())
    }
}

struct GateState {
    /// `(id, job_hash)` once the pool has admitted the job.
    identity: Option<(u64, String)>,
    /// Events that fired before the identity was known.
    buffered: Vec<JobEvent>,
}

/// Orders a job's event stream behind its admission: events delivered
/// before [`open`](EventGate::open) buffer; everything after emits
/// directly. The state mutex is held across emission so a racing worker
/// event can never overtake a buffered one.
struct EventGate {
    emit: Arc<dyn Fn(Response) + Send + Sync>,
    live: Arc<Mutex<HashMap<u64, Arc<std::sync::atomic::AtomicBool>>>>,
    state: Mutex<GateState>,
}

impl EventGate {
    fn deliver(&self, ev: JobEvent) {
        let mut state = self.state.lock().expect("event gate lock");
        match state.identity.clone() {
            None => state.buffered.push(ev),
            Some((id, hash)) => self.emit_event(id, &hash, ev),
        }
    }

    fn open(&self, id: u64, job_hash: String) {
        let mut state = self.state.lock().expect("event gate lock");
        state.identity = Some((id, job_hash.clone()));
        let drained: Vec<JobEvent> = state.buffered.drain(..).collect();
        for ev in drained {
            self.emit_event(id, &job_hash, ev);
        }
    }

    fn emit_event(&self, id: u64, job_hash: &str, ev: JobEvent) {
        let terminal = is_terminal(&ev);
        (self.emit)(event_response(id, job_hash, ev));
        if terminal {
            self.live.lock().expect("live-job lock").remove(&id);
        }
    }
}

fn is_terminal(ev: &JobEvent) -> bool {
    matches!(
        ev,
        JobEvent::Done { .. } | JobEvent::Failed { .. } | JobEvent::Cancelled { .. }
    )
}

fn event_response(id: u64, job_hash: &str, ev: JobEvent) -> Response {
    match ev {
        JobEvent::Progress(p) => Response::Progress {
            id,
            done: p.done,
            total: p.total,
        },
        JobEvent::Trace(chunk) => Response::Trace {
            id,
            frame: chunk.frame,
            text: chunk.text,
        },
        JobEvent::Done {
            result_json,
            cached,
        } => Response::Done {
            id,
            job_hash: job_hash.to_string(),
            cached,
            result: serde_json::value_from_str(&result_json)
                .expect("canonical result bytes parse"),
        },
        JobEvent::Failed { error } => Response::Failed { id, error },
        JobEvent::Cancelled { frames_done } => Response::Cancelled { id, frames_done },
    }
}

/// Serves `service` on a Unix socket at `socket_path` until a client
/// sends [`Request::Shutdown`]. Removes a stale socket file first, and
/// the live one on exit. One thread per connection.
#[cfg(unix)]
pub fn serve_unix(service: Arc<Service>, socket_path: &Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    if socket_path.exists() {
        std::fs::remove_file(socket_path)?;
    }
    let listener = UnixListener::bind(socket_path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let wake_path = socket_path.to_path_buf();
        connections.push(std::thread::spawn(move || {
            serve_connection(&service, stream, &stop, &wake_path);
        }));
    }
    for conn in connections {
        let _ = conn.join();
    }
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

#[cfg(unix)]
fn serve_connection(
    service: &Service,
    stream: std::os::unix::net::UnixStream,
    stop: &Arc<AtomicBool>,
    wake_path: &Path,
) {
    use std::io::BufReader;

    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let emit: Arc<dyn Fn(Response) + Send + Sync> = {
        let writer = Arc::clone(&writer);
        Arc::new(move |resp: Response| {
            let mut w = writer.lock().expect("connection write lock");
            let _ = crate::protocol::write_line(&mut *w, &resp);
        })
    };
    let mut reader = reader;
    loop {
        let req: Option<Request> = match crate::protocol::read_line(&mut reader) {
            Ok(req) => req,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Malformed line: reject it and keep the connection (the
                // offending line was consumed).
                emit(Response::Rejected {
                    reason: format!("unreadable request: {e}"),
                });
                continue;
            }
            Err(_) => break,
        };
        let Some(req) = req else { break };
        if !service.handle(req, Arc::clone(&emit)) {
            // Shutdown: stop the accept loop and wake it with a no-op
            // connection so `incoming()` observes the flag.
            stop.store(true, Ordering::SeqCst);
            let _ = std::os::unix::net::UnixStream::connect(wake_path);
            break;
        }
    }
}

/// A line-protocol client over a Unix socket (what `probe submit` uses).
#[cfg(unix)]
pub struct Client {
    reader: std::io::BufReader<std::os::unix::net::UnixStream>,
    writer: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Client {
    /// Connects to a service socket.
    pub fn connect(socket_path: &Path) -> std::io::Result<Self> {
        let writer = std::os::unix::net::UnixStream::connect(socket_path)?;
        let reader = std::io::BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        crate::protocol::write_line(&mut self.writer, req)
    }

    /// Reads the next response line; `Ok(None)` when the service hung up.
    pub fn recv(&mut self) -> std::io::Result<Option<Response>> {
        crate::protocol::read_line(&mut self.reader)
    }
}
