//! Property-based tests over channel-model invariants.

use fdb_channel::budget::{BackscatterBudget, DirectBudget};
use fdb_channel::fading::{BlockFader, Fading};
use fdb_channel::pathloss::PathLoss;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_pathloss() -> impl Strategy<Value = PathLoss> {
    prop_oneof![
        (1e8f64..6e9).prop_map(|f| PathLoss::FreeSpace { freq_hz: f }),
        ((1e8f64..6e9), (2.0f64..4.5), (0.5f64..2.0)).prop_map(|(f, e, r)| {
            PathLoss::LogDistance {
                freq_hz: f,
                exponent: e,
                ref_dist_m: r,
            }
        }),
        ((1e8f64..6e9), (1.0f64..30.0), (0.5f64..3.0)).prop_map(|(f, ht, hr)| {
            PathLoss::TwoRay {
                freq_hz: f,
                h_tx_m: ht,
                h_rx_m: hr,
            }
        }),
    ]
}

proptest! {
    /// Path gain is monotone non-increasing in distance and within (0, 1].
    #[test]
    fn pathloss_monotone_and_bounded(
        model in any_pathloss(),
        d1 in 0.2f64..5_000.0,
        factor in 1.01f64..100.0,
    ) {
        let g1 = model.gain(d1);
        let g2 = model.gain(d1 * factor);
        prop_assert!(g1 > 0.0 && g1 <= 1.0, "{model:?} at {d1}: {g1}");
        prop_assert!(g2 <= g1 * 1.0000001, "{model:?}: gain grew with distance");
    }

    /// loss_db and gain are consistent inverses.
    #[test]
    fn loss_db_consistency(model in any_pathloss(), d in 0.5f64..2_000.0) {
        let g = model.gain(d);
        let l = model.loss_db(d);
        prop_assert!((10f64.powf(-l / 10.0) - g).abs() / g < 1e-9);
    }

    /// Received power never exceeds transmitted power, and the backscatter
    /// budget never exceeds the incident power at the tag.
    #[test]
    fn budgets_never_create_energy(
        model in any_pathloss(),
        tx_dbm in -10.0f64..63.0,
        d1 in 0.5f64..2_000.0,
        d2 in 0.2f64..10.0,
        rho in 0.01f64..1.0,
    ) {
        let direct = DirectBudget { tx_dbm, pathloss: model, distance_m: d1 };
        prop_assert!(direct.rx_dbm() <= tx_dbm + 1e-9);
        let bs = BackscatterBudget {
            src_dbm: tx_dbm,
            src_tag: (model, d1),
            tag_rx: (model, d2),
            rho,
        };
        prop_assert!(bs.rx_dbm() <= bs.incident_dbm() + 1e-9);
        prop_assert!(bs.harvest_input_watts() <= fdb_dsp::sample::dbm_to_watts(bs.incident_dbm()) + 1e-18);
    }

    /// Block fading coefficients stay finite and (for Rician) K controls
    /// the LOS fraction ordering.
    #[test]
    fn fading_finite_and_k_ordering(seed in any::<u64>(), k_lo in 0.1f64..2.0, k_hi in 5.0f64..50.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut lo = BlockFader::new(Fading::Rician { k_factor: k_lo, coherence_blocks: 1.0 }, &mut rng);
        let mut hi = BlockFader::new(Fading::Rician { k_factor: k_hi, coherence_blocks: 1.0 }, &mut rng);
        let n = 2000;
        let (mut var_lo, mut var_hi) = (0.0, 0.0);
        for _ in 0..n {
            let a = lo.advance(&mut rng);
            let b = hi.advance(&mut rng);
            prop_assert!(a.is_finite() && b.is_finite());
            var_lo += (a - fdb_dsp::Iq::real((k_lo / (k_lo + 1.0)).sqrt())).norm_sq();
            var_hi += (b - fdb_dsp::Iq::real((k_hi / (k_hi + 1.0)).sqrt())).norm_sq();
        }
        // Higher K ⇒ less scatter variance.
        prop_assert!(var_hi < var_lo, "var_hi {var_hi} vs var_lo {var_lo}");
    }
}
