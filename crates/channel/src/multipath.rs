//! Multipath dispersion: tapped delay lines with exponential power-delay
//! profiles.
//!
//! Indoor backscatter links see delay spreads of tens of nanoseconds; at
//! the envelope-detection bandwidths used here the dispersion is mild but
//! not negligible, and it is the mechanism behind frequency-selective nulls
//! that the rate-adaptation experiment (E7) exercises.

use crate::randcn;
use fdb_dsp::fir::FirC;
use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for a random multipath realisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultipathProfile {
    /// Number of taps (1 = flat channel).
    pub taps: usize,
    /// RMS delay spread in units of sample periods.
    pub delay_spread_samples: f64,
    /// Whether the first tap is fixed (LOS) or Rayleigh like the rest.
    pub los_first_tap: bool,
}

impl MultipathProfile {
    /// A flat (single-tap) profile.
    pub fn flat() -> Self {
        MultipathProfile {
            taps: 1,
            delay_spread_samples: 0.0,
            los_first_tap: true,
        }
    }

    /// A typical indoor profile: a handful of taps, short delay spread.
    pub fn indoor(taps: usize, delay_spread_samples: f64) -> Self {
        MultipathProfile {
            taps: taps.max(1),
            delay_spread_samples: delay_spread_samples.max(0.0),
            los_first_tap: true,
        }
    }

    /// Draws one channel realisation as a complex FIR. Tap powers follow an
    /// exponential profile `p_k ∝ exp(−k/τ)` normalised to unit total power,
    /// so multipath redistributes but never adds energy.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> FirC {
        let n = self.taps.max(1);
        if n == 1 {
            return FirC::new(vec![Iq::ONE]);
        }
        let tau = self.delay_spread_samples.max(1e-9);
        let mut powers: Vec<f64> = (0..n).map(|k| (-(k as f64) / tau).exp()).collect();
        let total: f64 = powers.iter().sum();
        for p in powers.iter_mut() {
            *p /= total;
        }
        let taps: Vec<Iq> = powers
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                if k == 0 && self.los_first_tap {
                    Iq::real(p.sqrt())
                } else {
                    randcn(rng, p)
                }
            })
            .collect();
        FirC::new(taps)
    }
}

/// Mean power gain of a channel impulse response.
pub fn channel_power(taps: &[Iq]) -> f64 {
    taps.iter().map(|t| t.norm_sq()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn flat_profile_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let mut ch = MultipathProfile::flat().realize(&mut rng);
        let x = Iq::new(0.3, -0.7);
        assert_eq!(ch.process(x), x);
    }

    #[test]
    fn mean_channel_power_is_unity() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let profile = MultipathProfile::indoor(6, 2.0);
        let n = 20_000;
        let mut p = 0.0;
        for _ in 0..n {
            let ch = profile.realize(&mut rng);
            p += channel_power(ch.taps());
        }
        p /= n as f64;
        assert!((p - 1.0).abs() < 0.02, "mean power {p}");
    }

    #[test]
    fn los_tap_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(22);
        let mut b = ChaCha8Rng::seed_from_u64(23);
        let profile = MultipathProfile::indoor(4, 1.5);
        let ta = profile.realize(&mut a);
        let tb = profile.realize(&mut b);
        // First tap equal across different RNGs (it's the fixed LOS tap)…
        assert_eq!(ta.taps()[0], tb.taps()[0]);
        // …later taps differ.
        assert_ne!(ta.taps()[1], tb.taps()[1]);
    }

    #[test]
    fn exponential_profile_decays() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let profile = MultipathProfile::indoor(8, 1.0);
        // Average tap powers over many realisations.
        let mut avg = vec![0.0; 8];
        let n = 20_000;
        for _ in 0..n {
            let ch = profile.realize(&mut rng);
            for (k, t) in ch.taps().iter().enumerate() {
                avg[k] += t.norm_sq();
            }
        }
        for a in avg.iter_mut() {
            *a /= n as f64;
        }
        for k in 1..7 {
            assert!(
                avg[k] > avg[k + 1],
                "profile not decaying at {k}: {avg:?}"
            );
        }
        // Ratio between adjacent scattered taps ≈ e.
        let ratio = avg[1] / avg[2];
        assert!((ratio - std::f64::consts::E).abs() < 0.3, "ratio {ratio}");
    }
}
