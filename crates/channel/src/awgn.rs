//! Additive white Gaussian noise.
//!
//! Noise is injected at the *receiver* with a power set either directly or
//! from physical temperature/bandwidth/noise-figure parameters. The
//! envelope-detection receivers in this stack are wideband, so the relevant
//! noise power is `kTB·F` over the detector bandwidth.

use crate::randcn;
use fdb_dsp::sample::{dbm_to_watts, watts_to_dbm};
use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Thermal noise power in watts over `bandwidth_hz` at `temp_k` with a
/// receiver noise figure of `nf_db`.
pub fn thermal_noise_watts(bandwidth_hz: f64, temp_k: f64, nf_db: f64) -> f64 {
    BOLTZMANN * temp_k * bandwidth_hz.max(0.0) * fdb_dsp::sample::db_to_lin(nf_db)
}

/// Thermal noise floor in dBm (the familiar −174 dBm/Hz + 10·log₁₀ B + NF).
pub fn noise_floor_dbm(bandwidth_hz: f64, nf_db: f64) -> f64 {
    watts_to_dbm(thermal_noise_watts(bandwidth_hz, 290.0, nf_db))
}

/// A complex AWGN source with fixed total noise power (watts).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Awgn {
    power_w: f64,
}

impl Awgn {
    /// Creates a source with the given total noise power in watts.
    pub fn from_power_watts(power_w: f64) -> Self {
        Awgn {
            power_w: power_w.max(0.0),
        }
    }

    /// Creates a source from a noise floor in dBm.
    pub fn from_dbm(dbm: f64) -> Self {
        Awgn {
            power_w: dbm_to_watts(dbm),
        }
    }

    /// Creates a source from physical parameters at 290 K.
    pub fn thermal(bandwidth_hz: f64, nf_db: f64) -> Self {
        Awgn {
            power_w: thermal_noise_watts(bandwidth_hz, 290.0, nf_db),
        }
    }

    /// A noiseless source (for analytic cross-checks).
    pub fn off() -> Self {
        Awgn { power_w: 0.0 }
    }

    /// Total noise power in watts.
    pub fn power_watts(&self) -> f64 {
        self.power_w
    }

    /// Draws one noise sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Iq {
        if self.power_w == 0.0 {
            Iq::ZERO
        } else {
            randcn(rng, self.power_w)
        }
    }

    /// Adds noise to a signal sample.
    #[inline]
    pub fn corrupt<R: Rng + ?Sized>(&self, x: Iq, rng: &mut R) -> Iq {
        x + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn noise_floor_matches_rule_of_thumb() {
        // −174 dBm/Hz + 10·log10(1 MHz) + 6 dB NF = −108 dBm.
        let nf = noise_floor_dbm(1e6, 6.0);
        assert!((nf + 108.0).abs() < 0.2, "floor {nf}");
    }

    #[test]
    fn sample_power_matches_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let src = Awgn::from_dbm(-90.0);
        let n = 200_000;
        let mut p = 0.0;
        for _ in 0..n {
            p += src.sample(&mut rng).norm_sq();
        }
        p /= n as f64;
        let expect = dbm_to_watts(-90.0);
        assert!((p / expect - 1.0).abs() < 0.02, "{p} vs {expect}");
    }

    #[test]
    fn off_is_exactly_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let src = Awgn::off();
        for _ in 0..10 {
            assert_eq!(src.sample(&mut rng), Iq::ZERO);
        }
        // RNG must not be consumed when off.
        let mut rng2 = ChaCha8Rng::seed_from_u64(12);
        assert_eq!(crate::randn(&mut rng), crate::randn(&mut rng2));
    }

    #[test]
    fn corrupt_preserves_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let src = Awgn::from_power_watts(0.01);
        let sig = Iq::new(3.0, -1.0);
        let n = 100_000;
        let mut acc = Iq::ZERO;
        for _ in 0..n {
            acc += src.corrupt(sig, &mut rng);
        }
        let mean = acc / n as f64;
        assert!((mean.re - 3.0).abs() < 0.01);
        assert!((mean.im + 1.0).abs() < 0.01);
    }

    #[test]
    fn thermal_scales_with_bandwidth() {
        let a = Awgn::thermal(1e6, 0.0).power_watts();
        let b = Awgn::thermal(2e6, 0.0).power_watts();
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
