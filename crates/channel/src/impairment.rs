//! Deterministic scripted channel impairments ("faults").
//!
//! This module is the shared vocabulary of the fault-injection layer: the
//! six fault classes, the per-class activation counters surfaced in
//! metrics, and the per-frame injection engine ([`FrameFaults`]) that the
//! link simulator polls once per sample. Scheduling — which faults land in
//! which frame — lives upstream in `fdb_sim::faults::FaultPlan`; this
//! module only knows sample offsets within one frame.
//!
//! Determinism is the whole point. Every stochastic fault (burst noise)
//! draws from its own [`FaultRng`], a splitmix64 generator owned by the
//! frame's [`FrameFaults`], never from the link's shared frame RNG. Two
//! consequences:
//!
//! * identical `(plan, seed)` inputs reproduce the impairment waveform
//!   bit-for-bit, on any platform;
//! * the main RNG stream (ambient symbols, AWGN, fading) is untouched by
//!   fault activity, so a fault's influence is confined to the samples it
//!   actually corrupts.
//!
//! Scaling a burst's power moves only the amplitude multiplier, not the
//! underlying unit-variance draws, so a power ladder over one seed yields
//! *pointwise proportional* noise realisations — the property the
//! graceful-degradation conformance check relies on.

use fdb_dsp::sample::{db_to_lin, dbm_to_watts};
use fdb_dsp::Iq;
use serde::{Deserialize, Serialize};

/// Which device a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Device A (data transmitter / feedback receiver).
    A,
    /// Device B (data receiver / feedback transmitter).
    B,
    /// Both devices.
    #[default]
    Both,
}

impl FaultTarget {
    /// `true` when the fault applies to device A.
    pub fn hits_a(&self) -> bool {
        matches!(self, FaultTarget::A | FaultTarget::Both)
    }

    /// `true` when the fault applies to device B.
    pub fn hits_b(&self) -> bool {
        matches!(self, FaultTarget::B | FaultTarget::Both)
    }
}

/// One impairment class with its parameters. The window (start/duration)
/// lives on the schedule entry, not here, so one kind can be reused at
/// several offsets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Additive complex Gaussian burst of the given total power at the
    /// target antenna(s), on top of the configured field noise.
    NoiseBurst {
        /// Burst noise power (dBm) at the antenna.
        power_dbm: f64,
        /// Afflicted device(s).
        #[serde(default)]
        target: FaultTarget,
    },
    /// ADC/detector dropout: the target device's envelope samples read
    /// zero for the window.
    Dropout {
        /// Afflicted device(s).
        #[serde(default)]
        target: FaultTarget,
    },
    /// Clock-drift ramp on B's bit-clock oscillator: the consumer-clock
    /// error ramps linearly from 0 to `ppm` over the window, then snaps
    /// back (a thermal transient).
    ClockDrift {
        /// Peak additional clock error, parts per million.
        ppm: f64,
    },
    /// SIC gain misestimation step: while the target device's own antenna
    /// reflects, its cancelled output is scaled by this error (the
    /// canceller divided by the wrong pass fraction).
    SicGain {
        /// Gain error applied to the corrected envelope (dB, power).
        gain_db: f64,
        /// Afflicted device(s).
        #[serde(default)]
        target: FaultTarget,
    },
    /// Ambient-source fade: the source amplitude drops by `depth_db`
    /// (power) for the window. Hits every path — the source is shared.
    AmbientFade {
        /// Fade depth in dB (positive = attenuation).
        depth_db: f64,
    },
    /// Deterministic square-wave interferer received at both devices:
    /// alternates on/off every `period_samples / 2` samples. A chip-rate
    /// period forges data-like transitions — the collision stressor for
    /// the acquisition stage.
    Interferer {
        /// Received interferer power while on (dBm).
        power_dbm: f64,
        /// Full on+off period in samples (≥ 2).
        period_samples: usize,
    },
}

impl FaultKind {
    /// Stable class label, used for trace events and reporting:
    /// `"noise_burst"`, `"dropout"`, `"clock_drift"`, `"sic_gain"`,
    /// `"ambient_fade"` or `"interferer"`.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NoiseBurst { .. } => "noise_burst",
            FaultKind::Dropout { .. } => "dropout",
            FaultKind::ClockDrift { .. } => "clock_drift",
            FaultKind::SicGain { .. } => "sic_gain",
            FaultKind::AmbientFade { .. } => "ambient_fade",
            FaultKind::Interferer { .. } => "interferer",
        }
    }

    /// Validates the parameters, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        let finite = |v: f64, name: &str| -> Result<(), String> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(format!("{}: {name} must be finite (got {v})", self.label()))
            }
        };
        match *self {
            FaultKind::NoiseBurst { power_dbm, .. } => {
                finite(power_dbm, "power_dbm")?;
                if power_dbm > 60.0 {
                    return Err(format!("noise_burst: power_dbm {power_dbm} exceeds 60 dBm"));
                }
            }
            FaultKind::Dropout { .. } => {}
            FaultKind::ClockDrift { ppm } => {
                finite(ppm, "ppm")?;
                if ppm.abs() > 100_000.0 {
                    return Err(format!("clock_drift: |ppm| {ppm} exceeds 100000"));
                }
            }
            FaultKind::SicGain { gain_db, .. } => {
                finite(gain_db, "gain_db")?;
                if gain_db.abs() > 40.0 {
                    return Err(format!("sic_gain: |gain_db| {gain_db} exceeds 40 dB"));
                }
            }
            FaultKind::AmbientFade { depth_db } => {
                finite(depth_db, "depth_db")?;
                if depth_db < 0.0 {
                    return Err(format!("ambient_fade: depth_db {depth_db} must be ≥ 0"));
                }
            }
            FaultKind::Interferer {
                power_dbm,
                period_samples,
            } => {
                finite(power_dbm, "power_dbm")?;
                if power_dbm > 60.0 {
                    return Err(format!("interferer: power_dbm {power_dbm} exceeds 60 dBm"));
                }
                if period_samples < 2 {
                    return Err(format!(
                        "interferer: period_samples {period_samples} must be ≥ 2"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Per-class fault activation counters. One activation = one scheduled
/// fault whose window was actually entered during a frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultActivations {
    /// Noise bursts activated.
    #[serde(default)]
    pub noise_burst: u64,
    /// Dropouts activated.
    #[serde(default)]
    pub dropout: u64,
    /// Clock-drift ramps activated.
    #[serde(default)]
    pub clock_drift: u64,
    /// SIC gain steps activated.
    #[serde(default)]
    pub sic_gain: u64,
    /// Ambient fades activated.
    #[serde(default)]
    pub ambient_fade: u64,
    /// Interferer bursts activated.
    #[serde(default)]
    pub interferer: u64,
}

impl FaultActivations {
    /// Total activations across every class.
    pub fn total(&self) -> u64 {
        self.noise_burst
            + self.dropout
            + self.clock_drift
            + self.sic_gain
            + self.ambient_fade
            + self.interferer
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &FaultActivations) {
        self.noise_burst += other.noise_burst;
        self.dropout += other.dropout;
        self.clock_drift += other.clock_drift;
        self.sic_gain += other.sic_gain;
        self.ambient_fade += other.ambient_fade;
        self.interferer += other.interferer;
    }

    fn bump(&mut self, kind: &FaultKind) {
        match kind {
            FaultKind::NoiseBurst { .. } => self.noise_burst += 1,
            FaultKind::Dropout { .. } => self.dropout += 1,
            FaultKind::ClockDrift { .. } => self.clock_drift += 1,
            FaultKind::SicGain { .. } => self.sic_gain += 1,
            FaultKind::AmbientFade { .. } => self.ambient_fade += 1,
            FaultKind::Interferer { .. } => self.interferer += 1,
        }
    }
}

/// One fault scheduled inside a single frame, in link-clock samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// First afflicted sample.
    pub start: usize,
    /// Window length in samples (≥ 1).
    pub duration: usize,
    /// What happens during the window.
    pub kind: FaultKind,
}

impl ScheduledFault {
    /// `true` while `t` lies inside the fault window.
    pub fn active_at(&self, t: usize) -> bool {
        t >= self.start && t - self.start < self.duration
    }
}

/// The aggregate impairment the link applies at one sample. Neutral values
/// (unity scales, zero additions, no drops) mean "no fault here".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEffects {
    /// Multiplier on the ambient source amplitude.
    pub source_scale: f64,
    /// Additive field at device A's antenna (interferer + burst noise).
    pub field_a: Iq,
    /// Additive field at device B's antenna.
    pub field_b: Iq,
    /// Zero device A's detector output this sample.
    pub drop_a: bool,
    /// Zero device B's detector output this sample.
    pub drop_b: bool,
    /// Multiplier on A's SIC-corrected envelope while A reflects.
    pub sic_gain_a: f64,
    /// Multiplier on B's SIC-corrected envelope while B reflects.
    pub sic_gain_b: f64,
    /// Additional consumer-clock error on B's bit clock (ppm).
    pub ppm_offset: f64,
}

impl FaultEffects {
    /// The do-nothing effect.
    pub const NEUTRAL: FaultEffects = FaultEffects {
        source_scale: 1.0,
        field_a: Iq::ZERO,
        field_b: Iq::ZERO,
        drop_a: false,
        drop_b: false,
        sic_gain_a: 1.0,
        sic_gain_b: 1.0,
        ppm_offset: 0.0,
    };

    /// `true` when the effect changes nothing.
    pub fn is_neutral(&self) -> bool {
        *self == FaultEffects::NEUTRAL
    }
}

impl Default for FaultEffects {
    fn default() -> Self {
        FaultEffects::NEUTRAL
    }
}

/// Self-contained deterministic RNG for fault noise (splitmix64 +
/// Box–Muller). Independent from the link's `rand`-based stream on
/// purpose: fault noise must neither perturb nor be perturbed by the rest
/// of the simulation.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One pair of independent standard-normal draws (both Box–Muller
    /// outputs are used; fault windows burn through many draws).
    pub fn next_gaussian_pair(&mut self) -> (f64, f64) {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let th = 2.0 * std::f64::consts::PI * u2;
        (r * th.cos(), r * th.sin())
    }

    /// Circularly-symmetric complex Gaussian with total variance `var`.
    pub fn next_complex_gaussian(&mut self, var: f64) -> Iq {
        let s = (var.max(0.0) / 2.0).sqrt();
        let (g1, g2) = self.next_gaussian_pair();
        Iq::new(s * g1, s * g2)
    }
}

/// The per-frame fault injection engine.
///
/// Built once per frame (by `fdb_sim::faults::FaultPlan::frame_faults`),
/// polled once per sample by the link loop via
/// [`effects_at`](FrameFaults::effects_at). Tracks per-fault activation
/// edges for the [`FaultActivations`] tally and the trace-event stream.
#[derive(Debug, Clone)]
pub struct FrameFaults {
    faults: Vec<ScheduledFault>,
    active: Vec<bool>,
    rng: FaultRng,
    activations: FaultActivations,
    /// (class label, became-active) edges since the last drain; at most
    /// two entries per scheduled fault, so this stays tiny even when
    /// nothing drains it.
    transitions: Vec<(&'static str, bool)>,
}

impl FrameFaults {
    /// Builds the engine for one frame from its schedule and a seed for
    /// the fault-local RNG.
    pub fn new(faults: Vec<ScheduledFault>, seed: u64) -> Self {
        let n = faults.len();
        FrameFaults {
            faults,
            active: vec![false; n],
            rng: FaultRng::new(seed),
            activations: FaultActivations::default(),
            transitions: Vec::new(),
        }
    }

    /// Re-arms an existing engine in place for a new frame, retaining the
    /// schedule/activation buffer capacity (the per-frame reuse path: a
    /// runner keeps one engine per worker instead of building one per
    /// faulted frame). Behaviourally identical to `FrameFaults::new` with
    /// the same schedule and seed.
    pub fn rearm<I>(&mut self, schedule: I, seed: u64)
    where
        I: IntoIterator<Item = ScheduledFault>,
    {
        self.faults.clear();
        self.faults.extend(schedule);
        self.active.clear();
        self.active.resize(self.faults.len(), false);
        self.rng = FaultRng::new(seed);
        self.activations = FaultActivations::default();
        self.transitions.clear();
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn schedule(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Activation tally so far.
    pub fn activations(&self) -> FaultActivations {
        self.activations
    }

    /// Drains the (label, became-active) edges recorded since the last
    /// call — the link's trace layer turns these into events. Keeps the
    /// buffer's capacity (unlike a `mem::take`), so steady-state draining
    /// never reallocates.
    pub fn drain_transitions(&mut self) -> std::vec::Drain<'_, (&'static str, bool)> {
        self.transitions.drain(..)
    }

    /// `true` when any scheduled fault window covers sample `t`. Pure
    /// schedule lookup — consumes no RNG and records no edges, so a block
    /// pipeline may probe ahead without perturbing the deterministic
    /// contract of [`effects_at`](FrameFaults::effects_at).
    pub fn any_active_at(&self, t: usize) -> bool {
        self.faults.iter().any(|f| f.active_at(t))
    }

    /// The next sample strictly after `t` at which any fault window opens
    /// or closes (`None` once every window lies in the past). Between two
    /// consecutive boundaries the set of active faults is constant, which
    /// is what lets a block pipeline treat fault edges as block splits.
    pub fn next_boundary_after(&self, t: usize) -> Option<usize> {
        let mut next: Option<usize> = None;
        for f in &self.faults {
            let end = f.start.saturating_add(f.duration);
            for b in [f.start, end] {
                if b > t {
                    next = Some(next.map_or(b, |n| n.min(b)));
                }
            }
        }
        next
    }

    /// Computes the aggregate impairment for sample `t`. Must be called
    /// with non-decreasing `t` within a frame (the RNG consumption order
    /// is part of the deterministic contract).
    pub fn effects_at(&mut self, t: usize) -> FaultEffects {
        let mut fx = FaultEffects::NEUTRAL;
        for i in 0..self.faults.len() {
            let f = self.faults[i];
            let active = f.active_at(t);
            if active != self.active[i] {
                self.active[i] = active;
                self.transitions.push((f.kind.label(), active));
                if active {
                    self.activations.bump(&f.kind);
                }
            }
            if !active {
                continue;
            }
            match f.kind {
                FaultKind::NoiseBurst { power_dbm, target } => {
                    // Unit draws scaled by amplitude: a power ladder over
                    // one seed reuses the same noise shape, only louder.
                    let var = dbm_to_watts(power_dbm);
                    if target.hits_a() {
                        fx.field_a += self.rng.next_complex_gaussian(var);
                    }
                    if target.hits_b() {
                        fx.field_b += self.rng.next_complex_gaussian(var);
                    }
                }
                FaultKind::Dropout { target } => {
                    fx.drop_a |= target.hits_a();
                    fx.drop_b |= target.hits_b();
                }
                FaultKind::ClockDrift { ppm } => {
                    let frac = (t - f.start) as f64 / f.duration.max(1) as f64;
                    fx.ppm_offset += ppm * frac;
                }
                FaultKind::SicGain { gain_db, target } => {
                    let g = db_to_lin(gain_db);
                    if target.hits_a() {
                        fx.sic_gain_a *= g;
                    }
                    if target.hits_b() {
                        fx.sic_gain_b *= g;
                    }
                }
                FaultKind::AmbientFade { depth_db } => {
                    // Amplitude scale for a power fade of depth_db.
                    fx.source_scale *= db_to_lin(-depth_db).sqrt();
                }
                FaultKind::Interferer {
                    power_dbm,
                    period_samples,
                } => {
                    let half = (period_samples / 2).max(1);
                    if ((t - f.start) / half).is_multiple_of(2) {
                        let amp = dbm_to_watts(power_dbm).sqrt();
                        let add = Iq::new(amp, 0.0);
                        fx.field_a += add;
                        fx.field_b += add;
                    }
                }
            }
        }
        fx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_outside_windows() {
        let mut ff = FrameFaults::new(
            vec![ScheduledFault {
                start: 10,
                duration: 5,
                kind: FaultKind::Dropout {
                    target: FaultTarget::B,
                },
            }],
            1,
        );
        assert!(ff.effects_at(9).is_neutral());
        let fx = ff.effects_at(10);
        assert!(fx.drop_b && !fx.drop_a);
        assert!(ff.effects_at(15).is_neutral());
        assert_eq!(ff.activations().dropout, 1);
        assert_eq!(ff.activations().total(), 1);
    }

    #[test]
    fn boundary_probes_match_window_edges() {
        let ff = FrameFaults::new(
            vec![
                ScheduledFault {
                    start: 10,
                    duration: 5,
                    kind: FaultKind::AmbientFade { depth_db: 3.0 },
                },
                ScheduledFault {
                    start: 12,
                    duration: 10,
                    kind: FaultKind::ClockDrift { ppm: 100.0 },
                },
            ],
            1,
        );
        assert_eq!(ff.next_boundary_after(0), Some(10));
        assert_eq!(ff.next_boundary_after(10), Some(12));
        assert_eq!(ff.next_boundary_after(12), Some(15));
        assert_eq!(ff.next_boundary_after(15), Some(22));
        assert_eq!(ff.next_boundary_after(22), None);
        assert!(!ff.any_active_at(9));
        assert!(ff.any_active_at(10) && ff.any_active_at(14));
        assert!(ff.any_active_at(21));
        assert!(!ff.any_active_at(22));
        // Between consecutive boundaries the active set is constant.
        for t in 15..22 {
            assert!(ff.any_active_at(t));
        }
    }

    #[test]
    fn transitions_record_edges_once() {
        let mut ff = FrameFaults::new(
            vec![ScheduledFault {
                start: 2,
                duration: 3,
                kind: FaultKind::AmbientFade { depth_db: 10.0 },
            }],
            7,
        );
        for t in 0..8 {
            ff.effects_at(t);
        }
        let edges: Vec<_> = ff.drain_transitions().collect();
        assert_eq!(edges, vec![("ambient_fade", true), ("ambient_fade", false)]);
        assert_eq!(ff.drain_transitions().count(), 0, "drained");
        // A re-armed engine replays the same edges from a clean slate.
        ff.rearm(
            std::iter::once(ScheduledFault {
                start: 2,
                duration: 3,
                kind: FaultKind::AmbientFade { depth_db: 10.0 },
            }),
            7,
        );
        for t in 0..8 {
            ff.effects_at(t);
        }
        let replay: Vec<_> = ff.drain_transitions().collect();
        assert_eq!(replay, edges);
    }

    #[test]
    fn noise_burst_scales_pointwise_with_power() {
        // Same seed + window, +10 dB power: each sample's draw scales by
        // exactly sqrt(10) — the graceful-degradation monotonicity anchor.
        let mk = |dbm: f64| {
            FrameFaults::new(
                vec![ScheduledFault {
                    start: 0,
                    duration: 16,
                    kind: FaultKind::NoiseBurst {
                        power_dbm: dbm,
                        target: FaultTarget::B,
                    },
                }],
                99,
            )
        };
        let (mut lo, mut hi) = (mk(-90.0), mk(-80.0));
        let k = 10f64.sqrt();
        for t in 0..16 {
            let a = lo.effects_at(t).field_b;
            let b = hi.effects_at(t).field_b;
            assert!((b.re - k * a.re).abs() < 1e-12 * k.max(1.0));
            assert!((b.im - k * a.im).abs() < 1e-12 * k.max(1.0));
        }
    }

    #[test]
    fn clock_drift_ramps_linearly() {
        let mut ff = FrameFaults::new(
            vec![ScheduledFault {
                start: 100,
                duration: 100,
                kind: FaultKind::ClockDrift { ppm: 500.0 },
            }],
            3,
        );
        assert_eq!(ff.effects_at(99).ppm_offset, 0.0);
        assert_eq!(ff.effects_at(100).ppm_offset, 0.0);
        assert!((ff.effects_at(150).ppm_offset - 250.0).abs() < 1e-9);
        assert!((ff.effects_at(199).ppm_offset - 495.0).abs() < 1e-9);
        assert_eq!(ff.effects_at(200).ppm_offset, 0.0);
    }

    #[test]
    fn interferer_square_wave_alternates() {
        let mut ff = FrameFaults::new(
            vec![ScheduledFault {
                start: 0,
                duration: 40,
                kind: FaultKind::Interferer {
                    power_dbm: -60.0,
                    period_samples: 20,
                },
            }],
            3,
        );
        let on = ff.effects_at(0).field_a;
        assert!(on.re > 0.0);
        assert_eq!(ff.effects_at(5).field_a, on);
        assert_eq!(ff.effects_at(10).field_a, Iq::ZERO); // off half
        assert_eq!(ff.effects_at(20).field_a, on); // next period
    }

    #[test]
    fn fault_rng_is_deterministic_and_dispersed() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let unique: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(unique.len(), 32);
        // Gaussian draws are roughly standard.
        let mut rng = FaultRng::new(5);
        let n = 20_000;
        let (mut mean, mut var) = (0.0, 0.0);
        for _ in 0..n {
            let (g1, g2) = rng.next_gaussian_pair();
            mean += g1 + g2;
            var += g1 * g1 + g2 * g2;
        }
        mean /= (2 * n) as f64;
        var = var / (2 * n) as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kinds_validate_and_round_trip() {
        let kinds = [
            FaultKind::NoiseBurst {
                power_dbm: -70.0,
                target: FaultTarget::Both,
            },
            FaultKind::Dropout {
                target: FaultTarget::A,
            },
            FaultKind::ClockDrift { ppm: -800.0 },
            FaultKind::SicGain {
                gain_db: 3.0,
                target: FaultTarget::B,
            },
            FaultKind::AmbientFade { depth_db: 12.0 },
            FaultKind::Interferer {
                power_dbm: -65.0,
                period_samples: 20,
            },
        ];
        for kind in &kinds {
            kind.validate().unwrap();
            let json = serde_json::to_string(kind).unwrap();
            let back: FaultKind = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, kind, "{json}");
        }
        assert!(FaultKind::NoiseBurst {
            power_dbm: f64::NAN,
            target: FaultTarget::Both
        }
        .validate()
        .is_err());
        assert!(FaultKind::Interferer {
            power_dbm: -60.0,
            period_samples: 1
        }
        .validate()
        .is_err());
        assert!(FaultKind::AmbientFade { depth_db: -1.0 }.validate().is_err());
        assert!(FaultKind::ClockDrift { ppm: 1e9 }.validate().is_err());
    }

    #[test]
    fn activations_merge_sums() {
        let mut a = FaultActivations {
            noise_burst: 1,
            interferer: 2,
            ..Default::default()
        };
        let b = FaultActivations {
            noise_burst: 3,
            clock_drift: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.noise_burst, 4);
        assert_eq!(a.clock_drift, 1);
        assert_eq!(a.total(), 7);
        let json = serde_json::to_string(&a).unwrap();
        let back: FaultActivations = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        // Older JSON without the struct parses to zeroes.
        let empty: FaultActivations = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, FaultActivations::default());
    }
}
