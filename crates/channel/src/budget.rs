//! Link-budget arithmetic for backscatter systems.
//!
//! A backscatter link differs from a conventional one in that the "transmit
//! power" at the tag is itself received power: the end-to-end budget is
//! `P_rx = P_src · G(src→tag) · ρ · G(tag→rx)` — the product of two path
//! gains and the reflection efficiency. These helpers keep that arithmetic
//! in one audited place and are cross-checked against the sample-level
//! simulation in the integration tests.

use crate::awgn;
use crate::pathloss::PathLoss;
use fdb_dsp::sample::{dbm_to_watts, lin_to_db};
use serde::{Deserialize, Serialize};

/// Budget for a direct (one-hop) link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DirectBudget {
    /// Transmit power in dBm.
    pub tx_dbm: f64,
    /// Path loss model.
    pub pathloss: PathLoss,
    /// Distance in metres.
    pub distance_m: f64,
}

impl DirectBudget {
    /// Received power in dBm.
    pub fn rx_dbm(&self) -> f64 {
        self.tx_dbm - self.pathloss.loss_db(self.distance_m)
    }

    /// Received power in watts.
    pub fn rx_watts(&self) -> f64 {
        dbm_to_watts(self.rx_dbm())
    }

    /// SNR in dB against a noise floor over `bandwidth_hz` with `nf_db`.
    pub fn snr_db(&self, bandwidth_hz: f64, nf_db: f64) -> f64 {
        self.rx_dbm() - awgn::noise_floor_dbm(bandwidth_hz, nf_db)
    }
}

/// Budget for a backscatter path: ambient source → tag → receiver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BackscatterBudget {
    /// Ambient source transmit power in dBm.
    pub src_dbm: f64,
    /// Source→tag path loss model and distance.
    pub src_tag: (PathLoss, f64),
    /// Tag→receiver path loss model and distance.
    pub tag_rx: (PathLoss, f64),
    /// Power reflection coefficient at the tag, `ρ ∈ [0, 1]`.
    pub rho: f64,
}

impl BackscatterBudget {
    /// Power incident on the tag, dBm.
    pub fn incident_dbm(&self) -> f64 {
        self.src_dbm - self.src_tag.0.loss_db(self.src_tag.1)
    }

    /// Backscattered power arriving at the receiver, dBm.
    pub fn rx_dbm(&self) -> f64 {
        self.incident_dbm() + lin_to_db(self.rho.clamp(1e-12, 1.0))
            - self.tag_rx.0.loss_db(self.tag_rx.1)
    }

    /// Power available to the harvester at the tag (the non-reflected
    /// fraction, before conversion efficiency), watts.
    pub fn harvest_input_watts(&self) -> f64 {
        dbm_to_watts(self.incident_dbm()) * (1.0 - self.rho.clamp(0.0, 1.0))
    }

    /// The modulation-depth power swing seen at the receiver relative to
    /// the direct ambient level it rides on: `ΔP/P ≈ 2·√(P_bs/P_direct)`
    /// for small backscatter (coherent addition of fields).
    pub fn relative_swing(&self, direct_rx_dbm: f64) -> f64 {
        let p_bs = dbm_to_watts(self.rx_dbm());
        let p_direct = dbm_to_watts(direct_rx_dbm);
        if p_direct <= 0.0 {
            return 0.0;
        }
        2.0 * (p_bs / p_direct).sqrt()
    }
}

/// Effective SNR of an envelope-detected backscatter signal riding on a
/// direct carrier: the useful *difference* power between antenna states is
/// `(2·√(P_direct·P_bs))²/…` — to first order the detection SNR is
/// `4·P_direct·P_bs / (P_direct·N₀-ish)`; we expose the exact swing-based
/// form used by the analysis crate.
pub fn envelope_detection_snr_db(direct_w: f64, backscatter_w: f64, noise_w: f64) -> f64 {
    if noise_w <= 0.0 {
        return f64::INFINITY;
    }
    // Envelope power difference between reflect/absorb states, for a
    // coherent field sum averaged over phase: ΔP ≈ 2√(P_d·P_b).
    let delta = 2.0 * (direct_w * backscatter_w).sqrt();
    lin_to_db(delta / noise_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_budget_matches_hand_calc() {
        let b = DirectBudget {
            tx_dbm: 30.0, // 1 W
            pathloss: PathLoss::FreeSpace { freq_hz: 1e9 },
            distance_m: 1000.0,
        };
        // 30 − 92.45 ≈ −62.45 dBm.
        assert!((b.rx_dbm() + 62.45).abs() < 0.1);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let mk = |d| DirectBudget {
            tx_dbm: 20.0,
            pathloss: PathLoss::indoor(),
            distance_m: d,
        };
        assert!(mk(1.0).snr_db(1e6, 6.0) > mk(10.0).snr_db(1e6, 6.0));
    }

    #[test]
    fn backscatter_budget_product_structure() {
        let b = BackscatterBudget {
            src_dbm: 30.0,
            src_tag: (PathLoss::tv_band(), 1000.0),
            tag_rx: (PathLoss::indoor(), 2.0),
            rho: 0.5,
        };
        let manual = 30.0 - PathLoss::tv_band().loss_db(1000.0) + lin_to_db(0.5)
            - PathLoss::indoor().loss_db(2.0);
        assert!((b.rx_dbm() - manual).abs() < 1e-9);
    }

    #[test]
    fn harvest_and_reflection_partition_power() {
        let b = BackscatterBudget {
            src_dbm: 0.0,
            src_tag: (PathLoss::indoor(), 3.0),
            tag_rx: (PathLoss::indoor(), 3.0),
            rho: 0.3,
        };
        let incident = dbm_to_watts(b.incident_dbm());
        let harvested = b.harvest_input_watts();
        assert!((harvested - incident * 0.7).abs() < 1e-18);
    }

    #[test]
    fn rho_zero_kills_backscatter_not_harvest() {
        let mk = |rho| BackscatterBudget {
            src_dbm: 10.0,
            src_tag: (PathLoss::indoor(), 2.0),
            tag_rx: (PathLoss::indoor(), 2.0),
            rho,
        };
        assert!(mk(1e-12).rx_dbm() < mk(0.9).rx_dbm() - 100.0);
        assert!(mk(0.0).harvest_input_watts() > mk(0.9).harvest_input_watts());
    }

    #[test]
    fn envelope_snr_monotone_in_both_powers() {
        let s = envelope_detection_snr_db(1e-6, 1e-9, 1e-12);
        assert!(envelope_detection_snr_db(2e-6, 1e-9, 1e-12) > s);
        assert!(envelope_detection_snr_db(1e-6, 2e-9, 1e-12) > s);
        assert!(envelope_detection_snr_db(1e-6, 1e-9, 2e-12) < s);
        assert!(envelope_detection_snr_db(1e-6, 1e-9, 0.0).is_infinite());
    }

    #[test]
    fn relative_swing_small_signal() {
        let b = BackscatterBudget {
            src_dbm: 30.0,
            src_tag: (PathLoss::tv_band(), 1000.0),
            tag_rx: (PathLoss::indoor(), 2.0),
            rho: 0.5,
        };
        let direct = DirectBudget {
            tx_dbm: 30.0,
            pathloss: PathLoss::tv_band(),
            distance_m: 1000.0,
        };
        let swing = b.relative_swing(direct.rx_dbm());
        assert!(swing > 0.0 && swing < 1.0, "swing {swing}");
    }
}
