//! Large-scale path loss models.
//!
//! Three models cover the scenarios the evaluation sweeps:
//!
//! * **Free space** — the TV-tower-to-device link (kilometres, line of
//!   sight).
//! * **Log-distance** — the device-to-device backscatter links (metres,
//!   indoor clutter, exponent 2–4).
//! * **Two-ray ground reflection** — the long-range outdoor regime where
//!   the d⁴ rolloff matters.
//!
//! All models return **power gain** (≤ 1, linear); amplitude scaling is
//! `gain.sqrt()`.

use serde::{Deserialize, Serialize};

/// Speed of light in m/s.
pub const C: f64 = 299_792_458.0;

/// A large-scale path loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// Friis free-space: `G = (λ / 4πd)²`.
    FreeSpace {
        /// Carrier frequency in Hz.
        freq_hz: f64,
    },
    /// Log-distance: free-space up to `ref_dist_m`, then
    /// `G(d) = G(ref) · (ref/d)^exponent`.
    LogDistance {
        /// Carrier frequency in Hz (sets the reference gain).
        freq_hz: f64,
        /// Path loss exponent (2 = free space, 2.5–4 = indoor/cluttered).
        exponent: f64,
        /// Reference distance in metres (typically 1 m).
        ref_dist_m: f64,
    },
    /// Two-ray ground reflection: free-space below the crossover distance
    /// `d_c = 4π h_t h_r / λ`, then `G = (h_t·h_r)² / d⁴`.
    TwoRay {
        /// Carrier frequency in Hz.
        freq_hz: f64,
        /// Transmit antenna height in metres.
        h_tx_m: f64,
        /// Receive antenna height in metres.
        h_rx_m: f64,
    },
}

impl PathLoss {
    /// UHF TV broadcast default (539 MHz, ATSC channel 26) — the ambient
    /// source regime of the original prototype measurements.
    pub fn tv_band() -> Self {
        PathLoss::FreeSpace { freq_hz: 539e6 }
    }

    /// Indoor device-to-device default at the TV band.
    pub fn indoor() -> Self {
        PathLoss::LogDistance {
            freq_hz: 539e6,
            exponent: 2.7,
            ref_dist_m: 1.0,
        }
    }

    /// Power gain (linear, ≤ 1 for `d` ≥ the model's near-field floor).
    ///
    /// Distances below 0.1 m are clamped: the far-field models diverge at
    /// d → 0 and nothing in the evaluation operates closer than that.
    pub fn gain(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        match *self {
            PathLoss::FreeSpace { freq_hz } => friis(freq_hz, d),
            PathLoss::LogDistance {
                freq_hz,
                exponent,
                ref_dist_m,
            } => {
                let d0 = ref_dist_m.max(0.1);
                if d <= d0 {
                    friis(freq_hz, d)
                } else {
                    friis(freq_hz, d0) * (d0 / d).powf(exponent)
                }
            }
            PathLoss::TwoRay {
                freq_hz,
                h_tx_m,
                h_rx_m,
            } => {
                let lambda = C / freq_hz;
                let crossover = 4.0 * std::f64::consts::PI * h_tx_m * h_rx_m / lambda;
                if d < crossover {
                    friis(freq_hz, d)
                } else {
                    // Continuity-preserving two-ray: matches Friis at the
                    // crossover, rolls off as d⁻⁴ beyond it.
                    friis(freq_hz, crossover) * (crossover / d).powi(4)
                }
            }
        }
    }

    /// Path loss in dB (positive number).
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        -fdb_dsp::sample::lin_to_db(self.gain(distance_m))
    }

    /// Amplitude gain (`√power-gain`).
    pub fn amplitude_gain(&self, distance_m: f64) -> f64 {
        self.gain(distance_m).sqrt()
    }
}

fn friis(freq_hz: f64, d: f64) -> f64 {
    let lambda = C / freq_hz.max(1.0);
    let x = lambda / (4.0 * std::f64::consts::PI * d);
    (x * x).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_known_value() {
        // FSPL at 1 GHz, 1 km ≈ 92.45 dB.
        let m = PathLoss::FreeSpace { freq_hz: 1e9 };
        assert!((m.loss_db(1000.0) - 92.45).abs() < 0.1);
    }

    #[test]
    fn free_space_inverse_square() {
        let m = PathLoss::tv_band();
        let g1 = m.gain(100.0);
        let g2 = m.gain(200.0);
        assert!((g1 / g2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_exponent() {
        let m = PathLoss::LogDistance {
            freq_hz: 539e6,
            exponent: 3.0,
            ref_dist_m: 1.0,
        };
        let g1 = m.gain(2.0);
        let g2 = m.gain(4.0);
        assert!((g1 / g2 - 8.0).abs() < 1e-9); // 2³
    }

    #[test]
    fn log_distance_continuous_at_reference() {
        let m = PathLoss::indoor();
        let inside = m.gain(0.999);
        let outside = m.gain(1.001);
        assert!((inside / outside - 1.0).abs() < 0.02);
    }

    #[test]
    fn two_ray_crossover_continuity_and_rolloff() {
        let m = PathLoss::TwoRay {
            freq_hz: 539e6,
            h_tx_m: 10.0,
            h_rx_m: 1.0,
        };
        let lambda = C / 539e6;
        let dc = 4.0 * std::f64::consts::PI * 10.0 * 1.0 / lambda;
        let below = m.gain(dc * 0.99);
        let above = m.gain(dc * 1.01);
        assert!((below / above - 1.0).abs() < 0.1);
        // d⁻⁴ beyond crossover.
        let g1 = m.gain(dc * 2.0);
        let g2 = m.gain(dc * 4.0);
        assert!((g1 / g2 - 16.0).abs() < 1e-6);
    }

    #[test]
    fn gain_never_exceeds_unity() {
        for model in [
            PathLoss::tv_band(),
            PathLoss::indoor(),
            PathLoss::TwoRay {
                freq_hz: 539e6,
                h_tx_m: 5.0,
                h_rx_m: 1.0,
            },
        ] {
            for &d in &[0.0, 0.05, 0.5, 1.0, 10.0, 1e4] {
                let g = model.gain(d);
                assert!(g <= 1.0 && g > 0.0, "{model:?} at {d}: {g}");
            }
        }
    }

    #[test]
    fn amplitude_is_sqrt_of_power() {
        let m = PathLoss::indoor();
        let g = m.gain(7.0);
        assert!((m.amplitude_gain(7.0) - g.sqrt()).abs() < 1e-15);
    }
}
