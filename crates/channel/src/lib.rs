//! # fdb-channel — wireless channel substrate
//!
//! Models every impairment between an RF emitter and a receiving antenna in
//! the fd-backscatter stack: deterministic path loss, stochastic small-scale
//! fading, thermal noise, multipath dispersion and composed end-to-end
//! links, plus the link-budget arithmetic used to calibrate scenarios.
//!
//! Design notes:
//!
//! * All randomness flows through caller-supplied [`rand::RngCore`]
//!   implementations, so every experiment is reproducible from a seed.
//! * Channels are **block-fading**: a complex coefficient is held constant
//!   for a configurable number of samples and then redrawn (with optional
//!   AR(1) temporal correlation), which matches the paper-domain assumption
//!   that fading is static over a symbol.
//! * Backscatter link structure (reader → tag → reader products of two
//!   channels) is composed in `fdb-core`; this crate provides the
//!   single-hop primitives.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod awgn;
pub mod budget;
pub mod fading;
pub mod impairment;
pub mod link;
pub mod multipath;
pub mod pathloss;

pub use awgn::Awgn;
pub use fading::{BlockFader, Fading};
pub use impairment::{FaultActivations, FaultEffects, FaultKind, FaultTarget, FrameFaults};
pub use link::Hop;
pub use pathloss::PathLoss;

use fdb_dsp::Iq;
use rand::Rng;

/// Draws one standard normal sample (Box–Muller transform).
///
/// Centralised here so every crate draws Gaussians identically; the second
/// Box–Muller output is intentionally discarded to keep the consumer's RNG
/// stream position independent of call history.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a circularly-symmetric complex Gaussian with total variance
/// `var` (i.e. `var/2` per component).
pub fn randcn<R: Rng + ?Sized>(rng: &mut R, var: f64) -> Iq {
    let s = (var.max(0.0) / 2.0).sqrt();
    Iq::new(s * randn(rng), s * randn(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let n = 200_000;
        let mut mean = 0.0;
        let mut var = 0.0;
        for _ in 0..n {
            let x = randn(&mut rng);
            mean += x;
            var += x * x;
        }
        mean /= n as f64;
        var = var / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn randcn_variance_split() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let n = 100_000;
        let mut pow = 0.0;
        for _ in 0..n {
            pow += randcn(&mut rng, 4.0).norm_sq();
        }
        pow /= n as f64;
        assert!((pow - 4.0).abs() < 0.1, "power {pow}");
    }
}
