//! A single directional RF hop: path loss × block fading.
//!
//! `fdb-core` composes hops into backscatter paths (source → tag, tag →
//! reader, …). Each hop exposes its current complex coefficient so that the
//! sample-synchronous link loop can combine multiple propagation paths
//! coherently — the defining interference structure of backscatter.

use crate::fading::{BlockFader, Fading};
use crate::pathloss::PathLoss;
use fdb_dsp::Iq;
use rand::Rng;

/// One directional propagation path with large- and small-scale effects.
#[derive(Debug, Clone)]
pub struct Hop {
    amplitude: f64,
    fader: BlockFader,
    /// Static phase rotation of the path (electrical length), applied on
    /// top of fading. Backscatter self-interference cancellation quality
    /// depends on such phase offsets, so they are first-class here.
    phase: f64,
}

impl Hop {
    /// Creates a hop over `distance_m` with the given path loss and fading
    /// models. The initial fading state is drawn from `rng`.
    pub fn new<R: Rng + ?Sized>(
        pathloss: PathLoss,
        distance_m: f64,
        fading: Fading,
        rng: &mut R,
    ) -> Self {
        Hop {
            amplitude: pathloss.amplitude_gain(distance_m),
            fader: BlockFader::new(fading, rng),
            phase: 0.0,
        }
    }

    /// An ideal unity hop (tests, loopback).
    pub fn ideal<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Hop::new(
            PathLoss::LogDistance {
                freq_hz: 539e6,
                exponent: 2.0,
                ref_dist_m: 1.0,
            },
            0.0,
            Fading::Static,
            rng,
        )
        .with_amplitude(1.0)
    }

    /// Overrides the amplitude gain directly (calibration, tests).
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude.max(0.0);
        self
    }

    /// Adds a static phase rotation (radians).
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Current complex channel coefficient.
    pub fn coeff(&self) -> Iq {
        self.fader.coeff() * Iq::phasor(self.phase) * self.amplitude
    }

    /// Amplitude gain from path loss alone.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Power gain including the current fading state.
    pub fn power_gain(&self) -> f64 {
        self.coeff().norm_sq()
    }

    /// Advances the fading process by one block.
    pub fn advance_block<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Iq {
        self.fader.advance(rng);
        self.coeff()
    }

    /// Applies the hop to one sample.
    #[inline]
    pub fn apply(&self, x: Iq) -> Iq {
        x * self.coeff()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_hop_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let h = Hop::ideal(&mut rng);
        let x = Iq::new(1.0, 2.0);
        assert_eq!(h.apply(x), x);
    }

    #[test]
    fn static_hop_power_matches_pathloss() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let pl = PathLoss::indoor();
        let h = Hop::new(pl, 5.0, Fading::Static, &mut rng);
        assert!((h.power_gain() - pl.gain(5.0)).abs() < 1e-15);
    }

    #[test]
    fn phase_rotates_coefficient() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let h = Hop::ideal(&mut rng).with_phase(std::f64::consts::FRAC_PI_2);
        let y = h.apply(Iq::ONE);
        assert!(y.re.abs() < 1e-12);
        assert!((y.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_hop_mean_power_matches_pathloss() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let pl = PathLoss::indoor();
        let mut h = Hop::new(pl, 3.0, Fading::rayleigh(0.0), &mut rng);
        let n = 100_000;
        let mut p = 0.0;
        for _ in 0..n {
            h.advance_block(&mut rng);
            p += h.power_gain();
        }
        p /= n as f64;
        assert!((p / pl.gain(3.0) - 1.0).abs() < 0.03, "ratio {}", p / pl.gain(3.0));
    }

    #[test]
    fn coeff_constant_within_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let h = Hop::new(PathLoss::tv_band(), 100.0, Fading::rayleigh(5.0), &mut rng);
        let c1 = h.coeff();
        let c2 = h.coeff();
        assert_eq!(c1, c2);
    }
}
