//! Small-scale block fading.
//!
//! The simulation holds each channel coefficient constant for a block of
//! samples (the block-fading assumption: channels are static over a symbol
//! and evolve symbol-to-symbol). Temporal correlation across blocks follows
//! a first-order Gauss–Markov process, the standard discrete surrogate for
//! a Jakes Doppler spectrum: `h[k+1] = ρ·h[k] + √(1−ρ²)·w`, with `ρ`
//! derived from the coherence length.

use crate::randcn;
use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Small-scale fading statistics for one hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fading {
    /// No fading: the coefficient is the unit phasor (path loss applies
    /// separately). Models a static, strongly line-of-sight deployment.
    Static,
    /// Rayleigh: zero-mean complex Gaussian, unit mean power.
    Rayleigh {
        /// Number of blocks over which the channel decorrelates to 1/e.
        coherence_blocks: f64,
    },
    /// Rician: a fixed LOS component plus Rayleigh scatter, unit mean power.
    Rician {
        /// K-factor: LOS power / scattered power (linear).
        k_factor: f64,
        /// Number of blocks over which the scatter decorrelates to 1/e.
        coherence_blocks: f64,
    },
}

impl Fading {
    /// Convenience constructor for Rayleigh with the given coherence.
    pub fn rayleigh(coherence_blocks: f64) -> Self {
        Fading::Rayleigh { coherence_blocks }
    }
}

/// Stateful per-hop block-fading generator.
///
/// `advance(rng)` steps to the next block and returns the new coefficient;
/// `coeff()` re-reads the current one. Mean power is always 1 so that path
/// loss fully owns the scale.
#[derive(Debug, Clone)]
pub struct BlockFader {
    model: Fading,
    scatter: Iq,
    rho: f64,
}

impl BlockFader {
    /// Creates a fader and draws the initial block coefficient.
    pub fn new<R: Rng + ?Sized>(model: Fading, rng: &mut R) -> Self {
        let rho = match model {
            Fading::Static => 0.0,
            Fading::Rayleigh { coherence_blocks } | Fading::Rician { coherence_blocks, .. } => {
                coherence_from_rho(coherence_blocks)
            }
        };
        let mut f = BlockFader {
            model,
            scatter: Iq::ZERO,
            rho,
        };
        // Draw the stationary initial state.
        if !matches!(model, Fading::Static) {
            f.scatter = randcn(rng, 1.0);
        }
        f
    }

    /// Current block coefficient (unit mean power).
    pub fn coeff(&self) -> Iq {
        match self.model {
            Fading::Static => Iq::ONE,
            Fading::Rayleigh { .. } => self.scatter,
            Fading::Rician { k_factor, .. } => {
                let k = k_factor.max(0.0);
                let los = (k / (k + 1.0)).sqrt();
                let diffuse = (1.0 / (k + 1.0)).sqrt();
                Iq::real(los) + self.scatter * diffuse
            }
        }
    }

    /// Steps to the next block and returns its coefficient.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Iq {
        if !matches!(self.model, Fading::Static) {
            let w = randcn(rng, 1.0);
            let r = self.rho;
            self.scatter = self.scatter * r + w * (1.0 - r * r).sqrt();
        }
        self.coeff()
    }

    /// The AR(1) correlation coefficient in use.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

/// Maps a coherence length in blocks to the AR(1) coefficient such that the
/// correlation decays to 1/e after `coherence_blocks` steps:
/// `ρ = exp(−1 / coherence_blocks)`.
fn coherence_from_rho(coherence_blocks: f64) -> f64 {
    if coherence_blocks <= 0.0 {
        0.0
    } else {
        (-1.0 / coherence_blocks).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn static_is_unit() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut f = BlockFader::new(Fading::Static, &mut rng);
        assert_eq!(f.coeff(), Iq::ONE);
        assert_eq!(f.advance(&mut rng), Iq::ONE);
    }

    #[test]
    fn rayleigh_unit_mean_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut f = BlockFader::new(Fading::rayleigh(1.0), &mut rng);
        let n = 100_000;
        let mut p = 0.0;
        for _ in 0..n {
            p += f.advance(&mut rng).norm_sq();
        }
        p /= n as f64;
        assert!((p - 1.0).abs() < 0.02, "power {p}");
    }

    #[test]
    fn rician_unit_mean_power_and_los_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let k = 5.0;
        let mut f = BlockFader::new(
            Fading::Rician {
                k_factor: k,
                coherence_blocks: 1.0,
            },
            &mut rng,
        );
        let n = 100_000;
        let mut p = 0.0;
        let mut mean = Iq::ZERO;
        for _ in 0..n {
            let h = f.advance(&mut rng);
            p += h.norm_sq();
            mean += h;
        }
        p /= n as f64;
        mean = mean / n as f64;
        assert!((p - 1.0).abs() < 0.02, "power {p}");
        let expected_los = (k / (k + 1.0)).sqrt();
        assert!((mean.re - expected_los).abs() < 0.02, "LOS {}", mean.re);
        assert!(mean.im.abs() < 0.02);
    }

    #[test]
    fn coherence_controls_correlation() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let coh = 50.0;
        let mut f = BlockFader::new(Fading::rayleigh(coh), &mut rng);
        // Estimate lag-1 autocorrelation of the real part.
        let n = 200_000;
        let mut prev = f.coeff().re;
        let mut num = 0.0;
        let mut den = 0.0;
        for _ in 0..n {
            let cur = f.advance(&mut rng).re;
            num += prev * cur;
            den += prev * prev;
            prev = cur;
        }
        let rho_hat = num / den;
        let rho_expect = (-1.0f64 / coh).exp();
        assert!((rho_hat - rho_expect).abs() < 0.01, "{rho_hat} vs {rho_expect}");
    }

    #[test]
    fn zero_coherence_is_iid() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f = BlockFader::new(Fading::rayleigh(0.0), &mut rng);
        assert_eq!(f.rho(), 0.0);
    }

    #[test]
    fn rayleigh_envelope_distribution() {
        // P(|h| < r) = 1 − exp(−r²) for unit-power Rayleigh; check median.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut f = BlockFader::new(Fading::rayleigh(0.0), &mut rng);
        let n = 100_000;
        let median_r = (2.0f64.ln()).sqrt();
        let mut below = 0;
        for _ in 0..n {
            if f.advance(&mut rng).abs() < median_r {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median fraction {frac}");
    }
}
