//! Continuous-wave carrier source.
//!
//! The RFID-reader-like best case: a pure unmodulated carrier. At complex
//! baseband this is a constant unit phasor (with an optional slow phase
//! drift to model oscillator wander — irrelevant to an envelope detector
//! but it keeps downstream coherent readers honest).

use fdb_dsp::Iq;
use serde::{Deserialize, Serialize};

/// A unit-power CW carrier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CwSource {
    phase: f64,
    drift_per_sample: f64,
}

impl CwSource {
    /// A drift-free carrier at phase zero.
    pub fn new() -> Self {
        CwSource {
            phase: 0.0,
            drift_per_sample: 0.0,
        }
    }

    /// Adds a constant phase drift (radians per sample) — a residual
    /// carrier-frequency offset.
    pub fn with_drift(mut self, drift_per_sample: f64) -> Self {
        self.drift_per_sample = drift_per_sample;
        self
    }

    /// Produces the next sample.
    #[inline]
    pub fn next_sample(&mut self) -> Iq {
        let s = Iq::phasor(self.phase);
        self.phase += self.drift_per_sample;
        if self.phase > std::f64::consts::TAU {
            self.phase -= std::f64::consts::TAU;
        }
        s
    }
}

impl Default for CwSource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constant_envelope() {
        let mut s = CwSource::new();
        for _ in 0..100 {
            let x = s.next_sample();
            assert!((x.norm_sq() - 1.0).abs() < 1e-12);
            assert_eq!(x, Iq::ONE);
        }
    }

    #[test]
    fn drift_rotates_phase_but_not_envelope() {
        let mut s = CwSource::new().with_drift(0.01);
        let first = s.next_sample();
        let mut last = first;
        for _ in 0..999 {
            last = s.next_sample();
            assert!((last.norm_sq() - 1.0).abs() < 1e-12);
        }
        assert!((last.arg() - first.arg()).abs() > 1.0);
    }

    #[test]
    fn phase_wraps_without_precision_loss() {
        let mut s = CwSource::new().with_drift(1.0);
        for _ in 0..100_000 {
            s.next_sample();
        }
        let x = s.next_sample();
        assert!((x.norm_sq() - 1.0).abs() < 1e-9);
    }
}
