//! Bursty OFDM-like ambient source.
//!
//! A Wi-Fi access point is a *terrible* ambient excitation: its signal is
//! Gaussian-like while active (many subcarriers) but vanishes entirely
//! between frames. Backscatter links riding on such a source see deep
//! envelope dropouts that stall both data detection and harvesting. This
//! model alternates exponential-length ON bursts (complex Gaussian samples)
//! with OFF gaps sized to hit a configured duty cycle, with the active
//! amplitude scaled so the long-run mean power is 1.

use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bursty OFDM-like source.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OfdmBurstySource {
    duty: f64,
    mean_burst: f64,
    active_power: f64,
    /// Samples remaining in the current state.
    remaining: u64,
    active: bool,
    started: bool,
}

impl OfdmBurstySource {
    /// Creates a source with the given duty cycle `(0, 1]` and mean burst
    /// length in samples (≥ 8).
    pub fn new(duty_cycle: f64, burst_len: usize) -> Self {
        let duty = duty_cycle.clamp(0.01, 1.0);
        OfdmBurstySource {
            duty,
            mean_burst: burst_len.max(8) as f64,
            active_power: 1.0 / duty,
            remaining: 0,
            active: false,
            started: false,
        }
    }

    /// Configured duty cycle.
    pub fn duty_cycle(&self) -> f64 {
        self.duty
    }

    /// `true` while inside a burst.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn draw_duration<R: Rng + ?Sized>(&self, rng: &mut R, mean: f64) -> u64 {
        // Exponential holding times (geometric in discrete samples).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        ((-u.ln()) * mean).ceil().max(1.0) as u64
    }

    /// Produces the next sample.
    pub fn next_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Iq {
        if self.remaining == 0 {
            if !self.started {
                // Start in a state chosen by the duty cycle so short runs
                // aren't biased toward OFF.
                self.active = rng.gen_range(0.0..1.0) < self.duty;
                self.started = true;
            } else {
                // At full duty there is no OFF state to toggle into.
                self.active = !self.active || self.duty >= 0.9999;
            }
            let mean = if self.active {
                self.mean_burst
            } else {
                self.mean_burst * (1.0 - self.duty) / self.duty
            };
            self.remaining = self.draw_duration(rng, mean.max(1.0));
        }
        self.remaining -= 1;
        if self.active {
            let s = (self.active_power / 2.0).sqrt();
            Iq::new(
                s * gaussian(rng),
                s * gaussian(rng),
            )
        } else {
            Iq::ZERO
        }
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn duty_cycle_fraction_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut s = OfdmBurstySource::new(0.3, 200);
        let n = 500_000;
        let mut active = 0;
        for _ in 0..n {
            s.next_sample(&mut rng);
            if s.is_active() {
                active += 1;
            }
        }
        let frac = active as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "duty fraction {frac}");
    }

    #[test]
    fn unit_long_run_mean_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut s = OfdmBurstySource::new(0.5, 100);
        let n = 500_000;
        let mut p = 0.0;
        for _ in 0..n {
            p += s.next_sample(&mut rng).norm_sq();
        }
        p /= n as f64;
        assert!((p - 1.0).abs() < 0.05, "mean power {p}");
    }

    #[test]
    fn off_gaps_are_exactly_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let mut s = OfdmBurstySource::new(0.2, 50);
        let mut saw_zero_run = 0;
        for _ in 0..10_000 {
            let x = s.next_sample(&mut rng);
            if !s.is_active() {
                assert_eq!(x, Iq::ZERO);
                saw_zero_run += 1;
            }
        }
        assert!(saw_zero_run > 1000, "never idled");
    }

    #[test]
    fn full_duty_never_idles() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let mut s = OfdmBurstySource::new(1.0, 50);
        for _ in 0..5_000 {
            s.next_sample(&mut rng);
            assert!(s.is_active());
        }
    }

    #[test]
    fn burst_lengths_have_configured_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let mut s = OfdmBurstySource::new(0.5, 100);
        let mut lengths = Vec::new();
        let mut run = 0u64;
        let mut prev_active = false;
        for _ in 0..2_000_000 {
            s.next_sample(&mut rng);
            if s.is_active() {
                run += 1;
            } else if prev_active {
                lengths.push(run);
                run = 0;
            }
            prev_active = s.is_active();
        }
        let mean = lengths.iter().sum::<u64>() as f64 / lengths.len() as f64;
        assert!((mean - 100.0).abs() < 10.0, "mean burst {mean}");
    }
}
