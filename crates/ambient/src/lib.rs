//! # fdb-ambient — ambient RF excitation sources
//!
//! Ambient backscatter devices modulate *someone else's* transmission: a TV
//! tower, a Wi-Fi access point, or (in the RFID-like best case) a dedicated
//! continuous-wave carrier. What matters to the backscatter PHY is the
//! **envelope statistics** of the excitation — a flat carrier gives clean
//! OOK levels, a shaped TV signal adds envelope ripple, and a bursty OFDM
//! source switches off entirely between frames, starving both the receiver
//! and the harvester.
//!
//! ## Substitution note (reproduction)
//!
//! The original work measured real TV broadcasts; this crate substitutes
//! synthetic sources with matched envelope statistics (see DESIGN.md §1).
//! All sources are normalised to **unit long-run mean power**, so scenario
//! power levels are owned entirely by the link budget.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cw;
pub mod ofdm;
pub mod power;
pub mod recorded;
pub mod tv;

pub use cw::CwSource;
pub use ofdm::OfdmBurstySource;
pub use power::gamma_unit_mean;
pub use recorded::RecordedSource;
pub use tv::TvSource;

use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for building an ambient source (serde-friendly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AmbientConfig {
    /// Constant carrier.
    Cw,
    /// TV-broadcast-like: 8-level VSB symbols, RRC-shaped, with pilot.
    /// Field-accurate but narrowband (bandwidth ≈ sample rate / sps).
    Tv {
        /// Samples per TV symbol (≥ 2).
        sps: usize,
    },
    /// Wideband TV broadcast via the Gamma pre-averaging substitution
    /// (see [`power`]): each power sample is `Gamma(k, 1/k)`, where
    /// `k ≈ B_source / f_sim` is the bandwidth oversize factor.
    TvWideband {
        /// Pre-averaging shape factor `k` (≥ 1 for realistic broadcasts).
        k_factor: f64,
    },
    /// Bursty OFDM-like: bursts with idle gaps.
    OfdmBursty {
        /// Fraction of time the source is transmitting, `(0, 1]`.
        duty_cycle: f64,
        /// Mean burst length in samples.
        burst_len: usize,
    },
}

/// A running ambient source (enum dispatch over the concrete models).
#[derive(Debug, Clone)]
pub enum Ambient {
    /// Constant carrier.
    Cw(CwSource),
    /// TV-like shaped source (field-accurate, narrowband).
    Tv(TvSource),
    /// Wideband TV via Gamma pre-averaging: power-domain only.
    TvWideband {
        /// Gamma shape factor (bandwidth oversize).
        k_factor: f64,
    },
    /// Bursty OFDM-like source.
    Ofdm(OfdmBurstySource),
    /// Replay of a recorded buffer.
    Recorded(RecordedSource),
}

impl Ambient {
    /// Builds a source from its configuration. `seed` controls the source's
    /// internal symbol stream (kept separate from channel randomness so the
    /// same broadcast can excite several scenarios).
    pub fn from_config(cfg: AmbientConfig, seed: u64) -> Self {
        match cfg {
            AmbientConfig::Cw => Ambient::Cw(CwSource::new()),
            AmbientConfig::Tv { sps } => Ambient::Tv(TvSource::new(sps, seed)),
            AmbientConfig::TvWideband { k_factor } => Ambient::TvWideband {
                k_factor: k_factor.max(1.0),
            },
            AmbientConfig::OfdmBursty {
                duty_cycle,
                burst_len,
            } => Ambient::Ofdm(OfdmBurstySource::new(duty_cycle, burst_len)),
        }
    }

    /// Produces the next baseband field sample (unit long-run mean power).
    ///
    /// The power-domain-only `TvWideband` source returns the square root of
    /// its power sample as a zero-phase field — valid for every use in this
    /// stack because all receivers are envelope detectors and all paths
    /// share the source (the phase cancels; see [`power`]).
    #[inline]
    pub fn next_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Iq {
        match self {
            Ambient::Cw(s) => s.next_sample(),
            Ambient::Tv(s) => s.next_sample(),
            Ambient::TvWideband { k_factor } => {
                Iq::real(power::gamma_unit_mean(rng, *k_factor).sqrt())
            }
            Ambient::Ofdm(s) => s.next_sample(rng),
            Ambient::Recorded(s) => s.next_sample(),
        }
    }

    /// Produces the next instantaneous source *power* sample (unit mean) —
    /// the quantity the envelope-detection PHY actually consumes.
    #[inline]
    pub fn next_power<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match self {
            Ambient::Cw(s) => s.next_sample().norm_sq(),
            Ambient::Tv(s) => s.next_sample().norm_sq(),
            Ambient::TvWideband { k_factor } => power::gamma_unit_mean(rng, *k_factor),
            Ambient::Ofdm(s) => s.next_sample(rng).norm_sq(),
            Ambient::Recorded(s) => s.next_sample().norm_sq(),
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Ambient::Cw(_) => "cw",
            Ambient::Tv(_) => "tv",
            Ambient::TvWideband { .. } => "tv-wideband",
            Ambient::Ofdm(_) => "ofdm-bursty",
            Ambient::Recorded(_) => "recorded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mean_power_and_env_var(src: &mut Ambient, n: usize) -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut p = 0.0;
        let mut p2 = 0.0;
        for _ in 0..n {
            let e = src.next_sample(&mut rng).norm_sq();
            p += e;
            p2 += e * e;
        }
        let mean = p / n as f64;
        let var = p2 / n as f64 - mean * mean;
        (mean, var)
    }

    #[test]
    fn all_sources_unit_mean_power() {
        let n = 300_000;
        for cfg in [
            AmbientConfig::Cw,
            AmbientConfig::Tv { sps: 4 },
            AmbientConfig::OfdmBursty {
                duty_cycle: 0.4,
                burst_len: 500,
            },
        ] {
            let mut src = Ambient::from_config(cfg, 7);
            let (mean, _) = mean_power_and_env_var(&mut src, n);
            // Tolerance dominated by the bursty source: ~240 ON/OFF cycles
            // in the run give ≈ 1/√240 relative duty-fraction noise.
            assert!((mean - 1.0).abs() < 0.12, "{cfg:?}: mean power {mean}");
        }
    }

    #[test]
    fn envelope_variance_ordering() {
        // CW < TV < bursty OFDM — the ordering experiment E8 relies on.
        let n = 200_000;
        let (_, v_cw) = mean_power_and_env_var(&mut Ambient::from_config(AmbientConfig::Cw, 1), n);
        let (_, v_tv) =
            mean_power_and_env_var(&mut Ambient::from_config(AmbientConfig::Tv { sps: 4 }, 1), n);
        let (_, v_ofdm) = mean_power_and_env_var(
            &mut Ambient::from_config(
                AmbientConfig::OfdmBursty {
                    duty_cycle: 0.3,
                    burst_len: 300,
                },
                1,
            ),
            n,
        );
        assert!(v_cw < 1e-9, "CW envelope must be constant, var {v_cw}");
        assert!(v_tv > v_cw && v_tv < v_ofdm, "ordering: {v_cw} {v_tv} {v_ofdm}");
    }

    #[test]
    fn seeded_sources_are_reproducible() {
        let mut a = Ambient::from_config(AmbientConfig::Tv { sps: 4 }, 42);
        let mut b = Ambient::from_config(AmbientConfig::Tv { sps: 4 }, 42);
        let mut rng1 = ChaCha8Rng::seed_from_u64(0);
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(a.next_sample(&mut rng1), b.next_sample(&mut rng2));
        }
    }
}
