//! TV-broadcast-like ambient source.
//!
//! Models the envelope statistics of an ATSC 8-VSB broadcast: an 8-level
//! PAM symbol stream (PRBS-driven — real broadcasts are whitened, so a
//! maximal LFSR is statistically faithful), root-raised-cosine shaped, with
//! the small DC pilot ATSC inserts. The resulting envelope has the
//! moderate, band-limited ripple that a backscatter receiver actually sees
//! when riding a TV tower — rougher than CW, far tamer than bursty Wi-Fi.

use fdb_dsp::fir::{rrc_taps, Fir};
use fdb_dsp::prbs::{Prbs, PrbsOrder};
use fdb_dsp::Iq;

/// ATSC-like 8-VSB pilot offset relative to the symbol levels (the real
/// standard adds 1.25 to symbols in {−7,…,+7}).
const PILOT: f64 = 1.25;

/// TV-broadcast-like source, unit long-run mean power.
#[derive(Debug, Clone)]
pub struct TvSource {
    prbs: Prbs,
    shaper: Fir,
    sps: usize,
    phase: usize,
    current_symbol: f64,
    norm: f64,
}

impl TvSource {
    /// Creates a source with `sps` samples per TV symbol (≥ 2) and an
    /// internal symbol-stream seed.
    pub fn new(sps: usize, seed: u64) -> Self {
        let sps = sps.max(2);
        // Span 8 symbols, roll-off 0.115 (the ATSC value).
        let taps = rrc_taps(sps, 0.115, 8);
        // Normalisation: symbol levels {±1,±3,±5,±7} have mean square 21;
        // adding the pilot gives 21 + 1.5625. The RRC has unit energy, but
        // upsampled-impulse shaping divides power by sps; fold both into
        // one amplitude factor, then trim empirically in tests.
        let mean_square = 21.0 + PILOT * PILOT;
        let norm = (sps as f64 / mean_square).sqrt();
        let mut src = TvSource {
            prbs: Prbs::new(PrbsOrder::Prbs23, seed.max(1)),
            shaper: Fir::new(taps.clone()),
            sps,
            phase: 0,
            current_symbol: 0.0,
            norm,
        };
        // The pilot's DC component interacts with the shaping filter in a
        // way the first-order normalisation above misses (~ a few percent),
        // so calibrate empirically: measure the actual mean power over a
        // deterministic warm-up run and rescale, then reset state so the
        // calibrated source replays identically for a given seed.
        let trial = 1 << 16;
        let mut p = 0.0;
        for _ in 0..trial {
            p += src.next_sample().norm_sq();
        }
        p /= trial as f64;
        let calibrated = if p > 0.0 { norm / p.sqrt() } else { norm };
        TvSource {
            prbs: Prbs::new(PrbsOrder::Prbs23, seed.max(1)),
            shaper: Fir::new(taps),
            sps,
            phase: 0,
            current_symbol: 0.0,
            norm: calibrated,
        }
    }

    fn next_symbol(&mut self) -> f64 {
        // Three PRBS bits → one of 8 levels {−7,−5,−3,−1,1,3,5,7}.
        let mut idx = 0u8;
        for _ in 0..3 {
            idx = (idx << 1) | u8::from(self.prbs.next_bit());
        }
        let level = 2.0 * idx as f64 - 7.0;
        level + PILOT
    }

    /// Produces the next baseband sample.
    pub fn next_sample(&mut self) -> Iq {
        if self.phase == 0 {
            self.current_symbol = self.next_symbol();
        }
        // Impulse-train excitation of the RRC: symbol at phase 0, zeros
        // between (classic polyphase-equivalent shaping).
        let x = if self.phase == 0 {
            Iq::real(self.current_symbol * self.norm)
        } else {
            Iq::ZERO
        };
        self.phase = (self.phase + 1) % self.sps;
        self.shaper.process(x)
    }

    /// Samples per symbol.
    pub fn sps(&self) -> usize {
        self.sps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_power_near_unity() {
        let mut s = TvSource::new(4, 5);
        let n = 400_000;
        let mut p = 0.0;
        for _ in 0..n {
            p += s.next_sample().norm_sq();
        }
        p /= n as f64;
        assert!((p - 1.0).abs() < 0.05, "mean power {p}");
    }

    #[test]
    fn envelope_fluctuates_but_is_band_limited() {
        let mut s = TvSource::new(8, 9);
        // Warm up past the filter span.
        for _ in 0..200 {
            s.next_sample();
        }
        let xs: Vec<f64> = (0..50_000).map(|_| s.next_sample().norm_sq()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(var > 0.1, "TV envelope should ripple, var {var}");
        // Band limitation: adjacent samples highly correlated at 8 sps.
        let mut num = 0.0;
        let mut den = 0.0;
        for w in xs.windows(2) {
            num += (w[0] - mean) * (w[1] - mean);
            den += (w[0] - mean) * (w[0] - mean);
        }
        let rho = num / den;
        assert!(rho > 0.7, "lag-1 envelope correlation {rho}");
    }

    #[test]
    fn pilot_gives_nonzero_mean_field() {
        let mut s = TvSource::new(4, 3);
        for _ in 0..200 {
            s.next_sample();
        }
        let n = 200_000;
        let mut acc = Iq::ZERO;
        for _ in 0..n {
            acc += s.next_sample();
        }
        let mean = acc / n as f64;
        // Pilot fraction of amplitude: 1.25/√(21+1.5625) ≈ 0.26 at DC,
        // spread by shaping; just require a clearly nonzero mean.
        assert!(mean.re > 0.05, "pilot missing: mean {mean:?}");
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = TvSource::new(4, 1);
        let mut b = TvSource::new(4, 2);
        let mut diff = 0;
        for _ in 0..1000 {
            if (a.next_sample() - b.next_sample()).abs() > 1e-12 {
                diff += 1;
            }
        }
        assert!(diff > 500);
    }

    #[test]
    fn sps_clamped() {
        let s = TvSource::new(0, 1);
        assert_eq!(s.sps(), 2);
    }
}
