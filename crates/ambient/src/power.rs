//! Power-domain source models and the Gamma pre-averaging substitution.
//!
//! ## Why a power-domain API exists
//!
//! Every receiver in this stack is an envelope detector, and all propagation
//! paths in a scenario carry the *same* ambient signal `x(t)` (flat
//! channels): the field at any receiver is `E = h_eff·x + n`, so the
//! detected power is `|h_eff|²·|x|²` plus noise terms — the source enters
//! **only through its instantaneous power** `p = |x|²`.
//!
//! Real ambient sources are far wider-band than the chip rate (an ATSC
//! broadcast is ~6 MHz; chips here are kHz-scale). The detector therefore
//! pre-averages `K = B_source / f_sim` independent power fluctuations
//! within every simulation sample. Simulating that directly would cost `K×`
//! samples; instead we draw the pre-averaged power from its matched
//! distribution: the mean of `K` i.i.d. unit-mean exponentials is
//! `Gamma(shape = K, scale = 1/K)` (exact for a complex-Gaussian source,
//! and a good moment match for shaped broadcast signals). This is the
//! **bandwidth substitution** recorded in DESIGN.md.

use rand::Rng;

/// Draws a `Gamma(shape, scale = 1/shape)` sample — unit mean, variance
/// `1/shape` — via Marsaglia–Tsang squeeze (with the standard boost for
/// `shape < 1`).
pub fn gamma_unit_mean<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    let shape = shape.max(1e-3);
    gamma_std(rng, shape) / shape
}

/// Standard `Gamma(shape, 1)` sampler (Marsaglia & Tsang, 2000).
pub fn gamma_std<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_std(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Squeeze then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn moments(shape: f64, n: usize) -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let mut m = 0.0;
        let mut v = 0.0;
        for _ in 0..n {
            let x = gamma_unit_mean(&mut rng, shape);
            m += x;
            v += x * x;
        }
        let mean = m / n as f64;
        (mean, v / n as f64 - mean * mean)
    }

    #[test]
    fn unit_mean_for_all_shapes() {
        for &k in &[0.5, 1.0, 4.0, 32.0, 400.0] {
            let (mean, _) = moments(k, 200_000);
            assert!((mean - 1.0).abs() < 0.02, "shape {k}: mean {mean}");
        }
    }

    #[test]
    fn variance_is_inverse_shape() {
        for &k in &[1.0, 8.0, 64.0] {
            let (_, var) = moments(k, 300_000);
            assert!(
                (var - 1.0 / k).abs() < 0.15 / k,
                "shape {k}: var {var} vs {}",
                1.0 / k
            );
        }
    }

    #[test]
    fn shape_one_is_exponential() {
        // Exponential: P(X > 1) = e⁻¹ ≈ 0.3679.
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let n = 200_000;
        let mut above = 0;
        for _ in 0..n {
            if gamma_unit_mean(&mut rng, 1.0) > 1.0 {
                above += 1;
            }
        }
        let frac = above as f64 / n as f64;
        assert!((frac - (-1.0f64).exp()).abs() < 0.005, "tail {frac}");
    }

    #[test]
    fn samples_nonnegative() {
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        for _ in 0..10_000 {
            assert!(gamma_unit_mean(&mut rng, 0.3) >= 0.0);
            assert!(gamma_unit_mean(&mut rng, 30.0) >= 0.0);
        }
    }

    #[test]
    fn large_shape_concentrates() {
        let mut rng = ChaCha8Rng::seed_from_u64(74);
        for _ in 0..1000 {
            let x = gamma_unit_mean(&mut rng, 10_000.0);
            assert!((x - 1.0).abs() < 0.1, "x = {x}");
        }
    }
}
