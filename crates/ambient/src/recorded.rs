//! Replay of a recorded sample buffer.
//!
//! Used by tests that need exact, hand-crafted excitations, and as the hook
//! for feeding real captured IQ traces into the stack (the trace is
//! normalised to unit mean power at load time, matching the other sources'
//! contract).

use fdb_dsp::sample::mean_power;
use fdb_dsp::Iq;

/// Loops over a fixed sample buffer.
#[derive(Debug, Clone)]
pub struct RecordedSource {
    samples: Vec<Iq>,
    pos: usize,
}

impl RecordedSource {
    /// Creates a source from a buffer, normalising to unit mean power.
    /// An empty or all-zero buffer becomes a single zero sample (silence).
    pub fn new(mut samples: Vec<Iq>) -> Self {
        let p = mean_power(&samples);
        if samples.is_empty() || p <= 0.0 {
            return RecordedSource {
                samples: vec![Iq::ZERO],
                pos: 0,
            };
        }
        let k = 1.0 / p.sqrt();
        for s in samples.iter_mut() {
            *s = *s * k;
        }
        RecordedSource { samples, pos: 0 }
    }

    /// Creates a source that replays the buffer *as-is* (no normalisation).
    pub fn raw(samples: Vec<Iq>) -> Self {
        if samples.is_empty() {
            return RecordedSource {
                samples: vec![Iq::ZERO],
                pos: 0,
            };
        }
        RecordedSource { samples, pos: 0 }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the buffer holds only the silence sample.
    pub fn is_empty(&self) -> bool {
        self.samples.len() == 1 && self.samples[0] == Iq::ZERO
    }

    /// Produces the next sample (wraps around).
    #[inline]
    pub fn next_sample(&mut self) -> Iq {
        let s = self.samples[self.pos];
        self.pos = (self.pos + 1) % self.samples.len();
        s
    }

    /// Restarts playback from the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_to_unit_power() {
        let buf: Vec<Iq> = (0..100).map(|i| Iq::real(3.0 + (i % 2) as f64)).collect();
        let mut s = RecordedSource::new(buf);
        let n = 100;
        let p: f64 = (0..n).map(|_| s.next_sample().norm_sq()).sum::<f64>() / n as f64;
        assert!((p - 1.0).abs() < 1e-9, "power {p}");
    }

    #[test]
    fn wraps_around() {
        let mut s = RecordedSource::raw(vec![Iq::real(1.0), Iq::real(2.0)]);
        assert_eq!(s.next_sample().re, 1.0);
        assert_eq!(s.next_sample().re, 2.0);
        assert_eq!(s.next_sample().re, 1.0);
    }

    #[test]
    fn empty_buffer_is_silence() {
        let mut s = RecordedSource::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.next_sample(), Iq::ZERO);
    }

    #[test]
    fn all_zero_buffer_is_silence() {
        let s = RecordedSource::new(vec![Iq::ZERO; 16]);
        assert!(s.is_empty());
    }

    #[test]
    fn rewind_restarts() {
        let mut s = RecordedSource::raw(vec![Iq::real(1.0), Iq::real(2.0), Iq::real(3.0)]);
        s.next_sample();
        s.next_sample();
        s.rewind();
        assert_eq!(s.next_sample().re, 1.0);
    }

    #[test]
    fn raw_preserves_amplitude() {
        let mut s = RecordedSource::raw(vec![Iq::real(5.0)]);
        assert_eq!(s.next_sample().re, 5.0);
    }
}
