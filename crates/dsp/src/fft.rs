//! Radix-2 FFT and FFT-based normalised cross-correlation.
//!
//! The acquisition stage slides a length-`M` preamble template across an
//! `N`-sample envelope stream. Computed naively (one [`ncc`] per position)
//! that is O(N·M); by the convolution theorem the raw correlation for *all*
//! positions costs O(N log N), and the per-window mean/variance needed for
//! Pearson normalisation comes from running sums in O(N). This module
//! provides:
//!
//! * [`fft`]/[`ifft`] — iterative radix-2 transforms, pure Rust, no
//!   dependencies, power-of-two lengths only;
//! * [`fft_correlate`] — batch correlation scan whose output matches
//!   `ncc(&signal[p..p+M], template)` at every position to ≤ 1e-9;
//! * [`RunningNcc`] — an incremental running-sum scorer for streaming use
//!   (one sample in, one score out) when block sizes are too small to
//!   amortise an FFT.
//!
//! ## Normalisation contract vs [`ncc`]
//!
//! [`ncc`] is exact Pearson correlation and returns 0 for a zero-variance
//! window. The fast paths recover the window variance as a *difference* of
//! running sums (`Σw² − (Σw)²/M`), which for a flat window is rounding
//! noise rather than an exact zero. Both fast paths therefore declare a
//! window flat — and return exactly 0, matching `ncc` — whenever its
//! centred energy is below `1e-9` of its raw energy. Real backscatter
//! envelopes sit many orders of magnitude above that floor (the modulation
//! depth puts the ratio near `1e-2`), so the contract only reclassifies
//! windows whose score was numerically meaningless anyway. Because of this
//! reconstruction the fast scores are *not* bit-identical to `ncc`; the
//! live lock decision stays on the exact streaming searcher and these
//! paths serve batch scans, offline search and benchmarks.
//!
//! [`ncc`]: crate::correlate::ncc

use crate::ringbuf::RingBuf;
use crate::sample::Iq;

/// Error returned when a transform is handed a non-power-of-two length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftSizeError {
    /// The offending buffer length.
    pub len: usize,
}

impl std::fmt::Display for FftSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fft length {} is not a power of two", self.len)
    }
}

impl std::error::Error for FftSizeError {}

/// Smallest power of two ≥ `n` (saturating at the largest representable
/// power of two).
pub fn next_pow2(n: usize) -> usize {
    n.checked_next_power_of_two()
        .unwrap_or(1usize << (usize::BITS - 1))
}

/// In-place forward FFT (engineering sign convention, no scaling).
///
/// The length must be a power of two; `1` and `0`-length inputs are no-ops.
pub fn fft(buf: &mut [Iq]) -> Result<(), FftSizeError> {
    transform(buf, false)
}

/// In-place inverse FFT, scaled by `1/N` so `ifft(fft(x)) == x` up to
/// rounding.
pub fn ifft(buf: &mut [Iq]) -> Result<(), FftSizeError> {
    transform(buf, true)
}

/// Forward-convention master twiddle table for an `n`-point transform:
/// `table[k] = exp(-iπk/(n/2))` for `k < n/2`. Every stage of the
/// iterative transform subsamples this table, so the sin/cos cost is paid
/// once per table rather than once per stage, and a table can be shared
/// across the several transforms of one correlation.
fn twiddle_table(n: usize) -> Vec<Iq> {
    let mut out = Vec::new();
    twiddle_table_into(n, &mut out);
    out
}

/// [`twiddle_table`] into a caller-owned buffer (cleared and refilled,
/// capacity retained) so a cached table can be regenerated in place when
/// the transform length changes.
fn twiddle_table_into(n: usize, out: &mut Vec<Iq>) {
    let half = (n / 2).max(1);
    let step = -std::f64::consts::PI / half as f64;
    out.clear();
    out.reserve(half);
    out.extend((0..half).map(|k| Iq::phasor(step * k as f64)));
}

fn transform(buf: &mut [Iq], inverse: bool) -> Result<(), FftSizeError> {
    let n = buf.len();
    if n <= 1 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(FftSizeError { len: n });
    }
    transform_with(buf, &twiddle_table(n), inverse);
    Ok(())
}

/// The power-of-two transform body. `table` must be `twiddle_table(n)`;
/// the inverse conjugates it on the fly and scales by `1/n`. Twiddles come
/// from direct sin/cos (not repeated multiplication) so rounding does not
/// accumulate across stages.
fn transform_with(buf: &mut [Iq], table: &[Iq], inverse: bool) {
    let n = buf.len();
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Iterative Cooley–Tukey butterflies. The stage with half-size `half`
    // needs `exp(±iπk/half)`, which is every `(n/2)/half`-th table entry.
    let mut half = 1usize;
    while half < n {
        let stride = (n / 2) / half;
        let mut start = 0usize;
        while start < n {
            for k in 0..half {
                let w = table[k * stride];
                let w = if inverse { w.conj() } else { w };
                let u = buf[start + k];
                let v = buf[start + k + half] * w;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
            }
            start += 2 * half;
        }
        half *= 2;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in buf.iter_mut() {
            *x = *x * scale;
        }
    }
}

/// Relative flatness floor: a window whose centred energy `Σ(w−w̄)²` falls
/// below this fraction of its raw energy `Σw²` is declared zero-variance
/// and scored 0, matching [`ncc`](crate::correlate::ncc) on flat input.
const FLAT_REL_FLOOR: f64 = 1e-9;

/// Final normalisation shared by the batch and streaming fast paths.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(a > b)` rejects NaN too
fn normalise(num: f64, dw: f64, t_ss: f64, raw_energy: f64) -> f64 {
    // `!(a > b)` also rejects NaN from upstream cancellation.
    if !(dw > FLAT_REL_FLOOR * raw_energy.max(f64::MIN_POSITIVE)) {
        return 0.0;
    }
    let den = (dw * t_ss).sqrt();
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Reusable workspace for [`fft_correlate_into`].
///
/// Holds the zero-mean template, the padded transform buffer, the twiddle
/// table (regenerated only when the transform length changes — the values
/// are a pure function of the length, so caching is numerically invisible)
/// and the prefix-sum arrays. Once the buffers have grown to the caller's
/// working sizes, repeated correlations perform no heap allocations.
#[derive(Debug, Clone, Default)]
pub struct CorrelateScratch {
    tz: Vec<f64>,
    sig: Vec<Iq>,
    table: Vec<Iq>,
    table_len: usize,
    ps1: Vec<f64>,
    ps2: Vec<f64>,
}

impl CorrelateScratch {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Normalised sliding cross-correlation of `template` against every window
/// of `signal`, via the convolution theorem.
///
/// Returns one score per window position: `out[p]` matches
/// `ncc(&signal[p..p+M], template)` to ≤ 1e-9 (see the module docs for the
/// flat-window contract). Returns an empty vector when the template is
/// empty or longer than the signal.
pub fn fft_correlate(signal: &[f64], template: &[f64]) -> Vec<f64> {
    let mut scratch = CorrelateScratch::new();
    let mut out = Vec::new();
    fft_correlate_into(signal, template, &mut scratch, &mut out);
    out
}

/// [`fft_correlate`] into caller-owned buffers: `out` is cleared and
/// refilled (capacity retained), all intermediates live in `scratch`.
/// Scores are bit-identical to [`fft_correlate`] for the same inputs.
pub fn fft_correlate_into(
    signal: &[f64],
    template: &[f64],
    scratch: &mut CorrelateScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n = signal.len();
    let m = template.len();
    if m == 0 || n < m {
        return;
    }
    let CorrelateScratch {
        tz,
        sig,
        table,
        table_len,
        ps1,
        ps2,
    } = scratch;
    let mf = m as f64;
    let mt = template.iter().sum::<f64>() / mf;
    tz.clear();
    tz.extend(template.iter().map(|&t| t - mt));
    let tz_sum: f64 = tz.iter().sum();
    let t_ss: f64 = tz.iter().map(|b| b * b).sum();
    if t_ss <= 0.0 {
        // A flat template never correlates with anything — ncc semantics.
        out.resize(n - m + 1, 0.0);
        return;
    }
    // Raw correlation for every lag at once: correlate == convolve with
    // the time-reversed template, so corr[p] lands at conv index p + M − 1.
    // Both inputs are real, so they ride one complex transform: with
    // z = signal + i·kernel, the spectra split by Hermitian symmetry as
    // S[k] = (Z[k] + Z*[n−k])/2 and K[k] = (Z[k] − Z*[n−k])/(2i) — two
    // transforms total (one forward, one inverse) instead of three.
    let len = next_pow2(n + m - 1);
    sig.clear();
    sig.resize(len, Iq::ZERO);
    for (dst, &s) in sig.iter_mut().zip(signal.iter()) {
        *dst = Iq::real(s);
    }
    for (i, dst) in sig.iter_mut().take(m).enumerate() {
        dst.im = tz[m - 1 - i];
    }
    if *table_len != len {
        twiddle_table_into(len, table);
        *table_len = len;
    }
    transform_with(sig, table, false);
    // Split, multiply and fold in one symmetric pass: the product spectrum
    // is Hermitian (both factors are), so P[n−k] = P*[k] and each (k, n−k)
    // pair is finished as soon as it is read.
    let mask = len - 1;
    for k in 0..=len / 2 {
        let nk = (len - k) & mask;
        let zk = sig[k];
        let znk = sig[nk].conj();
        let s = (zk + znk).scale(0.5);
        let d = zk - znk;
        // K[k] = d/(2i) = −i·d/2.
        let kk = Iq::new(d.im, -d.re).scale(0.5);
        let p = s * kk;
        sig[k] = p;
        sig[nk] = p.conj();
    }
    transform_with(sig, table, true);
    // Window mean/energy from prefix sums — O(N) for all positions.
    ps1.clear();
    ps2.clear();
    ps1.reserve(n + 1);
    ps2.reserve(n + 1);
    let (mut acc1, mut acc2) = (0.0f64, 0.0f64);
    ps1.push(0.0);
    ps2.push(0.0);
    for &s in signal {
        acc1 += s;
        acc2 += s * s;
        ps1.push(acc1);
        ps2.push(acc2);
    }
    out.reserve(n - m + 1);
    for p in 0..=n - m {
        let s1 = ps1[p + m] - ps1[p];
        let s2 = ps2[p + m] - ps2[p];
        let raw = sig[p + m - 1].re;
        // Σ(w−w̄)(t−t̄) = Σw·tz − w̄·Σtz  (Σtz is ~0 but not exactly).
        let num = raw - (s1 / mf) * tz_sum;
        let dw = s2 - s1 * s1 / mf;
        out.push(normalise(num, dw, t_ss, s2));
    }
}

/// Streaming normalised correlator with O(1) window statistics.
///
/// The incremental running-sum fallback for when samples arrive one at a
/// time and blocks are too small to amortise an FFT: window mean and
/// energy are maintained by add/evict updates (periodically refreshed to
/// bound float drift), so each push costs one O(M) dot product against the
/// precomputed zero-mean template instead of [`ncc`]'s three passes.
/// Scores match `ncc` on the same window to ≤ 1e-9 under the module's
/// flat-window contract.
#[derive(Debug, Clone)]
pub struct RunningNcc {
    /// Zero-mean template.
    tz: Vec<f64>,
    tz_sum: f64,
    t_ss: f64,
    window: RingBuf<f64>,
    sum: f64,
    sum_sq: f64,
    pushes: u64,
}

/// Refresh period for the running sums (power of two for a cheap test).
const REFRESH: u64 = 1 << 16;

impl RunningNcc {
    /// Creates a scorer for `template`.
    pub fn new(template: &[f64]) -> Self {
        let m = template.len().max(1) as f64;
        let mt = template.iter().sum::<f64>() / m;
        let tz: Vec<f64> = template.iter().map(|&t| t - mt).collect();
        let tz_sum = tz.iter().sum();
        let t_ss = tz.iter().map(|b| b * b).sum();
        RunningNcc {
            window: RingBuf::new(template.len().max(1)),
            tz,
            tz_sum,
            t_ss,
            sum: 0.0,
            sum_sq: 0.0,
            pushes: 0,
        }
    }

    /// Template length.
    pub fn template_len(&self) -> usize {
        self.tz.len()
    }

    /// Pushes one sample; returns the window score once the window is full.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        if let Some(old) = self.window.push_evict(x) {
            self.sum += x - old;
            self.sum_sq += x * x - old * old;
        } else {
            self.sum += x;
            self.sum_sq += x * x;
        }
        self.pushes += 1;
        if self.pushes.is_multiple_of(REFRESH) {
            self.sum = self.window.iter().sum();
            self.sum_sq = self.window.iter().map(|w| w * w).sum();
        }
        if !self.window.is_full() || self.tz.is_empty() {
            return None;
        }
        let m = self.tz.len() as f64;
        let (s1, s2) = self.window.as_slices();
        let mut dot = 0.0;
        for (&w, &t) in s1.iter().chain(s2.iter()).zip(self.tz.iter()) {
            dot += w * t;
        }
        let num = dot - (self.sum / m) * self.tz_sum;
        let dw = self.sum_sq - self.sum * self.sum / m;
        Some(normalise(num, dw, self.t_ss, self.sum_sq))
    }

    /// Clears the window and running sums.
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::{chips_to_template, ncc};

    /// Deterministic LCG stream in [0, 1).
    fn noise(n: usize, mut x: f64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                x = (x * 9301.0 + 49297.0) % 1.0;
                x
            })
            .collect()
    }

    fn naive_dft(xs: &[Iq]) -> Vec<Iq> {
        let n = xs.len();
        (0..n)
            .map(|k| {
                let mut acc = Iq::ZERO;
                for (j, &x) in xs.iter().enumerate() {
                    let th = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += x * Iq::phasor(th);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let xs: Vec<Iq> = noise(n, 0.3)
                .iter()
                .zip(noise(n, 0.7).iter())
                .map(|(&a, &b)| Iq::new(a - 0.5, b - 0.5))
                .collect();
            let mut fast = xs.clone();
            fft(&mut fast).unwrap();
            for (f, d) in fast.iter().zip(naive_dft(&xs).iter()) {
                assert!((*f - *d).abs() < 1e-10, "n {n}: {f:?} vs {d:?}");
            }
        }
    }

    #[test]
    fn fft_round_trips() {
        let xs: Vec<Iq> = noise(256, 0.41)
            .iter()
            .map(|&a| Iq::new(a, 1.0 - a))
            .collect();
        let mut buf = xs.clone();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        for (y, x) in buf.iter().zip(xs.iter()) {
            assert!((*y - *x).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Iq::ZERO; 12];
        assert_eq!(fft(&mut buf), Err(FftSizeError { len: 12 }));
        assert_eq!(next_pow2(12), 16);
        assert_eq!(next_pow2(16), 16);
        assert_eq!(next_pow2(0), 1);
    }

    /// Sliding ncc oracle.
    fn sliding_ncc(signal: &[f64], template: &[f64]) -> Vec<f64> {
        (0..=signal.len() - template.len())
            .map(|p| ncc(&signal[p..p + template.len()], template))
            .collect()
    }

    #[test]
    fn fft_correlate_matches_ncc_on_random_input() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0], 8);
        let mut signal = noise(400, 0.23);
        // Embed the template (offset + gain, the envelope situation).
        for (i, &t) in template.iter().enumerate() {
            signal[137 + i] = 0.5 + 0.2 * t + 0.01 * signal[137 + i];
        }
        let fast = fft_correlate(&signal, &template);
        let exact = sliding_ncc(&signal, &template);
        assert_eq!(fast.len(), exact.len());
        let mut worst = 0.0f64;
        for (f, e) in fast.iter().zip(exact.iter()) {
            worst = worst.max((f - e).abs());
        }
        assert!(worst <= 1e-9, "worst deviation {worst:.3e}");
        // The embedded peak is found at the same place with ~the same score.
        let peak = fast
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 137);
        assert!(fast[peak] > 0.99);
    }

    #[test]
    fn fft_correlate_matches_ncc_on_flat_and_zero_variance_input() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0], 4);
        // Entirely flat signal: every window is zero-variance → all zeros.
        let flat = vec![0.7; 120];
        let fast = fft_correlate(&flat, &template);
        assert!(fast.iter().all(|&s| s == 0.0), "{fast:?}");
        assert_eq!(fast, sliding_ncc(&flat, &template));
        // Flat stretch inside an otherwise live signal.
        let mut mixed = noise(200, 0.9);
        for s in mixed[60..60 + 2 * template.len()].iter_mut() {
            *s = 0.25;
        }
        let fast = fft_correlate(&mixed, &template);
        let exact = sliding_ncc(&mixed, &template);
        for (p, (f, e)) in fast.iter().zip(exact.iter()).enumerate() {
            assert!((f - e).abs() <= 1e-9, "pos {p}: {f} vs {e}");
        }
        // Zero-variance template: ncc returns 0 everywhere, so must we.
        let flat_template = vec![1.0; 16];
        let fast = fft_correlate(&mixed, &flat_template);
        assert!(fast.iter().all(|&s| s == 0.0));
        // Zero (all-silent) signal.
        let silent = vec![0.0; 80];
        assert!(fft_correlate(&silent, &template).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn fft_correlate_degenerate_sizes() {
        assert!(fft_correlate(&[], &[1.0, 0.0]).is_empty());
        assert!(fft_correlate(&[1.0], &[]).is_empty());
        assert!(fft_correlate(&[1.0], &[1.0, 0.0]).is_empty());
        // Signal exactly one window long.
        let t = [1.0, 0.0, 1.0, 0.0];
        let s = [0.9, 0.1, 0.8, 0.2];
        let out = fft_correlate(&s, &t);
        assert_eq!(out.len(), 1);
        assert!((out[0] - ncc(&s, &t)).abs() <= 1e-9);
    }

    #[test]
    fn fft_correlate_into_reuses_workspace_bit_identically() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0], 4);
        let sig_a = noise(300, 0.11);
        let sig_b = noise(180, 0.62);
        let mut scratch = CorrelateScratch::new();
        let mut out = Vec::new();
        fft_correlate_into(&sig_a, &template, &mut scratch, &mut out);
        assert_eq!(out, fft_correlate(&sig_a, &template));
        // A shorter signal reuses the grown workspace (table regenerated
        // for the smaller transform) and still matches the one-shot path.
        fft_correlate_into(&sig_b, &template, &mut scratch, &mut out);
        assert_eq!(out, fft_correlate(&sig_b, &template));
        // And back to the original length.
        fft_correlate_into(&sig_a, &template, &mut scratch, &mut out);
        assert_eq!(out, fft_correlate(&sig_a, &template));
    }

    #[test]
    fn running_ncc_matches_ncc() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0], 6);
        let mut signal = noise(500, 0.55);
        for (i, &t) in template.iter().enumerate() {
            signal[222 + i] = 0.5 + 0.2 * t;
        }
        let mut r = RunningNcc::new(&template);
        assert_eq!(r.template_len(), template.len());
        for (i, &x) in signal.iter().enumerate() {
            match r.push(x) {
                None => assert!(i + 1 < template.len()),
                Some(score) => {
                    let p = i + 1 - template.len();
                    let exact = ncc(&signal[p..p + template.len()], &template);
                    assert!(
                        (score - exact).abs() <= 1e-9,
                        "pos {p}: {score} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn running_ncc_flat_window_scores_zero() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0], 4);
        let mut r = RunningNcc::new(&template);
        let mut last = None;
        for _ in 0..3 * template.len() {
            last = r.push(3.25);
        }
        assert_eq!(last, Some(0.0));
        r.reset();
        assert_eq!(r.push(1.0), None);
    }
}
