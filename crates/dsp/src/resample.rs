//! Fractional resampling — the model of clock-rate mismatch.
//!
//! A passive tag cannot afford a crystal; its bit clock comes from an RC
//! relaxation oscillator that is off by hundreds to thousands of ppm and
//! drifts with temperature. In the simulation, the channel produces samples
//! on the *simulator* clock and the tag consumes them on *its* clock; a
//! linear-interpolating fractional resampler converts between the two.

/// Streaming linear-interpolation resampler.
///
/// For a rate ratio `r = f_out / f_in`, each input sample may produce zero,
/// one or several output samples. Output sample `k` corresponds to input
/// position `k / r`.
#[derive(Debug, Clone)]
pub struct Resampler {
    /// Input samples consumed per output sample (`1/r`).
    step: f64,
    /// Position of the next output, in input-sample units, relative to the
    /// most recent input sample (so it lies in `(-1, 0]` when an output is
    /// pending between the previous and current input).
    next_pos: f64,
    prev: f64,
    have_prev: bool,
}

impl Resampler {
    /// Creates a resampler with rate ratio `ratio = f_out / f_in`.
    /// Non-finite or non-positive ratios are clamped to 1.
    pub fn new(ratio: f64) -> Self {
        let ratio = if ratio.is_finite() && ratio > 0.0 { ratio } else { 1.0 };
        Resampler {
            step: 1.0 / ratio,
            next_pos: 0.0,
            prev: 0.0,
            have_prev: false,
        }
    }

    /// Creates a resampler for a clock error in parts-per-million: the
    /// consumer's clock runs `ppm` fast (positive) or slow (negative)
    /// relative to the producer.
    ///
    /// A consumer clock that runs fast *samples more often*, so the output
    /// rate ratio is `1 + ppm·1e-6`.
    pub fn from_ppm(ppm: f64) -> Self {
        Resampler::new(1.0 + ppm * 1e-6)
    }

    /// The configured ratio `f_out / f_in`.
    pub fn ratio(&self) -> f64 {
        1.0 / self.step
    }

    /// Changes the rate ratio mid-stream, preserving the fractional output
    /// phase and interpolation history — the model of an oscillator whose
    /// rate *drifts* while running. Invalid ratios are ignored.
    pub fn set_ratio(&mut self, ratio: f64) {
        if ratio.is_finite() && ratio > 0.0 {
            self.step = 1.0 / ratio;
        }
    }

    /// [`set_ratio`](Resampler::set_ratio) expressed as a clock error in
    /// parts-per-million (see [`from_ppm`](Resampler::from_ppm)).
    pub fn set_ppm(&mut self, ppm: f64) {
        self.set_ratio(1.0 + ppm * 1e-6);
    }

    /// Pushes one input sample; appends any due output samples to `out`.
    pub fn push(&mut self, x: f64, out: &mut Vec<f64>) {
        if !self.have_prev {
            self.prev = x;
            self.have_prev = true;
            // First output coincides with the first input sample.
            out.push(x);
            self.next_pos = self.step - 1.0;
            self.prev = x;
            return;
        }
        // Interval covered this call: positions in (-1, 0] map linearly
        // from prev (at -1) to x (at 0).
        while self.next_pos <= 0.0 {
            let frac = self.next_pos + 1.0; // in (0, 1]
            out.push(self.prev + (x - self.prev) * frac);
            self.next_pos += self.step;
        }
        self.next_pos -= 1.0;
        self.prev = x;
    }

    /// Processes a whole block.
    pub fn process_block(&mut self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity((xs.len() as f64 * self.ratio()) as usize + 2);
        for &x in xs {
            self.push(x, &mut out);
        }
        out
    }

    /// Resets phase and history.
    pub fn reset(&mut self) {
        self.next_pos = 0.0;
        self.have_prev = false;
        self.prev = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_ratio_is_identity() {
        let mut r = Resampler::new(1.0);
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys = r.process_block(&xs);
        assert_eq!(ys.len(), xs.len());
        for (y, x) in ys.iter().zip(xs.iter()) {
            assert!((y - x).abs() < 1e-12);
        }
    }

    #[test]
    fn output_count_matches_ratio() {
        for &ratio in &[0.5, 0.9, 1.1, 2.0, 3.7] {
            let mut r = Resampler::new(ratio);
            let n = 10_000;
            let xs = vec![1.0; n];
            let ys = r.process_block(&xs);
            // Outputs span the (n−1) input intervals plus the initial sample.
            let expected = ((n - 1) as f64 * ratio).floor() as i64 + 1;
            assert!(
                (ys.len() as i64 - expected).abs() <= 1,
                "ratio {ratio}: {} vs {expected}",
                ys.len()
            );
        }
    }

    #[test]
    fn interpolates_a_ramp_exactly() {
        // Linear interpolation reproduces a linear signal exactly.
        let mut r = Resampler::new(1.6);
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys = r.process_block(&xs);
        for (k, &y) in ys.iter().enumerate() {
            let expect = k as f64 / 1.6;
            assert!(
                (y - expect).abs() < 1e-9,
                "output {k}: {y} vs {expect}"
            );
        }
    }

    #[test]
    fn ppm_offsets_accumulate() {
        // +1000 ppm over 1e5 samples ⇒ ~100 extra samples.
        let mut r = Resampler::from_ppm(1000.0);
        let ys = r.process_block(&vec![0.0; 100_000]);
        assert!(
            (ys.len() as i64 - 100_100).abs() <= 2,
            "{} samples",
            ys.len()
        );
    }

    #[test]
    fn negative_ppm_drops_samples() {
        let mut r = Resampler::from_ppm(-1000.0);
        let ys = r.process_block(&vec![0.0; 100_000]);
        assert!(
            (ys.len() as i64 - 99_900).abs() <= 2,
            "{} samples",
            ys.len()
        );
    }

    #[test]
    fn invalid_ratio_clamps_to_identity() {
        let r = Resampler::new(f64::NAN);
        assert_eq!(r.ratio(), 1.0);
        let r = Resampler::new(-2.0);
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn set_ratio_preserves_phase_and_history() {
        // Feeding a ramp while stepping the ratio must stay continuous:
        // linear interpolation of a linear signal is exact regardless of
        // when the rate changes.
        let mut r = Resampler::new(1.0);
        let mut out = Vec::new();
        for i in 0..200 {
            if i == 100 {
                r.set_ppm(50_000.0); // 5% fast from here on
            }
            r.push(i as f64, &mut out);
        }
        assert!(out.len() > 200, "fast clock must emit extra samples");
        for w in out.windows(2) {
            let d = w[1] - w[0];
            assert!(
                d > 0.0 && d <= 1.0 + 1e-9,
                "discontinuity after rate change: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn set_ratio_rejects_invalid() {
        let mut r = Resampler::new(1.25);
        r.set_ratio(f64::NAN);
        r.set_ratio(0.0);
        r.set_ratio(-1.0);
        assert_eq!(r.ratio(), 1.25);
    }

    #[test]
    fn preserves_slow_sine_shape() {
        // Resampling at 1.003 must not distort a slow sine (max error small).
        let mut r = Resampler::new(1.003);
        let xs: Vec<f64> = (0..5000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 500.0).sin())
            .collect();
        let ys = r.process_block(&xs);
        for (k, &y) in ys.iter().enumerate().skip(1) {
            let t = k as f64 / 1.003;
            let expect = (2.0 * std::f64::consts::PI * t / 500.0).sin();
            assert!((y - expect).abs() < 1e-3, "sample {k}");
        }
    }
}
