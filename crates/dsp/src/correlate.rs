//! Normalised correlation and streaming preamble search.
//!
//! Frame synchronisation in a backscatter receiver happens on the envelope
//! stream: the transmitter prepends a known alternating preamble, and the
//! receiver slides a zero-mean template across the incoming envelope. The
//! zero-mean, unit-norm formulation makes the detector invariant to both the
//! large DC ambient level and the unknown modulation depth — exactly the two
//! nuisance parameters of an envelope-detected backscatter link.

use crate::ringbuf::RingBuf;

/// Zero-mean normalised cross-correlation of `window` against `template`.
///
/// Returns a value in `[-1, 1]` (Pearson correlation). Returns 0 when either
/// side has zero variance (flat signal can never sync) or lengths mismatch.
pub fn ncc(window: &[f64], template: &[f64]) -> f64 {
    if window.len() != template.len() || window.is_empty() {
        return 0.0;
    }
    let n = window.len() as f64;
    let mw = window.iter().sum::<f64>() / n;
    let mt = template.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dw = 0.0;
    let mut dt = 0.0;
    for (&w, &t) in window.iter().zip(template.iter()) {
        let a = w - mw;
        let b = t - mt;
        num += a * b;
        dw += a * a;
        dt += b * b;
    }
    let den = (dw * dt).sqrt();
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Outcome of feeding one sample to a [`PreambleSearcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncEvent {
    /// Still hunting; no decision this sample.
    Searching,
    /// The correlation peak was confirmed `lag` samples ago; the payload
    /// starts at the *next* sample. `score` is the peak correlation.
    Locked {
        /// Samples elapsed since the true peak position.
        lag: usize,
        /// Peak normalised correlation value.
        score: f64,
        /// Peak-to-sidelobe ratio of the correlation trajectory (see
        /// [`PreambleSearcher::with_shape_gate`]); `f64::INFINITY` when
        /// there was no off-peak history to compare against.
        sharpness: f64,
    },
    /// A candidate peak cleared the threshold but failed the peak-shape
    /// gate — broad or multi-modal trajectories are what overlapping
    /// transmitters produce, so the searcher discards the peak and re-arms
    /// itself rather than reporting a false lock.
    Rejected {
        /// Peak correlation of the discarded candidate.
        score: f64,
        /// Its (failing) peak-to-sidelobe ratio.
        sharpness: f64,
    },
}

/// Streaming preamble detector.
///
/// Feeds envelope samples one at a time; once the sliding normalised
/// correlation against the template exceeds `threshold`, the searcher keeps
/// tracking until the correlation peaks (starts to fall) and then reports a
/// [`SyncEvent::Locked`] carrying how many samples ago the peak occurred, so
/// the caller can align bit boundaries retroactively.
#[derive(Debug, Clone)]
pub struct PreambleSearcher {
    template: Vec<f64>,
    window: RingBuf<f64>,
    threshold: f64,
    best: f64,
    rising: bool,
    since_best: usize,
    last_score: f64,
    /// Correlation trajectory over the last `template.len()` samples, used
    /// to judge peak shape at declaration time.
    scores: RingBuf<f64>,
    /// Minimum peak-to-sidelobe ratio a candidate must reach; values
    /// ≤ 1.0 disable the gate (a ratio of 1.0 is unreachable only by the
    /// peak sample itself).
    min_sharpness: f64,
    /// Half-width (in samples) of the main-lobe region excluded from the
    /// sidelobe estimate.
    peak_guard: usize,
    last_sharpness: f64,
}

impl PreambleSearcher {
    /// Creates a searcher for `template` with detection `threshold`
    /// (sensible values: 0.6–0.9). The template must contain at least two
    /// distinct values; a flat template never locks.
    pub fn new(template: Vec<f64>, threshold: f64) -> Self {
        let window = RingBuf::new(template.len().max(1));
        let scores = RingBuf::new(template.len().max(4));
        let peak_guard = (template.len() / 8).max(2);
        PreambleSearcher {
            template,
            window,
            threshold: threshold.clamp(0.0, 1.0),
            best: 0.0,
            rising: false,
            since_best: 0,
            last_score: 0.0,
            scores,
            min_sharpness: 0.0,
            peak_guard,
            last_sharpness: f64::INFINITY,
        }
    }

    /// Enables the peak-*shape* discriminator: a candidate peak is accepted
    /// only when its correlation is at least `min_sharpness` times the
    /// largest |correlation| observed more than `peak_guard` samples away
    /// from the peak (within the last template-length of trajectory).
    ///
    /// A lone preamble produces one sharp main lobe — away from it the
    /// correlation collapses to the template's (deliberately low)
    /// autocorrelation sidelobes. Overlapping transmitters produce broad,
    /// multi-modal trajectories whose off-peak level stays comparable to
    /// the peak, so their ratio hugs 1. Values ≤ 1.0 disable the gate.
    pub fn with_shape_gate(mut self, min_sharpness: f64, peak_guard: usize) -> Self {
        self.min_sharpness = min_sharpness;
        self.peak_guard = peak_guard.max(1);
        self
    }

    /// Length of the template in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }

    /// Correlation score of the most recent sample (0 until the window
    /// fills). Diagnostics: lets callers observe sub-threshold peaks that
    /// never produce a lock.
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Peak-to-sidelobe ratio of the most recently declared candidate
    /// (locked *or* rejected); `f64::INFINITY` before any declaration.
    pub fn last_sharpness(&self) -> f64 {
        self.last_sharpness
    }

    /// Peak-to-sidelobe ratio of the current trajectory: `best` over the
    /// largest |score| recorded more than `peak_guard` samples before the
    /// peak. The few post-peak samples (≤ the declaration lag) always fall
    /// inside the guard.
    fn sharpness_at_peak(&self) -> f64 {
        let n = self.scores.len();
        // Index of the peak inside the score ring (newest entry is n-1 and
        // trails the peak by `since_best` samples).
        let Some(peak_idx) = (n - 1).checked_sub(self.since_best) else {
            return f64::INFINITY;
        };
        let mut sidelobe = 0.0f64;
        let mut seen = false;
        for (i, s) in self.scores.iter().enumerate() {
            if peak_idx.abs_diff(i) > self.peak_guard {
                sidelobe = sidelobe.max(s.abs());
                seen = true;
            }
        }
        if !seen || sidelobe <= 0.0 {
            return f64::INFINITY;
        }
        self.best / sidelobe
    }

    /// Pushes one envelope sample.
    pub fn process(&mut self, x: f64) -> SyncEvent {
        self.window.push_evict(x);
        if !self.window.is_full() {
            return SyncEvent::Searching;
        }
        let buf: Vec<f64> = self.window.iter().collect();
        let score = ncc(&buf, &self.template);
        self.last_score = score;
        self.scores.push_evict(score);
        if self.rising {
            if score > self.best {
                self.best = score;
                self.since_best = 0;
                SyncEvent::Searching
            } else {
                self.since_best += 1;
                // Declare the peak once the correlation has fallen for a few
                // samples (guards against plateau jitter).
                if self.since_best >= 2 || score < self.threshold {
                    let sharpness = self.sharpness_at_peak();
                    self.last_sharpness = sharpness;
                    let best = self.best;
                    if sharpness < self.min_sharpness {
                        // Broad/multi-modal peak: discard it and skip past
                        // the junk region entirely.
                        self.rearm();
                        SyncEvent::Rejected { score: best, sharpness }
                    } else {
                        let ev = SyncEvent::Locked {
                            lag: self.since_best,
                            score: best,
                            sharpness,
                        };
                        self.reset();
                        ev
                    }
                } else {
                    SyncEvent::Searching
                }
            }
        } else if score >= self.threshold {
            self.rising = true;
            self.best = score;
            self.since_best = 0;
            SyncEvent::Searching
        } else {
            SyncEvent::Searching
        }
    }

    /// Returns to the hunting state (also called internally after a lock).
    pub fn reset(&mut self) {
        self.best = 0.0;
        self.rising = false;
        self.since_best = 0;
        // Window intentionally kept: a new frame may follow immediately.
    }

    /// Re-arms the searcher after a lock was taken (or rejected by a
    /// downstream verifier): clears the peak-tracking state *and* the
    /// sample window, so the decaying tail of the discarded peak cannot
    /// immediately re-trigger a lock on the same energy. The window must
    /// refill (one template length) before the next declaration — during a
    /// back-to-back frame that refill happens over the new preamble itself,
    /// so nothing is lost.
    pub fn rearm(&mut self) {
        self.reset();
        self.window.clear();
        self.scores.clear();
        self.last_score = 0.0;
    }

    /// Clears everything including the sample window.
    pub fn hard_reset(&mut self) {
        self.rearm();
        self.last_sharpness = f64::INFINITY;
    }
}

/// Builds an envelope-domain template for a chip pattern: each chip becomes
/// `sps` samples of its level.
pub fn chips_to_template(chips: &[f64], sps: usize) -> Vec<f64> {
    let sps = sps.max(1);
    let mut out = Vec::with_capacity(chips.len() * sps);
    for &c in chips {
        for _ in 0..sps {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncc_perfect_match_is_one() {
        let t = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        assert!((ncc(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_inverted_is_minus_one() {
        let t = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let inv: Vec<f64> = t.iter().map(|x| 1.0 - x).collect();
        assert!((ncc(&inv, &t) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_invariant_to_gain_and_offset() {
        let t = [1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        let scaled: Vec<f64> = t.iter().map(|x| 100.0 + 0.003 * x).collect();
        assert!((ncc(&scaled, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ncc_flat_window_is_zero() {
        let t = [1.0, 0.0, 1.0];
        assert_eq!(ncc(&[5.0, 5.0, 5.0], &t), 0.0);
        assert_eq!(ncc(&[1.0, 2.0], &t), 0.0); // length mismatch
    }

    #[test]
    fn searcher_locks_on_embedded_preamble() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let sps = 4;
        let template = chips_to_template(&chips, sps);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);

        // 30 samples of flat carrier, then the preamble, then payload-ish.
        let mut stream: Vec<f64> = vec![0.5; 30];
        stream.extend(template.iter().map(|x| 0.5 + 0.2 * x));
        stream.extend(vec![0.5; 20]);

        let mut locked_at = None;
        for (i, &x) in stream.iter().enumerate() {
            if let SyncEvent::Locked { lag, score, .. } = s.process(x) {
                assert!(score > 0.9, "weak lock {score}");
                locked_at = Some(i - lag);
                break;
            }
        }
        let peak = locked_at.expect("no lock");
        // True peak: window ends exactly at preamble end = 30 + template.len() - 1.
        let expected = 30 + template.len() - 1;
        assert!(
            (peak as i64 - expected as i64).abs() <= 1,
            "peak {peak} expected {expected}"
        );
    }

    #[test]
    fn searcher_ignores_noise_below_threshold() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 4);
        let mut s = PreambleSearcher::new(template, 0.8);
        // Deterministic pseudo-noise unrelated to the template.
        let mut x = 0.37;
        for _ in 0..2000 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            if let SyncEvent::Locked { score, .. } = s.process(x) {
                // Occasional weak random locks would indicate a broken threshold.
                panic!("false lock at score {score}");
            }
        }
    }

    /// A sharp-autocorrelation chip pattern with its envelope rendering.
    fn test_stream(template: &[f64], idle: usize) -> Vec<f64> {
        let mut stream: Vec<f64> = vec![0.5; idle];
        stream.extend(template.iter().map(|x| 0.5 + 0.2 * x));
        stream
    }

    #[test]
    fn searcher_relocks_after_rearm() {
        // Two preambles in one stream: the searcher must lock on both once
        // re-armed between them.
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);
        let mut stream = test_stream(&template, 30);
        stream.extend(vec![0.5; 60]);
        stream.extend(test_stream(&template, 0));
        stream.extend(vec![0.5; 20]);

        let mut locks = Vec::new();
        for (i, &x) in stream.iter().enumerate() {
            if let SyncEvent::Locked { lag, score, .. } = s.process(x) {
                locks.push((i - lag, score));
                s.rearm();
            }
        }
        assert_eq!(locks.len(), 2, "locks: {locks:?}");
        let first = 30 + template.len() - 1;
        let second = first + 60 + template.len();
        assert!((locks[0].0 as i64 - first as i64).abs() <= 1, "{locks:?}");
        assert!((locks[1].0 as i64 - second as i64).abs() <= 1, "{locks:?}");
        assert!(locks.iter().all(|&(_, sc)| sc > 0.9));
    }

    #[test]
    fn rearm_clears_peak_tail() {
        // Without rearm, the decaying tail of a declared peak stays above
        // threshold and immediately re-triggers a bogus second lock; after
        // rearm() the window must refill before any new declaration.
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);
        let mut stream = test_stream(&template, 30);
        stream.extend(vec![0.5; 10]);
        let mut it = stream.iter();
        for &x in it.by_ref() {
            if matches!(s.process(x), SyncEvent::Locked { .. }) {
                break;
            }
        }
        s.rearm();
        for &x in it {
            assert_eq!(
                s.process(x),
                SyncEvent::Searching,
                "spurious re-lock on the peak tail"
            );
        }
    }

    #[test]
    fn shape_gate_passes_sharp_peak() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let mut s =
            PreambleSearcher::new(template.clone(), 0.7).with_shape_gate(1.2, 8);
        let mut stream = test_stream(&template, 60);
        stream.extend(vec![0.5; 20]);
        let mut locked = false;
        for &x in &stream {
            match s.process(x) {
                SyncEvent::Locked { sharpness, .. } => {
                    assert!(sharpness > 1.2, "sharp peak scored {sharpness}");
                    locked = true;
                }
                SyncEvent::Rejected { sharpness, .. } => {
                    panic!("sharp peak rejected at sharpness {sharpness}")
                }
                SyncEvent::Searching => {}
            }
        }
        assert!(locked, "gate swallowed a clean preamble");
    }

    #[test]
    fn shape_gate_rejects_broad_peak() {
        // A slow raised-cosine bump loosely resembling the template's DC
        // profile: its correlation trajectory is broad (stays near its
        // maximum for many samples), which is the collision signature.
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let n = template.len();
        // Overlap two copies of the preamble offset by a third of its
        // length — the multi-modal "equal-power collision" shape.
        let mut stream = vec![0.5f64; 40];
        let offset = n / 3;
        for i in 0..n + offset {
            let a = if i < n { template[i] } else { 0.0 };
            let b = if i >= offset { template[i - offset] } else { 0.0 };
            stream.push(0.5 + 0.1 * a + 0.1 * b);
        }
        stream.extend(vec![0.5; 40]);

        // Gate off: the blend must produce at least one candidate (that is
        // the false-lock failure mode this test encodes).
        let mut plain = PreambleSearcher::new(template.clone(), 0.55);
        let mut candidates = 0;
        for &x in &stream {
            if matches!(plain.process(x), SyncEvent::Locked { .. }) {
                candidates += 1;
                plain.rearm();
            }
        }
        assert!(candidates > 0, "collision blend never crossed threshold");

        // Gate on: every candidate from the blend must be rejected.
        let mut gated =
            PreambleSearcher::new(template, 0.55).with_shape_gate(1.2, 8);
        for &x in &stream {
            if let SyncEvent::Locked { sharpness, score, .. } = gated.process(x) {
                panic!("collision blend locked: score {score} sharpness {sharpness}");
            }
        }
    }

    #[test]
    fn chips_to_template_expands() {
        assert_eq!(chips_to_template(&[1.0, 0.0], 3), vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(chips_to_template(&[1.0], 0), vec![1.0]); // sps clamped
    }
}
