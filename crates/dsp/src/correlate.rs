//! Normalised correlation and streaming preamble search.
//!
//! Frame synchronisation in a backscatter receiver happens on the envelope
//! stream: the transmitter prepends a known alternating preamble, and the
//! receiver slides a zero-mean template across the incoming envelope. The
//! zero-mean, unit-norm formulation makes the detector invariant to both the
//! large DC ambient level and the unknown modulation depth — exactly the two
//! nuisance parameters of an envelope-detected backscatter link.

use crate::fft::{fft_correlate_into, CorrelateScratch};
use crate::ringbuf::RingBuf;

/// Zero-mean normalised cross-correlation of `window` against `template`.
///
/// Returns a value in `[-1, 1]` (Pearson correlation). Returns 0 when either
/// side has zero variance (flat signal can never sync) or lengths mismatch.
pub fn ncc(window: &[f64], template: &[f64]) -> f64 {
    if window.len() != template.len() || window.is_empty() {
        return 0.0;
    }
    let n = window.len() as f64;
    let mw = window.iter().sum::<f64>() / n;
    let mt = template.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dw = 0.0;
    let mut dt = 0.0;
    for (&w, &t) in window.iter().zip(template.iter()) {
        let a = w - mw;
        let b = t - mt;
        num += a * b;
        dw += a * a;
        dt += b * b;
    }
    let den = (dw * dt).sqrt();
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Safety margin around the detection threshold when screening with
/// [`fft_correlate`]: the FFT scores match the exact streaming scores to
/// ≤ 1e-9 (asserted by the `fft` module's conformance tests), so three
/// orders of magnitude of slack makes a missed crossing implausible — and
/// [`PreambleSearcher::fast_forward`] still re-derives the exact score for
/// any candidate the screen leaves in doubt.
const SCREEN_EPS: f64 = 1e-6;

/// Mean and centred sum of squares of a template, accumulated in the same
/// index order as [`ncc`] so downstream scores stay bit-identical to it.
fn template_stats(template: &[f64]) -> (f64, f64) {
    if template.is_empty() {
        return (0.0, 0.0);
    }
    let mt = template.iter().sum::<f64>() / template.len() as f64;
    let mut ss = 0.0;
    for &t in template {
        let b = t - mt;
        ss += b * b;
    }
    (mt, ss)
}

/// Outcome of feeding one sample to a [`PreambleSearcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncEvent {
    /// Still hunting; no decision this sample.
    Searching,
    /// The correlation peak was confirmed `lag` samples ago; the payload
    /// starts at the *next* sample. `score` is the peak correlation.
    Locked {
        /// Samples elapsed since the true peak position.
        lag: usize,
        /// Peak normalised correlation value.
        score: f64,
        /// Peak-to-sidelobe ratio of the correlation trajectory (see
        /// [`PreambleSearcher::with_shape_gate`]); `f64::INFINITY` when
        /// there was no off-peak history to compare against.
        sharpness: f64,
    },
    /// A candidate peak cleared the threshold but failed the peak-shape
    /// gate — broad or multi-modal trajectories are what overlapping
    /// transmitters produce, so the searcher discards the peak and re-arms
    /// itself rather than reporting a false lock.
    Rejected {
        /// Peak correlation of the discarded candidate.
        score: f64,
        /// Its (failing) peak-to-sidelobe ratio.
        sharpness: f64,
    },
}

/// Streaming preamble detector.
///
/// Feeds envelope samples one at a time; once the sliding normalised
/// correlation against the template exceeds `threshold`, the searcher keeps
/// tracking until the correlation peaks (starts to fall) and then reports a
/// [`SyncEvent::Locked`] carrying how many samples ago the peak occurred, so
/// the caller can align bit boundaries retroactively.
#[derive(Debug, Clone)]
pub struct PreambleSearcher {
    template: Vec<f64>,
    /// Template mean, fixed at construction — the template never changes,
    /// so recomputing it per push (as [`ncc`] must for arbitrary inputs)
    /// is pure waste in the streaming path.
    template_mean: f64,
    /// Template centred sum of squares `Σ(t−t̄)²`, fixed at construction.
    template_ss: f64,
    window: RingBuf<f64>,
    threshold: f64,
    best: f64,
    rising: bool,
    since_best: usize,
    last_score: f64,
    /// Correlation trajectory over the last `template.len()` samples, used
    /// to judge peak shape at declaration time.
    scores: RingBuf<f64>,
    /// Minimum peak-to-sidelobe ratio a candidate must reach; values
    /// ≤ 1.0 disable the gate (a ratio of 1.0 is unreachable only by the
    /// peak sample itself).
    min_sharpness: f64,
    /// Half-width (in samples) of the main-lobe region excluded from the
    /// sidelobe estimate.
    peak_guard: usize,
    last_sharpness: f64,
    /// Reused by [`fast_forward`](PreambleSearcher::fast_forward) for the
    /// window-prefix + block sequence handed to the FFT screen.
    seq_scratch: Vec<f64>,
    /// FFT workspace for the screen — owned by the searcher so steady-state
    /// acquisition scans perform no heap allocations.
    fft_scratch: CorrelateScratch,
    /// Screen score output buffer, reused across `fast_forward` calls.
    fft_scores: Vec<f64>,
}

impl PreambleSearcher {
    /// Creates a searcher for `template` with detection `threshold`
    /// (sensible values: 0.6–0.9). The template must contain at least two
    /// distinct values; a flat template never locks.
    pub fn new(template: Vec<f64>, threshold: f64) -> Self {
        let window = RingBuf::new(template.len().max(1));
        let scores = RingBuf::new(template.len().max(4));
        let peak_guard = (template.len() / 8).max(2);
        let (template_mean, template_ss) = template_stats(&template);
        PreambleSearcher {
            template,
            template_mean,
            template_ss,
            window,
            threshold: threshold.clamp(0.0, 1.0),
            best: 0.0,
            rising: false,
            since_best: 0,
            last_score: 0.0,
            scores,
            min_sharpness: 0.0,
            peak_guard,
            last_sharpness: f64::INFINITY,
            seq_scratch: Vec::new(),
            fft_scratch: CorrelateScratch::new(),
            fft_scores: Vec::new(),
        }
    }

    /// Enables the peak-*shape* discriminator: a candidate peak is accepted
    /// only when its correlation is at least `min_sharpness` times the
    /// largest |correlation| observed more than `peak_guard` samples away
    /// from the peak (within the last template-length of trajectory).
    ///
    /// A lone preamble produces one sharp main lobe — away from it the
    /// correlation collapses to the template's (deliberately low)
    /// autocorrelation sidelobes. Overlapping transmitters produce broad,
    /// multi-modal trajectories whose off-peak level stays comparable to
    /// the peak, so their ratio hugs 1. Values ≤ 1.0 disable the gate.
    pub fn with_shape_gate(mut self, min_sharpness: f64, peak_guard: usize) -> Self {
        self.min_sharpness = min_sharpness;
        self.peak_guard = peak_guard.max(1);
        self
    }

    /// Length of the template in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }

    /// Correlation score of the most recent sample (0 until the window
    /// fills). Diagnostics: lets callers observe sub-threshold peaks that
    /// never produce a lock.
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Peak-to-sidelobe ratio of the most recently declared candidate
    /// (locked *or* rejected); `f64::INFINITY` before any declaration.
    pub fn last_sharpness(&self) -> f64 {
        self.last_sharpness
    }

    /// Peak-to-sidelobe ratio of the current trajectory: `best` over the
    /// largest |score| recorded more than `peak_guard` samples before the
    /// peak. The few post-peak samples (≤ the declaration lag) always fall
    /// inside the guard.
    fn sharpness_at_peak(&self) -> f64 {
        let n = self.scores.len();
        // Index of the peak inside the score ring (newest entry is n-1 and
        // trails the peak by `since_best` samples).
        let Some(peak_idx) = (n - 1).checked_sub(self.since_best) else {
            return f64::INFINITY;
        };
        let mut sidelobe = 0.0f64;
        let mut seen = false;
        for (i, s) in self.scores.iter().enumerate() {
            if peak_idx.abs_diff(i) > self.peak_guard {
                sidelobe = sidelobe.max(s.abs());
                seen = true;
            }
        }
        if !seen || sidelobe <= 0.0 {
            return f64::INFINITY;
        }
        self.best / sidelobe
    }

    /// Correlation of the current (full) window against the template,
    /// computed over the ring's two contiguous slices — no per-push
    /// allocation, no per-element modulo. The summation order matches
    /// collecting the window into a `Vec` and calling [`ncc`] term for
    /// term, so the result is bit-identical to that reference.
    fn score_current(&self) -> f64 {
        let n = self.template.len();
        if n == 0 || self.window.len() != n {
            return 0.0;
        }
        let (s1, s2) = self.window.as_slices();
        let mut sum = 0.0;
        for &w in s1 {
            sum += w;
        }
        for &w in s2 {
            sum += w;
        }
        let mw = sum / n as f64;
        let mt = self.template_mean;
        let mut num = 0.0;
        let mut dw = 0.0;
        for (&w, &t) in s1.iter().chain(s2.iter()).zip(self.template.iter()) {
            let a = w - mw;
            let b = t - mt;
            num += a * b;
            dw += a * a;
        }
        let den = (dw * self.template_ss).sqrt();
        if den <= 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Pushes one envelope sample.
    pub fn process(&mut self, x: f64) -> SyncEvent {
        self.window.push_evict(x);
        if !self.window.is_full() {
            return SyncEvent::Searching;
        }
        let score = self.score_current();
        self.last_score = score;
        self.scores.push_evict(score);
        if self.rising {
            if score > self.best {
                self.best = score;
                self.since_best = 0;
                SyncEvent::Searching
            } else {
                self.since_best += 1;
                // Declare the peak once the correlation has fallen for a few
                // samples (guards against plateau jitter).
                if self.since_best >= 2 || score < self.threshold {
                    let sharpness = self.sharpness_at_peak();
                    self.last_sharpness = sharpness;
                    let best = self.best;
                    if sharpness < self.min_sharpness {
                        // Broad/multi-modal peak: discard it and skip past
                        // the junk region entirely.
                        self.rearm();
                        SyncEvent::Rejected { score: best, sharpness }
                    } else {
                        let ev = SyncEvent::Locked {
                            lag: self.since_best,
                            score: best,
                            sharpness,
                        };
                        self.reset();
                        ev
                    }
                } else {
                    SyncEvent::Searching
                }
            }
        } else if score >= self.threshold {
            self.rising = true;
            self.best = score;
            self.since_best = 0;
            SyncEvent::Searching
        } else {
            SyncEvent::Searching
        }
    }

    /// `true` while the searcher is tracking a super-threshold candidate
    /// peak (a stage-1 declaration is pending).
    pub fn is_tracking(&self) -> bool {
        self.rising
    }

    /// `true` once the correlation window is fully populated.
    pub fn primed(&self) -> bool {
        self.window.is_full()
    }

    /// Fast-forwards the searcher over the longest prefix of `smoothed`
    /// that provably yields only sub-threshold [`SyncEvent::Searching`]
    /// outcomes, using [`fft_correlate`] as an O(N log N) screen instead
    /// of the O(N·M) per-sample sliding correlation.
    ///
    /// Returns `(skipped, peak)`: the number of leading samples consumed
    /// and the exact maximum correlation score over them
    /// (`f64::NEG_INFINITY` when nothing was skipped). After the call the
    /// searcher behaves byte-identically to having fed those samples
    /// through [`process`](PreambleSearcher::process) one at a time: the
    /// sample window and `last_score` are advanced exactly, and the skip
    /// always stops at least one template length before any possible
    /// threshold crossing (and before the end of `smoothed`) so that the
    /// per-sample calls that must follow refill the score-trajectory ring
    /// before the peak-shape gate can read it.
    ///
    /// The screen is conservative: positions whose FFT score comes within
    /// [`SCREEN_EPS`] of the threshold are treated as crossings, and the
    /// exact streaming score is re-derived (via [`ncc`], to which it is
    /// bit-identical) for every position that could hold the skipped
    /// region's maximum. If an exact score in the "dead" region turns out
    /// to reach the threshold anyway, the call refuses to skip.
    pub fn fast_forward(&mut self, smoothed: &[f64]) -> (usize, f64) {
        let m = self.template.len();
        if self.rising || m < 2 || !self.window.is_full() || smoothed.len() < 2 * m {
            return (0, f64::NEG_INFINITY);
        }
        // The window holds exactly `m` samples; dropping the oldest one
        // makes `seq[i..i + m]` the window ending at `smoothed[i]`.
        self.seq_scratch.clear();
        let (s1, s2) = self.window.as_slices();
        self.seq_scratch.extend(s1.iter().chain(s2.iter()).skip(1));
        self.seq_scratch.extend_from_slice(smoothed);
        fft_correlate_into(
            &self.seq_scratch,
            &self.template,
            &mut self.fft_scratch,
            &mut self.fft_scores,
        );
        let scores = &self.fft_scores;
        debug_assert_eq!(scores.len(), smoothed.len());
        let arm = self.threshold - SCREEN_EPS;
        let skip = match scores.iter().position(|&s| s >= arm) {
            Some(j) => (j + 1).saturating_sub(m),
            None => smoothed.len() - m,
        };
        if skip == 0 {
            return (0, f64::NEG_INFINITY);
        }
        // Exact maximum over the skipped region: exact and FFT scores
        // agree within SCREEN_EPS, so only positions within twice that of
        // the FFT maximum can hold the exact maximum.
        let mut fft_max = f64::NEG_INFINITY;
        for &s in &scores[..skip] {
            fft_max = fft_max.max(s);
        }
        let mut peak = f64::NEG_INFINITY;
        for (i, &s) in scores[..skip].iter().enumerate() {
            if s >= fft_max - 2.0 * SCREEN_EPS {
                peak = peak.max(ncc(&self.seq_scratch[i..i + m], &self.template));
            }
        }
        if peak >= self.threshold {
            // Screen bound violated: an exact score crosses inside the
            // region the FFT called dead. Decline and let the per-sample
            // path adjudicate it.
            return (0, f64::NEG_INFINITY);
        }
        let last = ncc(&self.seq_scratch[skip - 1..skip - 1 + m], &self.template);
        for i in 0..skip {
            self.window.push_evict(self.seq_scratch[m - 1 + i]);
        }
        self.last_score = last;
        (skip, peak)
    }

    /// Returns to the hunting state (also called internally after a lock).
    pub fn reset(&mut self) {
        self.best = 0.0;
        self.rising = false;
        self.since_best = 0;
        // Window intentionally kept: a new frame may follow immediately.
    }

    /// Re-arms the searcher after a lock was taken (or rejected by a
    /// downstream verifier): clears the peak-tracking state *and* the
    /// sample window, so the decaying tail of the discarded peak cannot
    /// immediately re-trigger a lock on the same energy. The window must
    /// refill (one template length) before the next declaration — during a
    /// back-to-back frame that refill happens over the new preamble itself,
    /// so nothing is lost.
    pub fn rearm(&mut self) {
        self.reset();
        self.window.clear();
        self.scores.clear();
        self.last_score = 0.0;
    }

    /// Clears everything including the sample window.
    pub fn hard_reset(&mut self) {
        self.rearm();
        self.last_sharpness = f64::INFINITY;
    }
}

/// Builds an envelope-domain template for a chip pattern: each chip becomes
/// `sps` samples of its level.
pub fn chips_to_template(chips: &[f64], sps: usize) -> Vec<f64> {
    let sps = sps.max(1);
    let mut out = Vec::with_capacity(chips.len() * sps);
    for &c in chips {
        for _ in 0..sps {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncc_perfect_match_is_one() {
        let t = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        assert!((ncc(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_inverted_is_minus_one() {
        let t = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let inv: Vec<f64> = t.iter().map(|x| 1.0 - x).collect();
        assert!((ncc(&inv, &t) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_invariant_to_gain_and_offset() {
        let t = [1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        let scaled: Vec<f64> = t.iter().map(|x| 100.0 + 0.003 * x).collect();
        assert!((ncc(&scaled, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ncc_flat_window_is_zero() {
        let t = [1.0, 0.0, 1.0];
        assert_eq!(ncc(&[5.0, 5.0, 5.0], &t), 0.0);
        assert_eq!(ncc(&[1.0, 2.0], &t), 0.0); // length mismatch
    }

    #[test]
    fn searcher_locks_on_embedded_preamble() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let sps = 4;
        let template = chips_to_template(&chips, sps);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);

        // 30 samples of flat carrier, then the preamble, then payload-ish.
        let mut stream: Vec<f64> = vec![0.5; 30];
        stream.extend(template.iter().map(|x| 0.5 + 0.2 * x));
        stream.extend(vec![0.5; 20]);

        let mut locked_at = None;
        for (i, &x) in stream.iter().enumerate() {
            if let SyncEvent::Locked { lag, score, .. } = s.process(x) {
                assert!(score > 0.9, "weak lock {score}");
                locked_at = Some(i - lag);
                break;
            }
        }
        let peak = locked_at.expect("no lock");
        // True peak: window ends exactly at preamble end = 30 + template.len() - 1.
        let expected = 30 + template.len() - 1;
        assert!(
            (peak as i64 - expected as i64).abs() <= 1,
            "peak {peak} expected {expected}"
        );
    }

    #[test]
    fn searcher_ignores_noise_below_threshold() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 4);
        let mut s = PreambleSearcher::new(template, 0.8);
        // Deterministic pseudo-noise unrelated to the template.
        let mut x = 0.37;
        for _ in 0..2000 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            if let SyncEvent::Locked { score, .. } = s.process(x) {
                // Occasional weak random locks would indicate a broken threshold.
                panic!("false lock at score {score}");
            }
        }
    }

    /// Drives `screened` through `stream` using `fast_forward` wherever it
    /// will take samples (per-sample otherwise), mirroring what a block
    /// receiver does, and asserts every observable against a pure
    /// per-sample `reference` fed the same stream.
    fn assert_fast_forward_matches(template: &[f64], threshold: f64, stream: &[f64]) {
        let mut reference = PreambleSearcher::new(template.to_vec(), threshold);
        let mut screened = reference.clone();
        let m = template.len();

        let mut ref_events = Vec::new();
        let mut ref_peak = f64::NEG_INFINITY;
        for &x in stream {
            let ev = reference.process(x);
            ref_peak = ref_peak.max(reference.last_score());
            if ev != SyncEvent::Searching {
                ref_events.push(ev);
            }
        }

        let mut scr_events = Vec::new();
        let mut scr_peak = f64::NEG_INFINITY;
        let mut i = 0;
        while i < stream.len() {
            let (skip, peak) = screened.fast_forward(&stream[i..]);
            if skip > 0 {
                scr_peak = scr_peak.max(peak);
                i += skip;
                continue;
            }
            // Dead prefix exhausted: step one template length per-sample,
            // as the block receiver does around a candidate region.
            let run = m.min(stream.len() - i);
            for &x in &stream[i..i + run] {
                let ev = screened.process(x);
                scr_peak = scr_peak.max(screened.last_score());
                if ev != SyncEvent::Searching {
                    scr_events.push(ev);
                }
            }
            i += run;
        }

        assert_eq!(ref_events.len(), scr_events.len(), "event counts differ");
        for (a, b) in ref_events.iter().zip(&scr_events) {
            match (a, b) {
                (
                    SyncEvent::Locked { lag, score, sharpness },
                    SyncEvent::Locked { lag: l2, score: s2, sharpness: h2 },
                ) => {
                    assert_eq!(lag, l2);
                    assert_eq!(score.to_bits(), s2.to_bits());
                    assert_eq!(sharpness.to_bits(), h2.to_bits());
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(
            ref_peak.to_bits(),
            scr_peak.to_bits(),
            "running max of last_score diverged"
        );
        assert_eq!(
            reference.last_score().to_bits(),
            screened.last_score().to_bits()
        );
    }

    #[test]
    fn fast_forward_is_byte_identical_over_noise_then_preamble() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        // Long pseudo-noise hunt, the preamble, then trailing noise.
        let mut x = 0.37;
        let mut noise = |n: usize| -> Vec<f64> {
            (0..n)
                .map(|_| {
                    x = (x * 9301.0 + 49297.0) % 1.0;
                    0.5 + 0.12 * (x - 0.5)
                })
                .collect()
        };
        let mut stream = noise(5000);
        stream.extend(template.iter().map(|t| 0.5 + 0.2 * t));
        stream.extend(noise(500));
        assert_fast_forward_matches(&template, 0.7, &stream);
    }

    #[test]
    fn fast_forward_skips_flat_and_reports_exact_peak() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 4);
        let m = template.len();
        let mut s = PreambleSearcher::new(template.clone(), 0.8);
        // Prime the window with idle carrier.
        for _ in 0..m {
            s.process(0.5);
        }
        let block: Vec<f64> = (0..4096)
            .map(|i| 0.5 + 0.05 * ((i as f64) * 0.7).sin())
            .collect();
        let (skip, peak) = s.fast_forward(&block);
        assert_eq!(skip, block.len() - m, "should skip all but the tail");
        assert!(peak < 0.8, "sub-threshold region, got {peak}");
        assert!(peak.is_finite());
        assert!(!s.is_tracking());
    }

    /// A sharp-autocorrelation chip pattern with its envelope rendering.
    fn test_stream(template: &[f64], idle: usize) -> Vec<f64> {
        let mut stream: Vec<f64> = vec![0.5; idle];
        stream.extend(template.iter().map(|x| 0.5 + 0.2 * x));
        stream
    }

    #[test]
    fn searcher_relocks_after_rearm() {
        // Two preambles in one stream: the searcher must lock on both once
        // re-armed between them.
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);
        let mut stream = test_stream(&template, 30);
        stream.extend(vec![0.5; 60]);
        stream.extend(test_stream(&template, 0));
        stream.extend(vec![0.5; 20]);

        let mut locks = Vec::new();
        for (i, &x) in stream.iter().enumerate() {
            if let SyncEvent::Locked { lag, score, .. } = s.process(x) {
                locks.push((i - lag, score));
                s.rearm();
            }
        }
        assert_eq!(locks.len(), 2, "locks: {locks:?}");
        let first = 30 + template.len() - 1;
        let second = first + 60 + template.len();
        assert!((locks[0].0 as i64 - first as i64).abs() <= 1, "{locks:?}");
        assert!((locks[1].0 as i64 - second as i64).abs() <= 1, "{locks:?}");
        assert!(locks.iter().all(|&(_, sc)| sc > 0.9));
    }

    #[test]
    fn rearm_clears_peak_tail() {
        // Without rearm, the decaying tail of a declared peak stays above
        // threshold and immediately re-triggers a bogus second lock; after
        // rearm() the window must refill before any new declaration.
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);
        let mut stream = test_stream(&template, 30);
        stream.extend(vec![0.5; 10]);
        let mut it = stream.iter();
        for &x in it.by_ref() {
            if matches!(s.process(x), SyncEvent::Locked { .. }) {
                break;
            }
        }
        s.rearm();
        for &x in it {
            assert_eq!(
                s.process(x),
                SyncEvent::Searching,
                "spurious re-lock on the peak tail"
            );
        }
    }

    #[test]
    fn shape_gate_passes_sharp_peak() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let mut s =
            PreambleSearcher::new(template.clone(), 0.7).with_shape_gate(1.2, 8);
        let mut stream = test_stream(&template, 60);
        stream.extend(vec![0.5; 20]);
        let mut locked = false;
        for &x in &stream {
            match s.process(x) {
                SyncEvent::Locked { sharpness, .. } => {
                    assert!(sharpness > 1.2, "sharp peak scored {sharpness}");
                    locked = true;
                }
                SyncEvent::Rejected { sharpness, .. } => {
                    panic!("sharp peak rejected at sharpness {sharpness}")
                }
                SyncEvent::Searching => {}
            }
        }
        assert!(locked, "gate swallowed a clean preamble");
    }

    #[test]
    fn shape_gate_rejects_broad_peak() {
        // A slow raised-cosine bump loosely resembling the template's DC
        // profile: its correlation trajectory is broad (stays near its
        // maximum for many samples), which is the collision signature.
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let template = chips_to_template(&chips, 4);
        let n = template.len();
        // Overlap two copies of the preamble offset by a third of its
        // length — the multi-modal "equal-power collision" shape.
        let mut stream = vec![0.5f64; 40];
        let offset = n / 3;
        for i in 0..n + offset {
            let a = if i < n { template[i] } else { 0.0 };
            let b = if i >= offset { template[i - offset] } else { 0.0 };
            stream.push(0.5 + 0.1 * a + 0.1 * b);
        }
        stream.extend(vec![0.5; 40]);

        // Gate off: the blend must produce at least one candidate (that is
        // the false-lock failure mode this test encodes).
        let mut plain = PreambleSearcher::new(template.clone(), 0.55);
        let mut candidates = 0;
        for &x in &stream {
            if matches!(plain.process(x), SyncEvent::Locked { .. }) {
                candidates += 1;
                plain.rearm();
            }
        }
        assert!(candidates > 0, "collision blend never crossed threshold");

        // Gate on: every candidate from the blend must be rejected.
        let mut gated =
            PreambleSearcher::new(template, 0.55).with_shape_gate(1.2, 8);
        for &x in &stream {
            if let SyncEvent::Locked { sharpness, score, .. } = gated.process(x) {
                panic!("collision blend locked: score {score} sharpness {sharpness}");
            }
        }
    }

    /// The pre-fix scoring path: collect the ring into a fresh `Vec` and
    /// run the general-purpose [`ncc`]. Kept verbatim as the oracle for
    /// the allocation-free two-slice rewrite.
    fn collect_and_ncc(s: &PreambleSearcher) -> f64 {
        let buf: Vec<f64> = s.window.iter().collect();
        ncc(&buf, &s.template)
    }

    #[test]
    fn streaming_score_is_bit_identical_to_collect_and_ncc() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        // A template length that does not divide the stream length keeps
        // the ring wrap point sweeping over every phase.
        let template = chips_to_template(&chips, 3);
        let mut s = PreambleSearcher::new(template.clone(), 2.0); // never locks
        let mut x = 0.37;
        for i in 0..1500 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            // Occasionally embed template energy so scores span the range.
            let v = if (i / 100) % 3 == 0 {
                0.5 + 0.2 * template[i % template.len()] + 0.01 * x
            } else {
                x
            };
            s.process(v);
            if s.window.is_full() {
                assert_eq!(
                    s.last_score().to_bits(),
                    collect_and_ncc(&s).to_bits(),
                    "diverged at sample {i}"
                );
            }
        }
    }

    #[test]
    fn streaming_score_identical_through_rearm_partial_windows() {
        // rearm() empties the window; scores must stay bit-identical while
        // it refills from an arbitrary head position.
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 4);
        let mut s = PreambleSearcher::new(template.clone(), 2.0);
        let mut x = 0.11;
        for i in 0..600 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            s.process(x);
            if i % 97 == 96 {
                s.rearm();
            }
            if s.window.is_full() {
                assert_eq!(s.last_score().to_bits(), collect_and_ncc(&s).to_bits());
            }
        }
    }

    #[test]
    fn chips_to_template_expands() {
        assert_eq!(chips_to_template(&[1.0, 0.0], 3), vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(chips_to_template(&[1.0], 0), vec![1.0]); // sps clamped
    }
}
