//! Normalised correlation and streaming preamble search.
//!
//! Frame synchronisation in a backscatter receiver happens on the envelope
//! stream: the transmitter prepends a known alternating preamble, and the
//! receiver slides a zero-mean template across the incoming envelope. The
//! zero-mean, unit-norm formulation makes the detector invariant to both the
//! large DC ambient level and the unknown modulation depth — exactly the two
//! nuisance parameters of an envelope-detected backscatter link.

use crate::ringbuf::RingBuf;

/// Zero-mean normalised cross-correlation of `window` against `template`.
///
/// Returns a value in `[-1, 1]` (Pearson correlation). Returns 0 when either
/// side has zero variance (flat signal can never sync) or lengths mismatch.
pub fn ncc(window: &[f64], template: &[f64]) -> f64 {
    if window.len() != template.len() || window.is_empty() {
        return 0.0;
    }
    let n = window.len() as f64;
    let mw = window.iter().sum::<f64>() / n;
    let mt = template.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dw = 0.0;
    let mut dt = 0.0;
    for (&w, &t) in window.iter().zip(template.iter()) {
        let a = w - mw;
        let b = t - mt;
        num += a * b;
        dw += a * a;
        dt += b * b;
    }
    let den = (dw * dt).sqrt();
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Outcome of feeding one sample to a [`PreambleSearcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncEvent {
    /// Still hunting; no decision this sample.
    Searching,
    /// The correlation peak was confirmed `lag` samples ago; the payload
    /// starts at the *next* sample. `score` is the peak correlation.
    Locked {
        /// Samples elapsed since the true peak position.
        lag: usize,
        /// Peak normalised correlation value.
        score: f64,
    },
}

/// Streaming preamble detector.
///
/// Feeds envelope samples one at a time; once the sliding normalised
/// correlation against the template exceeds `threshold`, the searcher keeps
/// tracking until the correlation peaks (starts to fall) and then reports a
/// [`SyncEvent::Locked`] carrying how many samples ago the peak occurred, so
/// the caller can align bit boundaries retroactively.
#[derive(Debug, Clone)]
pub struct PreambleSearcher {
    template: Vec<f64>,
    window: RingBuf<f64>,
    threshold: f64,
    best: f64,
    rising: bool,
    since_best: usize,
    last_score: f64,
}

impl PreambleSearcher {
    /// Creates a searcher for `template` with detection `threshold`
    /// (sensible values: 0.6–0.9). The template must contain at least two
    /// distinct values; a flat template never locks.
    pub fn new(template: Vec<f64>, threshold: f64) -> Self {
        let window = RingBuf::new(template.len().max(1));
        PreambleSearcher {
            template,
            window,
            threshold: threshold.clamp(0.0, 1.0),
            best: 0.0,
            rising: false,
            since_best: 0,
            last_score: 0.0,
        }
    }

    /// Length of the template in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }

    /// Correlation score of the most recent sample (0 until the window
    /// fills). Diagnostics: lets callers observe sub-threshold peaks that
    /// never produce a lock.
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Pushes one envelope sample.
    pub fn process(&mut self, x: f64) -> SyncEvent {
        self.window.push_evict(x);
        if !self.window.is_full() {
            return SyncEvent::Searching;
        }
        let buf: Vec<f64> = self.window.iter().collect();
        let score = ncc(&buf, &self.template);
        self.last_score = score;
        if self.rising {
            if score > self.best {
                self.best = score;
                self.since_best = 0;
                SyncEvent::Searching
            } else {
                self.since_best += 1;
                // Declare the peak once the correlation has fallen for a few
                // samples (guards against plateau jitter).
                if self.since_best >= 2 || score < self.threshold {
                    let ev = SyncEvent::Locked {
                        lag: self.since_best,
                        score: self.best,
                    };
                    self.reset();
                    ev
                } else {
                    SyncEvent::Searching
                }
            }
        } else if score >= self.threshold {
            self.rising = true;
            self.best = score;
            self.since_best = 0;
            SyncEvent::Searching
        } else {
            SyncEvent::Searching
        }
    }

    /// Returns to the hunting state (also called internally after a lock).
    pub fn reset(&mut self) {
        self.best = 0.0;
        self.rising = false;
        self.since_best = 0;
        // Window intentionally kept: a new frame may follow immediately.
    }

    /// Clears everything including the sample window.
    pub fn hard_reset(&mut self) {
        self.reset();
        self.window.clear();
    }
}

/// Builds an envelope-domain template for a chip pattern: each chip becomes
/// `sps` samples of its level.
pub fn chips_to_template(chips: &[f64], sps: usize) -> Vec<f64> {
    let sps = sps.max(1);
    let mut out = Vec::with_capacity(chips.len() * sps);
    for &c in chips {
        for _ in 0..sps {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncc_perfect_match_is_one() {
        let t = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        assert!((ncc(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_inverted_is_minus_one() {
        let t = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let inv: Vec<f64> = t.iter().map(|x| 1.0 - x).collect();
        assert!((ncc(&inv, &t) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_invariant_to_gain_and_offset() {
        let t = [1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        let scaled: Vec<f64> = t.iter().map(|x| 100.0 + 0.003 * x).collect();
        assert!((ncc(&scaled, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ncc_flat_window_is_zero() {
        let t = [1.0, 0.0, 1.0];
        assert_eq!(ncc(&[5.0, 5.0, 5.0], &t), 0.0);
        assert_eq!(ncc(&[1.0, 2.0], &t), 0.0); // length mismatch
    }

    #[test]
    fn searcher_locks_on_embedded_preamble() {
        let chips = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
        let sps = 4;
        let template = chips_to_template(&chips, sps);
        let mut s = PreambleSearcher::new(template.clone(), 0.7);

        // 30 samples of flat carrier, then the preamble, then payload-ish.
        let mut stream: Vec<f64> = vec![0.5; 30];
        stream.extend(template.iter().map(|x| 0.5 + 0.2 * x));
        stream.extend(vec![0.5; 20]);

        let mut locked_at = None;
        for (i, &x) in stream.iter().enumerate() {
            if let SyncEvent::Locked { lag, score } = s.process(x) {
                assert!(score > 0.9, "weak lock {score}");
                locked_at = Some(i - lag);
                break;
            }
        }
        let peak = locked_at.expect("no lock");
        // True peak: window ends exactly at preamble end = 30 + template.len() - 1.
        let expected = 30 + template.len() - 1;
        assert!(
            (peak as i64 - expected as i64).abs() <= 1,
            "peak {peak} expected {expected}"
        );
    }

    #[test]
    fn searcher_ignores_noise_below_threshold() {
        let template = chips_to_template(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 4);
        let mut s = PreambleSearcher::new(template, 0.8);
        // Deterministic pseudo-noise unrelated to the template.
        let mut x = 0.37;
        for _ in 0..2000 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            if let SyncEvent::Locked { score, .. } = s.process(x) {
                // Occasional weak random locks would indicate a broken threshold.
                panic!("false lock at score {score}");
            }
        }
    }

    #[test]
    fn chips_to_template_expands() {
        assert_eq!(chips_to_template(&[1.0, 0.0], 3), vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(chips_to_template(&[1.0], 0), vec![1.0]); // sps clamped
    }
}
