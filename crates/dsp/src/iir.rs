//! Single-pole IIR low-pass — the behavioural model of an RC network.
//!
//! A passive tag's envelope detector is a diode followed by an RC low-pass;
//! the capacitor's time constant is exactly what limits how fast a
//! backscatter receiver can slice bits, and therefore what makes the
//! *rate-asymmetric* full-duplex trick work: the detector follows the
//! high-rate data while a much slower averaging stage recovers the low-rate
//! feedback. Both stages are instances of this filter.

use serde::{Deserialize, Serialize};

/// A single-pole low-pass filter `y[n] = y[n-1] + α (x[n] − y[n-1])`.
///
/// Construct from either a smoothing factor ([`SinglePole::from_alpha`]) or a
/// physical RC time constant and sample period ([`SinglePole::from_rc`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SinglePole {
    alpha: f64,
    y: f64,
}

impl SinglePole {
    /// Creates a filter from the smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// `alpha = 1` is a pass-through; values outside the range are clamped.
    pub fn from_alpha(alpha: f64) -> Self {
        SinglePole {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            y: 0.0,
        }
    }

    /// Creates a filter from an RC time constant `tau` (seconds) sampled
    /// every `dt` seconds: `α = dt / (τ + dt)` (backward-Euler discretisation
    /// of the RC ODE). A non-positive `tau` degenerates to pass-through.
    pub fn from_rc(tau: f64, dt: f64) -> Self {
        if tau <= 0.0 {
            return SinglePole::from_alpha(1.0);
        }
        SinglePole::from_alpha(dt / (tau + dt))
    }

    /// Creates a filter whose −3 dB cutoff is `fc` Hz at sample rate `fs`.
    ///
    /// Uses the exact mapping `α = 1 − e^(−2π fc / fs)`.
    pub fn from_cutoff(fc: f64, fs: f64) -> Self {
        if fc <= 0.0 || fs <= 0.0 {
            return SinglePole::from_alpha(1.0);
        }
        let alpha = 1.0 - (-2.0 * std::f64::consts::PI * fc / fs).exp();
        SinglePole::from_alpha(alpha)
    }

    /// The smoothing factor in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current output state.
    pub fn output(&self) -> f64 {
        self.y
    }

    /// Forces the state (e.g. to pre-charge the capacitor).
    pub fn set_state(&mut self, y: f64) {
        self.y = y;
    }

    /// Processes one sample and returns the new output.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        self.y += self.alpha * (x - self.y);
        self.y
    }

    /// Processes a block in place.
    pub fn process_block(&mut self, xs: &mut [f64]) {
        for x in xs.iter_mut() {
            *x = self.process(*x);
        }
    }

    /// Resets the state to zero.
    pub fn reset(&mut self) {
        self.y = 0.0;
    }

    /// Number of samples for the step response to reach ≥ 95 %.
    ///
    /// Exact: after `n` samples of a unit step, `y = 1 − (1−α)ⁿ`, so the
    /// required `n = ⌈ln 0.05 / ln(1−α)⌉`.
    pub fn settle_samples(&self) -> usize {
        if self.alpha >= 1.0 {
            return 1;
        }
        let n = (0.05f64).ln() / (1.0 - self.alpha).ln();
        n.ceil() as usize + 1
    }
}

/// A DC-blocking filter (leaky differentiator): `y[n] = x[n] − x̄` where `x̄`
/// tracks the input mean through a [`SinglePole`].
///
/// Readers use this to strip the strong unmodulated ambient carrier level
/// before slicing the backscatter modulation.
#[derive(Debug, Clone, Copy)]
pub struct DcBlocker {
    mean: SinglePole,
}

impl DcBlocker {
    /// Creates a DC blocker whose mean tracker has time constant
    /// `tau` seconds at sample period `dt`.
    pub fn new(tau: f64, dt: f64) -> Self {
        DcBlocker {
            mean: SinglePole::from_rc(tau, dt),
        }
    }

    /// Processes one sample: returns the AC component.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let m = self.mean.process(x);
        x - m
    }

    /// The tracked DC estimate.
    pub fn dc(&self) -> f64 {
        self.mean.output()
    }

    /// Resets the tracker.
    pub fn reset(&mut self) {
        self.mean.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_response_converges_to_input() {
        let mut f = SinglePole::from_alpha(0.1);
        let mut y = 0.0;
        for _ in 0..400 {
            y = f.process(1.0);
        }
        assert!((y - 1.0).abs() < 1e-10);
    }

    #[test]
    fn settle_samples_reaches_95_percent() {
        let f0 = SinglePole::from_rc(1e-3, 1e-5);
        let n = f0.settle_samples();
        let mut f = f0;
        let mut y = 0.0;
        for _ in 0..n {
            y = f.process(1.0);
        }
        assert!(y > 0.95, "y = {y} after {n} samples");
    }

    #[test]
    fn rc_mapping_matches_tau() {
        // After exactly τ seconds of a unit step, an RC reaches 1 − e⁻¹.
        let tau = 2e-3;
        let dt = 1e-6;
        let mut f = SinglePole::from_rc(tau, dt);
        let steps = (tau / dt) as usize;
        let mut y = 0.0;
        for _ in 0..steps {
            y = f.process(1.0);
        }
        let target = 1.0 - (-1.0f64).exp();
        assert!((y - target).abs() < 0.01, "y = {y}, target = {target}");
    }

    #[test]
    fn cutoff_attenuates_3db() {
        // Drive at fc: steady-state amplitude should be ≈ 1/√2 (±15 %
        // tolerance; the single-pole digital mapping is approximate).
        let fs = 100_000.0;
        let fc = 1_000.0;
        let mut f = SinglePole::from_cutoff(fc, fs);
        let mut peak: f64 = 0.0;
        let n = 200_000;
        for i in 0..n {
            let t = i as f64 / fs;
            let x = (2.0 * std::f64::consts::PI * fc * t).sin();
            let y = f.process(x);
            if i > n / 2 {
                peak = peak.max(y.abs());
            }
        }
        let expected = std::f64::consts::FRAC_1_SQRT_2;
        assert!(
            (peak - expected).abs() < 0.15,
            "peak {peak} vs expected {expected}"
        );
    }

    #[test]
    fn passthrough_when_tau_zero() {
        let mut f = SinglePole::from_rc(0.0, 1e-6);
        assert_eq!(f.process(3.25), 3.25);
        assert_eq!(f.process(-1.0), -1.0);
    }

    #[test]
    fn dc_blocker_removes_offset() {
        let mut b = DcBlocker::new(1e-3, 1e-6);
        let mut last = f64::NAN;
        for _ in 0..20_000 {
            last = b.process(5.0);
        }
        assert!(last.abs() < 1e-6, "residual DC {last}");
        assert!((b.dc() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dc_blocker_passes_fast_square_wave() {
        // A fast alternating component should survive mostly intact.
        let mut b = DcBlocker::new(1e-2, 1e-6);
        // warm up on the DC level
        for _ in 0..200_000 {
            b.process(2.0);
        }
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for i in 0..2_000 {
            let x = 2.0 + if (i / 10) % 2 == 0 { 0.5 } else { -0.5 };
            let y = b.process(x);
            min = min.min(y);
            max = max.max(y);
        }
        assert!(max > 0.45 && min < -0.45, "swing [{min}, {max}]");
    }
}
