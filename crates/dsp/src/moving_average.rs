//! O(1) sliding-window mean and integrate-and-dump accumulator.
//!
//! The feedback decoder at the full-duplex transmitter is, at its heart, an
//! integrate-and-dump filter spanning one feedback bit (= `m` data bits):
//! because the forward data coding is DC-balanced, integrating the envelope
//! over a feedback bit cancels the data and leaves the (slow) feedback
//! level. [`MovingAverage`] provides the streaming window mean used by
//! adaptive thresholds; [`IntegrateDump`] provides the bit-aligned
//! accumulator used by the feedback decoder.

use crate::ringbuf::RingBuf;

/// Streaming mean over the last `n` samples.
///
/// Maintains a running sum for O(1) updates. To bound floating-point drift
/// over very long runs, the sum is recomputed from the window every
/// `REFRESH` updates; the window is at most a few thousand samples in this
/// stack so the recompute is cheap.
#[derive(Debug)]
pub struct MovingAverage {
    window: RingBuf<f64>,
    sum: f64,
    updates: u64,
}

impl Clone for MovingAverage {
    fn clone(&self) -> Self {
        MovingAverage {
            window: self.window.clone(),
            sum: self.sum,
            updates: self.updates,
        }
    }

    /// Capacity-retaining copy (see [`RingBuf::clone_from`]): snapshotting
    /// a smoother into an equal-length scratch instance is allocation-free,
    /// which the block acquisition path relies on every chunk.
    fn clone_from(&mut self, source: &Self) {
        self.window.clone_from(&source.window);
        self.sum = source.sum;
        self.updates = source.updates;
    }
}

const REFRESH: u64 = 1 << 16;

impl MovingAverage {
    /// Creates a window of length `n` (clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        MovingAverage {
            window: RingBuf::new(n.max(1)),
            sum: 0.0,
            updates: 0,
        }
    }

    /// Window length.
    pub fn window_len(&self) -> usize {
        self.window.capacity()
    }

    /// Number of samples currently in the window.
    pub fn fill(&self) -> usize {
        self.window.len()
    }

    /// `true` once the window is fully populated.
    pub fn is_warm(&self) -> bool {
        self.window.is_full()
    }

    /// Pushes a sample and returns the mean over the current window
    /// (over fewer samples during warm-up).
    pub fn process(&mut self, x: f64) -> f64 {
        if let Some(old) = self.window.push_evict(x) {
            self.sum += x - old;
        } else {
            self.sum += x;
        }
        self.updates += 1;
        if self.updates.is_multiple_of(REFRESH) {
            self.sum = self.window.iter().sum();
        }
        self.sum / self.window.len() as f64
    }

    /// Processes a block into a caller-owned buffer (cleared first) — the
    /// allocation-free block entry point. State evolution is identical to
    /// calling [`process`](MovingAverage::process) per sample.
    pub fn process_block_into(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Current mean without pushing.
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
        self.updates = 0;
    }
}

/// Integrate-and-dump: accumulates exactly `n` samples, then emits their
/// mean and restarts.
///
/// This is the matched filter for a rectangular pulse of `n` samples and the
/// core of the low-rate feedback demodulator.
#[derive(Debug, Clone)]
pub struct IntegrateDump {
    n: usize,
    count: usize,
    acc: f64,
}

impl IntegrateDump {
    /// Creates an accumulator over `n` samples (clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        IntegrateDump {
            n: n.max(1),
            count: 0,
            acc: 0.0,
        }
    }

    /// Integration length in samples.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no samples have been accumulated since the last dump.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples accumulated since the last dump.
    pub fn pending(&self) -> usize {
        self.count
    }

    /// Pushes one sample. Returns `Some(mean)` on the sample that completes
    /// the window, `None` otherwise.
    pub fn process(&mut self, x: f64) -> Option<f64> {
        self.acc += x;
        self.count += 1;
        if self.count == self.n {
            let mean = self.acc / self.n as f64;
            self.acc = 0.0;
            self.count = 0;
            Some(mean)
        } else {
            None
        }
    }

    /// Discards any partial accumulation (used on re-synchronisation).
    pub fn reset(&mut self) {
        self.acc = 0.0;
        self.count = 0;
    }

    /// Changes the integration length, discarding partial state.
    pub fn set_len(&mut self, n: usize) {
        self.n = n.max(1);
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_of_constant_is_constant() {
        let mut ma = MovingAverage::new(8);
        for _ in 0..32 {
            assert!((ma.process(3.0) - 3.0).abs() < 1e-12);
        }
        assert!(ma.is_warm());
    }

    #[test]
    fn moving_average_tracks_window_exactly() {
        let mut ma = MovingAverage::new(4);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut outs = Vec::new();
        for &x in &xs {
            outs.push(ma.process(x));
        }
        // warm-up means over 1..=4 samples, then sliding windows.
        assert!((outs[0] - 1.0).abs() < 1e-12);
        assert!((outs[1] - 1.5).abs() < 1e-12);
        assert!((outs[3] - 2.5).abs() < 1e-12);
        assert!((outs[4] - 3.5).abs() < 1e-12); // (2+3+4+5)/4
        assert!((outs[5] - 4.5).abs() < 1e-12); // (3+4+5+6)/4
    }

    #[test]
    fn moving_average_long_run_no_drift() {
        let mut ma = MovingAverage::new(16);
        let mut last = 0.0;
        for i in 0..(1u64 << 18) {
            last = ma.process(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        assert!(last.abs() < 1e-9, "drift {last}");
    }

    #[test]
    fn integrate_dump_emits_every_n() {
        let mut id = IntegrateDump::new(4);
        let mut emissions = Vec::new();
        for i in 1..=12 {
            if let Some(m) = id.process(i as f64) {
                emissions.push(m);
            }
        }
        assert_eq!(emissions.len(), 3);
        assert!((emissions[0] - 2.5).abs() < 1e-12); // (1+2+3+4)/4
        assert!((emissions[1] - 6.5).abs() < 1e-12);
        assert!((emissions[2] - 10.5).abs() < 1e-12);
    }

    #[test]
    fn integrate_dump_reset_discards_partials() {
        let mut id = IntegrateDump::new(3);
        id.process(100.0);
        id.reset();
        assert!(id.process(1.0).is_none());
        assert!(id.process(1.0).is_none());
        assert_eq!(id.process(1.0), Some(1.0));
    }

    #[test]
    fn integrate_dump_set_len() {
        let mut id = IntegrateDump::new(10);
        id.process(5.0);
        id.set_len(2);
        assert!(id.process(4.0).is_none());
        assert_eq!(id.process(6.0), Some(5.0));
        assert_eq!(id.len(), 2);
    }

    #[test]
    fn dc_balanced_data_integrates_to_midpoint() {
        // The property the FD feedback channel relies on: a Manchester-like
        // alternating data waveform integrated over a full feedback bit
        // yields the same value regardless of the data bits.
        let mut id = IntegrateDump::new(8);
        // data pattern A: 1,0,1,0 chips → envelope 1,0,1,0...
        let mut a = None;
        for i in 0..8 {
            a = id.process(if i % 2 == 0 { 1.0 } else { 0.0 }).or(a);
        }
        let mut id2 = IntegrateDump::new(8);
        // data pattern B: 0,1,0,1 chips
        let mut b = None;
        for i in 0..8 {
            b = id2.process(if i % 2 == 1 { 1.0 } else { 0.0 }).or(b);
        }
        assert_eq!(a, b);
    }
}
