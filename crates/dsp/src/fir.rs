//! FIR filtering and pulse-shaping tap design.
//!
//! The ambient TV-like source (`fdb-ambient`'s `tv` module) shapes its
//! symbol stream with a root-raised-cosine FIR; multipath channels are also
//! tapped delay lines. Both run through [`Fir`], a direct-form transversal
//! filter over complex samples with real taps (complex taps are provided by
//! [`FirC`] for channel impulse responses).

use crate::ringbuf::RingBuf;
use crate::sample::Iq;

/// Direct-form FIR filter with real-valued taps over complex samples.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
    delay: RingBuf<Iq>,
}

impl Fir {
    /// Creates a filter from its impulse response (`taps[0]` multiplies the
    /// newest sample). An empty tap list behaves as a unit gain.
    pub fn new(taps: Vec<f64>) -> Self {
        let taps = if taps.is_empty() { vec![1.0] } else { taps };
        let mut delay = RingBuf::new(taps.len());
        delay.fill(Iq::ZERO);
        Fir { taps, delay }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if this is the trivial single-tap filter.
    pub fn is_empty(&self) -> bool {
        self.taps.len() <= 1
    }

    /// Impulse response.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Processes one sample, returning the filter output.
    pub fn process(&mut self, x: Iq) -> Iq {
        self.delay.push_evict(x);
        // The delay line is always full (pre-charged with zeros), so its two
        // contiguous slices walked newest → oldest visit taps[0], taps[1], …
        // in order — same accumulation sequence as indexed access, without
        // the per-tap modulo.
        let (s1, s2) = self.delay.as_slices();
        let mut acc = Iq::ZERO;
        for (&t, &s) in self.taps.iter().zip(s2.iter().rev().chain(s1.iter().rev())) {
            acc += s * t;
        }
        acc
    }

    /// Filters a whole block, producing one output per input.
    pub fn process_block(&mut self, xs: &[Iq]) -> Vec<Iq> {
        let mut out = Vec::with_capacity(xs.len());
        self.process_block_into(xs, &mut out);
        out
    }

    /// Filters a whole block into a caller-owned buffer (cleared first) —
    /// the allocation-free block entry point.
    pub fn process_block_into(&mut self, xs: &[Iq], out: &mut Vec<Iq>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Resets the internal delay line to zeros.
    pub fn reset(&mut self) {
        self.delay.fill(Iq::ZERO);
    }
}

/// FIR filter with complex taps (channel impulse responses).
#[derive(Debug, Clone)]
pub struct FirC {
    taps: Vec<Iq>,
    delay: RingBuf<Iq>,
}

impl FirC {
    /// Creates a filter from a complex impulse response.
    pub fn new(taps: Vec<Iq>) -> Self {
        let taps = if taps.is_empty() { vec![Iq::ONE] } else { taps };
        let mut delay = RingBuf::new(taps.len());
        delay.fill(Iq::ZERO);
        FirC { taps, delay }
    }

    /// Impulse response.
    pub fn taps(&self) -> &[Iq] {
        &self.taps
    }

    /// Processes one sample.
    pub fn process(&mut self, x: Iq) -> Iq {
        self.delay.push_evict(x);
        let (s1, s2) = self.delay.as_slices();
        let mut acc = Iq::ZERO;
        for (&t, &s) in self.taps.iter().zip(s2.iter().rev().chain(s1.iter().rev())) {
            acc += s * t;
        }
        acc
    }

    /// Filters a whole block into a caller-owned buffer (cleared first).
    pub fn process_block_into(&mut self, xs: &[Iq], out: &mut Vec<Iq>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Resets the internal delay line to zeros.
    pub fn reset(&mut self) {
        self.delay.fill(Iq::ZERO);
    }
}

/// Designs root-raised-cosine taps.
///
/// * `sps` — samples per symbol (≥ 1)
/// * `beta` — roll-off in `[0, 1]`
/// * `span` — filter span in symbols (total length `span·sps + 1`)
///
/// Taps are normalised to unit energy (`Σ h² = 1`) so that filtering white
/// noise preserves power. Singularities at `t = 0` and `t = ±Ts/(4β)` use
/// the standard limit values.
pub fn rrc_taps(sps: usize, beta: f64, span: usize) -> Vec<f64> {
    let sps = sps.max(1);
    let span = span.max(1);
    let beta = beta.clamp(0.0, 1.0);
    let n = span * sps + 1;
    let half = (n - 1) as f64 / 2.0;
    let mut taps = Vec::with_capacity(n);
    for i in 0..n {
        let t = (i as f64 - half) / sps as f64; // in symbol periods
        let h = rrc_impulse(t, beta);
        taps.push(h);
    }
    let energy: f64 = taps.iter().map(|h| h * h).sum();
    if energy > 0.0 {
        let k = energy.sqrt().recip();
        for h in taps.iter_mut() {
            *h *= k;
        }
    }
    taps
}

fn rrc_impulse(t: f64, beta: f64) -> f64 {
    use std::f64::consts::PI;
    const EPS: f64 = 1e-9;
    if t.abs() < EPS {
        return 1.0 + beta * (4.0 / PI - 1.0);
    }
    if beta > 0.0 {
        let sing = 1.0 / (4.0 * beta);
        if (t.abs() - sing).abs() < EPS {
            let a = (1.0 + 2.0 / PI) * (PI / (4.0 * beta)).sin();
            let b = (1.0 - 2.0 / PI) * (PI / (4.0 * beta)).cos();
            return beta / 2f64.sqrt() * (a + b);
        }
    }
    let num = (PI * t * (1.0 - beta)).sin() + 4.0 * beta * t * (PI * t * (1.0 + beta)).cos();
    let den = PI * t * (1.0 - (4.0 * beta * t).powi(2));
    num / den
}

/// Designs a boxcar (moving-average) filter of length `n`, unit DC gain.
pub fn boxcar_taps(n: usize) -> Vec<f64> {
    let n = n.max(1);
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_passes_through() {
        let mut f = Fir::new(vec![1.0]);
        for i in 0..10 {
            let x = Iq::new(i as f64, -(i as f64));
            assert_eq!(f.process(x), x);
        }
    }

    #[test]
    fn delay_filter_shifts() {
        // h = [0, 1] delays by one sample.
        let mut f = Fir::new(vec![0.0, 1.0]);
        let xs: Vec<Iq> = (1..=5).map(|i| Iq::real(i as f64)).collect();
        let ys = f.process_block(&xs);
        assert_eq!(ys[0], Iq::ZERO);
        for i in 1..5 {
            assert_eq!(ys[i], xs[i - 1]);
        }
    }

    #[test]
    fn impulse_response_is_taps() {
        let taps = vec![0.5, -0.25, 0.125];
        let mut f = Fir::new(taps.clone());
        let mut input = vec![Iq::ZERO; taps.len()];
        input[0] = Iq::ONE;
        let ys = f.process_block(&input);
        for (y, t) in ys.iter().zip(taps.iter()) {
            assert!((y.re - t).abs() < 1e-12);
            assert!(y.im.abs() < 1e-12);
        }
    }

    #[test]
    fn complex_taps_rotate() {
        // Single tap j rotates by 90°.
        let mut f = FirC::new(vec![Iq::new(0.0, 1.0)]);
        let y = f.process(Iq::ONE);
        assert!((y.re).abs() < 1e-12);
        assert!((y.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rrc_taps_unit_energy_and_symmetric() {
        let taps = rrc_taps(8, 0.35, 6);
        assert_eq!(taps.len(), 49);
        let e: f64 = taps.iter().map(|h| h * h).sum();
        assert!((e - 1.0).abs() < 1e-12);
        for i in 0..taps.len() / 2 {
            assert!(
                (taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-12,
                "tap {i} asymmetric"
            );
        }
        // Peak at centre.
        let centre = taps[taps.len() / 2];
        assert!(taps.iter().all(|&h| h <= centre + 1e-12));
    }

    #[test]
    fn rrc_handles_singular_points() {
        // beta = 0.5 puts the singularity exactly on a tap for sps=2.
        let taps = rrc_taps(2, 0.5, 8);
        assert!(taps.iter().all(|h| h.is_finite()));
        let taps0 = rrc_taps(4, 0.0, 8);
        assert!(taps0.iter().all(|h| h.is_finite()));
    }

    #[test]
    fn boxcar_has_unit_dc_gain() {
        let mut f = Fir::new(boxcar_taps(4));
        let mut last = Iq::ZERO;
        for _ in 0..16 {
            last = f.process(Iq::real(2.0));
        }
        assert!((last.re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_slice_dot_is_bit_identical_to_indexed_reference() {
        // Odd tap count keeps the ring wrap sweeping through every phase.
        let mut f = Fir::new(rrc_taps(4, 0.3, 4));
        let mut x = 0.2;
        for i in 0..100 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            let y = f.process(Iq::new(x, -x));
            // Indexed (pre-rewrite) dot over the identical delay state.
            let n = f.delay.len();
            let mut acc = Iq::ZERO;
            for (k, &t) in f.taps.iter().enumerate() {
                if let Some(s) = f.delay.get(n - 1 - k) {
                    acc += s * t;
                }
            }
            assert_eq!(y, acc, "sample {i}");
        }
    }

    #[test]
    fn process_block_into_reuses_buffer() {
        let mut f = Fir::new(boxcar_taps(3));
        let xs: Vec<Iq> = (0..8).map(|i| Iq::real(i as f64)).collect();
        let mut g = f.clone();
        let mut out = Vec::new();
        f.process_block_into(&xs, &mut out);
        assert_eq!(out, g.process_block(&xs));
        // A second call clears before refilling.
        f.process_block_into(&xs[..2], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Fir::new(vec![0.0, 0.0, 1.0]);
        f.process(Iq::real(9.0));
        f.reset();
        assert_eq!(f.process(Iq::ZERO), Iq::ZERO);
        assert_eq!(f.process(Iq::ZERO), Iq::ZERO);
        assert_eq!(f.process(Iq::ZERO), Iq::ZERO);
    }
}
