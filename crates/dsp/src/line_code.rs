//! Backscatter line codes: NRZ-OOK, Manchester, FM0, Miller.
//!
//! A backscatter transmitter has exactly two antenna states — *reflect* and
//! *absorb* — so every code here maps bits onto binary **chips** (`true` =
//! reflect). The choice of code is load-bearing for the full-duplex design:
//!
//! * The forward data must be **DC-balanced over a short horizon** so that
//!   integrating the envelope over one feedback bit cancels the data and
//!   exposes the slow feedback level. Manchester balances within every bit;
//!   FM0 keeps the running imbalance bounded by a constant; NRZ does not
//!   balance at all (and is included precisely so the ablation experiment
//!   can show the feedback channel collapsing without DC balance).
//! * Mid-bit structure (Manchester/FM0/Miller) also gives the receiver a
//!   transition to track timing against, which is how cheap tag oscillators
//!   stay synchronised over a frame.

use serde::{Deserialize, Serialize};

/// The line codes supported by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineCode {
    /// Plain on-off keying: one chip per bit, no balance guarantee.
    Nrz,
    /// Manchester (bi-phase): `1 → [hi,lo]`, `0 → [lo,hi]`; balanced per bit.
    Manchester,
    /// FM0 (bi-phase space): level inverts at every bit boundary; a data 0
    /// adds a mid-bit inversion. Balanced over bit pairs.
    Fm0,
    /// Miller (delay modulation): data 1 has a mid-bit transition; a 0
    /// following a 0 transitions at the boundary. Near-balanced for typical
    /// payloads but not guaranteed (see
    /// [`LineCode::is_dc_balanced_short_horizon`]).
    Miller,
}

impl LineCode {
    /// Chips emitted per data bit.
    pub fn chips_per_bit(self) -> usize {
        match self {
            LineCode::Nrz => 1,
            LineCode::Manchester | LineCode::Fm0 | LineCode::Miller => 2,
        }
    }

    /// `true` when every single bit period contains equal reflect/absorb
    /// time (the strongest form of DC balance).
    pub fn is_dc_balanced_per_bit(self) -> bool {
        matches!(self, LineCode::Manchester)
    }

    /// `true` when the running chip imbalance is bounded by a small constant
    /// for *every* data pattern — the property the feedback integrator
    /// needs. Holds for Manchester (per-bit) and FM0 (0-bits are split,
    /// consecutive 1-bits alternate polarity). Miller's imbalance is
    /// data-dependent (a repeating `0,1,1` pattern drifts), so it does not
    /// qualify even though typical payloads stay near balance.
    pub fn is_dc_balanced_short_horizon(self) -> bool {
        matches!(self, LineCode::Manchester | LineCode::Fm0)
    }

    /// Encodes a bit slice into chips. Stateful codes (FM0/Miller) start
    /// from the *reflect* level; the caller's waveform mapper applies
    /// modulation depth.
    pub fn encode(self, bits: &[bool]) -> Vec<bool> {
        let mut enc = Encoder::new(self);
        let mut out = Vec::with_capacity(bits.len() * self.chips_per_bit());
        for &b in bits {
            enc.push(b, &mut out);
        }
        out
    }

    /// Decodes hard chips back to bits. Chips beyond the last complete bit
    /// are ignored.
    pub fn decode_hard(self, chips: &[bool]) -> Vec<bool> {
        match self {
            LineCode::Nrz => chips.to_vec(),
            LineCode::Manchester => chips.chunks_exact(2).map(|c| c[0]).collect(),
            LineCode::Fm0 => chips.chunks_exact(2).map(|c| c[0] == c[1]).collect(),
            LineCode::Miller => chips.chunks_exact(2).map(|c| c[0] != c[1]).collect(),
        }
    }
}

/// Streaming line-code encoder (keeps FM0/Miller level memory across calls).
#[derive(Debug, Clone, Copy)]
pub struct Encoder {
    code: LineCode,
    level: bool,
    prev_bit: bool,
}

impl Encoder {
    /// Creates an encoder starting at the reflect level.
    pub fn new(code: LineCode) -> Self {
        Encoder {
            code,
            level: true,
            prev_bit: true,
        }
    }

    /// Appends the chips for one bit to `out`.
    pub fn push(&mut self, bit: bool, out: &mut Vec<bool>) {
        match self.code {
            LineCode::Nrz => out.push(bit),
            LineCode::Manchester => {
                if bit {
                    out.push(true);
                    out.push(false);
                } else {
                    out.push(false);
                    out.push(true);
                }
            }
            LineCode::Fm0 => {
                // Invert at every bit boundary.
                self.level = !self.level;
                out.push(self.level);
                if !bit {
                    // A data 0 also inverts mid-bit.
                    self.level = !self.level;
                }
                out.push(self.level);
            }
            LineCode::Miller => {
                if bit {
                    out.push(self.level);
                    self.level = !self.level;
                    out.push(self.level);
                } else {
                    if !self.prev_bit {
                        self.level = !self.level;
                    }
                    out.push(self.level);
                    out.push(self.level);
                }
                self.prev_bit = bit;
            }
        }
    }

    /// Resets level memory to the initial state.
    pub fn reset(&mut self) {
        self.level = true;
        self.prev_bit = true;
    }
}

/// Soft-decision decoder over per-chip envelope energies.
///
/// The PHY integrates the envelope over each chip period and hands the
/// decoder one energy value per chip. The decision rules are the
/// maximum-likelihood comparisons for each code given only chip energies
/// (phase is invisible to an envelope detector):
///
/// * Manchester: `bit = e₀ > e₁` — self-referencing, threshold-free.
/// * NRZ: `bit = e₀ > mid` where `mid` must come from an external slicer.
/// * FM0/Miller: compare the two within-bit energies against the running
///   modulation midpoint to recover chip polarity, then apply the hard rule.
#[derive(Debug, Clone, Copy)]
pub struct SoftDecoder {
    code: LineCode,
}

impl SoftDecoder {
    /// Creates a soft decoder for `code`.
    pub fn new(code: LineCode) -> Self {
        SoftDecoder { code }
    }

    /// Decides one bit from the chip energies of its period.
    ///
    /// `chips` must contain `chips_per_bit()` energies; `mid` is the current
    /// slicer threshold (ignored by Manchester). Returns `None` on a length
    /// mismatch.
    pub fn decide(&self, chips: &[f64], mid: f64) -> Option<bool> {
        if chips.len() != self.code.chips_per_bit() {
            return None;
        }
        Some(match self.code {
            LineCode::Nrz => chips[0] > mid,
            LineCode::Manchester => chips[0] > chips[1],
            LineCode::Fm0 => (chips[0] > mid) == (chips[1] > mid),
            LineCode::Miller => (chips[0] > mid) != (chips[1] > mid),
        })
    }
}

/// Fraction of chips at the reflect level over a chip slice — the DC
/// balance diagnostic used in tests and the ablation bench.
pub fn reflect_fraction(chips: &[bool]) -> f64 {
    if chips.is_empty() {
        return 0.0;
    }
    chips.iter().filter(|&&c| c).count() as f64 / chips.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(code: LineCode, bits: &[bool]) {
        let chips = code.encode(bits);
        assert_eq!(chips.len(), bits.len() * code.chips_per_bit());
        assert_eq!(code.decode_hard(&chips), bits, "{code:?}");
    }

    fn patterns() -> Vec<Vec<bool>> {
        vec![
            vec![],
            vec![true],
            vec![false],
            vec![true, false, true, false, true, false],
            vec![true; 16],
            vec![false; 16],
            (0..64).map(|i| (i * 13) % 7 < 3).collect(),
        ]
    }

    #[test]
    fn all_codes_round_trip() {
        for code in [LineCode::Nrz, LineCode::Manchester, LineCode::Fm0, LineCode::Miller] {
            for p in patterns() {
                round_trip(code, &p);
            }
        }
    }

    #[test]
    fn manchester_balanced_per_bit() {
        for p in patterns() {
            let chips = LineCode::Manchester.encode(&p);
            for bit_chips in chips.chunks_exact(2) {
                assert_eq!(reflect_fraction(bit_chips), 0.5);
            }
        }
    }

    #[test]
    fn fm0_cumulative_imbalance_bounded() {
        // FM0's DC property: a data 0 is split (one high, one low chip) and
        // consecutive data 1s alternate full-high/full-low, so the running
        // imbalance Σ(±1) over any prefix is bounded by a small constant —
        // which is why integrating over many chips cancels the data.
        for p in patterns() {
            let chips = LineCode::Fm0.encode(&p);
            let mut acc: i64 = 0;
            for &c in &chips {
                acc += if c { 1 } else { -1 };
                assert!(acc.abs() <= 3, "pattern {p:?} imbalance {acc}");
            }
        }
    }

    #[test]
    fn miller_imbalance_is_data_dependent() {
        // Benign patterns stay near balance…
        for p in patterns() {
            let chips = LineCode::Miller.encode(&p);
            let mut acc: i64 = 0;
            for &c in &chips {
                acc += if c { 1 } else { -1 };
                assert!(acc.abs() <= 4, "pattern {p:?} imbalance {acc}");
            }
        }
        // …but the repeating 0,1,1 pattern drifts (+2 per period), which is
        // why Miller is excluded from is_dc_balanced_short_horizon.
        let bad: Vec<bool> = (0..30).map(|i| i % 3 != 0).collect();
        let chips = LineCode::Miller.encode(&bad);
        let acc: i64 = chips.iter().map(|&c| if c { 1i64 } else { -1 }).sum();
        assert!(acc.abs() >= 10, "expected drift, got {acc}");
    }

    #[test]
    fn nrz_cumulative_imbalance_unbounded() {
        let chips = LineCode::Nrz.encode(&[true; 64]);
        let acc: i64 = chips.iter().map(|&c| if c { 1i64 } else { -1 }).sum();
        assert_eq!(acc, 64);
    }

    #[test]
    fn nrz_all_ones_is_unbalanced() {
        let chips = LineCode::Nrz.encode(&[true; 32]);
        assert_eq!(reflect_fraction(&chips), 1.0);
        assert!(!LineCode::Nrz.is_dc_balanced_short_horizon());
    }

    #[test]
    fn fm0_has_boundary_transition_every_bit() {
        let p: Vec<bool> = (0..40).map(|i| i % 3 != 0).collect();
        let chips = LineCode::Fm0.encode(&p);
        // Chip at end of bit k must differ from chip at start of bit k+1.
        for k in 0..p.len() - 1 {
            assert_ne!(chips[2 * k + 1], chips[2 * k + 2], "no inversion at boundary {k}");
        }
    }

    #[test]
    fn miller_zero_runs_alternate_at_boundaries() {
        let chips = LineCode::Miller.encode(&[false, false, false, false]);
        // Each 0 is a constant bit; consecutive 0s must alternate level.
        assert_eq!(chips[0], chips[1]);
        assert_ne!(chips[1], chips[2]);
        assert_eq!(chips[2], chips[3]);
        assert_ne!(chips[3], chips[4]);
    }

    #[test]
    fn soft_decoder_manchester_threshold_free() {
        let d = SoftDecoder::new(LineCode::Manchester);
        // Any gain/offset: first-half-bigger means 1.
        assert_eq!(d.decide(&[3.0e-6, 1.0e-6], 999.0), Some(true));
        assert_eq!(d.decide(&[1.0e-6, 3.0e-6], -999.0), Some(false));
        assert_eq!(d.decide(&[1.0], 0.0), None);
    }

    #[test]
    fn soft_decoder_matches_hard_on_clean_chips() {
        let bits: Vec<bool> = (0..32).map(|i| (i * 5) % 3 == 0).collect();
        for code in [LineCode::Nrz, LineCode::Manchester, LineCode::Fm0, LineCode::Miller] {
            let chips = code.encode(&bits);
            let d = SoftDecoder::new(code);
            let n = code.chips_per_bit();
            let soft: Vec<f64> = chips.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect();
            let decoded: Vec<bool> = soft
                .chunks_exact(n)
                .map(|c| d.decide(c, 0.5).unwrap())
                .collect();
            assert_eq!(decoded, bits, "{code:?}");
        }
    }

    #[test]
    fn streaming_encoder_matches_batch() {
        let bits: Vec<bool> = (0..23).map(|i| i % 4 == 1).collect();
        for code in [LineCode::Fm0, LineCode::Miller] {
            let batch = code.encode(&bits);
            let mut enc = Encoder::new(code);
            let mut streamed = Vec::new();
            for &b in &bits {
                enc.push(b, &mut streamed);
            }
            assert_eq!(streamed, batch, "{code:?}");
        }
    }
}
