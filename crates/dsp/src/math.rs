//! Special functions for error-rate analysis.
//!
//! The analysis crate expresses envelope-detection error rates through the
//! Gaussian Q-function, the Marcum Q₁ function and the modified Bessel
//! function I₀. Implementations follow the standard references (Abramowitz &
//! Stegun; Numerical Recipes): accuracy targets are ~1e-7 absolute, far
//! below the Monte-Carlo resolution of any experiment in this repository.

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x)` with ≲1.2e-7 absolute error
/// (Numerical Recipes rational Chebyshev fit), exact symmetry
/// `erfc(-x) = 2 - erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x) = erfc(x/√2)/2`.
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of [`q_func`] on `(0, 1)` by bisection (≈1e-10 accuracy).
///
/// Out-of-range probabilities clamp to ±∞-ish sentinels (±40).
pub fn q_inv(p: f64) -> f64 {
    if p <= 0.0 {
        return 40.0;
    }
    if p >= 1.0 {
        return -40.0;
    }
    let (mut lo, mut hi) = (-40.0f64, 40.0f64);
    // Q is strictly decreasing.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_func(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Modified Bessel function of the first kind, order zero, `I₀(x)`
/// (A&S 9.8.1/9.8.2 polynomial fits, ≲1.6e-7 relative).
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75) * (x / 3.75);
        1.0 + t * (3.5156229
            + t * (3.0899424
                + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.39894228
                + t * (0.01328592
                    + t * (0.00225319
                        + t * (-0.00157565
                            + t * (0.00916281
                                + t * (-0.02057706
                                    + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
    }
}

/// Natural log of `I₀(x)` — avoids overflow of `I₀` for large arguments.
pub fn ln_bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        bessel_i0(x).ln()
    } else {
        let t = 3.75 / ax;
        let poly = 0.39894228
            + t * (0.01328592
                + t * (0.00225319
                    + t * (-0.00157565
                        + t * (0.00916281
                            + t * (-0.02057706
                                + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377)))))));
        ax - 0.5 * ax.ln() + poly.ln()
    }
}

/// Marcum Q-function of order 1, `Q₁(a, b)`.
///
/// Computed by the canonical Poisson-mixture series
/// `Q₁(a,b) = Σₖ pois(k; a²/2) · P(Poisson(b²/2) ≤ k)`, with a Gaussian
/// asymptotic `Q(b − a)` for very large arguments where the series would
/// need thousands of terms. Non-coherent OOK/energy detection error rates
/// are expressed directly in this function.
pub fn marcum_q1(a: f64, b: f64) -> f64 {
    let a = a.abs();
    let b = b.abs();
    if b == 0.0 {
        return 1.0;
    }
    if a == 0.0 {
        return (-b * b / 2.0).exp();
    }
    // Asymptotic regime: both arguments large → Gaussian approximation.
    if a * b > 700.0 {
        return q_func(b - a);
    }
    let x = a * a / 2.0; // Poisson mean for k
    let y = b * b / 2.0; // Poisson mean for j
    // pois(k; x) iteratively; cdf_y = P(Poisson(y) ≤ k) accumulated alongside.
    let mut pk = (-x).exp(); // pois(0; x)
    let mut pj = (-y).exp(); // pois(k; y), starts at j = 0
    let mut cdf_y = pj; // P(Poisson(y) ≤ 0)
    let mut sum = pk * cdf_y;
    let max_iter = 4000;
    for k in 1..=max_iter {
        pk *= x / k as f64;
        pj *= y / k as f64;
        cdf_y += pj;
        let term = pk * cdf_y.min(1.0);
        sum += term;
        if term < 1e-15 && k as f64 > x {
            break;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// Natural logarithm of the factorial, `ln(n!)`, via Stirling for n > 20.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 20 {
        let mut acc = 0.0f64;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        return acc;
    }
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
}

/// Binomial tail `P(X ≥ k)` for `X ~ Binomial(n, p)` — used for
/// majority-vote repetition-code error rates. Numerically stable via log
/// factorials.
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return 1.0;
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let mut sum = 0.0;
    for i in k..=n {
        let ln_c = ln_factorial(n) - ln_factorial(i) - ln_factorial(n - i);
        sum += (ln_c + i as f64 * ln_p + (n - i) as f64 * ln_q).exp();
    }
    sum.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values to 7 digits; the rational fit is ~1.2e-7 absolute.
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn q_known_values() {
        assert!((q_func(0.0) - 0.5).abs() < 1e-7);
        assert!((q_func(1.0) - 0.1586553).abs() < 1e-6);
        assert!((q_func(3.0) - 1.349898e-3).abs() < 1e-7);
        assert!((q_func(-1.0) - 0.8413447).abs() < 1e-6);
    }

    #[test]
    fn q_inv_round_trips() {
        for &p in &[0.4, 0.1, 1e-2, 1e-4, 1e-6] {
            let x = q_inv(p);
            assert!((q_func(x) - p).abs() / p < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-9);
        assert!((bessel_i0(1.0) - 1.2660658).abs() < 1e-6);
        assert!((bessel_i0(5.0) - 27.239872).abs() / 27.239872 < 1e-6);
    }

    #[test]
    fn ln_bessel_i0_no_overflow() {
        let v = ln_bessel_i0(800.0);
        // ln I0(x) ≈ x − ln(2πx)/2 for large x.
        let approx = 800.0 - 0.5 * (2.0 * std::f64::consts::PI * 800.0).ln();
        assert!((v - approx).abs() < 0.01, "{v} vs {approx}");
        assert!(bessel_i0(800.0).is_infinite()); // raw form overflows, as expected
    }

    #[test]
    fn marcum_edge_cases() {
        assert!((marcum_q1(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((marcum_q1(3.0, 0.0) - 1.0).abs() < 1e-12);
        // Q1(0, b) = exp(−b²/2).
        for &b in &[0.5, 1.0, 2.0] {
            assert!((marcum_q1(0.0, b) - (-b * b / 2.0f64).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn marcum_matches_monte_carlo() {
        // Independent verification: Q₁(a,b) = P(√((a+X)² + Y²) > b) for
        // standard normal X, Y. Uses a seeded RNG so the test is stable.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xFDB5_0001);
        let gauss = |rng: &mut rand_chacha::ChaCha8Rng| -> f64 {
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        for &(a, b) in &[(1.0, 1.0), (2.0, 1.0), (1.0, 2.0), (3.0, 4.0), (0.5, 3.0)] {
            let n = 400_000;
            let mut hits = 0u64;
            for _ in 0..n {
                let x: f64 = a + gauss(&mut rng);
                let y: f64 = gauss(&mut rng);
                if (x * x + y * y).sqrt() > b {
                    hits += 1;
                }
            }
            let mc = hits as f64 / n as f64;
            let got = marcum_q1(a, b);
            assert!(
                (got - mc).abs() < 4e-3,
                "Q1({a},{b}) = {got}, Monte Carlo = {mc}"
            );
        }
    }

    #[test]
    fn marcum_matches_neumann_series() {
        // Second independent check via the closed form for equal arguments:
        // Q₁(a,a) = ½·[1 + e^{−a²}·I₀(a²)].
        let expect = 0.5 * (1.0 + (-1.0f64).exp() * bessel_i0(1.0));
        let got = marcum_q1(1.0, 1.0);
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn marcum_monotonicity() {
        // Increasing a increases Q1; increasing b decreases it.
        assert!(marcum_q1(2.0, 1.5) > marcum_q1(1.0, 1.5));
        assert!(marcum_q1(1.5, 2.0) < marcum_q1(1.5, 1.0));
    }

    #[test]
    fn marcum_asymptotic_joins_smoothly() {
        // Around the switchover a·b ≈ 700 the two methods should agree.
        let a = 26.0;
        let b = 27.0;
        let series = {
            // force series by staying just under the cutoff
            marcum_q1(a, b)
        };
        let gauss = q_func(b - a);
        assert!((series - gauss).abs() < 5e-3, "{series} vs {gauss}");
    }

    #[test]
    fn ln_factorial_matches_direct() {
        let mut acc = 1.0f64;
        for n in 1..=25u64 {
            acc *= n as f64;
            assert!(
                (ln_factorial(n) - acc.ln()).abs() < 1e-6,
                "n = {n}"
            );
        }
    }

    #[test]
    fn binomial_tail_sanity() {
        // Fair coin, 5 flips, P(≥3 heads) = 0.5 by symmetry.
        assert!((binomial_tail(5, 3, 0.5) - 0.5).abs() < 1e-9);
        // P(≥0) = 1, P(> n) = 0.
        assert!((binomial_tail(7, 0, 0.3) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail(7, 8, 0.3), 0.0);
        // Repetition-3 majority error with p=0.1: 3p²(1−p) + p³ = 0.028.
        assert!((binomial_tail(3, 2, 0.1) - 0.028).abs() < 1e-9);
    }
}
