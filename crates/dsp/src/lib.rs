//! # fdb-dsp — DSP substrate for the fd-backscatter stack
//!
//! This crate provides the signal-processing building blocks that every other
//! crate in the workspace composes: complex baseband samples, filters, line
//! codes, synchronisation, error detection/correction, adaptive slicers and
//! statistics.
//!
//! Everything here is deliberately simple, allocation-conscious and
//! deterministic (smoltcp-style): filters are explicit state machines that
//! process one sample at a time, randomness never enters this crate, and no
//! function panics on hostile input in a library path (they return `Result`
//! or saturate instead).
//!
//! ## Layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`sample`] | complex IQ sample type, dB/linear and dBm/watt conversions |
//! | [`ringbuf`] | fixed-capacity ring buffer used by windowed operators |
//! | [`fir`] | FIR filter + root-raised-cosine tap designer |
//! | [`iir`] | single-pole RC low-pass (the tag's detector capacitor) |
//! | [`moving_average`] | O(1) sliding-window mean |
//! | [`envelope`] | square-law envelope detector chain |
//! | [`correlate`] | normalised correlation and preamble search |
//! | [`fft`] | radix-2 FFT and FFT-based correlation scans |
//! | [`prbs`] | LFSR pseudo-random binary sequences |
//! | [`crc`] | CRC-8 / CRC-16-CCITT / CRC-32 |
//! | [`fec`] | repetition code, Hamming(7,4), block interleaver |
//! | [`line_code`] | NRZ-OOK, Manchester, FM0, Miller backscatter codings |
//! | [`stats`] | BER counters, Wilson intervals, Welford, EWMA, histograms |
//! | [`math`] | erf/erfc/Q, Marcum Q₁, Bessel I₀ special functions |
//! | [`resample`] | fractional resampler (models clock-rate mismatch) |
//! | [`agc`] | automatic gain normalisation for envelope streams |
//! | [`threshold`] | adaptive slicers (peak-tracking and two-means) |

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod agc;
pub mod correlate;
pub mod crc;
pub mod envelope;
pub mod fec;
pub mod fft;
pub mod fir;
pub mod iir;
pub mod line_code;
pub mod math;
pub mod moving_average;
pub mod prbs;
pub mod resample;
pub mod ringbuf;
pub mod sample;
pub mod stats;
pub mod threshold;

pub use sample::Iq;
