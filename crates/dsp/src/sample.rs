//! Complex baseband sample type and power-unit conversions.
//!
//! The whole stack works on complex baseband ("IQ") samples at a fixed
//! simulation rate. We provide a tiny purpose-built complex type rather than
//! pulling in a numerics crate: the operations needed by a backscatter
//! simulator are a short, closed list and having them inline keeps every
//! crate in the workspace dependency-light and auditable.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex baseband sample (in-phase `re`, quadrature `im`).
///
/// Arithmetic follows ordinary complex-number rules. Power is `norm_sq()`
/// (watts when the signal is scaled in √W), amplitude is `abs()`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Iq {
    /// In-phase (real) component.
    pub re: f64,
    /// Quadrature (imaginary) component.
    pub im: f64,
}

impl Iq {
    /// The additive identity.
    pub const ZERO: Iq = Iq { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Iq = Iq { re: 1.0, im: 0.0 };

    /// Builds a sample from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Iq { re, im }
    }

    /// Builds a purely real sample.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Iq { re, im: 0.0 }
    }

    /// Builds a sample from polar form: `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Iq::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{jθ}`.
    #[inline]
    pub fn phasor(theta: f64) -> Self {
        Iq::from_polar(1.0, theta)
    }

    /// Squared magnitude `|x|²` — instantaneous power for a √W-scaled signal.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|x|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Iq::new(self.re, -self.im)
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Iq::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Iq {
    type Output = Iq;
    #[inline]
    fn add(self, rhs: Iq) -> Iq {
        Iq::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Iq {
    #[inline]
    fn add_assign(&mut self, rhs: Iq) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Iq {
    type Output = Iq;
    #[inline]
    fn sub(self, rhs: Iq) -> Iq {
        Iq::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Iq {
    #[inline]
    fn sub_assign(&mut self, rhs: Iq) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Neg for Iq {
    type Output = Iq;
    #[inline]
    fn neg(self) -> Iq {
        Iq::new(-self.re, -self.im)
    }
}

impl Mul for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: Iq) -> Iq {
        Iq::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Iq {
    #[inline]
    fn mul_assign(&mut self, rhs: Iq) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: f64) -> Iq {
        self.scale(rhs)
    }
}

impl Mul<Iq> for f64 {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: Iq) -> Iq {
        rhs.scale(self)
    }
}

impl Div<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: f64) -> Iq {
        self.scale(1.0 / rhs)
    }
}

impl Div for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: Iq) -> Iq {
        let d = rhs.norm_sq();
        (self * rhs.conj()).scale(1.0 / d)
    }
}

impl Sum for Iq {
    fn sum<I: Iterator<Item = Iq>>(iter: I) -> Iq {
        iter.fold(Iq::ZERO, |a, b| a + b)
    }
}

/// Converts a power ratio to decibels: `10·log₁₀(x)`.
///
/// Returns `-inf` for zero input; NaN propagates for negative input
/// (a negative power ratio is a caller bug worth surfacing loudly).
#[inline]
pub fn lin_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Converts decibels to a linear power ratio: `10^(x/10)`.
#[inline]
pub fn db_to_lin(x: f64) -> f64 {
    10f64.powf(x / 10.0)
}

/// Converts watts to dBm.
#[inline]
pub fn watts_to_dbm(w: f64) -> f64 {
    lin_to_db(w) + 30.0
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_lin(dbm - 30.0)
}

/// Mean power (mean of `|x|²`) of a sample slice. Returns 0 for empty input.
pub fn mean_power(samples: &[Iq]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64
}

/// Root-mean-square amplitude of a sample slice.
pub fn rms(samples: &[Iq]) -> f64 {
    mean_power(samples).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn complex_arithmetic_identities() {
        let a = Iq::new(3.0, -4.0);
        let b = Iq::new(-1.5, 2.0);
        assert_eq!(a + Iq::ZERO, a);
        assert_eq!(a * Iq::ONE, a);
        assert_eq!(a - a, Iq::ZERO);
        let prod = a * b;
        // (3 - 4j)(-1.5 + 2j) = -4.5 + 6j + 6j - 8j² = 3.5 + 12j
        assert!((prod.re - 3.5).abs() < EPS);
        assert!((prod.im - 12.0).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Iq::new(0.7, -2.3);
        let b = Iq::new(1.1, 0.4);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-10);
        assert!((q.im - a.im).abs() < 1e-10);
    }

    #[test]
    fn magnitude_and_phase() {
        let a = Iq::new(3.0, 4.0);
        assert!((a.abs() - 5.0).abs() < EPS);
        assert!((a.norm_sq() - 25.0).abs() < EPS);
        let p = Iq::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((p.abs() - 2.0).abs() < EPS);
        assert!((p.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn conjugate_squares_to_norm() {
        let a = Iq::new(-1.25, 0.5);
        let n = a * a.conj();
        assert!((n.re - a.norm_sq()).abs() < EPS);
        assert!(n.im.abs() < EPS);
    }

    #[test]
    fn db_conversions_round_trip() {
        for &x in &[1e-9, 1e-3, 1.0, 42.0, 1e6] {
            assert!((db_to_lin(lin_to_db(x)) - x).abs() / x < 1e-12);
        }
        assert!((lin_to_db(100.0) - 20.0).abs() < EPS);
        assert!((watts_to_dbm(1.0) - 30.0).abs() < EPS);
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Iq> = (0..1000)
            .map(|i| Iq::phasor(i as f64 * 0.1))
            .collect();
        assert!((mean_power(&v) - 1.0).abs() < 1e-12);
        assert!((rms(&v) - 1.0).abs() < 1e-12);
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn sum_matches_fold() {
        let v = [Iq::new(1.0, 2.0), Iq::new(-0.5, 0.25), Iq::new(3.0, -3.0)];
        let s: Iq = v.iter().copied().sum();
        assert!((s.re - 3.5).abs() < EPS);
        assert!((s.im + 0.75).abs() < EPS);
    }
}
