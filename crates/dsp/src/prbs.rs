//! Linear-feedback shift register pseudo-random binary sequences.
//!
//! PRBS generators serve three roles in the stack: payload generation for
//! BER measurements, the symbol stream of the ATSC-like ambient TV source,
//! and whitening/scrambling inside frames. All are maximal-length Fibonacci
//! LFSRs with the standard ITU tap polynomials.

use serde::{Deserialize, Serialize};

/// Standard PRBS polynomial orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrbsOrder {
    /// x⁷ + x⁶ + 1, period 127.
    Prbs7,
    /// x⁹ + x⁵ + 1, period 511.
    Prbs9,
    /// x¹⁵ + x¹⁴ + 1, period 32767.
    Prbs15,
    /// x²³ + x¹⁸ + 1, period 8388607.
    Prbs23,
    /// x³¹ + x²⁸ + 1, period 2³¹ − 1.
    Prbs31,
}

impl PrbsOrder {
    /// Register length in bits.
    pub fn order(self) -> u32 {
        match self {
            PrbsOrder::Prbs7 => 7,
            PrbsOrder::Prbs9 => 9,
            PrbsOrder::Prbs15 => 15,
            PrbsOrder::Prbs23 => 23,
            PrbsOrder::Prbs31 => 31,
        }
    }

    /// Feedback tap positions (1-indexed from the output stage).
    fn taps(self) -> (u32, u32) {
        match self {
            PrbsOrder::Prbs7 => (7, 6),
            PrbsOrder::Prbs9 => (9, 5),
            PrbsOrder::Prbs15 => (15, 14),
            PrbsOrder::Prbs23 => (23, 18),
            PrbsOrder::Prbs31 => (31, 28),
        }
    }

    /// Sequence period `2^order − 1`.
    pub fn period(self) -> u64 {
        (1u64 << self.order()) - 1
    }
}

/// A maximal-length Fibonacci LFSR bit generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prbs {
    state: u64,
    order: PrbsOrder,
}

impl Prbs {
    /// Creates a generator with the given polynomial and seed.
    ///
    /// A zero seed (the LFSR's absorbing state) is replaced by 1.
    pub fn new(order: PrbsOrder, seed: u64) -> Self {
        let mask = (1u64 << order.order()) - 1;
        let state = seed & mask;
        Prbs {
            state: if state == 0 { 1 } else { state },
            order,
        }
    }

    /// Generates the next bit.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        let (t1, t2) = self.order.taps();
        let n = self.order.order();
        let b1 = (self.state >> (t1 - 1)) & 1;
        let b2 = (self.state >> (t2 - 1)) & 1;
        let fb = b1 ^ b2;
        let mask = (1u64 << n) - 1;
        self.state = ((self.state << 1) | fb) & mask;
        fb == 1
    }

    /// Generates `n` bits into a vector.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n);
        self.bits_into(n, &mut out);
        out
    }

    /// Generates `n` bits into a caller-owned buffer (cleared and refilled,
    /// capacity retained — the per-frame payload path).
    pub fn bits_into(&mut self, n: usize, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_bit());
        }
    }

    /// Generates `n` bytes (MSB-first packing).
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        self.bytes_into(n, &mut out);
        out
    }

    /// Generates `n` bytes into a caller-owned buffer (cleared and
    /// refilled, capacity retained).
    pub fn bytes_into(&mut self, n: usize, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let mut b = 0u8;
            for _ in 0..8 {
                b = (b << 1) | u8::from(self.next_bit());
            }
            out.push(b);
        }
    }
}

/// Self-synchronising additive scrambler/descrambler over bit slices.
///
/// XORs the data with the PRBS stream; applying it twice with the same seed
/// restores the input. Used to whiten payloads so line-code statistics and
/// adaptive thresholds see balanced data even for pathological payloads.
#[derive(Debug, Clone)]
pub struct Scrambler {
    prbs: Prbs,
}

impl Scrambler {
    /// Creates a scrambler with the given polynomial and seed.
    pub fn new(order: PrbsOrder, seed: u64) -> Self {
        Scrambler {
            prbs: Prbs::new(order, seed),
        }
    }

    /// Scrambles (or descrambles) bits in place.
    pub fn apply(&mut self, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b ^= self.prbs.next_bit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs7_has_full_period() {
        let mut g = Prbs::new(PrbsOrder::Prbs7, 0x5A);
        let first: Vec<bool> = g.bits(127);
        let second: Vec<bool> = g.bits(127);
        assert_eq!(first, second, "period must be 127");
        // Within one period the sequence must not repeat at shorter lags.
        for lag in 1..127 {
            let shifted: Vec<bool> = first
                .iter()
                .cycle()
                .skip(lag)
                .take(127)
                .copied()
                .collect();
            assert_ne!(first, shifted, "unexpected period divisor {lag}");
        }
    }

    #[test]
    fn prbs9_balance() {
        // Maximal LFSR of order n emits 2^(n-1) ones and 2^(n-1)−1 zeros.
        let mut g = Prbs::new(PrbsOrder::Prbs9, 1);
        let ones = g.bits(511).iter().filter(|&&b| b).count();
        assert_eq!(ones, 256);
    }

    #[test]
    fn prbs15_balance() {
        let mut g = Prbs::new(PrbsOrder::Prbs15, 12345);
        let ones = g.bits(32767).iter().filter(|&&b| b).count();
        assert_eq!(ones, 16384);
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut g = Prbs::new(PrbsOrder::Prbs7, 0);
        // Would emit all-zero forever if the absorbing state weren't avoided.
        assert!(g.bits(50).iter().any(|&b| b));
    }

    #[test]
    fn distinct_seeds_distinct_phases() {
        let a: Vec<bool> = Prbs::new(PrbsOrder::Prbs9, 3).bits(64);
        let b: Vec<bool> = Prbs::new(PrbsOrder::Prbs9, 87).bits(64);
        assert_ne!(a, b);
    }

    #[test]
    fn bytes_pack_msb_first() {
        let mut g1 = Prbs::new(PrbsOrder::Prbs7, 9);
        let mut g2 = Prbs::new(PrbsOrder::Prbs7, 9);
        let bits = g1.bits(16);
        let bytes = g2.bytes(2);
        for (i, byte) in bytes.iter().enumerate() {
            for j in 0..8 {
                let bit = (byte >> (7 - j)) & 1 == 1;
                assert_eq!(bit, bits[i * 8 + j]);
            }
        }
    }

    #[test]
    fn scrambler_round_trips() {
        let mut data: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let original = data.clone();
        Scrambler::new(PrbsOrder::Prbs15, 77).apply(&mut data);
        assert_ne!(data, original);
        Scrambler::new(PrbsOrder::Prbs15, 77).apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn scrambler_whitens_constant_input() {
        let mut data = vec![true; 511];
        Scrambler::new(PrbsOrder::Prbs9, 1).apply(&mut data);
        let ones = data.iter().filter(|&&b| b).count();
        // Whitened all-ones = complement of PRBS → near-balanced.
        assert!((ones as i64 - 255).abs() <= 1, "ones = {ones}");
    }
}
