//! Automatic gain normalisation for envelope streams.
//!
//! The absolute envelope level at a tag varies over orders of magnitude with
//! distance from the ambient source; downstream slicers and correlators work
//! best on a normalised stream. This AGC tracks the mean envelope with an
//! EWMA and scales the stream to a unit target, with gain limits to avoid
//! amplifying pure noise during signal dropouts.

use crate::stats::Ewma;

/// Envelope-domain automatic gain control.
#[derive(Debug, Clone)]
pub struct Agc {
    tracker: Ewma,
    target: f64,
    min_gain: f64,
    max_gain: f64,
}

impl Agc {
    /// Creates an AGC that normalises the stream mean towards `target`
    /// using EWMA smoothing factor `alpha` (e.g. 1e-3 for a slow loop).
    pub fn new(target: f64, alpha: f64) -> Self {
        Agc {
            tracker: Ewma::new(alpha),
            target: if target > 0.0 { target } else { 1.0 },
            min_gain: 1e-9,
            max_gain: 1e9,
        }
    }

    /// Restricts the gain range (both clamped to positive values).
    pub fn with_gain_limits(mut self, min_gain: f64, max_gain: f64) -> Self {
        self.min_gain = min_gain.max(f64::MIN_POSITIVE);
        self.max_gain = max_gain.max(self.min_gain);
        self
    }

    /// Current gain that would be applied.
    pub fn gain(&self) -> f64 {
        match self.tracker.value() {
            Some(m) if m > 0.0 => (self.target / m).clamp(self.min_gain, self.max_gain),
            _ => 1.0,
        }
    }

    /// Processes one envelope sample, returning the normalised value.
    ///
    /// Negative inputs (numerical artefacts from upstream filters) are
    /// treated as zero for tracking purposes but still scaled, so the
    /// waveform shape is preserved.
    pub fn process(&mut self, x: f64) -> f64 {
        self.tracker.push(x.max(0.0));
        x * self.gain()
    }

    /// Resets the level tracker.
    pub fn reset(&mut self) {
        self.tracker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_constant_level() {
        let mut agc = Agc::new(1.0, 0.05);
        let mut y = 0.0;
        for _ in 0..2000 {
            y = agc.process(42.0);
        }
        assert!((y - 1.0).abs() < 1e-6, "y = {y}");
    }

    #[test]
    fn preserves_modulation_ratio() {
        // A 2:1 OOK swing must stay 2:1 after AGC.
        let mut agc = Agc::new(1.0, 0.01);
        let mut hi = 0.0;
        let mut lo = 0.0;
        for i in 0..20_000 {
            let x = if i % 2 == 0 { 2.0 } else { 1.0 };
            let y = agc.process(x);
            if i % 2 == 0 {
                hi = y;
            } else {
                lo = y;
            }
        }
        // The EWMA tracker alternates slightly around the true mean, so the
        // instantaneous gain wobbles; 1 % is the expected residual.
        assert!((hi / lo - 2.0).abs() < 0.05, "ratio {}", hi / lo);
        // And the mean sits at the target.
        assert!(((hi + lo) / 2.0 - 1.0).abs() < 0.02);
    }

    #[test]
    fn gain_clamps_on_dropout() {
        let mut agc = Agc::new(1.0, 0.5).with_gain_limits(0.1, 10.0);
        for _ in 0..100 {
            agc.process(1e-12); // near-zero input
        }
        assert!(agc.gain() <= 10.0);
    }

    #[test]
    fn unity_gain_before_first_sample() {
        let agc = Agc::new(1.0, 0.1);
        assert_eq!(agc.gain(), 1.0);
    }

    #[test]
    fn adapts_to_level_change() {
        let mut agc = Agc::new(1.0, 0.02);
        for _ in 0..2000 {
            agc.process(5.0);
        }
        // Level drops 10×; AGC should re-converge.
        let mut y = 0.0;
        for _ in 0..2000 {
            y = agc.process(0.5);
        }
        assert!((y - 1.0).abs() < 1e-3, "y = {y}");
    }
}
