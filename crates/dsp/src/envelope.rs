//! Square-law envelope detection.
//!
//! A passive backscatter receiver has no mixer, no LO and no ADC in the
//! conventional sense: the antenna voltage drives a diode (square-law
//! device) into an RC network, and a comparator slices the result. This
//! module models the square-law + RC stage; the comparator lives in
//! `fdb-device` and the slicers in [`crate::threshold`].

use crate::iir::SinglePole;
use crate::sample::Iq;

/// Square-law envelope detector: `e[n] = LPF(|x[n]|²)`.
///
/// The low-pass corner is set by the detector's RC time constant; it must be
/// fast relative to the data chip rate (to follow data transitions) and is
/// the physical reason the *feedback* channel must be much slower than the
/// data channel (a second, slower stage recovers it).
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeDetector {
    lpf: SinglePole,
}

impl EnvelopeDetector {
    /// Creates a detector with RC time constant `tau` seconds sampled every
    /// `dt` seconds. `tau = 0` gives an ideal (instantaneous) square-law
    /// detector.
    pub fn new(tau: f64, dt: f64) -> Self {
        EnvelopeDetector {
            lpf: SinglePole::from_rc(tau, dt),
        }
    }

    /// Ideal detector (no RC smoothing) — handy in unit tests and in
    /// analytical cross-checks.
    pub fn ideal() -> Self {
        EnvelopeDetector {
            lpf: SinglePole::from_alpha(1.0),
        }
    }

    /// Processes one complex sample into an envelope (power) sample.
    #[inline]
    pub fn process(&mut self, x: Iq) -> f64 {
        self.lpf.process(x.norm_sq())
    }

    /// Processes a block, producing one envelope sample per input.
    pub fn process_block(&mut self, xs: &[Iq]) -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len());
        self.process_block_into(xs, &mut out);
        out
    }

    /// Processes a block into a caller-owned buffer (cleared first) — the
    /// allocation-free block entry point.
    pub fn process_block_into(&mut self, xs: &[Iq], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Current detector output (capacitor voltage analogue).
    pub fn output(&self) -> f64 {
        self.lpf.output()
    }

    /// Resets the RC state.
    pub fn reset(&mut self) {
        self.lpf.reset();
    }

    /// Pre-charges the RC state (e.g. to the expected carrier level, so a
    /// simulation needn't burn samples on settling).
    pub fn precharge(&mut self, level: f64) {
        self.lpf.set_state(level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_detector_outputs_power() {
        let mut d = EnvelopeDetector::ideal();
        assert!((d.process(Iq::new(3.0, 4.0)) - 25.0).abs() < 1e-12);
        assert!((d.process(Iq::ZERO)).abs() < 1e-12);
    }

    #[test]
    fn phase_invariance() {
        // An envelope detector cannot see phase — the property that forces
        // non-coherent (energy) detection at tags.
        let mut d1 = EnvelopeDetector::ideal();
        let mut d2 = EnvelopeDetector::ideal();
        let a = Iq::from_polar(1.7, 0.3);
        let b = Iq::from_polar(1.7, -2.1);
        assert!((d1.process(a) - d2.process(b)).abs() < 1e-12);
    }

    #[test]
    fn rc_smooths_step() {
        let dt = 1e-6;
        let mut d = EnvelopeDetector::new(10e-6, dt);
        let first = d.process(Iq::ONE);
        assert!(first < 1.0);
        let mut y = first;
        for _ in 0..200 {
            y = d.process(Iq::ONE);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn precharge_skips_settling() {
        let mut d = EnvelopeDetector::new(1e-3, 1e-6);
        d.precharge(1.0);
        let y = d.process(Iq::ONE);
        assert!((y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_matches_sample_by_sample() {
        let xs: Vec<Iq> = (0..50).map(|i| Iq::from_polar(0.1 * i as f64, i as f64)).collect();
        let mut d1 = EnvelopeDetector::new(5e-6, 1e-6);
        let mut d2 = d1;
        let block = d1.process_block(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(block[i], d2.process(x));
        }
    }
}
