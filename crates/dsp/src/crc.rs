//! Cyclic redundancy checks.
//!
//! Three widths cover the stack's needs: CRC-8 guards the small per-block
//! trailers that drive instantaneous NACK feedback (8 bits of overhead per
//! 16-byte block keeps the early-abort scheme cheap), CRC-16/CCITT guards
//! frame headers, and CRC-32 guards whole payloads in the packet-level ARQ
//! baseline.
//!
//! Implementations are table-free bitwise MSB-first — frame sizes here are
//! hundreds of bytes, so table generation would cost more than it saves,
//! and the bitwise form is trivially auditable against the polynomial.

/// CRC-8 (ATM HEC polynomial 0x07, init 0x00, no reflection, no final XOR).
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0x00;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no final XOR).
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3: poly 0x04C11DB7 reflected = 0xEDB88320, init
/// 0xFFFFFFFF, reflected I/O, final XOR 0xFFFFFFFF).
pub fn crc32_ieee(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Incremental CRC-8 for streaming per-block checks (the receiver computes
/// the block CRC bit-by-bit as data arrives so the NACK decision is ready
/// the instant the trailer ends).
#[derive(Debug, Clone, Copy, Default)]
pub struct Crc8Stream {
    crc: u8,
}

impl Crc8Stream {
    /// Creates a fresh stream CRC (state 0).
    pub fn new() -> Self {
        Crc8Stream { crc: 0 }
    }

    /// Feeds one bit (MSB-first within bytes).
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let fb = ((self.crc >> 7) & 1 == 1) ^ bit;
        self.crc <<= 1;
        if fb {
            self.crc ^= 0x07;
        }
    }

    /// Feeds one byte.
    pub fn push_byte(&mut self, byte: u8) {
        for i in (0..8).rev() {
            self.push_bit((byte >> i) & 1 == 1);
        }
    }

    /// Current CRC value.
    pub fn value(&self) -> u8 {
        self.crc
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        self.crc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Standard check value for all three: the ASCII string "123456789".
    const CHECK: &[u8] = b"123456789";

    #[test]
    fn crc8_check_value() {
        assert_eq!(crc8(CHECK), 0xF4);
    }

    #[test]
    fn crc16_ccitt_check_value() {
        assert_eq!(crc16_ccitt(CHECK), 0x29B1);
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32_ieee(CHECK), 0xCBF4_3926);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"full duplex backscatter".to_vec();
        let c0 = crc16_ccitt(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc16_ccitt(&d), c0, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn crc8_detects_all_single_flips_in_block() {
        let data: Vec<u8> = (0u8..16).collect();
        let c0 = crc8(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc8(&d), c0);
            }
        }
    }

    #[test]
    fn stream_crc8_matches_block_crc8() {
        let data = b"stream equivalence test vector";
        let mut s = Crc8Stream::new();
        for &b in data.iter() {
            s.push_byte(b);
        }
        assert_eq!(s.value(), crc8(data));
    }

    #[test]
    fn stream_crc8_bitwise_matches() {
        let data = [0xA5u8, 0x3C, 0xFF, 0x00, 0x81];
        let mut s = Crc8Stream::new();
        for &byte in &data {
            for i in (0..8).rev() {
                s.push_bit((byte >> i) & 1 == 1);
            }
        }
        assert_eq!(s.value(), crc8(&data));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
        assert_eq!(crc32_ieee(&[]), 0x0000_0000);
    }

    #[test]
    fn stream_reset() {
        let mut s = Crc8Stream::new();
        s.push_byte(0xDE);
        s.reset();
        assert_eq!(s.value(), 0);
        s.push_byte(0x31);
        assert_eq!(s.value(), crc8(&[0x31]));
    }
}
