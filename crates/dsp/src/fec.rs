//! Forward error correction: repetition codes, Hamming(7,4), interleaving.
//!
//! Backscatter links run at kilobit rates with severe energy constraints,
//! so the deployed codes are tiny: bit-repetition with majority vote (used
//! by the low-rate feedback channel, where the integrator already provides
//! most of the gain) and Hamming(7,4) for headers. A block interleaver
//! spreads burst errors from envelope-level fades across codewords.

/// Repetition encoder: each bit is emitted `n` times.
pub fn repeat_encode(bits: &[bool], n: usize) -> Vec<bool> {
    let n = n.max(1);
    let mut out = Vec::with_capacity(bits.len() * n);
    for &b in bits {
        for _ in 0..n {
            out.push(b);
        }
    }
    out
}

/// Majority-vote repetition decoder. Trailing partial groups are decoded by
/// majority over the partial group. Ties (even `n`) resolve to `true`.
pub fn repeat_decode(coded: &[bool], n: usize) -> Vec<bool> {
    let n = n.max(1);
    coded
        .chunks(n)
        .map(|chunk| {
            let ones = chunk.iter().filter(|&&b| b).count();
            2 * ones >= chunk.len()
        })
        .collect()
}

/// Encodes a 4-bit nibble into a Hamming(7,4) codeword.
///
/// Bit layout (index 0 first): `p1 p2 d1 p3 d2 d3 d4` — the classic
/// positional arrangement where parity bit `p_k` covers positions whose
/// 1-based index has bit `k` set.
pub fn hamming74_encode_nibble(nibble: u8) -> [bool; 7] {
    let d1 = nibble & 0b1000 != 0;
    let d2 = nibble & 0b0100 != 0;
    let d3 = nibble & 0b0010 != 0;
    let d4 = nibble & 0b0001 != 0;
    let p1 = d1 ^ d2 ^ d4;
    let p2 = d1 ^ d3 ^ d4;
    let p3 = d2 ^ d3 ^ d4;
    [p1, p2, d1, p3, d2, d3, d4]
}

/// Decodes a Hamming(7,4) codeword, correcting up to one bit error.
///
/// Returns `(nibble, corrected_position)`; `corrected_position` is
/// `Some(1-based position)` when a single-bit error was fixed.
pub fn hamming74_decode(cw: &[bool; 7]) -> (u8, Option<usize>) {
    let mut w = *cw;
    let s1 = w[0] ^ w[2] ^ w[4] ^ w[6];
    let s2 = w[1] ^ w[2] ^ w[5] ^ w[6];
    let s3 = w[3] ^ w[4] ^ w[5] ^ w[6];
    let syndrome = (s3 as usize) << 2 | (s2 as usize) << 1 | (s1 as usize);
    let corrected = if syndrome != 0 {
        w[syndrome - 1] = !w[syndrome - 1];
        Some(syndrome)
    } else {
        None
    };
    let nibble = (u8::from(w[2]) << 3) | (u8::from(w[4]) << 2) | (u8::from(w[5]) << 1) | u8::from(w[6]);
    (nibble, corrected)
}

/// Encodes a byte slice with Hamming(7,4): 14 coded bits per byte
/// (high nibble first).
pub fn hamming74_encode(data: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(data.len() * 14);
    hamming74_encode_into(data, &mut out);
    out
}

/// [`hamming74_encode`] appending into a caller-owned buffer (the buffer is
/// *not* cleared first, so a frame assembler can chain sections).
pub fn hamming74_encode_into(data: &[u8], out: &mut Vec<bool>) {
    out.reserve(data.len() * 14);
    for &byte in data {
        out.extend_from_slice(&hamming74_encode_nibble(byte >> 4));
        out.extend_from_slice(&hamming74_encode_nibble(byte & 0x0F));
    }
}

/// Decodes a Hamming(7,4) bit stream back to bytes. Returns the decoded
/// bytes and the number of corrected bit errors. Trailing bits that do not
/// fill two full codewords are ignored.
pub fn hamming74_decode_stream(bits: &[bool]) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(bits.len() / 14);
    let corrections = hamming74_decode_stream_into(bits, &mut out);
    (out, corrections)
}

/// [`hamming74_decode_stream`] into a caller-owned buffer: `out` is cleared
/// and refilled (capacity retained); returns the corrected-bit count.
pub fn hamming74_decode_stream_into(bits: &[bool], out: &mut Vec<u8>) -> usize {
    out.clear();
    out.reserve(bits.len() / 14);
    let mut corrections = 0;
    let mut iter = bits.chunks_exact(7);
    let mut pending_high: Option<u8> = None;
    for chunk in &mut iter {
        let mut cw = [false; 7];
        cw.copy_from_slice(chunk);
        let (nibble, fixed) = hamming74_decode(&cw);
        if fixed.is_some() {
            corrections += 1;
        }
        match pending_high.take() {
            None => pending_high = Some(nibble),
            Some(high) => out.push((high << 4) | nibble),
        }
    }
    corrections
}

/// Rectangular block interleaver: writes row-wise, reads column-wise.
///
/// Depth `rows` spreads a burst of up to `rows` consecutive channel errors
/// across distinct codewords. The total length must be a multiple of `rows`
/// for perfect reconstruction; otherwise the tail is passed through
/// unpermuted.
#[derive(Debug, Clone, Copy)]
pub struct Interleaver {
    rows: usize,
}

impl Interleaver {
    /// Creates an interleaver of the given depth (clamped to ≥ 1).
    pub fn new(rows: usize) -> Self {
        Interleaver { rows: rows.max(1) }
    }

    /// Interleaves a bit slice.
    pub fn interleave(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.permute_into(bits, false, &mut out);
        out
    }

    /// Inverts [`Interleaver::interleave`].
    pub fn deinterleave(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.permute_into(bits, true, &mut out);
        out
    }

    /// [`Interleaver::interleave`] into a caller-owned buffer (cleared and
    /// refilled, capacity retained).
    pub fn interleave_into(&self, bits: &[bool], out: &mut Vec<bool>) {
        self.permute_into(bits, false, out);
    }

    /// [`Interleaver::deinterleave`] into a caller-owned buffer (cleared
    /// and refilled, capacity retained).
    pub fn deinterleave_into(&self, bits: &[bool], out: &mut Vec<bool>) {
        self.permute_into(bits, true, out);
    }

    fn permute_into(&self, bits: &[bool], inverse: bool, out: &mut Vec<bool>) {
        out.clear();
        let r = self.rows;
        if r <= 1 || bits.len() < r {
            out.extend_from_slice(bits);
            return;
        }
        let body = bits.len() - bits.len() % r;
        let cols = body / r;
        out.resize(bits.len(), false);
        for i in 0..body {
            let (row, col) = (i / cols, i % cols);
            let j = col * r + row;
            if inverse {
                out[i] = bits[j];
            } else {
                out[j] = bits[i];
            }
        }
        out[body..].copy_from_slice(&bits[body..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nib_bits(n: u8) -> [bool; 7] {
        hamming74_encode_nibble(n)
    }

    #[test]
    fn repetition_round_trip() {
        let bits: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        for n in [1, 3, 5, 7] {
            assert_eq!(repeat_decode(&repeat_encode(&bits, n), n), bits);
        }
    }

    #[test]
    fn repetition_corrects_minority_errors() {
        let bits = vec![true, false, true, true, false];
        let mut coded = repeat_encode(&bits, 5);
        // Flip 2 of each group of 5 — still decodable.
        for g in 0..bits.len() {
            coded[g * 5] = !coded[g * 5];
            coded[g * 5 + 3] = !coded[g * 5 + 3];
        }
        assert_eq!(repeat_decode(&coded, 5), bits);
    }

    #[test]
    fn hamming_all_nibbles_round_trip() {
        for n in 0u8..16 {
            let cw = nib_bits(n);
            let (out, fixed) = hamming74_decode(&cw);
            assert_eq!(out, n);
            assert!(fixed.is_none());
        }
    }

    #[test]
    fn hamming_corrects_every_single_bit_error() {
        for n in 0u8..16 {
            for pos in 0..7 {
                let mut cw = nib_bits(n);
                cw[pos] = !cw[pos];
                let (out, fixed) = hamming74_decode(&cw);
                assert_eq!(out, n, "nibble {n} pos {pos}");
                assert_eq!(fixed, Some(pos + 1));
            }
        }
    }

    #[test]
    fn hamming_min_distance_is_three() {
        // Every pair of distinct codewords differs in ≥ 3 positions.
        for a in 0u8..16 {
            for b in (a + 1)..16 {
                let ca = nib_bits(a);
                let cb = nib_bits(b);
                let d = ca.iter().zip(cb.iter()).filter(|(x, y)| x != y).count();
                assert!(d >= 3, "d({a},{b}) = {d}");
            }
        }
    }

    #[test]
    fn hamming_stream_round_trip_with_errors() {
        let data = b"instantaneous feedback".to_vec();
        let mut coded = hamming74_encode(&data);
        // One error per codeword is always correctable.
        for cw in 0..coded.len() / 7 {
            coded[cw * 7 + (cw % 7)] = !coded[cw * 7 + (cw % 7)];
        }
        let (decoded, corrections) = hamming74_decode_stream(&coded);
        assert_eq!(decoded, data);
        assert_eq!(corrections, data.len() * 2);
    }

    #[test]
    fn interleaver_round_trip() {
        let bits: Vec<bool> = (0..97).map(|i| (i * 7) % 11 < 5).collect();
        for rows in [1, 2, 4, 8, 16] {
            let il = Interleaver::new(rows);
            assert_eq!(il.deinterleave(&il.interleave(&bits)), bits, "rows {rows}");
        }
    }

    #[test]
    fn interleaver_spreads_bursts() {
        // A burst of `rows` consecutive errors after interleaving lands in
        // `rows` different rows after deinterleaving — i.e. gaps ≥ cols.
        let rows = 4;
        let len = 64;
        let il = Interleaver::new(rows);
        let clean = vec![false; len];
        let mut tx = il.interleave(&clean);
        for slot in tx.iter_mut().take(24).skip(20) {
            *slot = true; // burst of 4 channel errors
        }
        let rx = il.deinterleave(&tx);
        let err_pos: Vec<usize> = rx.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        assert_eq!(err_pos.len(), 4);
        for w in err_pos.windows(2) {
            assert!(w[1] - w[0] >= len / rows - 1, "burst not spread: {err_pos:?}");
        }
    }

    #[test]
    fn interleaver_short_input_passthrough() {
        let il = Interleaver::new(8);
        let bits = vec![true, false, true];
        assert_eq!(il.interleave(&bits), bits);
    }
}
