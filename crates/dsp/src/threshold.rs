//! Adaptive slicers: turning envelope levels into bits.
//!
//! A backscatter receiver never knows its absolute signal levels — they
//! depend on distance, ambient power and modulation depth — so the decision
//! threshold must be learned from the waveform itself. Two estimators are
//! provided:
//!
//! * [`PeakTracker`] — leaky max/min followers; threshold at the midpoint.
//!   Cheap (a comparator plus two RC networks in hardware), fast to acquire,
//!   the model of what a real tag does.
//! * [`TwoMeans`] — online 2-means clustering of levels; slightly better in
//!   noise, the model of a reader-class device with a little more compute.
//!
//! Both expose the same `process → (bit, threshold)` shape so the PHY can
//! swap them for the ablation study.

use serde::{Deserialize, Serialize};

/// Leaky peak-tracking slicer.
///
/// Max and min followers attack instantly and decay exponentially toward
/// the current sample with rate `decay` per sample; the slice threshold is
/// their midpoint. `decay` should be slow relative to the chip rate but
/// fast relative to fading dynamics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PeakTracker {
    max: f64,
    min: f64,
    decay: f64,
    primed: bool,
}

impl PeakTracker {
    /// Creates a tracker with the given per-sample decay (e.g. `1e-3`).
    pub fn new(decay: f64) -> Self {
        PeakTracker {
            max: 0.0,
            min: 0.0,
            decay: decay.clamp(0.0, 1.0),
            primed: false,
        }
    }

    /// Current threshold estimate.
    pub fn threshold(&self) -> f64 {
        0.5 * (self.max + self.min)
    }

    /// Current estimated swing (max − min).
    pub fn swing(&self) -> f64 {
        (self.max - self.min).max(0.0)
    }

    /// Processes one envelope sample; returns the sliced bit.
    pub fn process(&mut self, x: f64) -> bool {
        if !self.primed {
            self.max = x;
            self.min = x;
            self.primed = true;
            return false;
        }
        if x > self.max {
            self.max = x;
        } else {
            self.max -= self.decay * (self.max - x);
        }
        if x < self.min {
            self.min = x;
        } else {
            self.min += self.decay * (x - self.min);
        }
        x > self.threshold()
    }

    /// Slices a block into a caller-owned bit buffer (cleared first) — the
    /// allocation-free block entry point.
    pub fn process_block_into(&mut self, xs: &[f64], out: &mut Vec<bool>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Pre-loads the followers (e.g. from a known preamble swing).
    pub fn prime(&mut self, min: f64, max: f64) {
        self.min = min.min(max);
        self.max = max.max(min);
        self.primed = true;
    }

    /// Resets to the unprimed state.
    pub fn reset(&mut self) {
        self.primed = false;
        self.max = 0.0;
        self.min = 0.0;
    }
}

/// Online two-means slicer.
///
/// Keeps two centroids; each sample updates its nearest centroid with
/// learning rate `rate`. Threshold is the centroid midpoint. Centroids are
/// initialised from the first two samples. To avoid a centroid freezing on
/// an outlier (a spike captures `hi`, then no sample ever crosses the
/// inflated threshold again), both centroids also leak slowly toward the
/// running signal mean.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoMeans {
    lo: f64,
    hi: f64,
    rate: f64,
    leak: f64,
    mean: f64,
    seen: u32,
}

impl TwoMeans {
    /// Creates a slicer with the given centroid learning rate (e.g. 0.05).
    pub fn new(rate: f64) -> Self {
        let rate = rate.clamp(f64::MIN_POSITIVE, 1.0);
        TwoMeans {
            lo: 0.0,
            hi: 0.0,
            rate,
            leak: rate * 0.02,
            mean: 0.0,
            seen: 0,
        }
    }

    /// Current threshold estimate.
    pub fn threshold(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Current centroids `(lo, hi)`.
    pub fn centroids(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Processes one envelope sample; returns the sliced bit.
    pub fn process(&mut self, x: f64) -> bool {
        match self.seen {
            0 => {
                self.lo = x;
                self.hi = x;
                self.mean = x;
                self.seen = 1;
                false
            }
            1 => {
                if x >= self.lo {
                    self.hi = x;
                } else {
                    self.hi = self.lo;
                    self.lo = x;
                }
                self.mean = 0.5 * (self.mean + x);
                self.seen = 2;
                x > self.threshold()
            }
            _ => {
                self.mean += self.rate * 0.1 * (x - self.mean);
                let bit = x > self.threshold();
                if bit {
                    self.hi += self.rate * (x - self.hi);
                } else {
                    self.lo += self.rate * (x - self.lo);
                }
                // Anti-freeze leak: outlier-captured centroids relax back
                // toward the signal mean until real samples recapture them.
                self.hi += self.leak * (self.mean - self.hi);
                self.lo += self.leak * (self.mean - self.lo);
                // Keep ordering even under noise bursts.
                if self.lo > self.hi {
                    std::mem::swap(&mut self.lo, &mut self.hi);
                }
                bit
            }
        }
    }

    /// Pre-loads the centroids.
    pub fn prime(&mut self, lo: f64, hi: f64) {
        self.lo = lo.min(hi);
        self.hi = hi.max(lo);
        self.seen = 2;
    }

    /// Resets to the uninitialised state.
    pub fn reset(&mut self) {
        self.seen = 0;
        self.lo = 0.0;
        self.hi = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(n: usize, lo: f64, hi: f64, half_period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / half_period).is_multiple_of(2) { hi } else { lo })
            .collect()
    }

    #[test]
    fn peak_tracker_slices_clean_square_wave() {
        let xs = square_wave(4000, 1.0, 3.0, 10);
        let mut t = PeakTracker::new(1e-3);
        let mut correct = 0;
        let mut total = 0;
        for (i, &x) in xs.iter().enumerate() {
            let bit = t.process(x);
            if i > 100 {
                total += 1;
                if bit == ((i / 10) % 2 == 0) {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.99);
        assert!((t.threshold() - 2.0).abs() < 0.2, "thr {}", t.threshold());
    }

    #[test]
    fn peak_tracker_prime_sets_threshold() {
        let mut t = PeakTracker::new(1e-3);
        t.prime(1.0, 3.0);
        assert!((t.threshold() - 2.0).abs() < 1e-12);
        assert!(t.process(2.5));
        assert!(!t.process(1.5));
    }

    #[test]
    fn peak_tracker_adapts_after_level_shift() {
        let mut t = PeakTracker::new(5e-3);
        for &x in &square_wave(2000, 1.0, 3.0, 10) {
            t.process(x);
        }
        // Whole waveform drops 10×.
        for &x in &square_wave(5000, 0.1, 0.3, 10) {
            t.process(x);
        }
        assert!((t.threshold() - 0.2).abs() < 0.05, "thr {}", t.threshold());
    }

    #[test]
    fn two_means_slices_clean_square_wave() {
        let xs = square_wave(2000, 0.5, 1.5, 8);
        let mut t = TwoMeans::new(0.05);
        let mut errors = 0;
        for (i, &x) in xs.iter().enumerate() {
            let bit = t.process(x);
            if i > 50 && bit != ((i / 8) % 2 == 0) {
                errors += 1;
            }
        }
        assert_eq!(errors, 0);
        let (lo, hi) = t.centroids();
        assert!((lo - 0.5).abs() < 0.05 && (hi - 1.5).abs() < 0.05);
    }

    #[test]
    fn two_means_noise_robustness_beats_midpoint_of_extremes() {
        // With rare large spikes, peak tracking overshoots while two-means
        // stays near the true midpoint.
        let mut xs = square_wave(5000, 1.0, 2.0, 10);
        for i in (0..xs.len()).step_by(500) {
            xs[i] = 10.0; // spike
        }
        let mut pt = PeakTracker::new(1e-4);
        let mut tm = TwoMeans::new(0.05);
        for &x in &xs {
            pt.process(x);
            tm.process(x);
        }
        let true_mid = 1.5;
        assert!((tm.threshold() - true_mid).abs() < 0.3, "tm {}", tm.threshold());
        assert!((pt.threshold() - true_mid).abs() > (tm.threshold() - true_mid).abs());
    }

    #[test]
    fn two_means_centroid_ordering_invariant() {
        let mut t = TwoMeans::new(0.5);
        // Adversarial order.
        for &x in &[5.0, 1.0, 9.0, 0.0, 7.0, 2.0] {
            t.process(x);
            let (lo, hi) = t.centroids();
            assert!(lo <= hi);
        }
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut t = TwoMeans::new(0.1);
        t.process(1.0);
        t.process(2.0);
        t.reset();
        assert_eq!(t.centroids(), (0.0, 0.0));
        t.process(7.0); // first sample re-initialises
        assert_eq!(t.centroids(), (7.0, 7.0));
    }
}
