//! Measurement statistics: BER counting with confidence intervals, running
//! moments, EWMA trackers and simple histograms.
//!
//! Every experiment in `fdb-bench` reports a Wilson interval alongside each
//! BER point so that "who wins" claims in EXPERIMENTS.md are statistically
//! grounded rather than single-run noise.

use serde::{Deserialize, Serialize};

/// Bit-error-rate counter.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BerCounter {
    bits: u64,
    errors: u64,
}

impl BerCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one bit comparison.
    #[inline]
    pub fn record(&mut self, sent: bool, received: bool) {
        self.bits += 1;
        if sent != received {
            self.errors += 1;
        }
    }

    /// Records a slice comparison (up to the shorter length; any length
    /// mismatch is counted as errors on the missing tail, because a lost
    /// bit is an error from the link's perspective).
    pub fn record_slice(&mut self, sent: &[bool], received: &[bool]) {
        let n = sent.len().min(received.len());
        for i in 0..n {
            self.record(sent[i], received[i]);
        }
        let missing = sent.len().abs_diff(received.len()) as u64;
        self.bits += missing;
        self.errors += missing;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &BerCounter) {
        self.bits += other.bits;
        self.errors += other.errors;
    }

    /// Total bits compared.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Total errors observed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Point estimate of the BER. Returns 0 when no bits were compared.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Wilson score interval at the given z (1.96 ≈ 95 %).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.bits == 0 {
            return (0.0, 1.0);
        }
        let n = self.bits as f64;
        let p = self.ber();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }
}

/// Welford's online mean/variance.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (Chan's parallel formula).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Exponentially-weighted moving average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a tracker with smoothing `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// Pushes a sample and returns the new average. The first sample
    /// initialises the average directly (no zero bias).
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current value, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the tracker.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Fixed-range linear histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    /// Degenerate ranges or zero bins are clamped to a single bin.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1.0) };
        Histogram {
            lo,
            hi,
            bins: vec![0; bins.max(1)],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            let idx = ((f * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below range / at-or-above range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Approximate quantile `q ∈ [0,1]` from bin midpoints; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + (i as f64 + 0.5) * w);
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_counts_errors() {
        let mut c = BerCounter::new();
        c.record_slice(&[true, false, true, true], &[true, true, true, false]);
        assert_eq!(c.bits(), 4);
        assert_eq!(c.errors(), 2);
        assert!((c.ber() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ber_length_mismatch_counts_as_errors() {
        let mut c = BerCounter::new();
        c.record_slice(&[true, true, true, true], &[true, true]);
        assert_eq!(c.bits(), 4);
        assert_eq!(c.errors(), 2);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let mut c = BerCounter::new();
        for i in 0..1000 {
            c.record(true, i % 100 != 0); // 1% BER
        }
        let (lo, hi) = c.wilson_interval(1.96);
        assert!(lo <= c.ber() && c.ber() <= hi);
        assert!(lo > 0.003 && hi < 0.03, "interval ({lo}, {hi})");
    }

    #[test]
    fn wilson_interval_zero_errors_nonzero_upper() {
        let mut c = BerCounter::new();
        for _ in 0..100 {
            c.record(true, true);
        }
        let (lo, hi) = c.wilson_interval(1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.06);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 * 0.17).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..301).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < 100 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_sample_initialises() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.push(5.0), 5.0);
        let v = e.push(10.0);
        assert!((v - 5.5).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2);
        let mut v = 0.0;
        for _ in 0..200 {
            v = e.push(3.0);
        }
        assert!((v - 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert_eq!(h.count(), 100);
        assert!(h.bins().iter().all(|&c| c == 10));
        let med = h.quantile(0.5).unwrap();
        assert!((med - 4.5).abs() <= 1.0, "median {med}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 3);
    }
}
