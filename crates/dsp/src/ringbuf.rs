//! Fixed-capacity ring buffer.
//!
//! Windowed operators (moving averages, correlators, delay lines) all need
//! the same primitive: push a sample, evict the oldest once full, iterate in
//! age order. `VecDeque` would work but exposes growth; a fixed ring keeps
//! the capacity invariant in the type's hands and makes the delay-line use
//! case (`push_evict`) a single call.

/// A fixed-capacity FIFO ring buffer over `T`.
///
/// Once `len() == capacity()`, each push evicts the oldest element.
#[derive(Debug)]
pub struct RingBuf<T> {
    buf: Vec<T>,
    head: usize, // index of the oldest element when full / wrapped start
    len: usize,
    cap: usize,
}

impl<T: Clone> Clone for RingBuf<T> {
    fn clone(&self) -> Self {
        RingBuf {
            buf: self.buf.clone(),
            head: self.head,
            len: self.len,
            cap: self.cap,
        }
    }

    /// Capacity-retaining copy: when `source` fits in the existing backing
    /// storage this performs no heap allocation, which is what lets hot
    /// paths snapshot windowed state (e.g. a smoother) every frame for free.
    fn clone_from(&mut self, source: &Self) {
        self.buf.clone_from(&source.buf);
        self.head = source.head;
        self.len = source.len;
        self.cap = source.cap;
    }
}

impl<T: Copy + Default> RingBuf<T> {
    /// Creates an empty ring with the given capacity.
    ///
    /// A zero capacity is clamped to 1 so that `push_evict` always has a
    /// well-defined meaning.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RingBuf {
            buf: vec![T::default(); cap],
            head: 0,
            len: 0,
            cap,
        }
    }

    /// Maximum number of elements held.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of elements held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once the ring has reached capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Physical index of logical position `i`, assuming `i < len`. The
    /// wrap is a compare-and-subtract, not `%`: the capacities used here
    /// (template lengths, smoothing windows) are rarely powers of two, so
    /// a modulo would be an integer division on every hot-path access.
    #[inline]
    fn wrap(&self, i: usize) -> usize {
        let idx = self.head + i;
        if idx >= self.cap {
            idx - self.cap
        } else {
            idx
        }
    }

    /// Pushes a new element. When full, the oldest element is evicted and
    /// returned; otherwise `None`.
    pub fn push_evict(&mut self, value: T) -> Option<T> {
        if self.len < self.cap {
            let idx = self.wrap(self.len);
            self.buf[idx] = value;
            self.len += 1;
            None
        } else {
            let evicted = self.buf[self.head];
            self.buf[self.head] = value;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            Some(evicted)
        }
    }

    /// Element at logical index `i` (0 = oldest). `None` when out of range.
    pub fn get(&self, i: usize) -> Option<T> {
        if i < self.len {
            Some(self.buf[self.wrap(i)])
        } else {
            None
        }
    }

    /// The most recently pushed element.
    pub fn newest(&self) -> Option<T> {
        if self.len == 0 {
            None
        } else {
            self.get(self.len - 1)
        }
    }

    /// The element that would be evicted next.
    pub fn oldest(&self) -> Option<T> {
        self.get(0)
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let (a, b) = self.as_slices();
        a.iter().chain(b.iter()).copied()
    }

    /// The contents as two contiguous slices in age order: chaining
    /// `first` then `second` yields exactly the elements of [`iter`]
    /// (oldest → newest). `second` is empty while the contents have not
    /// wrapped around the end of the backing storage. This is the
    /// per-element-modulo-free access path for windowed kernels.
    ///
    /// [`iter`]: RingBuf::iter
    pub fn as_slices(&self) -> (&[T], &[T]) {
        let end = self.head + self.len;
        if end <= self.cap {
            (&self.buf[self.head..end], &[])
        } else {
            (&self.buf[self.head..self.cap], &self.buf[..end - self.cap])
        }
    }

    /// Clears the ring without touching capacity.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Fills the ring to capacity with `value` (resets any prior content).
    ///
    /// Useful to pre-charge delay lines so output is defined from sample 0.
    pub fn fill(&mut self, value: T) {
        for slot in self.buf.iter_mut() {
            *slot = value;
        }
        self.head = 0;
        self.len = self.cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut r: RingBuf<u32> = RingBuf::new(3);
        assert!(r.is_empty());
        assert_eq!(r.push_evict(1), None);
        assert_eq!(r.push_evict(2), None);
        assert_eq!(r.push_evict(3), None);
        assert!(r.is_full());
        assert_eq!(r.push_evict(4), Some(1));
        assert_eq!(r.push_evict(5), Some(2));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(r.oldest(), Some(3));
        assert_eq!(r.newest(), Some(5));
    }

    #[test]
    fn get_respects_age_order_across_wrap() {
        let mut r: RingBuf<i64> = RingBuf::new(4);
        for v in 0..10 {
            r.push_evict(v);
        }
        // holds 6,7,8,9
        assert_eq!(r.get(0), Some(6));
        assert_eq!(r.get(3), Some(9));
        assert_eq!(r.get(4), None);
    }

    #[test]
    fn zero_capacity_clamped() {
        let mut r: RingBuf<u8> = RingBuf::new(0);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.push_evict(7), None);
        assert_eq!(r.push_evict(8), Some(7));
    }

    #[test]
    fn fill_precharges() {
        let mut r: RingBuf<f64> = RingBuf::new(5);
        r.fill(1.5);
        assert!(r.is_full());
        assert!(r.iter().all(|x| x == 1.5));
        assert_eq!(r.push_evict(2.0), Some(1.5));
    }

    #[test]
    fn as_slices_matches_iter_in_every_fill_state() {
        // Sweep capacities and push counts so every head/len combination —
        // empty, partial, full-unwrapped and full-wrapped — is exercised.
        for cap in 1..=8usize {
            let mut r: RingBuf<i64> = RingBuf::new(cap);
            for pushes in 0..3 * cap {
                let (a, b) = r.as_slices();
                let glued: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
                assert_eq!(glued, r.iter().collect::<Vec<_>>(), "cap {cap} pushes {pushes}");
                assert_eq!(a.len() + b.len(), r.len());
                r.push_evict(pushes as i64);
            }
        }
    }

    #[test]
    fn as_slices_splits_exactly_at_wrap() {
        let mut r: RingBuf<u32> = RingBuf::new(4);
        for v in 0..6 {
            r.push_evict(v);
        }
        // Holds 2,3,4,5 with head at physical index 2.
        let (a, b) = r.as_slices();
        assert_eq!(a, &[2, 3]);
        assert_eq!(b, &[4, 5]);
    }

    #[test]
    fn clear_resets_len_only() {
        let mut r: RingBuf<u16> = RingBuf::new(2);
        r.push_evict(1);
        r.push_evict(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        assert_eq!(r.push_evict(9), None);
        assert_eq!(r.newest(), Some(9));
    }
}
