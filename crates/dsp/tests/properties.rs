//! Property-based tests over the DSP substrate's core invariants.

use fdb_dsp::crc::{crc16_ccitt, crc32_ieee, crc8};
use fdb_dsp::fec::{
    hamming74_decode, hamming74_encode_nibble, repeat_decode, repeat_encode, Interleaver,
};
use fdb_dsp::fir::Fir;
use fdb_dsp::line_code::LineCode;
use fdb_dsp::moving_average::MovingAverage;
use fdb_dsp::resample::Resampler;
use fdb_dsp::ringbuf::RingBuf;
use fdb_dsp::sample::Iq;
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// RingBuf behaves exactly like a capacity-bounded VecDeque.
    #[test]
    fn ringbuf_matches_vecdeque_model(
        cap in 1usize..32,
        ops in proptest::collection::vec(any::<i32>(), 0..200),
    ) {
        let mut ring: RingBuf<i32> = RingBuf::new(cap);
        let mut model: VecDeque<i32> = VecDeque::new();
        for v in ops {
            let evicted = ring.push_evict(v);
            model.push_back(v);
            let model_evicted = if model.len() > cap { model.pop_front() } else { None };
            prop_assert_eq!(evicted, model_evicted);
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.oldest(), model.front().copied());
            prop_assert_eq!(ring.newest(), model.back().copied());
            prop_assert_eq!(ring.iter().collect::<Vec<_>>(),
                            model.iter().copied().collect::<Vec<_>>());
        }
    }

    /// FIR filtering is linear: F(a·x + b·y) = a·F(x) + b·F(y).
    #[test]
    fn fir_linearity(
        taps in proptest::collection::vec(-2.0f64..2.0, 1..16),
        xs in proptest::collection::vec(-10.0f64..10.0, 1..64),
        ys in proptest::collection::vec(-10.0f64..10.0, 1..64),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let n = xs.len().min(ys.len());
        let mut f1 = Fir::new(taps.clone());
        let mut f2 = Fir::new(taps.clone());
        let mut f3 = Fir::new(taps);
        for i in 0..n {
            let x = Iq::real(xs[i]);
            let y = Iq::real(ys[i]);
            let lhs = f1.process(x * a + y * b);
            let rhs = f2.process(x) * a + f3.process(y) * b;
            prop_assert!((lhs - rhs).abs() < 1e-9, "sample {}: {:?} vs {:?}", i, lhs, rhs);
        }
    }

    /// Moving average over a full window equals the arithmetic mean of the
    /// last `w` samples.
    #[test]
    fn moving_average_exact(
        w in 1usize..32,
        xs in proptest::collection::vec(-100.0f64..100.0, 1..128),
    ) {
        let mut ma = MovingAverage::new(w);
        let mut out = Vec::new();
        for &x in &xs {
            out.push(ma.process(x));
        }
        for (i, &o) in out.iter().enumerate() {
            let lo = i.saturating_sub(w - 1);
            let expect: f64 = xs[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64;
            prop_assert!((o - expect).abs() < 1e-9);
        }
    }

    /// CRCs detect every single-bit flip in arbitrary messages.
    #[test]
    fn crcs_detect_single_flips(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0usize..8,
    ) {
        let i = byte_idx.index(data.len());
        let mut bad = data.clone();
        bad[i] ^= 1 << bit;
        prop_assert_ne!(crc8(&data), crc8(&bad));
        prop_assert_ne!(crc16_ccitt(&data), crc16_ccitt(&bad));
        prop_assert_ne!(crc32_ieee(&data), crc32_ieee(&bad));
    }

    /// Hamming(7,4) corrects any single-bit error in any codeword.
    #[test]
    fn hamming_corrects_any_single_error(nibble in 0u8..16, pos in 0usize..7) {
        let mut cw = hamming74_encode_nibble(nibble);
        cw[pos] = !cw[pos];
        let (decoded, fixed) = hamming74_decode(&cw);
        prop_assert_eq!(decoded, nibble);
        prop_assert_eq!(fixed, Some(pos + 1));
    }

    /// Repetition code round-trips and corrects any minority of errors.
    #[test]
    fn repetition_corrects_minorities(
        bits in proptest::collection::vec(any::<bool>(), 1..48),
        n in prop::sample::select(vec![3usize, 5, 7]),
        flips in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let mut coded = repeat_encode(&bits, n);
        // Flip strictly fewer than n/2 chips in distinct groups.
        let mut touched = std::collections::HashSet::new();
        for f in flips {
            let g = f.index(bits.len());
            if touched.insert(g) {
                coded[g * n] = !coded[g * n]; // one flip per group < majority
            }
        }
        prop_assert_eq!(repeat_decode(&coded, n), bits);
    }

    /// Interleaver round-trips for every depth and length.
    #[test]
    fn interleaver_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 0..256),
        rows in 1usize..17,
    ) {
        let il = Interleaver::new(rows);
        prop_assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
    }

    /// Every line code round-trips every bit pattern.
    #[test]
    fn line_codes_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 0..128),
        idx in 0usize..4,
    ) {
        let code = [LineCode::Nrz, LineCode::Manchester, LineCode::Fm0, LineCode::Miller][idx];
        prop_assert_eq!(code.decode_hard(&code.encode(&bits)), bits);
    }

    /// Manchester and FM0 keep the running chip imbalance bounded for
    /// every input (the feedback channel's enabling property).
    #[test]
    fn balanced_codes_bounded_imbalance(
        bits in proptest::collection::vec(any::<bool>(), 1..256),
    ) {
        for code in [LineCode::Manchester, LineCode::Fm0] {
            let chips = code.encode(&bits);
            let mut acc: i64 = 0;
            for &c in &chips {
                acc += if c { 1 } else { -1 };
                prop_assert!(acc.abs() <= 3, "{code:?} imbalance {acc}");
            }
        }
    }

    /// The resampler's output count is within one sample of the exact
    /// ratio for any rate and length.
    #[test]
    fn resampler_count_bound(
        ratio in 0.3f64..3.0,
        n in 16usize..2048,
    ) {
        let mut r = Resampler::new(ratio);
        let out = r.process_block(&vec![1.0; n]);
        let expect = ((n - 1) as f64 * ratio).floor() + 1.0;
        prop_assert!(
            (out.len() as f64 - expect).abs() <= 1.0,
            "ratio {ratio} n {n}: {} vs {expect}", out.len()
        );
    }

    /// Linear interpolation reproduces affine signals exactly at any rate.
    #[test]
    fn resampler_affine_exact(
        ratio in 0.3f64..3.0,
        slope in -5.0f64..5.0,
        offset in -10.0f64..10.0,
    ) {
        let mut r = Resampler::new(ratio);
        let xs: Vec<f64> = (0..256).map(|i| offset + slope * i as f64).collect();
        let out = r.process_block(&xs);
        for (k, &y) in out.iter().enumerate() {
            let t = k as f64 / ratio;
            prop_assert!((y - (offset + slope * t)).abs() < 1e-6, "output {k}");
        }
    }
}
