//! Robustness properties: receiver-side state machines must survive
//! arbitrary (hostile) inputs without panicking, and never fabricate
//! structure that wasn't transmitted.

use fdb_core::config::PhyConfig;
use fdb_core::feedback::FeedbackDecoder;
use fdb_core::frame::{FrameParser, ParseEvent, MAX_PAYLOAD};
use fdb_core::rx::DataReceiver;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The data receiver accepts any envelope stream — noise, NaN-free
    /// garbage, constants, spikes — without panicking, and any payload it
    /// does produce respects the length its header promised.
    #[test]
    fn rx_survives_arbitrary_envelopes(
        samples in proptest::collection::vec(0.0f64..1e3, 0..4000),
        scale in 1e-9f64..1e6,
    ) {
        let mut rx = DataReceiver::new(PhyConfig::default_fd());
        for &s in &samples {
            rx.push_sample(s * scale);
        }
        if let Some(result) = rx.take_result() {
            prop_assert!(result.payload.len() <= MAX_PAYLOAD);
            prop_assert_eq!(
                result.blocks.len(),
                result.payload.len().div_ceil(16)
            );
        }
    }

    /// A frame parser fed random bits either dies on the header CRC or
    /// produces a structurally consistent frame — never panics, never
    /// emits more payload than the header length.
    #[test]
    fn parser_survives_random_bits(
        bits in proptest::collection::vec(any::<bool>(), 0..4000),
    ) {
        let mut parser = FrameParser::new(PhyConfig::default_fd());
        let mut advertised: Option<usize> = None;
        for b in bits {
            match parser.push_bit(b) {
                Some(ParseEvent::Header { payload_len }) => {
                    prop_assert!(payload_len <= MAX_PAYLOAD);
                    advertised = Some(payload_len);
                }
                Some(ParseEvent::Done) => {
                    let payload = parser.partial_payload();
                    if let Some(n) = advertised {
                        prop_assert_eq!(payload.len(), n);
                    }
                    prop_assert!(parser.blocks().len() <= payload.len().div_ceil(1).max(1));
                }
                _ => {}
            }
        }
    }

    /// The feedback decoder handles arbitrary envelope levels (including
    /// zeros and huge values) without panicking, and its decisions always
    /// carry non-negative margins.
    #[test]
    fn feedback_decoder_survives_anything(
        samples in proptest::collection::vec(-1.0f64..1e9, 0..5000),
        half in 1usize..200,
    ) {
        let mut dec = FeedbackDecoder::new(half);
        for &s in &samples {
            if let Some(d) = dec.push(s) {
                prop_assert!(d.margin >= 0.0);
            }
        }
    }

    /// Pure noise must not produce verified pilots more than rarely —
    /// statistical guard on the liveness check (bit pattern 2⁻⁵ × margin
    /// test). Over 16 independent noise decoders, at most 3 may verify.
    #[test]
    fn pilot_verification_rejects_noise(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut verified = 0;
        for _ in 0..16 {
            let mut dec = FeedbackDecoder::new(20);
            // Enough samples for pilots + a few data bits of pure noise.
            for _ in 0..(20 * 2 * 10) {
                dec.push(rng.gen_range(0.0..1.0));
            }
            if dec.pilots_verified() {
                verified += 1;
            }
        }
        prop_assert!(verified <= 3, "{verified}/16 noise streams verified");
    }
}
