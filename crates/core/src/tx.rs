//! Forward transmitter: frame → line-coded chip schedule.
//!
//! The transmitter owns the timeline of the frame: preamble chips first,
//! then the line-coded frame body. Each chip holds the antenna in one state
//! for `samples_per_chip` simulation samples. The transmitter also supports
//! **mid-frame abort** — the whole point of instantaneous feedback: when
//! the decoded feedback stream reports a corrupted block, the MAC calls
//! [`DataTransmitter::abort`] and the antenna drops to absorb for the rest
//! of the (now unused) airtime.

use crate::config::PhyConfig;
use crate::error::PhyError;
use crate::frame::{encode_frame_into, EncodeScratch};
use fdb_dsp::line_code::Encoder;

/// Streaming chip scheduler for one frame.
#[derive(Debug, Clone)]
pub struct DataTransmitter {
    chips: Vec<bool>,
    sps: usize,
    sample_in_chip: usize,
    chip_idx: usize,
    aborted_at_chip: Option<usize>,
    preamble_chips: usize,
    /// Frame-body bit staging, reused across [`DataTransmitter::load`]s.
    body_bits: Vec<bool>,
    /// Frame-encoder working buffers, reused across loads.
    enc_scratch: EncodeScratch,
}

impl DataTransmitter {
    /// Builds the chip schedule for `payload`.
    pub fn new(cfg: &PhyConfig, payload: &[u8]) -> Result<Self, PhyError> {
        let mut tx = DataTransmitter {
            chips: Vec::new(),
            sps: 1,
            sample_in_chip: 0,
            chip_idx: 0,
            aborted_at_chip: None,
            preamble_chips: 0,
            body_bits: Vec::new(),
            enc_scratch: EncodeScratch::default(),
        };
        tx.load(cfg, payload)?;
        Ok(tx)
    }

    /// Rebuilds the chip schedule for a new frame in place, reusing every
    /// buffer: observably identical to a fresh [`DataTransmitter::new`],
    /// allocation-free once the buffers have grown to the frame size. On
    /// error the schedule is unspecified and must be reloaded before use.
    pub fn load(&mut self, cfg: &PhyConfig, payload: &[u8]) -> Result<(), PhyError> {
        cfg.validate()?;
        encode_frame_into(cfg, payload, &mut self.enc_scratch, &mut self.body_bits)?;
        // One continuous line-code encoding so FM0/Miller state carries from
        // the preamble into the body (the receiver's template assumes it).
        let mut enc = Encoder::new(cfg.line_code);
        self.chips.clear();
        self.chips
            .reserve((cfg.preamble.len() + self.body_bits.len()) * cfg.chips_per_bit());
        for &b in &cfg.preamble {
            enc.push(b, &mut self.chips);
        }
        for &b in &self.body_bits {
            enc.push(b, &mut self.chips);
        }
        self.preamble_chips = cfg.preamble.len() * cfg.chips_per_bit();
        self.sps = cfg.samples_per_chip;
        self.sample_in_chip = 0;
        self.chip_idx = 0;
        self.aborted_at_chip = None;
        Ok(())
    }

    /// The preamble chip pattern (for building the receiver's template).
    pub fn preamble_chips(cfg: &PhyConfig) -> Vec<bool> {
        cfg.line_code.encode(&cfg.preamble)
    }

    /// Total frame duration in samples (if not aborted).
    pub fn total_samples(&self) -> usize {
        self.chips.len() * self.sps
    }

    /// Total chips in the frame.
    pub fn total_chips(&self) -> usize {
        self.chips.len()
    }

    /// Samples already emitted.
    pub fn samples_emitted(&self) -> usize {
        self.chip_idx * self.sps + self.sample_in_chip
    }

    /// `true` when the frame (or its aborted remainder) is over.
    pub fn is_done(&self) -> bool {
        match self.aborted_at_chip {
            Some(at) => self.chip_idx >= at,
            None => self.chip_idx >= self.chips.len(),
        }
    }

    /// Antenna state for the current sample, then advances one sample.
    /// Returns `None` once the frame is done (antenna should absorb).
    pub fn next_state(&mut self) -> Option<bool> {
        if self.is_done() {
            return None;
        }
        let state = self.chips[self.chip_idx];
        self.sample_in_chip += 1;
        if self.sample_in_chip == self.sps {
            self.sample_in_chip = 0;
            self.chip_idx += 1;
        }
        Some(state)
    }

    /// Aborts the frame at the next chip boundary.
    pub fn abort(&mut self) {
        if self.aborted_at_chip.is_none() {
            // Stop at the end of the current chip.
            let at = if self.sample_in_chip == 0 {
                self.chip_idx
            } else {
                self.chip_idx + 1
            };
            self.aborted_at_chip = Some(at.min(self.chips.len()));
        }
    }

    /// Chip index at which the frame was aborted, if it was.
    pub fn aborted_at(&self) -> Option<usize> {
        self.aborted_at_chip
    }

    /// Number of *data* (post-preamble) chips emitted so far.
    pub fn data_chips_emitted(&self) -> usize {
        self.chip_idx.saturating_sub(self.preamble_chips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_bits_len;

    fn cfg() -> PhyConfig {
        PhyConfig::default_fd()
    }

    #[test]
    fn schedule_length_matches_frame() {
        let cfg = cfg();
        let payload = vec![0xA5u8; 20];
        let tx = DataTransmitter::new(&cfg, &payload).unwrap();
        let bits = cfg.preamble.len() + frame_bits_len(&cfg, payload.len());
        assert_eq!(tx.total_chips(), bits * 2);
        assert_eq!(tx.total_samples(), bits * 2 * 10);
    }

    #[test]
    fn emits_sps_samples_per_chip() {
        let cfg = cfg();
        let mut tx = DataTransmitter::new(&cfg, &[1, 2, 3]).unwrap();
        let first_chip = tx.next_state().unwrap();
        for _ in 1..cfg.samples_per_chip {
            assert_eq!(tx.next_state().unwrap(), first_chip);
        }
        // Manchester preamble starts with bit `true` → chips [1, 0].
        assert!(first_chip);
        let second_chip = tx.next_state().unwrap();
        assert!(!second_chip);
    }

    #[test]
    fn runs_to_completion() {
        let cfg = cfg();
        let mut tx = DataTransmitter::new(&cfg, &[9u8; 4]).unwrap();
        let total = tx.total_samples();
        let mut n = 0;
        while tx.next_state().is_some() {
            n += 1;
        }
        assert_eq!(n, total);
        assert!(tx.is_done());
        assert!(tx.next_state().is_none());
    }

    #[test]
    fn abort_stops_at_chip_boundary() {
        let cfg = cfg();
        let mut tx = DataTransmitter::new(&cfg, &[9u8; 64]).unwrap();
        for _ in 0..(cfg.samples_per_chip * 10 + 3) {
            tx.next_state();
        }
        tx.abort();
        assert_eq!(tx.aborted_at(), Some(11));
        // Finish the current chip, then stop.
        let mut emitted = 0;
        while tx.next_state().is_some() {
            emitted += 1;
        }
        assert_eq!(emitted, cfg.samples_per_chip - 3);
        assert!(tx.is_done());
    }

    #[test]
    fn abort_before_start_emits_nothing() {
        let cfg = cfg();
        let mut tx = DataTransmitter::new(&cfg, &[1]).unwrap();
        tx.abort();
        assert!(tx.next_state().is_none());
    }

    #[test]
    fn preamble_chip_template_matches_schedule_head() {
        let cfg = cfg();
        let template = DataTransmitter::preamble_chips(&cfg);
        let mut tx = DataTransmitter::new(&cfg, &[0u8; 8]).unwrap();
        for (i, &expect) in template.iter().enumerate() {
            for _ in 0..cfg.samples_per_chip {
                assert_eq!(tx.next_state().unwrap(), expect, "chip {i}");
            }
        }
    }

    #[test]
    fn load_matches_fresh_transmitter() {
        let cfg = cfg();
        let mut tx = DataTransmitter::new(&cfg, &[0xFFu8; 4]).unwrap();
        // Run (and abort) a frame, then reload: state must match `new`.
        for _ in 0..25 {
            tx.next_state();
        }
        tx.abort();
        for len in [20usize, 3, 48] {
            let payload: Vec<u8> = (0..len as u8).collect();
            tx.load(&cfg, &payload).unwrap();
            let mut fresh = DataTransmitter::new(&cfg, &payload).unwrap();
            assert_eq!(tx.total_chips(), fresh.total_chips());
            assert_eq!(tx.aborted_at(), None);
            loop {
                let (a, b) = (tx.next_state(), fresh.next_state());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn data_chip_progress() {
        let cfg = cfg();
        let mut tx = DataTransmitter::new(&cfg, &[1, 2]).unwrap();
        let preamble_samples = cfg.preamble.len() * 2 * cfg.samples_per_chip;
        for _ in 0..preamble_samples {
            tx.next_state();
        }
        assert_eq!(tx.data_chips_emitted(), 0);
        for _ in 0..cfg.samples_per_chip * 4 {
            tx.next_state();
        }
        assert_eq!(tx.data_chips_emitted(), 4);
    }
}
