//! Error types for the PHY.

use std::fmt;

/// Errors surfaced by PHY configuration and framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyError {
    /// A configuration field is out of its valid range.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A frame failed to parse (bad length header, truncated body, …).
    MalformedFrame {
        /// Human-readable cause.
        reason: String,
    },
    /// The payload exceeds what the length header can express.
    PayloadTooLarge {
        /// Bytes requested.
        got: usize,
        /// Maximum representable.
        max: usize,
    },
    /// A trace sink could not be built or failed while writing (bad path,
    /// full disk, or a sink requested in a build without the `trace`
    /// feature).
    TraceSink {
        /// Human-readable cause.
        reason: String,
    },
    /// A cooperative run was cancelled (client cancel or per-job timeout)
    /// before completing; checked between frames, so partial work up to
    /// `frames_done` completed normally and was then discarded.
    Cancelled {
        /// Frames that finished before the cancellation was observed.
        frames_done: u64,
    },
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidConfig { field, reason } => {
                write!(f, "invalid PHY config: {field}: {reason}")
            }
            PhyError::MalformedFrame { reason } => write!(f, "malformed frame: {reason}"),
            PhyError::PayloadTooLarge { got, max } => {
                write!(f, "payload of {got} bytes exceeds maximum {max}")
            }
            PhyError::TraceSink { reason } => write!(f, "trace sink: {reason}"),
            PhyError::Cancelled { frames_done } => {
                write!(f, "run cancelled after {frames_done} frames")
            }
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PhyError::InvalidConfig {
            field: "feedback_ratio",
            reason: "must be even".into(),
        };
        let s = e.to_string();
        assert!(s.contains("feedback_ratio") && s.contains("even"));
        let e = PhyError::PayloadTooLarge { got: 70000, max: 65535 };
        assert!(e.to_string().contains("70000"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&PhyError::MalformedFrame { reason: "x".into() });
    }
}
