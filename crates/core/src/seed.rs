//! Deterministic seed derivation shared by every per-frame stream.
//!
//! Reproducibility across the workspace rests on one rule: any stream that
//! must stay stable when *other* streams change (payloads, fault draws,
//! per-frame link RNGs) derives its seed from a master seed and an index
//! through this splitmix64 finalizer — never from evolving RNG state.
//! The adaptive-MAC session engine ([`crate::link`] rebuilt per frame at
//! the controller's rate) depends on this: frame `k`'s seed is
//! `derive_seed(session_seed, k)` whether or not frames `0..k` switched
//! rates, so a rate decision never perturbs later frames' noise.
//!
//! Historically this lived in `fdb_sim::runner`; it moved here so the MAC
//! layer (which `fdb-sim` depends on) can share the same lineage. The
//! `fdb_sim::runner::derive_seed` re-export keeps existing callers valid.

/// Derives a per-point seed from a master seed and a point index
/// (splitmix64 finalizer; injective in practice for distinct indices).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disperses_over_indices() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn master_seed_moves_every_index() {
        for i in 0..32 {
            assert_ne!(derive_seed(1, i), derive_seed(2, i));
        }
    }
}
