//! # fdb-core — the full-duplex backscatter PHY
//!
//! This crate implements the contribution of the HotNets 2013 paper *"Full
//! Duplex Backscatter"*: a physical layer in which a backscatter receiver
//! transmits a **low-rate feedback stream in-band, simultaneously with the
//! packet it is receiving**, using nothing beyond the antenna switch and
//! envelope detector every backscatter device already has.
//!
//! ## The three ideas
//!
//! 1. **Rate asymmetry.** The forward link sends data at the chip rate; the
//!    feedback link toggles the receiver's antenna once per `m` data bits
//!    (`m` = 8…512). The two streams share one channel but live at rates
//!    apart by a factor `m`, so each side can separate them with filters it
//!    can afford: the data receiver slices chips, the feedback receiver
//!    integrates over `m`-bit windows.
//! 2. **DC-balanced data coding.** Because the forward data is
//!    Manchester/FM0 coded, its contribution to any `m`-bit window average
//!    is (nearly) constant — integration cancels the data and exposes the
//!    slow feedback level (see `fdb_dsp::line_code`).
//! 3. **Known-self-interference cancellation.** Toggling your own antenna
//!    changes how much of the incident field reaches your own detector —
//!    but you *know* your own antenna state, so the distortion is exactly
//!    invertible in the digital domain ([`sic`]). No analog cancellation
//!    hardware is needed.
//!
//! ## Module map
//!
//! | module | role |
//! |--------|------|
//! | [`config`] | PHY parameters, validated |
//! | [`frame`] | preamble + length header + per-block CRC framing |
//! | [`tx`] | forward encoder: frame → chip schedule |
//! | [`rx`] | forward decoder: envelope → sync → slice → blocks |
//! | [`feedback`] | the feedback channel: encoder at the data receiver, integrate-and-dump decoder at the data transmitter |
//! | [`sic`] | known-state self-interference cancellation |
//! | [`link`] | the sample-synchronous two-device full-duplex link |
//! | [`scratch`] | per-link arena of reusable frame-engine working buffers |
//! | [`network`] | K coexisting links with first-order mutual scattering |
//! | [`trace`] | frame-level per-stage diagnostics (captured under the `trace` feature) |
//! | [`seed`] | deterministic seed derivation shared by every per-frame stream |
//! | [`hash`] | canonical JSON + stable 128-bit content addressing for cached results |
//! | [`error`] | error types |
//!
//! ## Feature flags
//!
//! * `trace` — [`link::FdLink::run_frame`] records a [`trace::FrameTrace`]
//!   of per-stage events onto each [`link::FrameOutcome`]. Off by default;
//!   when disabled the hot loop contains no tracing code at all.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod error;
pub mod feedback;
pub mod frame;
pub mod hash;
pub mod link;
pub mod multilink;
pub mod network;
pub mod rx;
pub mod scratch;
pub mod seed;
pub mod sic;
pub mod trace;
pub mod tx;

pub use config::{PhyConfig, SicMode};
pub use error::PhyError;
pub use link::{FdLink, FrameOutcome, FrameRun, LinkConfig, LinkGeometry};
pub use scratch::LinkScratch;
pub use seed::derive_seed;
