//! The sample-synchronous two-device full-duplex backscatter link.
//!
//! [`FdLink`] holds everything physical about one scenario — ambient
//! source, the three propagation paths, and two tag devices — and runs one
//! frame at a time through it:
//!
//! ```text
//!                ambient source S
//!               /               \
//!          h_SA                 h_SB
//!             /                    \
//!   device A ───────── h_AB ───────── device B
//!   (data TX,                        (data RX,
//!    feedback RX)                     feedback TX)
//! ```
//!
//! Per sample, the field at each device is assembled coherently from the
//! direct path, the other device's first-order backscatter, and the
//! second-order bounce (A→B→A / B→A→B); both devices then detect, harvest,
//! and act. The source enters through its instantaneous power only — valid
//! because every receiver is an envelope detector and all paths share one
//! source (see `fdb_ambient::power`).
//!
//! The link is deliberately *not* a MAC: it runs exactly one frame, with an
//! optional abort-on-NACK reflex, and reports everything a MAC needs
//! (delivery, per-block status, feedback timeline, airtime, energy).
//!
//! Two frame engines share those semantics byte-for-byte: the per-sample
//! reference loop ([`FdLink::run_frame_reference`], also the `trace`-build
//! engine, whose probes need every sample) and the segmented block
//! pipeline ([`FdLink::run_frame_block`], the non-trace `run_frame`
//! engine). See `run_frame_block`'s docs for the edges that split blocks.

use crate::config::PhyConfig;
use crate::error::PhyError;
use crate::rx::{DataReceiver, RxResult, RxState};
use crate::scratch::LinkScratch;
use crate::sic::SelfInterferenceCanceller;
#[cfg(feature = "trace")]
use crate::trace::{FrameTrace, RingSink, TraceEvent, TraceSink};
use crate::tx::DataTransmitter;
use fdb_ambient::{Ambient, AmbientConfig};
use fdb_channel::awgn::Awgn;
use fdb_channel::fading::Fading;
use fdb_channel::impairment::{FaultActivations, FaultEffects, FrameFaults};
use fdb_channel::link::Hop;
use fdb_channel::pathloss::PathLoss;
use fdb_device::{TagConfig, TagHardware};
use fdb_dsp::resample::Resampler;
use fdb_dsp::sample::dbm_to_watts;
use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Physical placement and propagation models for one link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkGeometry {
    /// Ambient source transmit power in dBm.
    pub source_power_dbm: f64,
    /// Source → device A distance (metres).
    pub source_dist_a_m: f64,
    /// Source → device B distance (metres).
    pub source_dist_b_m: f64,
    /// Device A ↔ device B distance (metres).
    pub device_dist_m: f64,
    /// Path loss model for the source hops.
    pub pathloss_source: PathLoss,
    /// Path loss model for the device↔device hop.
    pub pathloss_device: PathLoss,
    /// Fading on the source hops.
    pub fading_source: Fading,
    /// Fading on the device hop (reciprocal).
    pub fading_device: Fading,
}

impl LinkGeometry {
    /// The default evaluation scenario: a 60 dBm TV tower 1 km away, two
    /// devices 0.5 m apart, static channels. (The 2013-era prototypes
    /// reached ~0.76 m at 1 kbps — the sub-metre regime is the honest one.)
    pub fn default_indoor() -> Self {
        LinkGeometry {
            source_power_dbm: 60.0,
            source_dist_a_m: 1000.0,
            source_dist_b_m: 1000.0,
            device_dist_m: 0.5,
            pathloss_source: PathLoss::tv_band(),
            pathloss_device: PathLoss::FreeSpace { freq_hz: 539e6 },
            fading_source: Fading::Static,
            fading_device: Fading::Static,
        }
    }

    /// Swaps the two devices' positions (for reverse-direction frames).
    pub fn swapped(mut self) -> Self {
        std::mem::swap(&mut self.source_dist_a_m, &mut self.source_dist_b_m);
        self
    }
}

/// Everything needed to build an [`FdLink`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkConfig {
    /// PHY parameters.
    pub phy: PhyConfig,
    /// Physical scenario.
    pub geometry: LinkGeometry,
    /// Ambient excitation model.
    pub ambient: AmbientConfig,
    /// Device A (data transmitter / feedback receiver).
    pub tag_a: TagConfig,
    /// Device B (data receiver / feedback transmitter).
    pub tag_b: TagConfig,
    /// Field noise at each device's antenna.
    pub field_noise_dbm: f64,
    /// Advance block fading every this many data bits (0 = frozen).
    pub fading_advance_bits: usize,
    /// Seed for the ambient source's internal symbol stream.
    pub ambient_seed: u64,
}

impl LinkConfig {
    /// Default full evaluation configuration: wideband TV substitution
    /// (k = 300 ≈ 6 MHz / 20 kHz), ρ_A = 0.4 data, ρ_B = 0.2 feedback.
    pub fn default_fd() -> Self {
        let phy = PhyConfig::default_fd();
        let dt = phy.sample_period_s();
        let mut tag_a = TagConfig::typical(dt);
        tag_a.rho = 0.4;
        let mut tag_b = TagConfig::typical(dt);
        tag_b.rho = 0.2;
        LinkConfig {
            phy,
            geometry: LinkGeometry::default_indoor(),
            ambient: AmbientConfig::TvWideband { k_factor: 300.0 },
            tag_a,
            tag_b,
            field_noise_dbm: -110.0,
            fading_advance_bits: 0,
            ambient_seed: 1,
        }
    }

    /// The same link rebuilt at a different chip rate: a copy of this
    /// config with `phy.samples_per_chip` replaced. This is how a rate
    /// switch is applied between frames — the physical scenario (geometry,
    /// ambient, tags, noise) is untouched; only the chip clock moves. The
    /// caller rebuilds the [`FdLink`] from the returned config with a
    /// seed-derived RNG so the switch never perturbs later frames' noise
    /// lineage (see [`crate::seed::derive_seed`]).
    pub fn at_samples_per_chip(&self, samples_per_chip: usize) -> Self {
        let mut cfg = self.clone();
        cfg.phy.samples_per_chip = samples_per_chip;
        cfg
    }

    /// Overwrites `self` with `source` while reusing `self`'s heap
    /// buffers where possible (the PHY preamble via
    /// [`PhyConfig::copy_from`]; every other field is `Copy`).
    /// Semantically identical to `*self = source.clone()`.
    pub fn copy_from(&mut self, source: &LinkConfig) {
        self.phy.copy_from(&source.phy);
        self.geometry = source.geometry;
        self.ambient = source.ambient;
        self.tag_a = source.tag_a;
        self.tag_b = source.tag_b;
        self.field_noise_dbm = source.field_noise_dbm;
        self.fading_advance_bits = source.fading_advance_bits;
        self.ambient_seed = source.ambient_seed;
    }
}

/// How device B drives its feedback stream during a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedbackPolicy {
    /// B never toggles — the half-duplex baseline.
    Silent,
    /// B sends this exact bit sequence after the pilots (PHY experiments).
    Stream(Vec<bool>),
    /// B streams its live block status: `true` = all blocks OK so far.
    AckStatus,
}

/// Options for one frame run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Feedback policy at B.
    pub feedback: FeedbackPolicy,
    /// A aborts the frame when a verified feedback bit reports NACK.
    pub abort_on_nack: bool,
}

impl RunOptions {
    /// Full-duplex with live status and early abort.
    pub fn fd_early_abort() -> Self {
        RunOptions {
            feedback: FeedbackPolicy::AckStatus,
            abort_on_nack: true,
        }
    }

    /// Full-duplex status stream, no abort (measurement runs).
    pub fn fd_monitor() -> Self {
        RunOptions {
            feedback: FeedbackPolicy::AckStatus,
            abort_on_nack: false,
        }
    }

    /// Half-duplex baseline.
    pub fn half_duplex() -> Self {
        RunOptions {
            feedback: FeedbackPolicy::Silent,
            abort_on_nack: false,
        }
    }
}

/// Per-run attachments for [`FdLink::run_frame_with`] and its
/// buffer-reusing twin [`FdLink::run_frame_into`] — the frame entry
/// points that replaced the `run_frame_faulted` /
/// `run_frame_faulted_into` variant explosion.
///
/// `FrameRun::default()` is a clean, ring-traced frame (identical to
/// [`FdLink::run_frame`]); attach what the run needs through the
/// constructors:
///
/// ```ignore
/// link.run_frame_with(&payload, &opts, &mut rng, FrameRun::faulted(Some(&mut faults)))?;
/// ```
#[derive(Default)]
pub struct FrameRun<'a> {
    /// Scripted impairment schedule injected into the channel path
    /// (`None` = clean frame). Faults draw randomness only from the
    /// engine's own deterministic generator, never from the run's `rng`.
    pub faults: Option<&'a mut FrameFaults>,
    /// Caller-owned trace sink receiving the frame's diagnostic events
    /// instead of the outcome's in-memory ring (`FrameOutcome::trace`
    /// stays an empty placeholder). The caller owns frame bracketing:
    /// call `sink.begin_frame` / `sink.end_frame` around the run.
    #[cfg(feature = "trace")]
    pub sink: Option<&'a mut dyn TraceSink>,
}

impl<'a> FrameRun<'a> {
    /// A clean, ring-traced frame — what [`FdLink::run_frame`] runs.
    pub fn clean() -> Self {
        FrameRun::default()
    }

    /// A frame with an optional fault schedule attached.
    pub fn faulted(faults: Option<&'a mut FrameFaults>) -> Self {
        FrameRun {
            faults,
            #[cfg(feature = "trace")]
            sink: None,
        }
    }

    /// Streams the frame's diagnostic events into `sink` instead of the
    /// outcome's in-memory ring.
    #[cfg(feature = "trace")]
    pub fn with_sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// Energy totals for one frame run (joules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy consumed by A.
    pub a_consumed_j: f64,
    /// Energy consumed by B.
    pub b_consumed_j: f64,
    /// Energy harvested by A.
    pub a_harvested_j: f64,
    /// Energy harvested by B.
    pub b_harvested_j: f64,
}

/// One decoded feedback bit with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackEvent {
    /// Simulation sample index at which the bit was decided.
    pub sample: usize,
    /// The decoded bit (`true` = ACK in [`FeedbackPolicy::AckStatus`]).
    pub bit: bool,
    /// Decision margin (envelope units).
    pub margin: f64,
}

/// Result of one frame run.
#[derive(Debug, Clone)]
pub struct FrameOutcome {
    /// B's reception result (None if B never locked or header failed).
    pub delivered: Option<RxResult>,
    /// Whether B held a committed (verified) preamble lock when the frame
    /// ended. Candidate locks rejected by two-stage verification do not
    /// count; a lock thrown back by a header-CRC re-arm only counts if B
    /// re-locked afterwards.
    pub b_locked: bool,
    /// Candidate locks B's searcher declared during the frame (committed
    /// and rejected).
    pub sync_attempts: usize,
    /// Candidate locks rejected by two-stage verification (peak shape,
    /// flat history, preamble re-decode, or header CRC).
    pub sync_rejections: usize,
    /// Feedback bits decoded at A, in order.
    pub feedback: Vec<FeedbackEvent>,
    /// Whether A's decoder verified the feedback pilots.
    pub pilots_verified: bool,
    /// Sample at which A aborted, if it did.
    pub aborted_at_sample: Option<usize>,
    /// Samples during which A actually held the channel (airtime).
    pub airtime_samples: usize,
    /// Total samples simulated (airtime + tail).
    pub samples_run: usize,
    /// Energy ledger.
    pub energy: EnergyReport,
    /// B's final NACK state.
    pub nack: bool,
    /// Payload bytes of the blocks B completed, even when the frame was
    /// aborted or truncated (equals the delivered payload for finished
    /// frames). Partial-retransmission MACs consume this.
    pub partial_payload: Vec<u8>,
    /// Verdicts of the blocks B completed (see `partial_payload`).
    pub partial_blocks: Vec<crate::frame::BlockStatus>,
    /// Net whole-sample timing corrections B's DLL applied (diagnostics).
    pub rx_timing_corrections: i64,
    /// Highest preamble correlation B observed (even when it never locked).
    pub rx_sync_peak: f64,
    /// Scripted faults whose windows actually opened during this frame
    /// (all zero unless the frame ran with an injection schedule — see
    /// [`FrameRun::faulted`]).
    pub fault_activations: FaultActivations,
    /// Per-stage diagnostic event trace of the frame (`trace` feature).
    #[cfg(feature = "trace")]
    pub trace: FrameTrace,
}

impl Default for FrameOutcome {
    /// An empty outcome, ready to be filled by
    /// [`FdLink::run_frame_into`]. Cheap: no buffer is preallocated (the
    /// first frame run grows them — the reuse contract's warmup).
    fn default() -> Self {
        FrameOutcome {
            delivered: None,
            b_locked: false,
            sync_attempts: 0,
            sync_rejections: 0,
            feedback: Vec::new(),
            pilots_verified: false,
            aborted_at_sample: None,
            airtime_samples: 0,
            samples_run: 0,
            energy: EnergyReport::default(),
            nack: false,
            partial_payload: Vec::new(),
            partial_blocks: Vec::new(),
            rx_timing_corrections: 0,
            rx_sync_peak: 0.0,
            fault_activations: FaultActivations::default(),
            #[cfg(feature = "trace")]
            trace: FrameTrace::new(1),
        }
    }
}

impl FrameOutcome {
    /// Count of correctly delivered blocks.
    pub fn blocks_ok(&self) -> usize {
        self.delivered
            .as_ref()
            .map(|r| r.blocks.iter().filter(|b| b.ok).count())
            .unwrap_or(0)
    }

    /// Count of blocks in the frame as received.
    pub fn blocks_total(&self) -> usize {
        self.delivered.as_ref().map(|r| r.blocks.len()).unwrap_or(0)
    }

    /// `true` when every block arrived intact.
    pub fn fully_delivered(&self) -> bool {
        self.delivered
            .as_ref()
            .map(|r| !r.blocks.is_empty() && r.blocks.iter().all(|b| b.ok))
            .unwrap_or(false)
    }
}

/// Hard cap on block-pipeline segment length, in samples. Bounds the
/// per-link scratch buffers; segments are usually shorter because fault
/// edges, fading epochs, feedback-bit boundaries and the acquisition guard
/// all split blocks first.
const SEG_MAX: usize = 4096;

/// The two-device full-duplex link simulator.
pub struct FdLink {
    cfg: LinkConfig,
    source: Ambient,
    hop_sa: Hop,
    hop_sb: Hop,
    hop_ab: Hop,
    tag_a: TagHardware,
    tag_b: TagHardware,
    noise: Awgn,
    source_amp: f64,
    scratch: LinkScratch,
}

impl FdLink {
    /// Builds a link; initial fading states are drawn from `rng`.
    pub fn new<R: Rng + ?Sized>(cfg: LinkConfig, rng: &mut R) -> Result<Self, PhyError> {
        cfg.phy.validate()?;
        let g = &cfg.geometry;
        let hop_sa = Hop::new(g.pathloss_source, g.source_dist_a_m, g.fading_source, rng);
        let hop_sb = Hop::new(g.pathloss_source, g.source_dist_b_m, g.fading_source, rng);
        let hop_ab = Hop::new(g.pathloss_device, g.device_dist_m, g.fading_device, rng);
        let dt = cfg.phy.sample_period_s();
        let tag_a = TagHardware::new(cfg.tag_a, dt);
        let tag_b = TagHardware::new(cfg.tag_b, dt);
        let noise = Awgn::from_dbm(cfg.field_noise_dbm);
        let source = Ambient::from_config(cfg.ambient, cfg.ambient_seed);
        let source_amp = dbm_to_watts(g.source_power_dbm).sqrt();
        let scratch = LinkScratch::new(&cfg)?;
        Ok(FdLink {
            cfg,
            source,
            hop_sa,
            hop_sb,
            hop_ab,
            tag_a,
            tag_b,
            noise,
            source_amp,
            scratch,
        })
    }

    /// Rebuilds the link in place for a new configuration, reusing the
    /// existing [`LinkScratch`] arena and config heap buffers.
    ///
    /// Observably identical to `*self = FdLink::new(cfg.clone(), rng)?`:
    /// the hop fading states are redrawn from `rng` in the same order
    /// (source→A, source→B, A↔B), the tags, noise and ambient source are
    /// rebuilt fresh. The arena survives, so a per-slot rebuild (the MAC's
    /// rate ladder) allocates nothing in the steady state — unless the
    /// PHY actually changed (a rate switch), which is a warmup frame by
    /// contract. (`Ambient::Tv`/`Recorded` sources hold sample buffers
    /// and still reallocate per reinit; the evaluation configs use the
    /// heap-free `Cw`/`TvWideband`/`OfdmBursty` models.)
    pub fn reinit<R: Rng + ?Sized>(
        &mut self,
        cfg: &LinkConfig,
        rng: &mut R,
    ) -> Result<(), PhyError> {
        cfg.phy.validate()?;
        let g = &cfg.geometry;
        self.hop_sa = Hop::new(g.pathloss_source, g.source_dist_a_m, g.fading_source, rng);
        self.hop_sb = Hop::new(g.pathloss_source, g.source_dist_b_m, g.fading_source, rng);
        self.hop_ab = Hop::new(g.pathloss_device, g.device_dist_m, g.fading_device, rng);
        let dt = cfg.phy.sample_period_s();
        self.tag_a = TagHardware::new(cfg.tag_a, dt);
        self.tag_b = TagHardware::new(cfg.tag_b, dt);
        self.noise = Awgn::from_dbm(cfg.field_noise_dbm);
        self.source = Ambient::from_config(cfg.ambient, cfg.ambient_seed);
        self.source_amp = dbm_to_watts(g.source_power_dbm).sqrt();
        self.cfg.copy_from(cfg);
        Ok(())
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Device A's hardware (energy inspection).
    pub fn tag_a(&self) -> &TagHardware {
        &self.tag_a
    }

    /// Device B's hardware.
    pub fn tag_b(&self) -> &TagHardware {
        &self.tag_b
    }

    /// Runs one frame through the link.
    ///
    /// With the `trace` feature on, the frame's diagnostic events land in a
    /// fresh bounded [`RingSink`] (capacity from
    /// `PhyConfig::trace_ring_capacity`) attached as `FrameOutcome::trace`.
    /// Use [`run_frame_with`](FdLink::run_frame_with) to attach a fault
    /// schedule and/or stream the events elsewhere instead.
    pub fn run_frame<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
    ) -> Result<FrameOutcome, PhyError> {
        self.run_frame_with(payload, opts, rng, FrameRun::clean())
    }

    /// Runs one frame with the [`FrameRun`] attachments: an optional
    /// scripted impairment schedule injected into the channel path, and
    /// (under the `trace` feature) an optional caller-owned trace sink
    /// replacing the outcome's in-memory ring.
    ///
    /// Faults draw randomness only from the [`FrameFaults`] engine's own
    /// deterministic generator, never from `rng`, so the main stream's
    /// draws are identical with and without injection; the schedule's
    /// activation tally lands on `FrameOutcome::fault_activations`.
    pub fn run_frame_with<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        run: FrameRun<'_>,
    ) -> Result<FrameOutcome, PhyError> {
        let mut out = FrameOutcome::default();
        self.run_frame_into(payload, opts, rng, run, &mut out)?;
        Ok(out)
    }

    /// [`run_frame_with`](FdLink::run_frame_with) writing into a
    /// caller-owned [`FrameOutcome`] instead of returning a fresh one.
    ///
    /// This is the allocation-free steady-state entry point: every owned
    /// buffer already on `out` (the delivered payload and block list, the
    /// feedback timeline, the partial-block staging, the trace ring) is
    /// harvested and refilled in place, and the engines borrow the link's
    /// [`LinkScratch`] arena for their working sets. After a one-frame
    /// warmup, re-running with the same `out` performs no heap allocation.
    /// Every field of `out` is overwritten; stale state never leaks into
    /// the new frame's result.
    pub fn run_frame_into<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        run: FrameRun<'_>,
        out: &mut FrameOutcome,
    ) -> Result<(), PhyError> {
        // Trace builds take the per-sample reference pipeline — its probes
        // poll the receiver at every sample, which the block pipeline by
        // design does not. Non-trace builds take the block pipeline; both
        // produce byte-identical `FrameOutcome`s.
        #[cfg(feature = "trace")]
        {
            match run.sink {
                Some(sink) => {
                    // Caller-owned sink: the outcome's ring stays an empty
                    // placeholder (its storage is retained for later
                    // ring-traced frames).
                    out.trace.reset(1);
                    self.run_frame_scalar(payload, opts, rng, run.faults, sink, out)
                }
                None => {
                    let mut trace = std::mem::take(&mut out.trace);
                    trace.reset(self.cfg.phy.trace_ring_capacity());
                    let mut ring = RingSink::from_trace(trace);
                    let res =
                        self.run_frame_scalar(payload, opts, rng, run.faults, &mut ring, out);
                    out.trace = ring.into_trace();
                    res
                }
            }
        }
        #[cfg(not(feature = "trace"))]
        self.run_frame_block_into(payload, opts, rng, run.faults, out)
    }

    /// Runs one frame through the preserved per-sample reference pipeline.
    ///
    /// This is the original scalar loop, kept always-compiled as (a) the
    /// oracle the block pipeline is equivalence-tested against and (b) the
    /// baseline the `fdb-bench` pairs measure speedups from. With the
    /// `trace` feature the diagnostic events land in the outcome's ring,
    /// exactly like [`FdLink::run_frame`].
    pub fn run_frame_reference<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        faults: Option<&mut FrameFaults>,
    ) -> Result<FrameOutcome, PhyError> {
        let mut out = FrameOutcome::default();
        self.run_frame_reference_into(payload, opts, rng, faults, &mut out)?;
        Ok(out)
    }

    /// [`run_frame_reference`](FdLink::run_frame_reference) writing into a
    /// caller-owned [`FrameOutcome`] (see
    /// [`run_frame_into`](FdLink::run_frame_into) for the reuse contract).
    pub fn run_frame_reference_into<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        faults: Option<&mut FrameFaults>,
        out: &mut FrameOutcome,
    ) -> Result<(), PhyError> {
        #[cfg(feature = "trace")]
        {
            let mut trace = std::mem::take(&mut out.trace);
            trace.reset(self.cfg.phy.trace_ring_capacity());
            let mut ring = RingSink::from_trace(trace);
            let res = self.run_frame_scalar(payload, opts, rng, faults, &mut ring, out);
            out.trace = ring.into_trace();
            res
        }
        #[cfg(not(feature = "trace"))]
        self.run_frame_scalar(payload, opts, rng, faults, out)
    }

    fn run_frame_scalar<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        mut faults: Option<&mut FrameFaults>,
        #[cfg(feature = "trace")] sink: &mut dyn TraceSink,
        out: &mut FrameOutcome,
    ) -> Result<(), PhyError> {
        // Split the link into disjoint field borrows so the engine can
        // hold the scratch arena's components mutably while stepping the
        // channel and devices — no per-frame clone of the PHY config, no
        // per-frame component construction.
        let FdLink {
            cfg,
            source,
            hop_sa,
            hop_sb,
            hop_ab,
            tag_a,
            tag_b,
            noise,
            source_amp,
            scratch,
        } = self;
        let source_amp = *source_amp;
        begin_outcome(scratch, out);
        let phy = &cfg.phy;
        let dt = phy.sample_period_s();
        let spb = phy.samples_per_bit();
        let half_fb = (phy.feedback_ratio / 2) * spb;

        scratch.tx.load(phy, payload)?;
        scratch.rx.load(phy);
        scratch.fb_enc.rearm(half_fb);
        scratch.fb_dec.rearm(half_fb);
        let LinkScratch {
            tx,
            rx,
            fb_enc,
            fb_dec,
            resampled,
            ..
        } = scratch;
        if let FeedbackPolicy::Stream(bits) = &opts.feedback {
            for &b in bits {
                fb_enc.push_bit(b);
            }
        }
        let mut sic_a =
            SelfInterferenceCanceller::new(phy.sic, cfg.tag_a.rho, cfg.tag_a.rho_residual);
        // B's data path blanks two samples after each of its own antenna
        // toggles: the detector RC takes ~a sample to re-settle after the
        // pass-fraction step, and the resulting glitch otherwise biases the
        // receiver's timing DLL once per feedback half-bit (enough to walk
        // the loop off over a long frame). Blanked samples are replaced by
        // a hold of the last corrected value so chip sample counts stay
        // exact.
        let mut sic_b =
            SelfInterferenceCanceller::new(phy.sic, cfg.tag_b.rho, cfg.tag_b.rho_residual)
                .with_blanking(2);
        let mut b_hold = 0.0f64;
        // B consumes the envelope on its own clock. A clock-drift fault
        // adds a frame-local ppm offset on top of the oscillator's state
        // without touching the oscillator itself.
        let b_base_ppm = tag_b.clock_mut().current_ppm();
        let mut b_clock_rs = Resampler::from_ppm(b_base_ppm);
        let mut b_fault_ppm = 0.0f64;
        resampled.clear();

        let preamble_samples = phy.preamble.len() * spb;
        let a_epoch = preamble_samples + phy.feedback_guard_bits * spb;
        let mut b_epoch: Option<usize> = None;
        let mut b_was_locked = false;

        let total = tx.total_samples();
        // With an active feedback channel, the run extends past the frame so
        // B can deliver a *post-frame verdict*: the final status bit that
        // covers the tail blocks (sent after the last in-frame feedback
        // boundary). Without it, A could see ACK for a frame whose last
        // blocks died after the final in-frame status bit.
        let tail = if matches!(opts.feedback, FeedbackPolicy::Silent) {
            8 * spb
        } else {
            2 * phy.samples_per_feedback_bit() + 8 * spb
        };
        let max_samples = total + tail;

        let a_consumed0 = tag_a.consumed_j();
        let b_consumed0 = tag_b.consumed_j();
        let a_harvest0 = tag_a.harvester().harvested_total_j();
        let b_harvest0 = tag_b.harvester().harvested_total_j();

        let mut aborted_at = None;
        let fade_every = cfg.fading_advance_bits * spb;

        // Change-detection cursors for the polled receiver-side probes.
        #[cfg(feature = "trace")]
        let (mut tr_chips, mut tr_bits, mut tr_blocks, mut tr_halves, mut tr_pilots) =
            (0usize, 0usize, 0usize, 0usize, 0usize);
        #[cfg(feature = "trace")]
        let mut tr_rejects = 0usize;
        #[cfg(feature = "trace")]
        let mut tr_pilots_checked = false;

        let mut samples_run = max_samples;
        for t in 0..max_samples {
            // --- fading evolution -------------------------------------
            if fade_every > 0 && t.is_multiple_of(fade_every) && t > 0 {
                hop_sa.advance_block(rng);
                hop_sb.advance_block(rng);
                hop_ab.advance_block(rng);
            }

            // --- scripted fault injection ------------------------------
            let fx = match faults.as_deref_mut() {
                Some(f) => {
                    let fx = f.effects_at(t);
                    #[cfg(feature = "trace")]
                    for (kind, active) in f.drain_transitions() {
                        sink.record(TraceEvent::Fault {
                            sample: t,
                            kind: kind.into(),
                            active,
                        });
                    }
                    if fx.ppm_offset != b_fault_ppm {
                        b_fault_ppm = fx.ppm_offset;
                        b_clock_rs.set_ppm(b_base_ppm + b_fault_ppm);
                    }
                    fx
                }
                None => FaultEffects::NEUTRAL,
            };

            // --- antenna schedules ------------------------------------
            let a_state = tx.next_state().unwrap_or(false) && tag_a.is_alive();
            tag_a.set_antenna(a_state);

            let b_fb_active = !matches!(opts.feedback, FeedbackPolicy::Silent)
                && b_epoch.map(|e| t >= e).unwrap_or(false)
                && tag_b.is_alive();
            let b_state = if b_fb_active {
                if fb_enc.at_bit_boundary() {
                    if let FeedbackPolicy::AckStatus = opts.feedback {
                        // Live status: set as the idle bit rather than
                        // queueing, so it is sampled at the moment each
                        // status bit actually starts (queueing here would
                        // pile up stale statuses behind the pilots and
                        // delay every verdict by the pilot length).
                        fb_enc.set_idle_bit(!rx.nack());
                    }
                }
                fb_enc.tick()
            } else {
                false
            };
            tag_b.set_antenna(b_state);

            // --- field assembly ---------------------------------------
            let x = source_amp * fx.source_scale * source.next_power(rng).sqrt();
            let h_sa = hop_sa.coeff();
            let h_sb = hop_sb.coeff();
            let h_ab = hop_ab.coeff();
            let e_a0 = h_sa * x;
            let e_b0 = h_sb * x;
            let g_a = tag_a.reflected(Iq::ONE); // complex reflection coeff
            let g_b = tag_b.reflected(Iq::ONE);
            // First order + one second-order bounce each way, plus any
            // fault-injected interferer / burst-noise field.
            let e_a = e_a0 + h_ab * g_b * (e_b0 + h_ab * g_a * e_a0) + fx.field_a;
            let e_b = e_b0 + h_ab * g_a * (e_a0 + h_ab * g_b * e_b0) + fx.field_b;
            let e_a = noise.corrupt(e_a, rng);
            let e_b = noise.corrupt(e_b, rng);

            // --- devices ----------------------------------------------
            // A dropout fault zeroes the ADC reading; the detector RC
            // state behind it keeps evolving with the field.
            let env_a = tag_a.step_receive(e_a, dt, rng);
            let env_b = tag_b.step_receive(e_b, dt, rng);
            let env_a = if fx.drop_a { 0.0 } else { env_a };
            let env_b = if fx.drop_b { 0.0 } else { env_b };
            tag_a.charge_awake(dt, t >= a_epoch);
            tag_b.charge_awake(dt, true);

            // --- per-chip trace snapshot -------------------------------
            #[cfg(feature = "trace")]
            let chip_boundary = t % phy.samples_per_chip == 0;
            #[cfg(feature = "trace")]
            if chip_boundary {
                sink.record(TraceEvent::TxChip {
                    sample: t,
                    chip: t / phy.samples_per_chip,
                    state: a_state,
                });
                sink.record(TraceEvent::Channel {
                    sample: t,
                    source_power_w: x * x,
                    env_a,
                    env_b,
                });
            }

            // --- B: data reception on its own clock --------------------
            // A SIC-gain fault mis-scales the canceller's output while the
            // device's own antenna reflects — the signature of a stale
            // pass-fraction estimate (the clean-state samples need no
            // correction, so they are untouched).
            let sic_b_out = sic_b
                .correct(env_b, b_state)
                .map(|v| if b_state { v * fx.sic_gain_b } else { v });
            #[cfg(feature = "trace")]
            if chip_boundary || sic_b_out.is_none() {
                sink.record(TraceEvent::Sic {
                    sample: t,
                    device: 'B',
                    own_state: b_state,
                    input: env_b,
                    output: sic_b_out,
                });
            }
            let corrected = match sic_b_out {
                Some(v) => {
                    b_hold = v;
                    v
                }
                None => b_hold, // blanked: hold the last settled value
            };
            resampled.clear();
            b_clock_rs.push(corrected, resampled);
            for &v in resampled.iter() {
                rx.push_sample(v);
            }
            // A header-CRC rejection throws a committed lock back to
            // acquisition; the feedback epoch must die with it (status bits
            // toggled against a false lock are pure interference) and the
            // encoder must restart its pilots for the next lock.
            if b_was_locked && rx.state() == RxState::Acquiring {
                b_was_locked = false;
                b_epoch = None;
                fb_enc.rearm(half_fb);
                if let FeedbackPolicy::Stream(bits) = &opts.feedback {
                    for &b in bits {
                        fb_enc.push_bit(b);
                    }
                }
                #[cfg(feature = "trace")]
                sink.record(TraceEvent::RxRearm {
                    sample: t,
                    attempts: rx.sync_attempts(),
                });
            }
            if !b_was_locked && rx.state() != RxState::Acquiring {
                b_was_locked = true;
                b_epoch = Some(t + phy.feedback_guard_bits * spb);
                #[cfg(feature = "trace")]
                {
                    let (score, _) = rx.sync_lock_info().unwrap_or((0.0, 0));
                    sink.record(TraceEvent::RxLock {
                        sample: t,
                        score,
                        peak_seen: rx.sync_peak_seen(),
                    });
                }
            }
            #[cfg(feature = "trace")]
            {
                let rejections = rx.rejections();
                if rejections.len() != tr_rejects {
                    for r in rejections.iter().skip(tr_rejects) {
                        sink.record(TraceEvent::RxSyncReject {
                            sample: t,
                            score: r.score,
                            sharpness: r.sharpness,
                            reason: r.reason.as_str().into(),
                        });
                    }
                    tr_rejects = rejections.len();
                }
                if rx.chips_seen() != tr_chips {
                    tr_chips = rx.chips_seen();
                    sink.record(TraceEvent::RxChip {
                        sample: t,
                        energy: rx.last_chip_energy(),
                        threshold: rx.slicer_threshold(),
                    });
                }
                if rx.bits_decoded() != tr_bits {
                    tr_bits = rx.bits_decoded();
                    if let Some(bit) = rx.last_bit() {
                        sink.record(TraceEvent::RxBit { sample: t, index: tr_bits - 1, bit });
                    }
                }
                let blocks = rx.blocks();
                if blocks.len() != tr_blocks {
                    for (i, b) in blocks.iter().enumerate().skip(tr_blocks) {
                        sink.record(TraceEvent::RxBlock { sample: t, index: i, ok: b.ok });
                    }
                    tr_blocks = blocks.len();
                }
            }

            // --- A: feedback reception ---------------------------------
            if t >= a_epoch && !matches!(opts.feedback, FeedbackPolicy::Silent) {
                let sic_a_out = sic_a
                    .correct(env_a, a_state)
                    .map(|v| if a_state { v * fx.sic_gain_a } else { v });
                #[cfg(feature = "trace")]
                if chip_boundary || sic_a_out.is_none() {
                    sink.record(TraceEvent::Sic {
                        sample: t,
                        device: 'A',
                        own_state: a_state,
                        input: env_a,
                        output: sic_a_out,
                    });
                }
                if let Some(corrected) = sic_a_out {
                    let decision = fb_dec.push(corrected);
                    #[cfg(feature = "trace")]
                    {
                        if fb_dec.halves_seen() != tr_halves {
                            tr_halves = fb_dec.halves_seen();
                            sink.record(TraceEvent::FbHalf { sample: t, integral: fb_dec.last_half() });
                        }
                        if fb_dec.pilots_consumed() != tr_pilots {
                            tr_pilots = fb_dec.pilots_consumed();
                            if let Some(&margin) = fb_dec.pilot_margins().last() {
                                sink.record(TraceEvent::FbPilot {
                                    sample: t,
                                    index: tr_pilots - 1,
                                    margin,
                                });
                            }
                            if tr_pilots == crate::feedback::PILOTS.len() && !tr_pilots_checked {
                                tr_pilots_checked = true;
                                sink.record(TraceEvent::FbPilotsChecked {
                                    sample: t,
                                    verified: fb_dec.pilots_verified(),
                                });
                            }
                        }
                    }
                    if let Some(decision) = decision {
                        #[cfg(feature = "trace")]
                        sink.record(TraceEvent::FbBit {
                            sample: t,
                            bit: decision.bit,
                            margin: decision.margin,
                        });
                        out.feedback.push(FeedbackEvent {
                            sample: t,
                            bit: decision.bit,
                            margin: decision.margin,
                        });
                        if opts.abort_on_nack
                            && fb_dec.pilots_verified()
                            && !decision.bit
                            && aborted_at.is_none()
                        {
                            tx.abort();
                            aborted_at = Some(t);
                            #[cfg(feature = "trace")]
                            sink.record(TraceEvent::Abort { sample: t });
                        }
                    }
                }
            }

            // Early loop exit once everything is settled: the frame is over,
            // B's receiver is terminal, and (when feedback is on) A has
            // decoded at least one post-frame verdict bit.
            // An aborted frame is over the moment the antenna drops: A has
            // already decided to retransmit, so it stops listening.
            if aborted_at.is_some() && tx.is_done() {
                samples_run = t + 1;
                break;
            }
            // A verdict bit covers the whole frame only if its status was
            // sampled (at its start boundary, one feedback-bit duration
            // before the decision lands) after the last block completed.
            // (+ one data bit of margin for B's parse/replay lag)
            let verdict_horizon = total + phy.samples_per_feedback_bit() + spb;
            let verdict_in = matches!(opts.feedback, FeedbackPolicy::Silent)
                || !b_was_locked
                || out.feedback
                    .last()
                    .map(|f| f.sample >= verdict_horizon)
                    .unwrap_or(false);
            if tx.is_done()
                && (rx.state() == RxState::Done || rx.state() == RxState::Failed)
                && verdict_in
            {
                samples_run = t + 1;
                break;
            }
        }
        let fault_activations = faults
            .map(|f| f.activations())
            .unwrap_or_default();
        finish_into(
            out,
            samples_run,
            tx,
            rx,
            fb_dec.pilots_verified(),
            aborted_at,
            b_was_locked,
            fault_activations,
            (a_consumed0, b_consumed0, a_harvest0, b_harvest0),
            tag_a,
            tag_b,
        );
        Ok(())
    }

    /// Runs one frame through the chip-sized block pipeline.
    ///
    /// Semantically identical to [`FdLink::run_frame_reference`] — every
    /// `FrameOutcome` field it produces is byte-for-byte the same, RNG
    /// draw-for-draw — but the loop advances in contiguous sample segments
    /// instead of one sample at a time. A segment never crosses an edge at
    /// which deferred state could feed back into already-computed state:
    ///
    /// * **fault window edges** (`FrameFaults::next_boundary_after`) — the
    ///   active-fault set is constant inside a segment; active windows run
    ///   fused (per-sample) because drift ramps, burst draws and interferer
    ///   phases are sample-indexed;
    /// * **fading epochs** — hop coefficients are hoisted per segment;
    /// * **feedback-bit boundaries** while B's status stream is live — the
    ///   AckStatus idle bit samples B's *current* NACK line, so the
    ///   receiver must be fully caught up at every boundary;
    /// * **the acquisition guard** while B hunts for the preamble — a lock
    ///   inside a segment schedules B's feedback epoch `guard` samples
    ///   later, so segments stay shorter than the guard;
    /// * **lock → header-accept** and **post-abort** windows, plus the
    ///   post-frame verdict tail, run fused: a header-CRC re-arm or an
    ///   early loop exit can strike at any sample there.
    ///
    /// Within a segment the physics/control pass stays per-sample (it owns
    /// the shared RNG draw order and A's abort reflex), while B's SIC →
    /// resampler → receiver chain consumes the staged block through the
    /// slice entry points ([`DataReceiver::push_slice`]) once the header is
    /// accepted and a mid-block loss of lock is impossible.
    ///
    /// This is the non-trace `run_frame` engine; it is public so benches
    /// and equivalence tests can pit it against the reference on any build.
    /// (`FrameOutcome::trace` stays empty on trace builds — per-sample
    /// probes are exactly what this pipeline amortises away.)
    pub fn run_frame_block<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        faults: Option<&mut FrameFaults>,
    ) -> Result<FrameOutcome, PhyError> {
        let mut out = FrameOutcome::default();
        self.run_frame_block_into(payload, opts, rng, faults, &mut out)?;
        Ok(out)
    }

    /// [`run_frame_block`](FdLink::run_frame_block) writing into a
    /// caller-owned [`FrameOutcome`] (see
    /// [`run_frame_into`](FdLink::run_frame_into) for the reuse contract).
    pub fn run_frame_block_into<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        opts: &RunOptions,
        rng: &mut R,
        mut faults: Option<&mut FrameFaults>,
        out: &mut FrameOutcome,
    ) -> Result<(), PhyError> {
        let FdLink {
            cfg,
            source,
            hop_sa,
            hop_sb,
            hop_ab,
            tag_a,
            tag_b,
            noise,
            source_amp,
            scratch,
        } = self;
        let source_amp = *source_amp;
        begin_outcome(scratch, out);
        #[cfg(feature = "trace")]
        out.trace.reset(1);
        let phy = &cfg.phy;
        let dt = phy.sample_period_s();
        let spb = phy.samples_per_bit();
        let half_fb = (phy.feedback_ratio / 2) * spb;

        scratch.tx.load(phy, payload)?;
        scratch.rx.load(phy);
        scratch.fb_enc.rearm(half_fb);
        scratch.fb_dec.rearm(half_fb);
        let LinkScratch {
            tx,
            rx,
            fb_enc,
            fb_dec,
            env_b: env_b_stage,
            b_state: b_state_stage,
            resampled,
        } = scratch;
        if let FeedbackPolicy::Stream(bits) = &opts.feedback {
            for &b in bits {
                fb_enc.push_bit(b);
            }
        }
        let mut sic_a =
            SelfInterferenceCanceller::new(phy.sic, cfg.tag_a.rho, cfg.tag_a.rho_residual);
        let mut sic_b =
            SelfInterferenceCanceller::new(phy.sic, cfg.tag_b.rho, cfg.tag_b.rho_residual)
                .with_blanking(2);
        let mut b_hold = 0.0f64;
        let b_base_ppm = tag_b.clock_mut().current_ppm();
        let mut b_clock_rs = Resampler::from_ppm(b_base_ppm);
        let mut b_fault_ppm = 0.0f64;

        let preamble_samples = phy.preamble.len() * spb;
        let guard = phy.feedback_guard_bits * spb;
        let a_epoch = preamble_samples + guard;
        let mut b_epoch: Option<usize> = None;
        let mut b_was_locked = false;

        let total = tx.total_samples();
        let tail = if matches!(opts.feedback, FeedbackPolicy::Silent) {
            8 * spb
        } else {
            2 * phy.samples_per_feedback_bit() + 8 * spb
        };
        let max_samples = total + tail;
        let verdict_horizon = total + phy.samples_per_feedback_bit() + spb;

        let a_consumed0 = tag_a.consumed_j();
        let b_consumed0 = tag_b.consumed_j();
        let a_harvest0 = tag_a.harvester().harvested_total_j();
        let b_harvest0 = tag_b.harvester().harvested_total_j();

        let mut aborted_at = None;
        let fade_every = cfg.fading_advance_bits * spb;

        let mut samples_run = max_samples;
        let mut t = 0usize;
        'frame: while t < max_samples {
            // ---- mode select: fused (exact per-sample) or staged -------
            let fault_active = faults.as_deref().is_some_and(|f| f.any_active_at(t));
            let fused = fault_active
                || (b_was_locked && !rx.header_accepted())
                || aborted_at.is_some()
                || t + 1 >= total;
            if fused {
                // One sample of the full reference body: every hazard the
                // staged path defers (re-arm, fault draws, loop exits) is
                // decided here at exact scalar granularity.
                if fade_every > 0 && t.is_multiple_of(fade_every) && t > 0 {
                    hop_sa.advance_block(rng);
                    hop_sb.advance_block(rng);
                    hop_ab.advance_block(rng);
                }
                let fx = match faults.as_deref_mut() {
                    Some(f) => {
                        let fx = f.effects_at(t);
                        if fx.ppm_offset != b_fault_ppm {
                            b_fault_ppm = fx.ppm_offset;
                            b_clock_rs.set_ppm(b_base_ppm + b_fault_ppm);
                        }
                        fx
                    }
                    None => FaultEffects::NEUTRAL,
                };

                let a_state = tx.next_state().unwrap_or(false) && tag_a.is_alive();
                tag_a.set_antenna(a_state);
                let b_fb_active = !matches!(opts.feedback, FeedbackPolicy::Silent)
                    && b_epoch.map(|e| t >= e).unwrap_or(false)
                    && tag_b.is_alive();
                let b_state = if b_fb_active {
                    if fb_enc.at_bit_boundary() {
                        if let FeedbackPolicy::AckStatus = opts.feedback {
                            fb_enc.set_idle_bit(!rx.nack());
                        }
                    }
                    fb_enc.tick()
                } else {
                    false
                };
                tag_b.set_antenna(b_state);

                let x = source_amp * fx.source_scale * source.next_power(rng).sqrt();
                let h_sa = hop_sa.coeff();
                let h_sb = hop_sb.coeff();
                let h_ab = hop_ab.coeff();
                let e_a0 = h_sa * x;
                let e_b0 = h_sb * x;
                let g_a = tag_a.reflected(Iq::ONE);
                let g_b = tag_b.reflected(Iq::ONE);
                let e_a = e_a0 + h_ab * g_b * (e_b0 + h_ab * g_a * e_a0) + fx.field_a;
                let e_b = e_b0 + h_ab * g_a * (e_a0 + h_ab * g_b * e_b0) + fx.field_b;
                let e_a = noise.corrupt(e_a, rng);
                let e_b = noise.corrupt(e_b, rng);

                let env_a = tag_a.step_receive(e_a, dt, rng);
                let env_b = tag_b.step_receive(e_b, dt, rng);
                let env_a = if fx.drop_a { 0.0 } else { env_a };
                let env_b = if fx.drop_b { 0.0 } else { env_b };
                tag_a.charge_awake(dt, t >= a_epoch);
                tag_b.charge_awake(dt, true);

                let sic_b_out = sic_b
                    .correct(env_b, b_state)
                    .map(|v| if b_state { v * fx.sic_gain_b } else { v });
                let corrected = match sic_b_out {
                    Some(v) => {
                        b_hold = v;
                        v
                    }
                    None => b_hold,
                };
                resampled.clear();
                b_clock_rs.push(corrected, resampled);
                for &v in resampled.iter() {
                    rx.push_sample(v);
                }
                if b_was_locked && rx.state() == RxState::Acquiring {
                    b_was_locked = false;
                    b_epoch = None;
                    fb_enc.rearm(half_fb);
                    if let FeedbackPolicy::Stream(bits) = &opts.feedback {
                        for &b in bits {
                            fb_enc.push_bit(b);
                        }
                    }
                }
                if !b_was_locked && rx.state() != RxState::Acquiring {
                    b_was_locked = true;
                    b_epoch = Some(t + guard);
                }

                if t >= a_epoch && !matches!(opts.feedback, FeedbackPolicy::Silent) {
                    let sic_a_out = sic_a
                        .correct(env_a, a_state)
                        .map(|v| if a_state { v * fx.sic_gain_a } else { v });
                    if let Some(corrected) = sic_a_out {
                        if let Some(decision) = fb_dec.push(corrected) {
                            out.feedback.push(FeedbackEvent {
                                sample: t,
                                bit: decision.bit,
                                margin: decision.margin,
                            });
                            if opts.abort_on_nack
                                && fb_dec.pilots_verified()
                                && !decision.bit
                                && aborted_at.is_none()
                            {
                                tx.abort();
                                aborted_at = Some(t);
                            }
                        }
                    }
                }

                if aborted_at.is_some() && tx.is_done() {
                    samples_run = t + 1;
                    break 'frame;
                }
                let verdict_in = matches!(opts.feedback, FeedbackPolicy::Silent)
                    || !b_was_locked
                    || out.feedback
                        .last()
                        .map(|f| f.sample >= verdict_horizon)
                        .unwrap_or(false);
                if tx.is_done()
                    && (rx.state() == RxState::Done || rx.state() == RxState::Failed)
                    && verdict_in
                {
                    samples_run = t + 1;
                    break 'frame;
                }
                t += 1;
                continue;
            }

            // ---- staged segment: pick a hazard-free length -------------
            // `t + 1 < total` here, so the tail/exit region is excluded.
            let mut len = (total - 1 - t).min(SEG_MAX);
            if let Some(q) = t.checked_div(fade_every) {
                let next_fade = (q + 1) * fade_every;
                len = len.min(next_fade - t);
            }
            if let Some(f) = faults.as_deref() {
                if let Some(b) = f.next_boundary_after(t) {
                    len = len.min(b - t);
                }
            }
            if let Some(e) = b_epoch {
                if e > t {
                    len = len.min(e - t);
                }
            }
            if !b_was_locked {
                // A lock at sample `ti` schedules b_epoch = ti + guard;
                // keeping len ≤ guard pins that epoch beyond the segment,
                // so the already-run control pass never misses it.
                len = len.min(guard.max(1));
            }
            let fb_live = !matches!(opts.feedback, FeedbackPolicy::Silent)
                && b_epoch.map(|e| e <= t).unwrap_or(false);
            if fb_live {
                // Keep feedback-bit boundaries (where AckStatus samples the
                // live NACK line) on segment starts, where rx is current.
                let ticks = fb_enc.ticks_until_boundary();
                let cap = if ticks == 0 { 2 * half_fb } else { ticks };
                len = len.min(cap.max(1));
            }
            debug_assert!(len >= 1);

            if fade_every > 0 && t.is_multiple_of(fade_every) && t > 0 {
                hop_sa.advance_block(rng);
                hop_sb.advance_block(rng);
                hop_ab.advance_block(rng);
            }
            // One bookkeeping poll per quiet segment: boundary caps above
            // guarantee every window edge lands exactly on a segment start,
            // which is all `effects_at`'s edge detection needs.
            let fx = match faults.as_deref_mut() {
                Some(f) => {
                    let fx = f.effects_at(t);
                    if fx.ppm_offset != b_fault_ppm {
                        b_fault_ppm = fx.ppm_offset;
                        b_clock_rs.set_ppm(b_base_ppm + b_fault_ppm);
                    }
                    fx
                }
                None => FaultEffects::NEUTRAL,
            };
            debug_assert!(fx.is_neutral(), "active fault in a staged segment");

            // ---- pass 1: physics + control + A-side, per sample --------
            // Owns the shared RNG draw order (source, AWGN, detectors) and
            // A's feedback/abort reflex — an abort lands on the very next
            // sample's tx state, exactly as in the reference. B's samples
            // are staged for pass 2.
            env_b_stage.clear();
            b_state_stage.clear();
            let h_sa = hop_sa.coeff();
            let h_sb = hop_sb.coeff();
            let h_ab = hop_ab.coeff();
            let mut seg_used = len;
            let mut exited = false;
            for i in 0..len {
                let ti = t + i;
                let a_state = tx.next_state().unwrap_or(false) && tag_a.is_alive();
                tag_a.set_antenna(a_state);
                let b_fb_active = !matches!(opts.feedback, FeedbackPolicy::Silent)
                    && b_epoch.map(|e| ti >= e).unwrap_or(false)
                    && tag_b.is_alive();
                let b_state = if b_fb_active {
                    if fb_enc.at_bit_boundary() {
                        if let FeedbackPolicy::AckStatus = opts.feedback {
                            fb_enc.set_idle_bit(!rx.nack());
                        }
                    }
                    fb_enc.tick()
                } else {
                    false
                };
                tag_b.set_antenna(b_state);

                let x = source_amp * fx.source_scale * source.next_power(rng).sqrt();
                let e_a0 = h_sa * x;
                let e_b0 = h_sb * x;
                let g_a = tag_a.reflected(Iq::ONE);
                let g_b = tag_b.reflected(Iq::ONE);
                let e_a = e_a0 + h_ab * g_b * (e_b0 + h_ab * g_a * e_a0) + fx.field_a;
                let e_b = e_b0 + h_ab * g_a * (e_a0 + h_ab * g_b * e_b0) + fx.field_b;
                let e_a = noise.corrupt(e_a, rng);
                let e_b = noise.corrupt(e_b, rng);

                let env_a = tag_a.step_receive(e_a, dt, rng);
                let env_b = tag_b.step_receive(e_b, dt, rng);
                let env_a = if fx.drop_a { 0.0 } else { env_a };
                let env_b = if fx.drop_b { 0.0 } else { env_b };
                tag_a.charge_awake(dt, ti >= a_epoch);
                tag_b.charge_awake(dt, true);

                env_b_stage.push(env_b);
                b_state_stage.push(b_state);

                if ti >= a_epoch && !matches!(opts.feedback, FeedbackPolicy::Silent) {
                    let sic_a_out = sic_a
                        .correct(env_a, a_state)
                        .map(|v| if a_state { v * fx.sic_gain_a } else { v });
                    if let Some(corrected) = sic_a_out {
                        if let Some(decision) = fb_dec.push(corrected) {
                            out.feedback.push(FeedbackEvent {
                                sample: ti,
                                bit: decision.bit,
                                margin: decision.margin,
                            });
                            if opts.abort_on_nack
                                && fb_dec.pilots_verified()
                                && !decision.bit
                                && aborted_at.is_none()
                            {
                                tx.abort();
                                aborted_at = Some(ti);
                            }
                        }
                    }
                }
                // The only loop exit reachable before `total - 1`: an
                // abort emptying the transmitter. B-side processing of the
                // staged samples still completes below, as the reference
                // does before its own break.
                if aborted_at.is_some() && tx.is_done() {
                    samples_run = ti + 1;
                    seg_used = i + 1;
                    exited = true;
                    break;
                }
            }

            // ---- pass 2: B-side SIC → resampler → receiver -------------
            if b_was_locked {
                // Header accepted (else this segment would be fused): no
                // re-arm is possible, so the whole block flows through the
                // slice entry points in one go.
                resampled.clear();
                for i in 0..seg_used {
                    let b_state = b_state_stage[i];
                    let sic_b_out = sic_b
                        .correct(env_b_stage[i], b_state)
                        .map(|v| if b_state { v * fx.sic_gain_b } else { v });
                    let corrected = match sic_b_out {
                        Some(v) => {
                            b_hold = v;
                            v
                        }
                        None => b_hold,
                    };
                    b_clock_rs.push(corrected, resampled);
                }
                rx.push_slice(resampled);
            } else {
                // Acquiring: per-sample so the exact lock instant is
                // observed and the feedback epoch lands on the right tick.
                for i in 0..seg_used {
                    let ti = t + i;
                    let b_state = b_state_stage[i];
                    let sic_b_out = sic_b
                        .correct(env_b_stage[i], b_state)
                        .map(|v| if b_state { v * fx.sic_gain_b } else { v });
                    let corrected = match sic_b_out {
                        Some(v) => {
                            b_hold = v;
                            v
                        }
                        None => b_hold,
                    };
                    resampled.clear();
                    b_clock_rs.push(corrected, resampled);
                    for &v in resampled.iter() {
                        rx.push_sample(v);
                    }
                    // A lock can fall back to acquisition in-segment only
                    // when the guard outlasts the header airtime; the epoch
                    // it clears was pinned beyond this segment either way.
                    if b_was_locked && rx.state() == RxState::Acquiring {
                        b_was_locked = false;
                        b_epoch = None;
                        fb_enc.rearm(half_fb);
                        if let FeedbackPolicy::Stream(bits) = &opts.feedback {
                            for &b in bits {
                                fb_enc.push_bit(b);
                            }
                        }
                    }
                    if !b_was_locked && rx.state() != RxState::Acquiring {
                        b_was_locked = true;
                        b_epoch = Some(ti + guard);
                    }
                }
            }

            if exited {
                break 'frame;
            }
            t += len;
        }
        let fault_activations = faults
            .map(|f| f.activations())
            .unwrap_or_default();
        finish_into(
            out,
            samples_run,
            tx,
            rx,
            fb_dec.pilots_verified(),
            aborted_at,
            b_was_locked,
            fault_activations,
            (a_consumed0, b_consumed0, a_harvest0, b_harvest0),
            tag_a,
            tag_b,
        );
        Ok(())
    }
}

/// Harvests the reusable storage a previous frame left on `out` back into
/// the arena before the new frame overwrites it: the delivered
/// [`RxResult`]'s buffers return to the receiver's spare pool and the
/// feedback timeline is cleared in place. (The partial-block staging and
/// the trace ring are recycled by [`finish_into`] and the `run_frame_*`
/// wrappers respectively.)
fn begin_outcome(scratch: &mut LinkScratch, out: &mut FrameOutcome) {
    if let Some(delivered) = out.delivered.take() {
        scratch.rx.recycle_result(delivered);
    }
    out.feedback.clear();
}

/// Refills every `FrameOutcome` field from the frame's end state —
/// [`begin_outcome`]'s counterpart, overwriting scalars and
/// clearing-then-extending the owned buffers so their capacity survives
/// into the next frame.
#[allow(clippy::too_many_arguments)]
fn finish_into(
    out: &mut FrameOutcome,
    samples_run: usize,
    tx: &DataTransmitter,
    rx: &mut DataReceiver,
    pilots_verified: bool,
    aborted_at_sample: Option<usize>,
    b_locked: bool,
    fault_activations: FaultActivations,
    baselines: (f64, f64, f64, f64),
    tag_a: &TagHardware,
    tag_b: &TagHardware,
) {
    out.nack = rx.nack();
    out.rx_sync_peak = rx.sync_peak_seen();
    out.sync_attempts = rx.sync_attempts();
    out.sync_rejections = rx.sync_rejections();
    {
        let (p, b) = rx.partial();
        out.partial_payload.clear();
        out.partial_payload.extend_from_slice(p);
        out.partial_blocks.clear();
        out.partial_blocks.extend_from_slice(b);
    }
    out.rx_timing_corrections = rx.timing_corrections();
    out.delivered = rx.take_result();
    out.b_locked = b_locked;
    out.pilots_verified = pilots_verified;
    out.aborted_at_sample = aborted_at_sample;
    out.airtime_samples = tx.samples_emitted();
    out.samples_run = samples_run;
    out.energy = EnergyReport {
        a_consumed_j: tag_a.consumed_j() - baselines.0,
        b_consumed_j: tag_b.consumed_j() - baselines.1,
        a_harvested_j: tag_a.harvester().harvested_total_j() - baselines.2,
        b_harvested_j: tag_b.harvester().harvested_total_j() - baselines.3,
    };
    out.fault_activations = fault_activations;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quiet_cfg() -> LinkConfig {
        // CW source → no source fluctuation; static channels; tiny noise.
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    #[test]
    fn clean_frame_delivers_half_duplex() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let mut link = FdLink::new(quiet_cfg(), &mut rng).unwrap();
        let payload: Vec<u8> = (0..32u8).collect();
        let out = link
            .run_frame(&payload, &RunOptions::half_duplex(), &mut rng)
            .unwrap();
        assert!(out.b_locked, "no lock");
        assert!(out.fully_delivered(), "delivery failed: {:?}", out.delivered.as_ref().map(|r| &r.blocks));
        assert_eq!(out.delivered.unwrap().payload, payload);
        assert!(out.feedback.is_empty());
    }

    #[test]
    fn clean_frame_delivers_full_duplex_with_acks() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let mut link = FdLink::new(quiet_cfg(), &mut rng).unwrap();
        let payload: Vec<u8> = (0..64u8).collect();
        let out = link
            .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
            .unwrap();
        assert!(out.fully_delivered(), "FD frame lost");
        assert_eq!(out.delivered.unwrap().payload, payload);
        assert!(out.pilots_verified, "pilots failed");
        assert!(!out.feedback.is_empty(), "no feedback decoded");
        // All-clean frame ⇒ every status bit is ACK.
        assert!(
            out.feedback.iter().all(|f| f.bit),
            "spurious NACK: {:?}",
            out.feedback
        );
        assert!(out.aborted_at_sample.is_none());
    }

    #[test]
    fn feedback_stream_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(102);
        let mut link = FdLink::new(quiet_cfg(), &mut rng).unwrap();
        let pattern = vec![true, false, false, true, true, false, true, false];
        // Long payload so the frame outlasts the feedback stream.
        let payload = vec![0x3Cu8; 200];
        let out = link
            .run_frame(
                &payload,
                &RunOptions {
                    feedback: FeedbackPolicy::Stream(pattern.clone()),
                    abort_on_nack: false,
                },
                &mut rng,
            )
            .unwrap();
        assert!(out.pilots_verified);
        let got: Vec<bool> = out.feedback.iter().map(|f| f.bit).collect();
        assert!(
            got.len() >= pattern.len(),
            "only {} feedback bits decoded",
            got.len()
        );
        assert_eq!(&got[..pattern.len()], &pattern[..], "feedback corrupted");
    }

    #[test]
    fn full_duplex_does_not_break_data() {
        // The FD feedback toggling must not measurably hurt the forward
        // link when SIC is on (the headline claim).
        let mut rng = ChaCha8Rng::seed_from_u64(103);
        let payload = vec![0xAAu8; 96];
        let mut link = FdLink::new(quiet_cfg(), &mut rng).unwrap();
        let hd = link
            .run_frame(&payload, &RunOptions::half_duplex(), &mut rng)
            .unwrap();
        let fd = link
            .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
            .unwrap();
        assert!(hd.fully_delivered());
        assert!(fd.fully_delivered());
    }

    #[test]
    fn energy_ledger_is_populated() {
        let mut rng = ChaCha8Rng::seed_from_u64(104);
        let mut cfg = quiet_cfg();
        // Close to the source so the incident power clears the harvester's
        // sensitivity floor (−20 dBm).
        cfg.geometry.source_dist_a_m = 100.0;
        cfg.geometry.source_dist_b_m = 100.0;
        let mut link = FdLink::new(cfg, &mut rng).unwrap();
        let out = link
            .run_frame(&[1u8; 16], &RunOptions::fd_monitor(), &mut rng)
            .unwrap();
        assert!(out.energy.a_consumed_j > 0.0);
        assert!(out.energy.b_consumed_j > 0.0);
        assert!(out.energy.b_harvested_j > 0.0, "B harvested nothing");
        assert!(out.airtime_samples > 0);
    }

    /// Field-by-field byte identity of two outcomes (trace excluded — the
    /// block pipeline deliberately records no per-sample probes).
    fn assert_outcomes_identical(a: &FrameOutcome, b: &FrameOutcome, what: &str) {
        assert_eq!(a.delivered, b.delivered, "{what}: delivered");
        assert_eq!(a.b_locked, b.b_locked, "{what}: b_locked");
        assert_eq!(a.sync_attempts, b.sync_attempts, "{what}: sync_attempts");
        assert_eq!(a.sync_rejections, b.sync_rejections, "{what}: sync_rejections");
        assert_eq!(a.feedback.len(), b.feedback.len(), "{what}: feedback len");
        for (i, (x, y)) in a.feedback.iter().zip(&b.feedback).enumerate() {
            assert_eq!(x.sample, y.sample, "{what}: feedback[{i}].sample");
            assert_eq!(x.bit, y.bit, "{what}: feedback[{i}].bit");
            assert_eq!(
                x.margin.to_bits(),
                y.margin.to_bits(),
                "{what}: feedback[{i}].margin"
            );
        }
        assert_eq!(a.pilots_verified, b.pilots_verified, "{what}: pilots_verified");
        assert_eq!(a.aborted_at_sample, b.aborted_at_sample, "{what}: aborted_at");
        assert_eq!(a.airtime_samples, b.airtime_samples, "{what}: airtime");
        assert_eq!(a.samples_run, b.samples_run, "{what}: samples_run");
        for (x, y, f) in [
            (a.energy.a_consumed_j, b.energy.a_consumed_j, "a_consumed"),
            (a.energy.b_consumed_j, b.energy.b_consumed_j, "b_consumed"),
            (a.energy.a_harvested_j, b.energy.a_harvested_j, "a_harvested"),
            (a.energy.b_harvested_j, b.energy.b_harvested_j, "b_harvested"),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: energy.{f}");
        }
        assert_eq!(a.nack, b.nack, "{what}: nack");
        assert_eq!(a.partial_payload, b.partial_payload, "{what}: partial_payload");
        assert_eq!(a.partial_blocks, b.partial_blocks, "{what}: partial_blocks");
        assert_eq!(
            a.rx_timing_corrections, b.rx_timing_corrections,
            "{what}: timing_corrections"
        );
        assert_eq!(
            a.rx_sync_peak.to_bits(),
            b.rx_sync_peak.to_bits(),
            "{what}: rx_sync_peak"
        );
        assert_eq!(
            a.fault_activations, b.fault_activations,
            "{what}: fault_activations"
        );
    }

    /// Runs `frames` back-to-back frames through two identically-seeded
    /// links — one on the reference engine, one on the block pipeline —
    /// and requires byte-identical outcomes every frame (back-to-back so
    /// persistent device/energy/fading state must stay aligned too).
    fn assert_block_matches_reference(
        cfg: LinkConfig,
        payload: &[u8],
        opts: &RunOptions,
        seed: u64,
        frames: usize,
        what: &str,
    ) {
        let mut rng_r = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let mut link_r = FdLink::new(cfg.clone(), &mut rng_r).unwrap();
        let mut link_b = FdLink::new(cfg, &mut rng_b).unwrap();
        for k in 0..frames {
            let r = link_r
                .run_frame_reference(payload, opts, &mut rng_r, None)
                .unwrap();
            let b = link_b.run_frame_block(payload, opts, &mut rng_b, None).unwrap();
            assert_outcomes_identical(&r, &b, &format!("{what} frame {k}"));
        }
    }

    #[test]
    fn block_matches_reference_quiet_cw() {
        let payload: Vec<u8> = (0..64u8).collect();
        assert_block_matches_reference(
            quiet_cfg(),
            &payload,
            &RunOptions::fd_monitor(),
            200,
            2,
            "cw fd_monitor",
        );
        assert_block_matches_reference(
            quiet_cfg(),
            &payload,
            &RunOptions::half_duplex(),
            201,
            2,
            "cw half_duplex",
        );
    }

    #[test]
    fn block_matches_reference_tv_wideband() {
        let payload: Vec<u8> = (0..48u8).map(|i| i.wrapping_mul(37)).collect();
        assert_block_matches_reference(
            LinkConfig::default_fd(),
            &payload,
            &RunOptions::fd_monitor(),
            202,
            2,
            "tv fd_monitor",
        );
    }

    #[test]
    fn block_matches_reference_with_fading_and_stream() {
        let mut cfg = quiet_cfg();
        cfg.fading_advance_bits = 16;
        cfg.geometry.fading_source = Fading::rayleigh(50.0);
        let payload = vec![0x3Cu8; 120];
        assert_block_matches_reference(
            cfg,
            &payload,
            &RunOptions {
                feedback: FeedbackPolicy::Stream(vec![true, false, true, true, false]),
                abort_on_nack: false,
            },
            203,
            2,
            "fading stream",
        );
    }

    #[test]
    fn block_matches_reference_early_abort() {
        // Ruin the channel mid-frame with a scripted burst so B NACKs and
        // A's abort reflex fires — the hardest control-feedback path.
        use fdb_channel::impairment::{FaultKind, FaultTarget, ScheduledFault};
        let cfg = quiet_cfg();
        let payload: Vec<u8> = (0..128u8).collect();
        let schedule = vec![ScheduledFault {
            start: 9_000,
            duration: 2_500,
            kind: FaultKind::NoiseBurst {
                power_dbm: -35.0,
                target: FaultTarget::B,
            },
        }];
        let mut rng_r = ChaCha8Rng::seed_from_u64(204);
        let mut rng_b = ChaCha8Rng::seed_from_u64(204);
        let mut link_r = FdLink::new(cfg.clone(), &mut rng_r).unwrap();
        let mut link_b = FdLink::new(cfg, &mut rng_b).unwrap();
        let opts = RunOptions::fd_early_abort();
        let mut faults_r = FrameFaults::new(schedule.clone(), 7);
        let mut faults_b = FrameFaults::new(schedule, 7);
        let r = link_r
            .run_frame_reference(&payload, &opts, &mut rng_r, Some(&mut faults_r))
            .unwrap();
        let b = link_b
            .run_frame_block(&payload, &opts, &mut rng_b, Some(&mut faults_b))
            .unwrap();
        assert_outcomes_identical(&r, &b, "early abort");
        assert!(r.aborted_at_sample.is_some(), "burst failed to provoke abort");
    }

    #[test]
    fn block_matches_reference_under_fault_grid() {
        // One representative of every fault class, windows straddling
        // acquisition, header, payload and the feedback epoch.
        use fdb_channel::impairment::{FaultKind, FaultTarget, ScheduledFault};
        let mk = |kind, start, duration| ScheduledFault { start, duration, kind };
        let schedules: Vec<(&str, Vec<ScheduledFault>)> = vec![
            (
                "burst@acquire",
                vec![mk(
                    FaultKind::NoiseBurst {
                        power_dbm: -55.0,
                        target: FaultTarget::Both,
                    },
                    40,
                    400,
                )],
            ),
            (
                "dropout@payload",
                vec![mk(
                    FaultKind::Dropout {
                        target: FaultTarget::B,
                    },
                    5_000,
                    60,
                )],
            ),
            ("drift@mid", vec![mk(FaultKind::ClockDrift { ppm: 900.0 }, 3_000, 4_000)]),
            (
                "sicgain@fb",
                vec![mk(
                    FaultKind::SicGain {
                        gain_db: 6.0,
                        target: FaultTarget::A,
                    },
                    2_000,
                    3_000,
                )],
            ),
            ("fade@mid", vec![mk(FaultKind::AmbientFade { depth_db: 6.0 }, 4_000, 1_500)]),
            (
                "interferer@acquire",
                vec![mk(
                    FaultKind::Interferer {
                        power_dbm: -60.0,
                        period_samples: 20,
                    },
                    0,
                    600,
                )],
            ),
            (
                "stacked",
                vec![
                    mk(FaultKind::AmbientFade { depth_db: 3.0 }, 1_000, 6_000),
                    mk(FaultKind::ClockDrift { ppm: 500.0 }, 2_000, 2_000),
                    mk(
                        FaultKind::NoiseBurst {
                            power_dbm: -60.0,
                            target: FaultTarget::B,
                        },
                        5_500,
                        800,
                    ),
                ],
            ),
        ];
        let payload: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(11)).collect();
        for (name, schedule) in schedules {
            let mut rng_r = ChaCha8Rng::seed_from_u64(205);
            let mut rng_b = ChaCha8Rng::seed_from_u64(205);
            let mut link_r = FdLink::new(quiet_cfg(), &mut rng_r).unwrap();
            let mut link_b = FdLink::new(quiet_cfg(), &mut rng_b).unwrap();
            let opts = RunOptions::fd_monitor();
            let mut faults_r = FrameFaults::new(schedule.clone(), 11);
            let mut faults_b = FrameFaults::new(schedule, 11);
            let r = link_r
                .run_frame_reference(&payload, &opts, &mut rng_r, Some(&mut faults_r))
                .unwrap();
            let b = link_b
                .run_frame_block(&payload, &opts, &mut rng_b, Some(&mut faults_b))
                .unwrap();
            assert_outcomes_identical(&r, &b, name);
        }
    }

    #[test]
    fn swapped_geometry_swaps_distances() {
        let g = LinkGeometry {
            source_dist_a_m: 10.0,
            source_dist_b_m: 20.0,
            ..LinkGeometry::default_indoor()
        };
        let s = g.swapped();
        assert_eq!(s.source_dist_a_m, 20.0);
        assert_eq!(s.source_dist_b_m, 10.0);
    }
}
