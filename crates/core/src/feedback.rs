//! The in-band feedback channel.
//!
//! While a device receives a frame, it simultaneously transmits a low-rate
//! status stream by toggling its own antenna once per feedback half-bit.
//! Design choices, each load-bearing:
//!
//! * **Manchester at the feedback level** — each feedback bit is sent as
//!   `reflect/absorb` (1) or `absorb/reflect` (0) over two half-bits. The
//!   decoder decides on the *difference* of the two half-bit integrals, so
//!   slow drift of the ambient level cancels exactly.
//! * **Half-bits span whole data bits** (`m/2` of them) — so the
//!   DC-balanced data waveform contributes identically to both halves.
//! * **Known pilots** — the stream starts with the fixed pattern
//!   `1,0,1,1,0,0`. The sign of the envelope change when the far device
//!   reflects depends on channel phases (constructive or destructive
//!   addition), so the decoder learns the polarity from the first pilot
//!   and verifies it against the remaining five — plus a margin-
//!   consistency check — so that a *silent* far end (dead link,
//!   collision) is reliably distinguished from a live feedback channel.
//!   That distinction is precisely what the collision-detection MAC
//!   trusts.
//!
//! The encoder runs at the data *receiver*; the decoder at the data
//! *transmitter* (which corrects its own self-interference first — see
//! [`crate::sic`]).

use fdb_dsp::moving_average::IntegrateDump;
use std::collections::VecDeque;

/// The pilot pattern every feedback stream starts with. Six bits: the
/// first teaches the decoder the channel polarity, the other five verify
/// it (false-verification probability 2⁻⁵ on pure noise before the margin
/// test cuts it further).
pub const PILOTS: [bool; 6] = [true, false, true, true, false, false];

/// Margin-consistency requirement: on a live channel all pilot margins
/// cluster near the swing, while on noise they are heavy-tailed random
/// magnitudes; requiring `min ≥ MARGIN_RATIO·max` rejects most of the
/// noise cases that pass the bit check by luck.
const MARGIN_RATIO: f64 = 0.2;

/// Feedback bit stream encoder → antenna states.
#[derive(Debug, Clone)]
pub struct FeedbackEncoder {
    /// Samples per feedback half-bit.
    half_samples: usize,
    sample_ctr: usize,
    current_bit: bool,
    in_second_half: bool,
    queue: VecDeque<bool>,
    /// Sent when the queue is empty (sticky last status).
    idle_bit: bool,
    started: bool,
    bits_sent: usize,
}

impl FeedbackEncoder {
    /// Creates an encoder with the given half-bit length in samples. The
    /// protocol pilots ([`PILOTS`]) are pre-queued.
    pub fn new(half_samples: usize) -> Self {
        let mut queue = VecDeque::new();
        queue.extend(PILOTS);
        FeedbackEncoder {
            half_samples: half_samples.max(1),
            sample_ctr: 0,
            current_bit: false,
            in_second_half: false,
            queue,
            idle_bit: false,
            started: false,
            bits_sent: 0,
        }
    }

    /// Returns the encoder to its start-of-stream state — pilots re-queued,
    /// idle bit and counters cleared, half-bit length updated — without
    /// releasing queue capacity. Observably identical to a fresh
    /// [`FeedbackEncoder::new`], but allocation-free.
    pub fn rearm(&mut self, half_samples: usize) {
        self.half_samples = half_samples.max(1);
        self.sample_ctr = 0;
        self.current_bit = false;
        self.in_second_half = false;
        self.queue.clear();
        self.queue.extend(PILOTS);
        self.idle_bit = false;
        self.started = false;
        self.bits_sent = 0;
    }

    /// Queues a status bit for transmission.
    pub fn push_bit(&mut self, bit: bool) {
        self.queue.push_back(bit);
    }

    /// Sets the bit repeated when the queue runs dry.
    pub fn set_idle_bit(&mut self, bit: bool) {
        self.idle_bit = bit;
    }

    /// Number of complete feedback bits emitted so far.
    pub fn bits_sent(&self) -> usize {
        self.bits_sent
    }

    /// `true` when the *next* `tick` starts a new feedback bit — the moment
    /// for the MAC to push a fresh status bit.
    pub fn at_bit_boundary(&self) -> bool {
        !self.started || (self.sample_ctr == 0 && !self.in_second_half)
    }

    /// Ticks until the next feedback-bit boundary: 0 when the next `tick`
    /// already starts a new bit. Lets a block pipeline size its segments so
    /// that status-bit refresh points always land on a segment start.
    pub fn ticks_until_boundary(&self) -> usize {
        if self.at_bit_boundary() {
            return 0;
        }
        let into_bit = self.sample_ctr
            + if self.in_second_half {
                self.half_samples
            } else {
                0
            };
        2 * self.half_samples - into_bit
    }

    /// Antenna state for this sample (`true` = reflect), then advance.
    pub fn tick(&mut self) -> bool {
        if !self.started || (self.sample_ctr == 0 && !self.in_second_half) {
            // Starting a new feedback bit.
            self.current_bit = self.queue.pop_front().unwrap_or(self.idle_bit);
            self.started = true;
        }
        let state = if self.in_second_half {
            !self.current_bit
        } else {
            self.current_bit
        };
        self.sample_ctr += 1;
        if self.sample_ctr == self.half_samples {
            self.sample_ctr = 0;
            if self.in_second_half {
                self.in_second_half = false;
                self.bits_sent += 1;
            } else {
                self.in_second_half = true;
            }
        }
        state
    }
}

/// A decoded feedback bit with its soft metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackDecision {
    /// The decoded bit (pilots are consumed internally and not reported).
    pub bit: bool,
    /// `|E_first − E_second|` — decision confidence in envelope units.
    pub margin: f64,
}

/// Integrate-and-dump feedback decoder with pilot-learned polarity.
pub struct FeedbackDecoder {
    integrator: IntegrateDump,
    first_half: Option<f64>,
    /// `true` ⇒ reflecting *raises* the decoder's envelope.
    polarity_positive: bool,
    /// Pilots consumed so far (0..=PILOTS.len()).
    pilot_idx: usize,
    pilot_margins: Vec<f64>,
    pilot_bits_ok: bool,
    pilot_ok: bool,
    decided: usize,
    /// Half-bit integrals dumped so far (diagnostics).
    halves_seen: usize,
    /// Most recent half-bit integral (diagnostics).
    last_half: f64,
}

impl FeedbackDecoder {
    /// Creates a decoder with the given half-bit length in samples.
    pub fn new(half_samples: usize) -> Self {
        FeedbackDecoder {
            integrator: IntegrateDump::new(half_samples.max(1)),
            first_half: None,
            polarity_positive: true,
            pilot_idx: 0,
            pilot_margins: Vec::with_capacity(PILOTS.len()),
            pilot_bits_ok: true,
            pilot_ok: false,
            decided: 0,
            halves_seen: 0,
            last_half: 0.0,
        }
    }

    /// `true` once the pilot pattern decoded correctly with consistent
    /// margins — the feedback channel is genuinely alive.
    pub fn pilots_verified(&self) -> bool {
        self.pilot_ok
    }

    /// Number of *data* (post-pilot) bits decided.
    pub fn bits_decided(&self) -> usize {
        self.decided
    }

    /// Number of half-bit integrals dumped so far.
    pub fn halves_seen(&self) -> usize {
        self.halves_seen
    }

    /// The most recent half-bit integral (mean corrected envelope).
    pub fn last_half(&self) -> f64 {
        self.last_half
    }

    /// Per-pilot decision margins accumulated so far.
    pub fn pilot_margins(&self) -> &[f64] {
        &self.pilot_margins
    }

    /// Pilot bits consumed so far (`0..=PILOTS.len()`).
    pub fn pilots_consumed(&self) -> usize {
        self.pilot_idx
    }

    /// Learned channel polarity (`true` ⇒ reflecting raises the envelope).
    pub fn polarity_positive(&self) -> bool {
        self.polarity_positive
    }

    /// Feeds one (self-interference-corrected) envelope sample. Emits a
    /// decision when a data feedback bit completes.
    pub fn push(&mut self, envelope: f64) -> Option<FeedbackDecision> {
        let half = self.integrator.process(envelope)?;
        self.halves_seen += 1;
        self.last_half = half;
        match self.first_half.take() {
            None => {
                self.first_half = Some(half);
                None
            }
            Some(e1) => {
                let diff = e1 - half;
                if self.pilot_idx < PILOTS.len() {
                    if self.pilot_idx == 0 {
                        // First pilot is 1 ⇒ first half reflecting. If the
                        // difference is negative, reflecting lowers our
                        // envelope: negative polarity.
                        self.polarity_positive = diff >= 0.0;
                    } else {
                        let bit =
                            if self.polarity_positive { diff >= 0.0 } else { diff < 0.0 };
                        if bit != PILOTS[self.pilot_idx] {
                            self.pilot_bits_ok = false;
                        }
                    }
                    self.pilot_margins.push(diff.abs());
                    self.pilot_idx += 1;
                    if self.pilot_idx == PILOTS.len() {
                        let max = self
                            .pilot_margins
                            .iter()
                            .cloned()
                            .fold(0.0f64, f64::max);
                        let min = self
                            .pilot_margins
                            .iter()
                            .cloned()
                            .fold(f64::MAX, f64::min);
                        self.pilot_ok =
                            self.pilot_bits_ok && max > 0.0 && min >= MARGIN_RATIO * max;
                    }
                    None
                } else {
                    let bit = if self.polarity_positive { diff >= 0.0 } else { diff < 0.0 };
                    self.decided += 1;
                    Some(FeedbackDecision {
                        bit,
                        margin: diff.abs(),
                    })
                }
            }
        }
    }

    /// Discards partial integration (resynchronisation).
    pub fn reset(&mut self) {
        self.integrator.reset();
        self.first_half = None;
        self.pilot_idx = 0;
        self.pilot_margins.clear();
        self.pilot_bits_ok = true;
        self.pilot_ok = false;
        self.decided = 0;
        self.halves_seen = 0;
        self.last_half = 0.0;
    }

    /// Full start-of-frame re-arm: [`FeedbackDecoder::reset`] plus the
    /// learned polarity and the half-bit length — observably identical to
    /// a fresh [`FeedbackDecoder::new`], but allocation-free (the pilot
    /// margin buffer keeps its capacity).
    pub fn rearm(&mut self, half_samples: usize) {
        self.integrator.set_len(half_samples.max(1));
        self.polarity_positive = true;
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs encoder → toy channel → decoder and returns decoded data bits.
    ///
    /// `gain` maps antenna state to envelope: reflect adds `swing` (or
    /// subtracts, for negative polarity channels) on top of `base`.
    fn loopback(bits: &[bool], half: usize, swing: f64, base: f64) -> Vec<bool> {
        let mut enc = FeedbackEncoder::new(half);
        for &b in bits {
            enc.push_bit(b);
        }
        let mut dec = FeedbackDecoder::new(half);
        let total = (bits.len() + PILOTS.len()) * 2 * half;
        let mut out = Vec::new();
        for _ in 0..total {
            let state = enc.tick();
            let env = base + if state { swing } else { 0.0 };
            if let Some(d) = dec.push(env) {
                out.push(d.bit);
            }
        }
        out
    }

    #[test]
    fn clean_loopback_positive_polarity() {
        let bits = vec![true, false, false, true, true, false];
        assert_eq!(loopback(&bits, 40, 0.1, 1.0), bits);
    }

    #[test]
    fn clean_loopback_negative_polarity() {
        // Reflecting *lowers* the envelope (destructive channel phase):
        // the pilots must teach the decoder to flip its decisions.
        let bits = vec![true, false, true, true, false];
        assert_eq!(loopback(&bits, 40, -0.1, 1.0), bits);
    }

    #[test]
    fn pilots_verified_on_clean_channel() {
        let mut enc = FeedbackEncoder::new(16);
        let mut dec = FeedbackDecoder::new(16);
        for _ in 0..(PILOTS.len() * 2 * 16) {
            let env = 1.0 + if enc.tick() { 0.2 } else { 0.0 };
            dec.push(env);
        }
        assert!(dec.pilots_verified());
    }

    #[test]
    fn manchester_cancels_linear_drift() {
        // A strong linear drift in the ambient level must not flip bits:
        // drift contributes equally (to first order) to both halves.
        let bits = vec![true, false, true, false];
        let half = 50;
        let mut enc = FeedbackEncoder::new(half);
        for &b in &bits {
            enc.push_bit(b);
        }
        let mut dec = FeedbackDecoder::new(half);
        let total = (bits.len() + PILOTS.len()) * 2 * half;
        let mut out = Vec::new();
        for t in 0..total {
            let drift = 0.5 * t as f64 / total as f64; // +50 % over the run
            let env = 1.0 + drift + if enc.tick() { 0.08 } else { 0.0 };
            if let Some(d) = dec.push(env) {
                out.push(d.bit);
            }
        }
        assert_eq!(out, bits);
    }

    #[test]
    fn idle_bit_repeats_when_queue_dry() {
        let half = 8;
        let mut enc = FeedbackEncoder::new(half);
        enc.set_idle_bit(true);
        // Drain the pilots plus 3 idle bits.
        let mut states = Vec::new();
        for _ in 0..((PILOTS.len() + 3) * 2 * half) {
            states.push(enc.tick());
        }
        // Bits after the pilots are idle `true` = reflect-then-absorb.
        for bit_idx in PILOTS.len()..PILOTS.len() + 3 {
            let start = bit_idx * 2 * half;
            assert!(states[start], "bit {bit_idx} first half");
            assert!(!states[start + half], "bit {bit_idx} second half");
        }
    }

    #[test]
    fn encoder_bit_boundary_flag() {
        let mut enc = FeedbackEncoder::new(4);
        assert!(enc.at_bit_boundary());
        enc.tick();
        assert!(!enc.at_bit_boundary());
        for _ in 0..7 {
            enc.tick();
        }
        assert!(enc.at_bit_boundary());
        assert_eq!(enc.bits_sent(), 1);
    }

    #[test]
    fn margin_scales_with_swing() {
        let half = 30;
        let run = |swing: f64| -> f64 {
            let mut enc = FeedbackEncoder::new(half);
            enc.push_bit(true);
            let mut dec = FeedbackDecoder::new(half);
            let mut margin = 0.0;
            for _ in 0..((PILOTS.len() + 1) * 2 * half) {
                let env = 1.0 + if enc.tick() { swing } else { 0.0 };
                if let Some(d) = dec.push(env) {
                    margin = d.margin;
                }
            }
            margin
        };
        let m1 = run(0.05);
        let m2 = run(0.10);
        assert!((m2 / m1 - 2.0).abs() < 0.05, "margins {m1} {m2}");
    }

    #[test]
    fn silent_far_end_fails_pilot_verification() {
        // A dead link / colliding far end leaves the envelope flat: every
        // pilot margin is 0, so `max > 0` fails and the channel must NOT
        // verify — this is the property the collision-detection MAC trusts.
        let mut dec = FeedbackDecoder::new(16);
        for _ in 0..(PILOTS.len() * 2 * 16 + 64) {
            dec.push(1.0);
        }
        assert_eq!(dec.pilots_consumed(), PILOTS.len());
        assert!(!dec.pilots_verified(), "flat envelope must not verify");
    }

    #[test]
    fn polarity_flip_mid_pilots_fails_verification() {
        // The decoder learns polarity from pilot 0; if the channel phase
        // flips afterwards (e.g. fading walks through a null), later pilot
        // bits decode inverted and the bit check must reject the stream.
        // (A *consistently* inverted channel is fine — see the negative-
        // polarity loopback test — only inconsistency is a failure.)
        let half = 16;
        let mut enc = FeedbackEncoder::new(half);
        let mut dec = FeedbackDecoder::new(half);
        let total = PILOTS.len() * 2 * half;
        for t in 0..total {
            let state = enc.tick();
            // Positive swing during pilot 0, negative from pilot 1 on.
            let swing = if t < 2 * half { 0.2 } else { -0.2 };
            dec.push(1.0 + if state { swing } else { 0.0 });
        }
        assert_eq!(dec.pilots_consumed(), PILOTS.len());
        assert!(!dec.pilots_verified(), "mid-stream polarity flip must not verify");
    }

    #[test]
    fn pilot_stream_truncated_mid_bit_fails_verification() {
        // The far end dies after ~3.5 pilot bits: the remaining pilots see
        // a flat envelope, their margins collapse to ~0, and the margin-
        // consistency test (min ≥ MARGIN_RATIO·max) must reject the stream.
        let half = 16;
        let mut enc = FeedbackEncoder::new(half);
        let mut dec = FeedbackDecoder::new(half);
        let alive = (3 * 2 + 1) * half; // 3.5 pilot bits worth of samples
        for t in 0..(PILOTS.len() * 2 * half) {
            let state = enc.tick();
            let env = if t < alive {
                1.0 + if state { 0.2 } else { 0.0 }
            } else {
                1.0 // far end stopped toggling
            };
            dec.push(env);
        }
        assert_eq!(dec.pilots_consumed(), PILOTS.len());
        assert!(!dec.pilots_verified(), "truncated pilot stream must not verify");
    }

    #[test]
    fn rearm_matches_fresh_encoder_decoder_pair() {
        // Dirty both ends (mid-bit state, learned polarity, idle bit), then
        // rearm with a different half-bit length: the loopback must behave
        // exactly like a freshly constructed pair.
        let bits = vec![true, false, false, true, true, false];
        let mut enc = FeedbackEncoder::new(8);
        enc.set_idle_bit(true);
        for _ in 0..101 {
            enc.tick();
        }
        let mut dec = FeedbackDecoder::new(8);
        for t in 0..77 {
            dec.push(1.0 - if t % 2 == 0 { 0.3 } else { 0.0 });
        }
        enc.rearm(40);
        dec.rearm(40);
        for &b in &bits {
            enc.push_bit(b);
        }
        let mut out = Vec::new();
        for _ in 0..((bits.len() + PILOTS.len()) * 2 * 40) {
            let env = 1.0 + if enc.tick() { 0.1 } else { 0.0 };
            if let Some(d) = dec.push(env) {
                out.push(d.bit);
            }
        }
        assert_eq!(out, loopback(&bits, 40, 0.1, 1.0));
        assert!(dec.pilots_verified());
    }

    #[test]
    fn decoder_reset_restarts_pilot_phase() {
        let mut dec = FeedbackDecoder::new(4);
        for _ in 0..16 {
            dec.push(1.0);
        }
        dec.reset();
        assert!(!dec.pilots_verified());
        assert_eq!(dec.bits_decided(), 0);
    }
}
