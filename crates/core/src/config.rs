//! PHY configuration.
//!
//! One validated struct carries every knob of the full-duplex PHY. The
//! defaults reproduce the operating point of the original prototype class:
//! ~1 kbps forward data (Manchester at 2 kchips/s), feedback at
//! `data_rate / m`, 16-byte CRC blocks.

use crate::error::PhyError;
use fdb_dsp::line_code::LineCode;
use serde::{Deserialize, Serialize};

/// Self-interference cancellation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SicMode {
    /// No cancellation — the ablation baseline (experiment E3).
    Off,
    /// Divide the detected envelope by the device's own antenna pass
    /// fraction, which the device knows exactly.
    KnownState,
}

/// Two-stage acquisition policy: how a candidate correlation peak becomes
/// a committed lock, and what happens when verification fails.
///
/// Stage 1 runs inside the correlator ([`fdb_dsp::correlate::PreambleSearcher`]):
/// a candidate peak must be *sharp* — its correlation at least
/// `min_sharpness` times the largest off-peak correlation in the tracked
/// trajectory. Stage 2 runs in the receiver after the candidate is
/// declared: the preamble chips are re-decoded from the replayed sample
/// history and compared against the known pattern, and the frame header
/// must pass its CRC. Any failure *re-arms* the searcher and returns the
/// receiver to acquisition (up to `max_rearms` times per frame) instead of
/// abandoning the remaining samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncPolicy {
    /// Stage-1 peak-to-sidelobe gate; values ≤ 1.0 disable it.
    #[serde(default = "SyncPolicy::default_min_sharpness")]
    pub min_sharpness: f64,
    /// Stage-2 preamble re-decode toggle.
    #[serde(default = "SyncPolicy::default_verify_preamble")]
    pub verify_preamble: bool,
    /// Chip mismatches tolerated by the stage-2 preamble re-decode before
    /// the lock is rejected (out of `preamble.len() × chips_per_bit`).
    #[serde(default = "SyncPolicy::default_max_preamble_chip_errors")]
    pub max_preamble_chip_errors: usize,
    /// Lock rejections (either stage, including header-CRC failures)
    /// tolerated per frame before the receiver gives up in
    /// [`crate::rx::RxState::Failed`].
    #[serde(default = "SyncPolicy::default_max_rearms")]
    pub max_rearms: usize,
}

impl SyncPolicy {
    fn default_min_sharpness() -> f64 {
        1.25
    }

    fn default_verify_preamble() -> bool {
        true
    }

    fn default_max_preamble_chip_errors() -> usize {
        4
    }

    fn default_max_rearms() -> usize {
        6
    }

    /// The single-stage legacy behaviour: every threshold crossing is a
    /// committed lock and the first bad header kills the frame.
    pub fn trusting() -> Self {
        SyncPolicy {
            min_sharpness: 0.0,
            verify_preamble: false,
            max_preamble_chip_errors: usize::MAX,
            max_rearms: 0,
        }
    }
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy {
            min_sharpness: Self::default_min_sharpness(),
            verify_preamble: Self::default_verify_preamble(),
            max_preamble_chip_errors: Self::default_max_preamble_chip_errors(),
            max_rearms: Self::default_max_rearms(),
        }
    }
}

/// Full-duplex PHY parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhyConfig {
    /// Simulation sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Samples per chip (≥ 4 for usable sync).
    pub samples_per_chip: usize,
    /// Forward-data line code.
    pub line_code: LineCode,
    /// Data bits per feedback bit (`m`); must be even and ≥ 2 so the
    /// Manchester-coded feedback halves align with data-bit boundaries.
    pub feedback_ratio: usize,
    /// Preamble bit pattern (line-coded like data; chosen for a sharp
    /// autocorrelation peak).
    pub preamble: Vec<bool>,
    /// Payload block size in bytes between CRC-8 trailers.
    pub block_len_bytes: usize,
    /// Whether payload bits are PRBS-scrambled (whitens pathological data).
    pub scramble: bool,
    /// Per-block forward error correction: Hamming(7,4) + depth-7 block
    /// interleaving over each block's bytes (1.75× airtime for single-error
    /// correction per codeword). The FEC-vs-ARQ tradeoff is ablation A4.
    #[serde(default)]
    pub payload_fec: bool,
    /// Self-interference cancellation mode.
    pub sic: SicMode,
    /// Guard interval (in data bits) between frame start and the feedback
    /// epoch, covering the receiver's lock latency.
    pub feedback_guard_bits: usize,
    /// Preamble correlation threshold for acquisition, `(0, 1)`.
    pub sync_threshold: f64,
    /// Two-stage lock verification and re-arm policy. Older configs
    /// without the field get the verified default.
    #[serde(default)]
    pub sync: SyncPolicy,
    /// Per-frame trace ring capacity in events (`trace` feature); `None`
    /// — including configs written before the field existed — resolves to
    /// [`crate::trace::DEFAULT_TRACE_CAPACITY`] via
    /// [`trace_ring_capacity`](PhyConfig::trace_ring_capacity).
    #[serde(default)]
    pub trace_capacity: Option<usize>,
}

impl PhyConfig {
    /// The default operating point: 20 kHz sample rate, 10 samples/chip
    /// (2 kchips/s → 1 kbps Manchester data), m = 32, 16-byte blocks.
    pub fn default_fd() -> Self {
        PhyConfig {
            sample_rate_hz: 20_000.0,
            samples_per_chip: 10,
            line_code: LineCode::Manchester,
            feedback_ratio: 32,
            preamble: vec![
                true, false, true, false, true, true, false, false, true, false, false, true,
                true, true, false, false,
            ],
            block_len_bytes: 16,
            scramble: true,
            payload_fec: false,
            sic: SicMode::KnownState,
            feedback_guard_bits: 4,
            // With two-stage verification the scalar threshold only needs
            // to admit candidates (the shape gate and preamble re-decode do
            // the discrimination), so it sits at the sensitive end of the
            // marginal-link band instead of on the tuned 0.67 cliff.
            sync_threshold: 0.62,
            sync: SyncPolicy::default(),
            trace_capacity: None,
        }
    }

    /// Field-wise copy that reuses `self`'s heap buffers (the preamble
    /// vector) instead of allocating a fresh clone — the per-slot config
    /// rebuild in a long MAC session goes through this.
    pub fn copy_from(&mut self, source: &PhyConfig) {
        self.sample_rate_hz = source.sample_rate_hz;
        self.samples_per_chip = source.samples_per_chip;
        self.line_code = source.line_code;
        self.feedback_ratio = source.feedback_ratio;
        self.preamble.clone_from(&source.preamble);
        self.block_len_bytes = source.block_len_bytes;
        self.scramble = source.scramble;
        self.payload_fec = source.payload_fec;
        self.sic = source.sic;
        self.feedback_guard_bits = source.feedback_guard_bits;
        self.sync_threshold = source.sync_threshold;
        self.sync = source.sync;
        self.trace_capacity = source.trace_capacity;
    }

    /// Effective per-frame trace ring capacity: the configured
    /// `trace_capacity`, or [`crate::trace::DEFAULT_TRACE_CAPACITY`].
    pub fn trace_ring_capacity(&self) -> usize {
        self.trace_capacity
            .unwrap_or(crate::trace::DEFAULT_TRACE_CAPACITY)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PhyError> {
        // NaN must fail too, hence the negated comparison on a partial ord.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.sample_rate_hz > 0.0) {
            return Err(PhyError::InvalidConfig {
                field: "sample_rate_hz",
                reason: "must be positive".into(),
            });
        }
        if self.samples_per_chip < 4 {
            return Err(PhyError::InvalidConfig {
                field: "samples_per_chip",
                reason: "need ≥ 4 samples per chip for synchronisation".into(),
            });
        }
        if self.feedback_ratio < 2 || !self.feedback_ratio.is_multiple_of(2) {
            return Err(PhyError::InvalidConfig {
                field: "feedback_ratio",
                reason: "must be even and ≥ 2".into(),
            });
        }
        if self.preamble.len() < 8 {
            return Err(PhyError::InvalidConfig {
                field: "preamble",
                reason: "need ≥ 8 preamble bits".into(),
            });
        }
        if self.block_len_bytes == 0 || self.block_len_bytes > 255 {
            return Err(PhyError::InvalidConfig {
                field: "block_len_bytes",
                reason: "must be in 1..=255".into(),
            });
        }
        if !(self.sync_threshold > 0.0 && self.sync_threshold < 1.0) {
            return Err(PhyError::InvalidConfig {
                field: "sync_threshold",
                reason: "must be in (0, 1)".into(),
            });
        }
        if !self.sync.min_sharpness.is_finite() || self.sync.min_sharpness < 0.0 {
            return Err(PhyError::InvalidConfig {
                field: "sync.min_sharpness",
                reason: "must be finite and non-negative".into(),
            });
        }
        if self.trace_capacity == Some(0) {
            return Err(PhyError::InvalidConfig {
                field: "trace_capacity",
                reason: "must be ≥ 1 (omit the field for the default)".into(),
            });
        }
        Ok(())
    }

    /// Chips per data bit for the configured line code.
    pub fn chips_per_bit(&self) -> usize {
        self.line_code.chips_per_bit()
    }

    /// Samples per data bit.
    pub fn samples_per_bit(&self) -> usize {
        self.samples_per_chip * self.chips_per_bit()
    }

    /// Samples per feedback bit (`m` data bits).
    pub fn samples_per_feedback_bit(&self) -> usize {
        self.samples_per_bit() * self.feedback_ratio
    }

    /// Data bit rate in bits/s.
    pub fn data_rate_bps(&self) -> f64 {
        self.sample_rate_hz / self.samples_per_bit() as f64
    }

    /// Feedback bit rate in bits/s.
    pub fn feedback_rate_bps(&self) -> f64 {
        self.data_rate_bps() / self.feedback_ratio as f64
    }

    /// Chip duration in seconds.
    pub fn chip_duration_s(&self) -> f64 {
        self.samples_per_chip as f64 / self.sample_rate_hz
    }

    /// Sample period in seconds.
    pub fn sample_period_s(&self) -> f64 {
        1.0 / self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(PhyConfig::default_fd().validate().is_ok());
    }

    #[test]
    fn derived_rates() {
        let c = PhyConfig::default_fd();
        // 20 kHz / (10 samples × 2 chips) = 1 kbps.
        assert!((c.data_rate_bps() - 1000.0).abs() < 1e-9);
        assert!((c.feedback_rate_bps() - 31.25).abs() < 1e-9);
        assert_eq!(c.samples_per_bit(), 20);
        assert_eq!(c.samples_per_feedback_bit(), 640);
        assert!((c.chip_duration_s() - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn rejects_odd_feedback_ratio() {
        let mut c = PhyConfig::default_fd();
        c.feedback_ratio = 7;
        assert!(matches!(
            c.validate(),
            Err(PhyError::InvalidConfig { field: "feedback_ratio", .. })
        ));
    }

    #[test]
    fn rejects_tiny_sps() {
        let mut c = PhyConfig::default_fd();
        c.samples_per_chip = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_block_len() {
        let mut c = PhyConfig::default_fd();
        c.block_len_bytes = 0;
        assert!(c.validate().is_err());
        c.block_len_bytes = 256;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_short_preamble() {
        let mut c = PhyConfig::default_fd();
        c.preamble = vec![true, false];
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_sync_policy_is_two_stage() {
        let c = PhyConfig::default_fd();
        assert!(c.sync.min_sharpness > 1.0, "shape gate off by default");
        assert!(c.sync.verify_preamble);
        assert!(c.sync.max_rearms > 0, "re-arm disabled by default");
    }

    #[test]
    fn trusting_policy_disables_both_stages() {
        let p = SyncPolicy::trusting();
        assert!(p.min_sharpness <= 1.0);
        assert!(!p.verify_preamble);
        assert_eq!(p.max_rearms, 0);
        let mut c = PhyConfig::default_fd();
        c.sync = p;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_min_sharpness() {
        let mut c = PhyConfig::default_fd();
        c.sync.min_sharpness = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(PhyError::InvalidConfig { field: "sync.min_sharpness", .. })
        ));
        c.sync.min_sharpness = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn trace_capacity_defaults_and_validates() {
        let mut c = PhyConfig::default_fd();
        assert_eq!(c.trace_capacity, None);
        assert_eq!(c.trace_ring_capacity(), crate::trace::DEFAULT_TRACE_CAPACITY);
        c.trace_capacity = Some(128);
        assert_eq!(c.trace_ring_capacity(), 128);
        assert!(c.validate().is_ok());
        c.trace_capacity = Some(0);
        assert!(matches!(
            c.validate(),
            Err(PhyError::InvalidConfig { field: "trace_capacity", .. })
        ));
    }

    #[test]
    fn nrz_changes_chip_geometry() {
        let mut c = PhyConfig::default_fd();
        c.line_code = LineCode::Nrz;
        assert_eq!(c.samples_per_bit(), 10);
        assert!((c.data_rate_bps() - 2000.0).abs() < 1e-9);
    }
}
