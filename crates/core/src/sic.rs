//! Known-state self-interference cancellation.
//!
//! A full-duplex backscatter device distorts its own reception: while its
//! antenna is in the *reflect* state, only a fraction `1 − ρ` of the
//! incident power reaches its detector. Conventional full-duplex radios
//! fight self-interference with adaptive analog cancellers; a backscatter
//! device doesn't need any of that, because the interference is a
//! *deterministic, known* multiplicative factor — the device set the
//! antenna state itself. Cancelling it is a single division.
//!
//! The subtlety modelled here (and exercised by ablation E3) is that the
//! detector's RC low-pass smears envelope samples across antenna-state
//! boundaries, so the division is exact only away from transitions. The
//! canceller therefore also exposes a transition-blanking option that
//! discards samples within the RC settling window of a state flip — the
//! digital analogue of the comparator blanking real tags implement.

use crate::config::SicMode;
use serde::{Deserialize, Serialize};

/// Per-device self-interference canceller.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SelfInterferenceCanceller {
    mode: SicMode,
    /// ρ of the device's own reflect state.
    rho: f64,
    /// ρ residual of the absorb state.
    rho_residual: f64,
    /// Samples to blank after an antenna-state transition (0 = off).
    blank_samples: usize,
    since_toggle: usize,
    last_state: bool,
}

impl SelfInterferenceCanceller {
    /// Creates a canceller for a device whose reflect/absorb power
    /// reflection coefficients are `rho` / `rho_residual`.
    pub fn new(mode: SicMode, rho: f64, rho_residual: f64) -> Self {
        SelfInterferenceCanceller {
            mode,
            rho: rho.clamp(0.0, 1.0),
            rho_residual: rho_residual.clamp(0.0, 1.0),
            blank_samples: 0,
            since_toggle: usize::MAX / 2,
            last_state: false,
        }
    }

    /// Enables transition blanking for `n` samples after each toggle.
    pub fn with_blanking(mut self, n: usize) -> Self {
        self.blank_samples = n;
        self
    }

    /// The cancellation mode.
    pub fn mode(&self) -> SicMode {
        self.mode
    }

    /// Pass-power fraction for a given own-antenna state.
    fn pass_fraction(&self, reflecting: bool) -> f64 {
        1.0 - if reflecting { self.rho } else { self.rho_residual }
    }

    /// Corrects one envelope sample given the device's own antenna state at
    /// that sample. Returns `None` when the sample falls in a blanking
    /// window (caller should skip it).
    #[inline]
    pub fn correct(&mut self, envelope: f64, own_reflecting: bool) -> Option<f64> {
        if own_reflecting != self.last_state {
            self.last_state = own_reflecting;
            self.since_toggle = 0;
        } else {
            self.since_toggle = self.since_toggle.saturating_add(1);
        }
        if self.since_toggle < self.blank_samples {
            return None;
        }
        match self.mode {
            SicMode::Off => Some(envelope),
            SicMode::KnownState => {
                let pass = self.pass_fraction(own_reflecting).max(1e-6);
                Some(envelope / pass)
            }
        }
    }

    /// Resets transition tracking (new frame), treating the *current*
    /// antenna state as settled. The state is deliberately preserved: a
    /// frame that starts while the antenna is already reflecting must not
    /// register a spurious toggle (and blank its opening samples) just
    /// because the canceller was reset.
    pub fn reset(&mut self) {
        self.since_toggle = usize::MAX / 2;
    }

    /// Resets transition tracking with an explicit settled initial state,
    /// for callers that know the antenna state the next frame opens in.
    pub fn reset_to(&mut self, state: bool) {
        self.since_toggle = usize::MAX / 2;
        self.last_state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_state_inverts_pass_fraction() {
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.3, 0.0);
        // Incident power 1.0; detector sees 0.7 while reflecting.
        let corrected = s.correct(0.7, true).unwrap();
        assert!((corrected - 1.0).abs() < 1e-9);
        let corrected = s.correct(1.0, false).unwrap();
        assert!((corrected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn off_mode_passes_through() {
        let mut s = SelfInterferenceCanceller::new(SicMode::Off, 0.5, 0.0);
        assert_eq!(s.correct(0.42, true), Some(0.42));
    }

    #[test]
    fn residual_reflection_accounted() {
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.3, 0.01);
        let corrected = s.correct(0.99, false).unwrap();
        assert!((corrected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blanking_skips_post_toggle_samples() {
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.3, 0.0).with_blanking(3);
        // Initial state false, settled.
        assert!(s.correct(1.0, false).is_some());
        // Toggle: the next 3 samples are blanked.
        assert!(s.correct(0.7, true).is_none());
        assert!(s.correct(0.7, true).is_none());
        assert!(s.correct(0.7, true).is_none());
        assert!(s.correct(0.7, true).is_some());
    }

    #[test]
    fn sic_makes_states_indistinguishable() {
        // The property that matters: after correction, the envelope is the
        // same regardless of the device's own antenna state.
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.4, 0.02);
        let incident = 2.5;
        let e_reflect = incident * (1.0 - 0.4);
        let e_absorb = incident * (1.0 - 0.02);
        let c1 = s.correct(e_absorb, false).unwrap();
        let c2 = s.correct(e_reflect, true).unwrap();
        assert!((c1 - c2).abs() < 1e-9, "{c1} vs {c2}");
    }

    #[test]
    fn without_sic_states_differ() {
        let mut s = SelfInterferenceCanceller::new(SicMode::Off, 0.4, 0.02);
        let incident = 2.5;
        let c1 = s.correct(incident * 0.98, false).unwrap();
        let c2 = s.correct(incident * 0.6, true).unwrap();
        assert!((c1 - c2).abs() > 0.5);
    }

    #[test]
    fn reset_clears_toggle_tracking() {
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.3, 0.0).with_blanking(5);
        s.correct(1.0, true); // toggle → blank
        s.reset();
        // Reset treats the current state as settled, so the blanking window
        // opened by the toggle above does not leak into the next frame.
        assert!(s.correct(0.7, true).is_some());
    }

    #[test]
    fn reset_preserves_settled_reflect_state() {
        // Regression: reset() used to force last_state = false, so a frame
        // starting while the antenna was (correctly) still reflecting
        // registered a phantom toggle and blanked its opening samples.
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.3, 0.0).with_blanking(3);
        for _ in 0..10 {
            s.correct(0.7, true); // settle in the reflect state
        }
        s.reset();
        assert!(
            s.correct(0.7, true).is_some(),
            "reset must not fabricate a toggle when the next frame opens in the settled reflect state"
        );
    }

    #[test]
    fn reset_to_seeds_explicit_initial_state() {
        let mut s = SelfInterferenceCanceller::new(SicMode::KnownState, 0.3, 0.0).with_blanking(3);
        for _ in 0..10 {
            s.correct(1.0, false);
        }
        s.reset_to(true);
        // First sample already reflecting: settled, not a toggle.
        assert!(s.correct(0.7, true).is_some());
        // And an actual toggle afterwards still blanks.
        assert!(s.correct(1.0, false).is_none());
    }
}
