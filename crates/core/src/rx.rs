//! Forward data receiver: envelope stream → synchronised bits → frame.
//!
//! Pipeline (all on the device's own clock):
//!
//! 1. **Acquisition** — slide a normalised correlator over the envelope
//!    until the line-coded preamble peaks ([`fdb_dsp::correlate`]).
//! 2. **Chip integration** — average the envelope over each chip period.
//! 3. **Bit decisions** — the line code's soft rule over the chip energies
//!    ([`fdb_dsp::line_code::SoftDecoder`]), with an adaptive peak-tracking
//!    threshold for the codes that need one.
//! 4. **Timing recovery** — a per-bit delay-locked loop that re-estimates
//!    the mid-bit transition position (guaranteed by Manchester) and
//!    lengthens/shortens chip windows by whole samples. This is what lets
//!    a crystal-less tag hold sync over a multi-thousand-bit frame.
//! 5. **Framing** — bits feed the streaming [`crate::frame::FrameParser`],
//!    whose per-block CRC verdicts drive the feedback (NACK) channel.

use crate::config::PhyConfig;
use crate::frame::{BlockStatus, FrameParser, ParseEvent};
use crate::tx::DataTransmitter;
use fdb_dsp::correlate::{chips_to_template, PreambleSearcher, SyncEvent};
use fdb_dsp::line_code::{LineCode, SoftDecoder};
use fdb_dsp::moving_average::MovingAverage;
use fdb_dsp::ringbuf::RingBuf;
use fdb_dsp::threshold::PeakTracker;

/// Gain of the timing DLL (fraction of the measured error fed back).
const DLL_GAIN: f64 = 0.3;
/// DLL search half-window in samples around the expected transition.
const DLL_WINDOW_FRAC: f64 = 0.45;

/// Receiver lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxState {
    /// Hunting for the preamble.
    Acquiring,
    /// Locked; decoding payload bits.
    Receiving,
    /// Frame fully parsed.
    Done,
    /// The re-acquisition budget is exhausted — the receiver gave up on
    /// this sample stream.
    Failed,
}

/// Why a candidate lock was rejected by two-stage verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncRejectReason {
    /// Stage 1: the correlation peak was broad or multi-modal.
    PeakShape,
    /// Stage 2: the sample history behind the peak had no modulation at
    /// all (a flat span can never carry the preamble, and would leave the
    /// slicer unprimed).
    FlatHistory,
    /// Stage 2: the re-decoded preamble chips disagreed with the known
    /// pattern beyond the configured tolerance.
    PreambleMismatch,
    /// Stage 2: the frame header failed its CRC after Hamming correction.
    HeaderCrc,
}

impl SyncRejectReason {
    /// Stable lower-case label (trace/JSONL surfaces).
    pub fn as_str(self) -> &'static str {
        match self {
            SyncRejectReason::PeakShape => "peak_shape",
            SyncRejectReason::FlatHistory => "flat_history",
            SyncRejectReason::PreambleMismatch => "preamble_mismatch",
            SyncRejectReason::HeaderCrc => "header_crc",
        }
    }
}

/// One rejected lock candidate (diagnostics; surfaced per frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncRejection {
    /// Peak correlation of the candidate.
    pub score: f64,
    /// Peak-to-sidelobe ratio of the candidate trajectory.
    pub sharpness: f64,
    /// Which verification stage failed.
    pub reason: SyncRejectReason,
}

/// Final result of a reception.
#[derive(Debug, Clone, PartialEq)]
pub struct RxResult {
    /// Received payload (failed blocks included, corrupted).
    pub payload: Vec<u8>,
    /// Per-block CRC verdicts.
    pub blocks: Vec<BlockStatus>,
    /// Sample index (receiver clock) at which sync locked.
    pub locked_at: usize,
}

/// Streaming data receiver for one frame.
pub struct DataReceiver {
    cfg: PhyConfig,
    state: RxState,
    searcher: PreambleSearcher,
    /// Half-chip smoother in front of the correlator only: the payload path
    /// integrates whole chips anyway, but the sample-level correlator needs
    /// the source's fast power fluctuation knocked down to find the
    /// preamble at realistic modulation depths.
    sync_smoother: MovingAverage,
    history: RingBuf<f64>,
    slicer: PeakTracker,
    soft: SoftDecoder,
    parser: FrameParser,
    // Chip/bit assembly.
    chip_acc: f64,
    chip_samples: usize,
    chip_target: usize,
    chip_energies: Vec<f64>,
    bit_samples: Vec<f64>,
    timing_debt: f64,
    // Counters.
    samples_seen: usize,
    locked_at: Option<usize>,
    bits_decoded: usize,
    result: Option<RxResult>,
    timing_corrections: i64,
    // Diagnostics probes (cheap scalar stores; read by the trace layer).
    sync_peak: f64,
    sync_lock: Option<(f64, usize)>,
    chips_seen: usize,
    last_chip_energy: f64,
    last_bit: Option<bool>,
    // Two-stage acquisition bookkeeping.
    /// Expected preamble chip pattern, for the stage-2 re-decode.
    preamble_chip_pattern: Vec<bool>,
    /// Candidate locks declared by the searcher (accepted + rejected).
    sync_attempts: usize,
    /// Rejected candidates, in order (bounded by `sync.max_rearms + 1`).
    rejections: Vec<SyncRejection>,
    /// Latched after a header-CRC rejection until the next verified lock:
    /// keeps the NACK line honest while the receiver re-acquires.
    nack_latch: bool,
    /// `true` once the current lock's header has passed its CRC. From that
    /// point the only exits from `Receiving` are `Done`/`Failed` — there is
    /// no re-arm path — which is what lets a block pipeline feed whole
    /// slices without watching for a mid-slice return to acquisition.
    header_accepted: bool,
    /// Reused by `update_timing` (was a fresh allocation per decoded bit).
    timing_prefix: Vec<f64>,
    /// Reused by `commit_lock` (was a fresh allocation per lock).
    replay_scratch: Vec<f64>,
    /// Reused by `acquire_block` for the slice run through the smoother.
    acq_smoothed: Vec<f64>,
    /// Scratch smoother snapshot for `acquire_block` — `clone_from` of the
    /// live smoother each chunk, allocation-free once capacities match.
    acq_smoother: MovingAverage,
    /// Reused by `verify_candidate` for the per-chip integration means.
    verify_means: Vec<f64>,
    /// Capacity donors for the next [`RxResult`]: a caller that recycles a
    /// delivered result via [`DataReceiver::recycle_result`] makes frame
    /// completion allocation-free in steady state.
    spare_payload: Vec<u8>,
    spare_blocks: Vec<BlockStatus>,
}

impl DataReceiver {
    /// Creates a receiver for one frame under `cfg`.
    pub fn new(cfg: PhyConfig) -> Self {
        let preamble_chips = DataTransmitter::preamble_chips(&cfg);
        let template = chips_to_template(
            &preamble_chips.iter().map(|&c| f64::from(u8::from(c))).collect::<Vec<_>>(),
            cfg.samples_per_chip,
        );
        let smooth_len = (cfg.samples_per_chip / 2).max(1);
        let hist_cap = template.len() + smooth_len + 8;
        // Stage-1 gate: exclude one chip either side of the peak from the
        // sidelobe estimate — the correlation main lobe of a chip-coded
        // template is about one chip wide.
        let searcher = PreambleSearcher::new(template, cfg.sync_threshold)
            .with_shape_gate(cfg.sync.min_sharpness, cfg.samples_per_chip);
        DataReceiver {
            searcher,
            preamble_chip_pattern: preamble_chips,
            sync_attempts: 0,
            rejections: Vec::new(),
            nack_latch: false,
            header_accepted: false,
            timing_prefix: Vec::new(),
            replay_scratch: Vec::new(),
            acq_smoothed: Vec::new(),
            acq_smoother: MovingAverage::new(smooth_len),
            verify_means: Vec::new(),
            spare_payload: Vec::new(),
            spare_blocks: Vec::new(),
            sync_smoother: MovingAverage::new(smooth_len),
            history: RingBuf::new(hist_cap),
            slicer: PeakTracker::new(0.05),
            soft: SoftDecoder::new(cfg.line_code),
            parser: FrameParser::new(cfg.clone()),
            chip_acc: 0.0,
            chip_samples: 0,
            chip_target: cfg.samples_per_chip,
            chip_energies: Vec::with_capacity(cfg.chips_per_bit()),
            bit_samples: Vec::with_capacity(cfg.samples_per_bit() + 2),
            timing_debt: 0.0,
            samples_seen: 0,
            locked_at: None,
            bits_decoded: 0,
            result: None,
            timing_corrections: 0,
            sync_peak: 0.0,
            sync_lock: None,
            chips_seen: 0,
            last_chip_energy: 0.0,
            last_bit: None,
            state: RxState::Acquiring,
            cfg,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RxState {
        self.state
    }

    /// `true` while any completed block has failed its CRC, the receiver
    /// gave up, or a header-CRC rejection is pending re-acquisition — the
    /// instantaneous NACK signal.
    pub fn nack(&self) -> bool {
        self.state == RxState::Failed || self.nack_latch || !self.parser.all_blocks_ok()
    }

    /// Candidate locks the searcher declared this frame (accepted and
    /// rejected).
    pub fn sync_attempts(&self) -> usize {
        self.sync_attempts
    }

    /// Candidate locks rejected by two-stage verification (either stage,
    /// including header-CRC failures).
    pub fn sync_rejections(&self) -> usize {
        self.rejections.len()
    }

    /// The rejected candidates, in order.
    pub fn rejections(&self) -> &[SyncRejection] {
        &self.rejections
    }

    /// Data bits decoded so far.
    pub fn bits_decoded(&self) -> usize {
        self.bits_decoded
    }

    /// Whole-sample timing adjustments applied by the DLL (signed sum).
    pub fn timing_corrections(&self) -> i64 {
        self.timing_corrections
    }

    /// Highest preamble correlation observed so far, whether or not it
    /// cleared the lock threshold — the key diagnostic for marginal or
    /// collided acquisitions.
    pub fn sync_peak_seen(&self) -> f64 {
        self.sync_peak
    }

    /// `(score, lag)` of the successful preamble lock, if any.
    pub fn sync_lock_info(&self) -> Option<(f64, usize)> {
        self.sync_lock
    }

    /// Data chips integrated since lock.
    pub fn chips_seen(&self) -> usize {
        self.chips_seen
    }

    /// Mean envelope of the most recently completed chip.
    pub fn last_chip_energy(&self) -> f64 {
        self.last_chip_energy
    }

    /// Live decision threshold of the adaptive slicer.
    pub fn slicer_threshold(&self) -> f64 {
        self.slicer.threshold()
    }

    /// Most recently decoded data bit.
    pub fn last_bit(&self) -> Option<bool> {
        self.last_bit
    }

    /// Consumes the result once the frame is done.
    pub fn take_result(&mut self) -> Option<RxResult> {
        self.result.take()
    }

    /// Returns a delivered result's buffers to the receiver's spare pool so
    /// the next frame's [`RxResult`] can be built without allocating.
    pub fn recycle_result(&mut self, result: RxResult) {
        let RxResult { mut payload, mut blocks, .. } = result;
        payload.clear();
        blocks.clear();
        self.spare_payload = payload;
        self.spare_blocks = blocks;
    }

    /// Returns the receiver to the state of a fresh
    /// [`DataReceiver::new`] under the same config, retaining every grown
    /// buffer — the allocation-free per-frame entry point for a receiver
    /// reused across frames.
    pub fn reset(&mut self) {
        if let Some(r) = self.result.take() {
            self.recycle_result(r);
        }
        self.state = RxState::Acquiring;
        self.searcher.hard_reset();
        self.sync_smoother.reset();
        self.history.clear();
        self.slicer = PeakTracker::new(0.05);
        self.soft = SoftDecoder::new(self.cfg.line_code);
        self.parser.reset();
        self.chip_acc = 0.0;
        self.chip_samples = 0;
        self.chip_target = self.cfg.samples_per_chip;
        self.chip_energies.clear();
        self.bit_samples.clear();
        self.timing_debt = 0.0;
        self.samples_seen = 0;
        self.locked_at = None;
        self.bits_decoded = 0;
        self.timing_corrections = 0;
        self.sync_peak = 0.0;
        self.sync_lock = None;
        self.chips_seen = 0;
        self.last_chip_energy = 0.0;
        self.last_bit = None;
        self.sync_attempts = 0;
        self.rejections.clear();
        self.nack_latch = false;
        self.header_accepted = false;
    }

    /// Re-targets the receiver at `cfg` for the next frame. Same config →
    /// an allocation-free [`reset`](DataReceiver::reset); a changed config
    /// rebuilds the template and pipeline (allocation is the warmup cost of
    /// a rate switch).
    pub fn load(&mut self, cfg: &PhyConfig) {
        if self.cfg == *cfg {
            self.reset();
        } else {
            *self = DataReceiver::new(cfg.clone());
        }
    }

    /// Per-block verdicts so far.
    pub fn blocks(&self) -> &[BlockStatus] {
        self.parser.blocks()
    }

    /// Payload and verdicts of blocks completed so far, regardless of
    /// whether the frame finished (aborted frames keep their early blocks).
    pub fn partial(&self) -> (&[u8], &[BlockStatus]) {
        (self.parser.partial_payload(), self.parser.blocks())
    }

    /// Feeds one (self-interference-corrected) envelope sample.
    pub fn push_sample(&mut self, env: f64) {
        self.samples_seen += 1;
        match self.state {
            RxState::Acquiring => self.acquire(env),
            RxState::Receiving => self.receive(env),
            RxState::Done | RxState::Failed => {}
        }
    }

    /// Feeds a contiguous slice of envelope samples. Bit-identical to
    /// calling [`Self::push_sample`] once per element: state transitions
    /// are honoured at every sample boundary, but while `Receiving` the
    /// samples up to the next chip boundary are accumulated in one run
    /// (same summation order) instead of dispatching per sample.
    pub fn push_slice(&mut self, xs: &[f64]) {
        let mut i = 0;
        while i < xs.len() {
            match self.state {
                RxState::Done | RxState::Failed => {
                    self.samples_seen += xs.len() - i;
                    return;
                }
                RxState::Acquiring => {
                    let skipped = self.acquire_block(&xs[i..]);
                    if skipped > 0 {
                        i += skipped;
                        continue;
                    }
                    // The screen declined (candidate region ahead, window
                    // not primed, or the remainder is too small to be worth
                    // an FFT): step one template length per-sample so any
                    // declaration is carried through exactly, without
                    // re-screening on every sample.
                    let run = self
                        .searcher
                        .template_len()
                        .max(64)
                        .min(xs.len() - i);
                    let mut done = 0;
                    while done < run && self.state == RxState::Acquiring {
                        self.samples_seen += 1;
                        self.acquire(xs[i + done]);
                        done += 1;
                    }
                    i += done;
                }
                RxState::Receiving => {
                    // `chip_samples < chip_target` always holds here, so the
                    // run is non-empty and never crosses a chip boundary.
                    let run = (self.chip_target - self.chip_samples).min(xs.len() - i);
                    let chunk = &xs[i..i + run];
                    self.samples_seen += run;
                    self.bit_samples.extend_from_slice(chunk);
                    for &v in chunk {
                        self.chip_acc += v;
                    }
                    self.chip_samples += run;
                    i += run;
                    if self.chip_samples >= self.chip_target {
                        self.finish_chip();
                    }
                }
            }
        }
    }

    /// `true` once the current lock's frame header has passed its CRC.
    /// After this point a re-arm (return to `Acquiring`) is impossible —
    /// only `Done`/`Failed` remain — so a caller that batches samples no
    /// longer needs to watch for a mid-batch loss of lock.
    pub fn header_accepted(&self) -> bool {
        self.header_accepted
    }

    /// Block acquisition fast path: screens `xs` with the searcher's FFT
    /// correlator and fast-forwards the receiver over the longest prefix
    /// that provably produces no sync event, leaving every observable —
    /// smoother, raw history, window, `sync_peak` — byte-identical to
    /// having pushed those samples through [`acquire`](Self::acquire) one
    /// at a time. Returns the number of samples consumed (0 when the
    /// screen declines, e.g. near a candidate peak).
    ///
    /// The smoothed stream handed to the screen comes from a scratch
    /// snapshot of the live smoother, so screening beyond the eventual skip
    /// point cannot perturb receiver state; the live smoother and
    /// raw-history ring are then advanced over exactly the skipped prefix.
    fn acquire_block(&mut self, xs: &[f64]) -> usize {
        let m = self.searcher.template_len();
        if xs.len() < 2 * m || !self.searcher.primed() || self.searcher.is_tracking() {
            return 0;
        }
        self.acq_smoother.clone_from(&self.sync_smoother);
        let mut smoothed = std::mem::take(&mut self.acq_smoothed);
        self.acq_smoother.process_block_into(xs, &mut smoothed);
        let (skip, peak) = self.searcher.fast_forward(&smoothed);
        self.acq_smoothed = smoothed;
        if skip == 0 {
            return 0;
        }
        for &env in &xs[..skip] {
            self.history.push_evict(env);
            self.sync_smoother.process(env);
        }
        self.samples_seen += skip;
        self.sync_peak = self.sync_peak.max(peak);
        skip
    }

    fn acquire(&mut self, env: f64) {
        self.history.push_evict(env);
        let smoothed = self.sync_smoother.process(env);
        let event = self.searcher.process(smoothed);
        self.sync_peak = self.sync_peak.max(self.searcher.last_score());
        match event {
            SyncEvent::Searching => {}
            SyncEvent::Rejected { score, sharpness } => {
                // Stage 1 (peak shape) failed inside the searcher; it has
                // already re-armed itself.
                self.sync_attempts += 1;
                self.reject_lock(SyncRejection {
                    score,
                    sharpness,
                    reason: SyncRejectReason::PeakShape,
                });
            }
            SyncEvent::Locked { lag, score, sharpness } => {
                self.sync_attempts += 1;
                match self.verify_candidate(lag) {
                    Some(reason) => {
                        self.searcher.rearm();
                        self.reject_lock(SyncRejection { score, sharpness, reason });
                    }
                    None => self.commit_lock(lag, score),
                }
            }
        }
    }

    /// Number of raw history samples between the true correlation peak and
    /// "now": the smoother's group delay plus the declaration lag.
    fn samples_behind_peak(&self, lag: usize) -> usize {
        lag + (self.sync_smoother.window_len() - 1) / 2
    }

    /// Stage-2 verification of a candidate lock: re-decode the preamble
    /// chips from the raw sample history ending at the peak and compare
    /// them against the known pattern. Returns the failure reason, or
    /// `None` when the candidate is good.
    fn verify_candidate(&mut self, lag: usize) -> Option<SyncRejectReason> {
        // The history must carry modulation — a flat span can never hold
        // the preamble, and committing on it would leave the slicer at its
        // stale default.
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for v in self.history.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi <= lo {
            return Some(SyncRejectReason::FlatHistory);
        }
        if !self.cfg.sync.verify_preamble {
            return None;
        }
        let sps = self.cfg.samples_per_chip;
        let n_chips = self.preamble_chip_pattern.len();
        let behind = self.samples_behind_peak(lag);
        let span = n_chips * sps;
        let n = self.history.len();
        let Some(start) = n.checked_sub(behind + span) else {
            // Not enough raw history to re-decode (lock declared before
            // one full preamble of samples arrived): nothing to verify.
            return None;
        };
        // Integrate each chip and slice at the midpoint of the chip-mean
        // range (chip means are far less noise-sensitive than raw samples).
        self.verify_means.clear();
        for c in 0..n_chips {
            let mut acc = 0.0;
            for i in 0..sps {
                acc += self.history.get(start + c * sps + i).unwrap_or(0.0);
            }
            self.verify_means.push(acc / sps as f64);
        }
        let m_lo = self.verify_means.iter().cloned().fold(f64::MAX, f64::min);
        let m_hi = self.verify_means.iter().cloned().fold(f64::MIN, f64::max);
        let mid = 0.5 * (m_lo + m_hi);
        let mismatches = self
            .verify_means
            .iter()
            .zip(&self.preamble_chip_pattern)
            .filter(|&(&m, &c)| (m > mid) != c)
            .count();
        if mismatches > self.cfg.sync.max_preamble_chip_errors {
            return Some(SyncRejectReason::PreambleMismatch);
        }
        None
    }

    /// Commits a verified candidate: primes the slicer, enters
    /// `Receiving`, and replays the raw samples that arrived behind the
    /// peak (they belong to the payload).
    fn commit_lock(&mut self, lag: usize, score: f64) {
        self.sync_lock = Some((score, lag));
        self.locked_at = Some(self.samples_seen);
        self.nack_latch = false;
        self.state = RxState::Receiving;
        // Prime the slicer from the preamble's min/max levels (the flat
        // case was rejected in verification, so hi > lo here).
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for v in self.history.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi > lo {
            self.slicer.prime(lo, hi);
        }
        // The smoother delays the correlation peak by its group delay,
        // and `lag` further samples passed before the peak was declared;
        // all of those raw samples belong to the payload — replay them.
        let behind = self.samples_behind_peak(lag);
        let n = self.history.len();
        let mut replay = std::mem::take(&mut self.replay_scratch);
        replay.clear();
        replay.extend((n.saturating_sub(behind)..n).filter_map(|i| self.history.get(i)));
        for &v in &replay {
            self.receive(v);
        }
        self.replay_scratch = replay;
    }

    /// Records a rejection and either re-arms the pipeline for another
    /// acquisition attempt or, once the budget is spent, gives up.
    fn reject_lock(&mut self, rejection: SyncRejection) {
        self.rejections.push(rejection);
        if self.rejections.len() > self.cfg.sync.max_rearms {
            self.state = RxState::Failed;
        } else {
            self.rearm();
        }
    }

    /// Returns the receiver to a clean `Acquiring` state (searcher and the
    /// whole post-lock pipeline), keeping only the cumulative diagnostics.
    fn rearm(&mut self) {
        self.state = RxState::Acquiring;
        self.sync_lock = None;
        self.locked_at = None;
        self.header_accepted = false;
        self.parser.reset();
        self.soft = SoftDecoder::new(self.cfg.line_code);
        self.slicer = PeakTracker::new(0.05);
        self.chip_acc = 0.0;
        self.chip_samples = 0;
        self.chip_target = self.cfg.samples_per_chip;
        self.chip_energies.clear();
        self.bit_samples.clear();
        self.timing_debt = 0.0;
    }

    fn receive(&mut self, env: f64) {
        self.bit_samples.push(env);
        self.chip_acc += env;
        self.chip_samples += 1;
        if self.chip_samples < self.chip_target {
            return;
        }
        self.finish_chip();
    }

    /// Completes the chip accumulated in `chip_acc`/`chip_samples`: slices
    /// it, and on a bit boundary decides the bit, runs the DLL and feeds
    /// the frame parser. Shared by the per-sample and slice paths.
    fn finish_chip(&mut self) {
        let energy = self.chip_acc / self.chip_samples as f64;
        self.chip_acc = 0.0;
        self.chip_samples = 0;
        self.chip_target = self.next_chip_target();
        self.slicer.process(energy);
        self.chips_seen += 1;
        self.last_chip_energy = energy;
        self.chip_energies.push(energy);
        if self.chip_energies.len() < self.cfg.chips_per_bit() {
            return;
        }
        // Bit complete.
        let bit = self
            .soft
            .decide(&self.chip_energies, self.slicer.threshold())
            .unwrap_or(false);
        self.chip_energies.clear();
        self.update_timing();
        self.bit_samples.clear();
        self.bits_decoded += 1;
        self.last_bit = Some(bit);
        if let Some(event) = self.parser.push_bit(bit) {
            match event {
                ParseEvent::HeaderInvalid => {
                    // Stage 2, final check: a committed lock whose header
                    // fails CRC was a false lock (collision, noise burst).
                    // Latch NACK and go hunt for the real preamble — the
                    // remaining samples may still carry it.
                    let (score, _) = self.sync_lock.unwrap_or((0.0, 0));
                    let sharpness = self.searcher.last_sharpness();
                    self.nack_latch = true;
                    self.searcher.rearm();
                    self.reject_lock(SyncRejection {
                        score,
                        sharpness,
                        reason: SyncRejectReason::HeaderCrc,
                    });
                }
                ParseEvent::Done => {
                    self.state = RxState::Done;
                    let mut payload = std::mem::take(&mut self.spare_payload);
                    payload.clear();
                    payload.extend_from_slice(self.parser.partial_payload());
                    let mut blocks = std::mem::take(&mut self.spare_blocks);
                    blocks.clear();
                    blocks.extend_from_slice(self.parser.blocks());
                    self.result = Some(RxResult {
                        payload,
                        blocks,
                        locked_at: self.locked_at.unwrap_or(0),
                    });
                }
                ParseEvent::Header { .. } => self.header_accepted = true,
                ParseEvent::Block(_) => {}
            }
        }
    }

    /// Applies accumulated timing debt to the next chip length.
    fn next_chip_target(&mut self) -> usize {
        let sps = self.cfg.samples_per_chip;
        if self.timing_debt >= 1.0 {
            self.timing_debt -= 1.0;
            self.timing_corrections += 1;
            sps + 1
        } else if self.timing_debt <= -1.0 {
            self.timing_debt += 1.0;
            self.timing_corrections -= 1;
            sps.saturating_sub(1).max(1)
        } else {
            sps
        }
    }

    /// Mid-bit-transition DLL (Manchester only: the transition between the
    /// two chips of a bit always exists).
    fn update_timing(&mut self) {
        if self.cfg.line_code != LineCode::Manchester {
            return;
        }
        let n = self.bit_samples.len();
        let sps = self.cfg.samples_per_chip;
        if n < 2 * sps - 2 {
            return;
        }
        // Prefix sums for O(window) split search, in a reused buffer.
        self.timing_prefix.clear();
        self.timing_prefix.reserve(n + 1);
        self.timing_prefix.push(0.0);
        let mut acc = 0.0;
        for &v in &self.bit_samples {
            acc += v;
            self.timing_prefix.push(acc);
        }
        let prefix = &self.timing_prefix;
        let total = *prefix.last().unwrap();
        let w = ((sps as f64) * DLL_WINDOW_FRAC) as usize;
        let centre = n / 2;
        let lo = centre.saturating_sub(w).max(1);
        let hi = (centre + w).min(n - 1);
        let mut best_t = centre;
        let mut best_metric = -1.0;
        for (t, &p) in prefix.iter().enumerate().take(hi + 1).skip(lo) {
            let mean_a = p / t as f64;
            let mean_b = (total - p) / (n - t) as f64;
            let metric = (mean_a - mean_b).abs();
            if metric > best_metric {
                best_metric = metric;
                best_t = t;
            }
        }
        // Gate: only trust transitions with a swing comparable to the
        // slicer's tracked modulation depth.
        if best_metric < 0.25 * self.slicer.swing() {
            return;
        }
        let err = best_t as f64 - centre as f64;
        self.timing_debt += DLL_GAIN * err;
        // Clamp the debt so one bad bit cannot slew the clock far.
        self.timing_debt = self.timing_debt.clamp(-3.0, 3.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhyConfig {
        PhyConfig::default_fd()
    }

    /// Renders a frame as an ideal envelope waveform: chip=1 → `hi`,
    /// chip=0 → `lo`, preceded by `idle` samples at `lo`.
    fn render(cfg: &PhyConfig, payload: &[u8], idle: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut tx = DataTransmitter::new(cfg, payload).unwrap();
        let mut out = vec![lo; idle];
        while let Some(state) = tx.next_state() {
            out.push(if state { hi } else { lo });
        }
        // Trailing idle so the parser sees the last bit through.
        out.extend(vec![lo; cfg.samples_per_bit() * 2]);
        out
    }

    #[test]
    fn decodes_clean_frame() {
        let cfg = cfg();
        let payload: Vec<u8> = (0..48u8).collect();
        let wave = render(&cfg, &payload, 100, 0.4, 1.0);
        let mut rx = DataReceiver::new(cfg);
        for &v in &wave {
            rx.push_sample(v);
        }
        assert_eq!(rx.state(), RxState::Done);
        let r = rx.take_result().unwrap();
        assert_eq!(r.payload, payload);
        assert!(r.blocks.iter().all(|b| b.ok));
        assert!(!rx.nack());
    }

    #[test]
    fn decodes_with_arbitrary_idle_offset() {
        let cfg = cfg();
        let payload = vec![0xC3u8; 10];
        for idle in [0, 1, 7, 33, 250] {
            let wave = render(&cfg, &payload, idle, 0.2, 0.9);
            let mut rx = DataReceiver::new(cfg.clone());
            for &v in &wave {
                rx.push_sample(v);
            }
            assert_eq!(rx.state(), RxState::Done, "idle {idle}");
            assert_eq!(rx.take_result().unwrap().payload, payload, "idle {idle}");
        }
    }

    #[test]
    fn scale_invariance() {
        // The receiver must not care about absolute envelope level.
        let cfg = cfg();
        let payload = vec![0x5Au8; 20];
        for (lo, hi) in [(1e-9, 3e-9), (0.5, 0.6), (100.0, 180.0)] {
            let wave = render(&cfg, &payload, 60, lo, hi);
            let mut rx = DataReceiver::new(cfg.clone());
            for &v in &wave {
                rx.push_sample(v);
            }
            assert_eq!(rx.state(), RxState::Done, "levels ({lo},{hi})");
            assert_eq!(rx.take_result().unwrap().payload, payload);
        }
    }

    #[test]
    fn nack_rises_on_corrupted_block() {
        let cfg = cfg();
        let payload: Vec<u8> = (0..64u8).collect(); // 4 blocks
        let mut wave = render(&cfg, &payload, 50, 0.3, 1.0);
        // Corrupt a run of samples inside the second block's airtime.
        let preamble_samples = cfg.preamble.len() * cfg.samples_per_bit();
        let hdr_samples = crate::frame::HEADER_BITS * cfg.samples_per_bit();
        let block_samples = (16 + 1) * 8 * cfg.samples_per_bit();
        let start = 50 + preamble_samples + hdr_samples + block_samples + block_samples / 2;
        for v in wave.iter_mut().skip(start).take(cfg.samples_per_bit() * 3) {
            *v = 0.65; // ambiguous level wipes out several bits
        }
        let mut rx = DataReceiver::new(cfg);
        let mut nack_seen_during = false;
        for &v in &wave {
            rx.push_sample(v);
            if rx.nack() && rx.state() == RxState::Receiving {
                nack_seen_during = true;
            }
        }
        assert!(nack_seen_during, "NACK must rise mid-frame");
        assert_eq!(rx.state(), RxState::Done);
        let r = rx.take_result().unwrap();
        assert!(!r.blocks[1].ok);
        assert!(r.blocks[0].ok);
    }

    #[test]
    fn survives_clock_skew_via_dll() {
        // Stretch the waveform by +2000 ppm (receiver clock slow) using a
        // fractional resampler; the DLL must hold lock over a long frame.
        use fdb_dsp::resample::Resampler;
        let cfg = cfg();
        let payload: Vec<u8> = (0..128).map(|i| (i * 7) as u8).collect();
        let wave = render(&cfg, &payload, 80, 0.4, 1.0);
        let mut rs = Resampler::from_ppm(2000.0);
        let stretched = rs.process_block(&wave);
        let mut rx = DataReceiver::new(cfg);
        for &v in &stretched {
            rx.push_sample(v);
        }
        assert_eq!(rx.state(), RxState::Done, "DLL failed to hold lock");
        let r = rx.take_result().unwrap();
        assert_eq!(r.payload, payload);
        assert!(rx.timing_corrections() != 0, "DLL never engaged");
    }

    #[test]
    fn no_lock_on_flat_input() {
        let cfg = cfg();
        let mut rx = DataReceiver::new(cfg);
        for _ in 0..10_000 {
            rx.push_sample(0.7);
        }
        assert_eq!(rx.state(), RxState::Acquiring);
        assert!(rx.take_result().is_none());
    }

    #[test]
    fn failed_header_reports_failed_state_when_rearm_disabled() {
        // The legacy single-stage policy: first bad header is terminal.
        let mut cfg = cfg();
        cfg.sync = crate::config::SyncPolicy::trusting();
        let payload = vec![1u8; 8];
        let mut wave = render(&cfg, &payload, 40, 0.3, 1.0);
        // Obliterate the header region (after the preamble).
        let pre = 40 + cfg.preamble.len() * cfg.samples_per_bit();
        for v in wave
            .iter_mut()
            .skip(pre)
            .take(crate::frame::HEADER_BITS * cfg.samples_per_bit())
        {
            *v = 0.65;
        }
        let mut rx = DataReceiver::new(cfg);
        for &v in &wave {
            rx.push_sample(v);
        }
        assert_eq!(rx.state(), RxState::Failed);
        assert!(rx.nack());
    }

    #[test]
    fn bad_header_rearms_and_decodes_following_frame() {
        // A corrupted-header frame is a false lock; with re-arm enabled the
        // receiver must recover and decode the clean frame right behind it.
        let cfg = cfg();
        let junk = vec![0xAAu8; 8];
        let mut wave = render(&cfg, &junk, 40, 0.3, 1.0);
        let pre = 40 + cfg.preamble.len() * cfg.samples_per_bit();
        for v in wave
            .iter_mut()
            .skip(pre)
            .take(crate::frame::HEADER_BITS * cfg.samples_per_bit())
        {
            *v = 0.65;
        }
        let payload: Vec<u8> = (0..32u8).collect();
        let clean = render(&cfg, &payload, 60, 0.3, 1.0);
        wave.extend_from_slice(&clean);
        let mut rx = DataReceiver::new(cfg);
        let mut nack_during = false;
        for &v in &wave {
            rx.push_sample(v);
            if rx.state() == RxState::Acquiring && rx.nack() {
                nack_during = true;
            }
        }
        assert_eq!(rx.state(), RxState::Done, "re-arm failed to recover");
        assert!(rx.sync_rejections() >= 1, "no rejection was recorded");
        assert!(nack_during, "NACK latch must hold while re-acquiring");
        let r = rx.take_result().unwrap();
        assert_eq!(r.payload, payload);
        assert!(!rx.nack(), "NACK latch must clear on the verified lock");
    }

    #[test]
    fn noise_burst_then_clean_frame_decodes() {
        // Deterministic wideband burst (LCG), then silence, then a clean
        // frame: whatever the burst provokes — candidate locks, stage-1/2
        // rejections, or nothing — the frame behind it must decode.
        let cfg = cfg();
        let mut wave = Vec::new();
        let mut lcg: u64 = 0x2545F491_4F6CDD1D;
        for _ in 0..2_000 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((lcg >> 33) as f64) / ((1u64 << 31) as f64);
            wave.push(0.2 + 0.8 * u);
        }
        wave.extend(vec![0.3; 200]);
        let payload: Vec<u8> = (0..24u8).map(|i| i.wrapping_mul(13)).collect();
        wave.extend_from_slice(&render(&cfg, &payload, 0, 0.3, 1.0));
        let mut rx = DataReceiver::new(cfg);
        for &v in &wave {
            rx.push_sample(v);
        }
        assert_eq!(rx.state(), RxState::Done, "burst forfeited the frame");
        assert_eq!(rx.take_result().unwrap().payload, payload);
    }

    #[test]
    fn flat_history_candidate_is_rejected() {
        // A candidate whose primed history carries no modulation must be
        // rejected, never committed with a stale slicer.
        let cfg = cfg();
        let mut rx = DataReceiver::new(cfg);
        for _ in 0..500 {
            rx.history.push_evict(0.7);
        }
        assert_eq!(rx.verify_candidate(0), Some(SyncRejectReason::FlatHistory));
        // And through the public path: reject_lock must re-arm, not fail.
        rx.sync_attempts += 1;
        rx.reject_lock(SyncRejection {
            score: 0.9,
            sharpness: 1.0,
            reason: SyncRejectReason::FlatHistory,
        });
        assert_eq!(rx.state(), RxState::Acquiring);
        assert_eq!(rx.sync_rejections(), 1);
    }

    /// Drives two fresh receivers over `wave` — one per sample, one in
    /// chunks of `chunk` — and asserts every observable (and the slicer
    /// threshold, to the bit) agrees at the end.
    fn assert_slice_matches_scalar(cfg: &PhyConfig, wave: &[f64], chunk: usize) {
        let mut a = DataReceiver::new(cfg.clone());
        let mut b = DataReceiver::new(cfg.clone());
        for &v in wave {
            a.push_sample(v);
        }
        for c in wave.chunks(chunk) {
            b.push_slice(c);
        }
        assert_eq!(a.state(), b.state(), "chunk {chunk}");
        assert_eq!(a.samples_seen, b.samples_seen, "chunk {chunk}");
        assert_eq!(a.bits_decoded(), b.bits_decoded(), "chunk {chunk}");
        assert_eq!(a.chips_seen(), b.chips_seen(), "chunk {chunk}");
        assert_eq!(a.timing_corrections(), b.timing_corrections(), "chunk {chunk}");
        assert_eq!(a.sync_attempts(), b.sync_attempts(), "chunk {chunk}");
        assert_eq!(a.sync_rejections(), b.sync_rejections(), "chunk {chunk}");
        assert_eq!(a.nack(), b.nack(), "chunk {chunk}");
        assert_eq!(a.header_accepted(), b.header_accepted(), "chunk {chunk}");
        assert_eq!(a.sync_lock_info(), b.sync_lock_info(), "chunk {chunk}");
        assert_eq!(
            a.sync_peak_seen().to_bits(),
            b.sync_peak_seen().to_bits(),
            "chunk {chunk}"
        );
        assert_eq!(
            a.last_chip_energy().to_bits(),
            b.last_chip_energy().to_bits(),
            "chunk {chunk}"
        );
        assert_eq!(
            a.slicer_threshold().to_bits(),
            b.slicer_threshold().to_bits(),
            "chunk {chunk}"
        );
        assert_eq!(a.take_result(), b.take_result(), "chunk {chunk}");
    }

    #[test]
    fn push_slice_is_bit_identical_to_push_sample() {
        let cfg = cfg();
        let payload: Vec<u8> = (0..48u8).map(|i| i.wrapping_mul(29)).collect();
        let wave = render(&cfg, &payload, 137, 0.35, 1.0);
        for chunk in [1, 2, 3, 7, 64, 320, 1000, wave.len()] {
            assert_slice_matches_scalar(&cfg, &wave, chunk);
        }
    }

    #[test]
    fn push_slice_matches_through_rearm_and_skew() {
        // Exercise the hard paths inside a slice: a corrupted header that
        // forces a mid-slice re-arm, then a skewed clean frame where the
        // DLL stretches chip windows across slice boundaries.
        use fdb_dsp::resample::Resampler;
        let cfg = cfg();
        let junk = vec![0xAAu8; 8];
        let mut wave = render(&cfg, &junk, 40, 0.3, 1.0);
        let pre = 40 + cfg.preamble.len() * cfg.samples_per_bit();
        for v in wave
            .iter_mut()
            .skip(pre)
            .take(crate::frame::HEADER_BITS * cfg.samples_per_bit())
        {
            *v = 0.65;
        }
        let payload: Vec<u8> = (0..64u8).collect();
        let clean = render(&cfg, &payload, 60, 0.3, 1.0);
        let mut rs = Resampler::from_ppm(1500.0);
        wave.extend_from_slice(&rs.process_block(&clean));
        for chunk in [1, 5, 19, 160, 4096] {
            assert_slice_matches_scalar(&cfg, &wave, chunk);
        }
    }

    #[test]
    fn push_slice_matches_through_long_noise_hunt() {
        // The workload the FFT acquisition screen exists for: a long
        // pseudo-noise listening region before the frame. Every slice size
        // — including ones that keep the screen gated — must stay
        // byte-identical to the per-sample path through the hunt, the
        // lock, and the decode.
        let cfg = cfg();
        let mut wave = Vec::new();
        let mut lcg: u64 = 0x9E3779B9_7F4A7C15;
        for _ in 0..20_000 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((lcg >> 33) as f64) / ((1u64 << 31) as f64);
            wave.push(0.55 + 0.18 * (u - 0.5));
        }
        let payload: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        wave.extend_from_slice(&render(&cfg, &payload, 50, 0.35, 1.0));
        for chunk in [97, 640, 1000, 4096, wave.len()] {
            assert_slice_matches_scalar(&cfg, &wave, chunk);
        }
    }

    #[test]
    fn header_accepted_tracks_lock_lifecycle() {
        let cfg = cfg();
        let junk = vec![0xAAu8; 8];
        let mut wave = render(&cfg, &junk, 40, 0.3, 1.0);
        let pre = 40 + cfg.preamble.len() * cfg.samples_per_bit();
        for v in wave
            .iter_mut()
            .skip(pre)
            .take(crate::frame::HEADER_BITS * cfg.samples_per_bit())
        {
            *v = 0.65;
        }
        let payload: Vec<u8> = (0..16u8).collect();
        wave.extend_from_slice(&render(&cfg, &payload, 60, 0.3, 1.0));
        let mut rx = DataReceiver::new(cfg);
        let mut accepted_while_acquiring = false;
        for &v in &wave {
            rx.push_sample(v);
            if rx.state() == RxState::Acquiring && rx.header_accepted() {
                accepted_while_acquiring = true;
            }
        }
        assert!(!accepted_while_acquiring, "flag must clear on re-arm");
        assert_eq!(rx.state(), RxState::Done);
        assert!(rx.header_accepted(), "flag must latch once the header passes");
    }

    /// Runs `wave` through both receivers and asserts every end-of-frame
    /// observable agrees, to the bit where floats are involved.
    fn assert_same_decode(a: &mut DataReceiver, b: &mut DataReceiver, wave: &[f64], tag: &str) {
        for &v in wave {
            a.push_sample(v);
            b.push_sample(v);
        }
        assert_eq!(a.state(), b.state(), "{tag}");
        assert_eq!(a.samples_seen, b.samples_seen, "{tag}");
        assert_eq!(a.bits_decoded(), b.bits_decoded(), "{tag}");
        assert_eq!(a.chips_seen(), b.chips_seen(), "{tag}");
        assert_eq!(a.timing_corrections(), b.timing_corrections(), "{tag}");
        assert_eq!(a.sync_attempts(), b.sync_attempts(), "{tag}");
        assert_eq!(a.rejections(), b.rejections(), "{tag}");
        assert_eq!(a.nack(), b.nack(), "{tag}");
        assert_eq!(a.header_accepted(), b.header_accepted(), "{tag}");
        assert_eq!(a.sync_lock_info(), b.sync_lock_info(), "{tag}");
        assert_eq!(a.sync_peak_seen().to_bits(), b.sync_peak_seen().to_bits(), "{tag}");
        assert_eq!(
            a.slicer_threshold().to_bits(),
            b.slicer_threshold().to_bits(),
            "{tag}"
        );
        assert_eq!(a.take_result(), b.take_result(), "{tag}");
    }

    #[test]
    fn reset_matches_fresh_receiver() {
        // Dirty a receiver with a full decode (and a corrupted-header frame
        // so the re-arm machinery has state too), then reset: it must be
        // observably identical to a brand-new receiver on the next frame.
        let cfg = cfg();
        let junk = vec![0xAAu8; 8];
        let mut first = render(&cfg, &junk, 40, 0.3, 1.0);
        let pre = 40 + cfg.preamble.len() * cfg.samples_per_bit();
        for v in first
            .iter_mut()
            .skip(pre)
            .take(crate::frame::HEADER_BITS * cfg.samples_per_bit())
        {
            *v = 0.65;
        }
        first.extend_from_slice(&render(&cfg, &[0x3Cu8; 12], 30, 0.3, 1.0));
        let mut reused = DataReceiver::new(cfg.clone());
        for &v in &first {
            reused.push_sample(v);
        }
        assert_eq!(reused.state(), RxState::Done);
        let r = reused.take_result().unwrap();
        reused.recycle_result(r);
        reused.reset();
        let mut fresh = DataReceiver::new(cfg.clone());
        let payload: Vec<u8> = (0..40u8).collect();
        let wave = render(&cfg, &payload, 90, 0.35, 1.0);
        assert_same_decode(&mut reused, &mut fresh, &wave, "after reset");
    }

    #[test]
    fn load_retargets_config() {
        let mut cfg2 = cfg();
        cfg2.samples_per_chip = 14;
        cfg2.block_len_bytes = 8;
        let payload = vec![0x9Du8; 24];
        let mut rx = DataReceiver::new(cfg());
        for &v in &render(&cfg(), &payload, 50, 0.3, 1.0) {
            rx.push_sample(v);
        }
        assert_eq!(rx.state(), RxState::Done);
        // Same config: load == reset; changed config: full re-target.
        rx.load(&cfg());
        let mut fresh = DataReceiver::new(cfg());
        assert_same_decode(&mut rx, &mut fresh, &render(&cfg(), &payload, 20, 0.3, 1.0), "same cfg");
        rx.load(&cfg2);
        let mut fresh2 = DataReceiver::new(cfg2.clone());
        assert_same_decode(&mut rx, &mut fresh2, &render(&cfg2, &payload, 33, 0.3, 1.0), "new cfg");
    }

    #[test]
    fn bits_decoded_counts() {
        let cfg = cfg();
        let payload = vec![0u8; 16];
        let wave = render(&cfg, &payload, 30, 0.3, 1.0);
        let mut rx = DataReceiver::new(cfg.clone());
        for &v in &wave {
            rx.push_sample(v);
        }
        let expected = crate::frame::frame_bits_len(&cfg, 16);
        assert_eq!(rx.bits_decoded(), expected);
    }
}
