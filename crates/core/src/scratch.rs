//! Per-link scratch arena: every working buffer the frame hot path needs,
//! owned once per [`FdLink`](crate::link::FdLink) and reused frame after
//! frame.
//!
//! The frame engines used to build a fresh [`DataTransmitter`],
//! [`DataReceiver`], feedback codec pair and staging `Vec`s per frame —
//! dozens of heap allocations per frame, millions over a sweep. The arena
//! inverts that: each component exposes a capacity-retaining reload
//! (`DataTransmitter::load`, `DataReceiver::load`,
//! `FeedbackEncoder::rearm`, `FeedbackDecoder::rearm`) and the engines
//! borrow the arena's components instead of constructing their own. After
//! a one-frame warmup (which grows every buffer to the frame's working-set
//! size), steady-state frames allocate nothing — the property pinned by
//! `tests/alloc_steady_state.rs` with a counting global allocator.
//!
//! The arena lives on the link rather than the engine call frame so it
//! survives across frames, across engine switches (reference ↔ block), and
//! across [`FdLink::reinit`](crate::link::FdLink::reinit) rebuilds — the
//! MAC's per-slot link reconstruction reuses the same arena.

use crate::error::PhyError;
use crate::feedback::{FeedbackDecoder, FeedbackEncoder};
use crate::link::LinkConfig;
use crate::rx::DataReceiver;
use crate::tx::DataTransmitter;

/// Reusable per-link working set for the frame engines.
///
/// Constructed once per link (or per worker) and threaded by `&mut`
/// borrow through every frame run; all components and staging buffers
/// retain their capacity between frames.
pub struct LinkScratch {
    /// Forward transmitter, reloaded per frame via `DataTransmitter::load`.
    pub(crate) tx: DataTransmitter,
    /// Data receiver, reloaded per frame via `DataReceiver::load`.
    pub(crate) rx: DataReceiver,
    /// B's feedback encoder, re-armed per frame (and per header re-arm).
    pub(crate) fb_enc: FeedbackEncoder,
    /// A's feedback decoder, re-armed per frame.
    pub(crate) fb_dec: FeedbackDecoder,
    /// B-side envelope samples staged by the block pipeline's physics pass.
    pub(crate) env_b: Vec<f64>,
    /// B's antenna state per staged sample (block pipeline).
    pub(crate) b_state: Vec<bool>,
    /// Resampler output staging (both engines).
    pub(crate) resampled: Vec<f64>,
}

impl LinkScratch {
    /// Builds an arena sized for `cfg`'s PHY. Buffers start empty — the
    /// first frame run grows them to the working-set size (the one
    /// "warmup" frame the zero-allocation contract excludes).
    pub fn new(cfg: &LinkConfig) -> Result<Self, PhyError> {
        let phy = &cfg.phy;
        let half_fb = (phy.feedback_ratio / 2) * phy.samples_per_bit();
        Ok(LinkScratch {
            tx: DataTransmitter::new(phy, &[])?,
            rx: DataReceiver::new(phy.clone()),
            fb_enc: FeedbackEncoder::new(half_fb),
            fb_dec: FeedbackDecoder::new(half_fb),
            env_b: Vec::new(),
            b_state: Vec::new(),
            resampled: Vec::new(),
        })
    }
}
