//! Frame-level diagnostics: structured per-stage event capture through
//! pluggable **trace sinks**.
//!
//! When the `trace` cargo feature is enabled, [`crate::link::FdLink::run_frame`]
//! emits a [`TraceEvent`] stream through a [`TraceSink`]. The stream covers
//! every stage of the PHY pipeline:
//!
//! * **tx** — chip emission ([`TraceEvent::TxChip`]);
//! * **channel** — instantaneous source power and both detector envelopes
//!   ([`TraceEvent::Channel`]);
//! * **sic** — self-interference correction input/output, including
//!   blanked samples ([`TraceEvent::Sic`]);
//! * **rx** — acquisition lock with correlation score, rejected lock
//!   candidates and re-arms from two-stage verification, per-chip energies
//!   against the live slicer threshold, decoded bits, and per-block CRC
//!   verdicts ([`TraceEvent::RxLock`], [`TraceEvent::RxSyncReject`],
//!   [`TraceEvent::RxRearm`], [`TraceEvent::RxChip`],
//!   [`TraceEvent::RxBit`], [`TraceEvent::RxBlock`]);
//! * **feedback** — integrate-and-dump half-bit integrals, per-pilot
//!   margins, the pilot verification verdict, and decoded status bits
//!   ([`TraceEvent::FbHalf`], [`TraceEvent::FbPilot`],
//!   [`TraceEvent::FbPilotsChecked`], [`TraceEvent::FbBit`]);
//! * **mac reflex** — the abort decision ([`TraceEvent::Abort`]);
//! * **fault injection** — scripted impairment windows opening and
//!   closing ([`TraceEvent::Fault`], emitted only when a fault plan is
//!   attached to the run).
//!
//! Sample-rate stages (tx/channel/sic/rx-chip) are decimated to chip
//! boundaries so a whole frame fits in the default ring capacity; decision
//! events are recorded unconditionally.
//!
//! ## Choosing a sink backend
//!
//! * [`RingSink`] — the default inside `run_frame`: a bounded in-memory
//!   ring ([`FrameTrace`]) carried on `FrameOutcome::trace`. When it
//!   overflows, the *oldest* events are evicted and counted, so the tail
//!   of a frame — where failures usually manifest — is always retained.
//!   Pick it to inspect one frame interactively (tests, the probe CLI's
//!   single-frame mode).
//! * [`JsonlFileSink`] — streams events to a JSON-lines file, staging at
//!   most one frame in memory and flushing on every frame boundary, with
//!   byte/event counters and optional size-based rotation. Pick it for
//!   long calibration sweeps where an in-memory ring would either grow
//!   without bound or silently evict everything but the last frame.
//! * [`CollectSink`] — unbounded in-memory `Vec`. Pick it only in tests
//!   that assert on the full event stream of a short run.
//! * [`NullSink`] — counts and discards. Pick it when only the
//!   `events_recorded` tally matters.
//! * [`ChannelSink`] — stages frames exactly like [`JsonlFileSink`] but
//!   sends each completed frame's JSONL block through an in-process
//!   channel as a [`TraceChunk`] instead of writing a file. Pick it to
//!   stream a live trace across threads — the job service forwards the
//!   chunks over its client socket, and because both sinks share one
//!   staging engine the streamed bytes equal the file sink's output
//!   byte-for-byte.
//!
//! Sink selection is serialisable through [`TraceSinkSpec`] (carried on
//! `fdb_sim::MeasureSpec`), so a scenario JSON can request streaming
//! capture without code changes.
//!
//! With the feature disabled this module still compiles (it has no
//! feature-gated items itself) but nothing constructs a sink, and
//! `run_frame` contains no tracing code at all — zero hot-path cost.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Default ring capacity in events: comfortably holds a chip-decimated
/// 256-byte frame with full feedback activity.
pub const DEFAULT_TRACE_CAPACITY: usize = 32_768;

/// One structured event from a single pipeline stage.
///
/// `sample` is always the link-clock sample index at which the event was
/// recorded (device-clock resampling happens downstream of the fields
/// observed here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Transmitter A emitted a chip: its antenna state for this chip.
    TxChip {
        /// Link-clock sample index.
        sample: usize,
        /// Chip index since frame start.
        chip: usize,
        /// `true` = reflect.
        state: bool,
    },
    /// Channel/ambient snapshot at the detectors.
    Channel {
        /// Link-clock sample index.
        sample: usize,
        /// Instantaneous ambient power at the source (watts).
        source_power_w: f64,
        /// Detected envelope at device A (post detector RC).
        env_a: f64,
        /// Detected envelope at device B.
        env_b: f64,
    },
    /// One self-interference correction.
    Sic {
        /// Link-clock sample index.
        sample: usize,
        /// `'A'` (feedback path) or `'B'` (data path).
        device: char,
        /// Device's own antenna state at this sample.
        own_state: bool,
        /// Detected envelope before correction.
        input: f64,
        /// Corrected envelope, or `None` when transition-blanked.
        output: Option<f64>,
    },
    /// B's receiver achieved preamble lock.
    RxLock {
        /// Link-clock sample index.
        sample: usize,
        /// Peak normalised correlation at lock.
        score: f64,
        /// Highest correlation observed during the whole hunt (equals
        /// `score` at lock; keeps climbing history for missed locks).
        peak_seen: f64,
    },
    /// B's receiver rejected a candidate lock (two-stage verification).
    RxSyncReject {
        /// Link-clock sample index.
        sample: usize,
        /// Peak correlation of the rejected candidate.
        score: f64,
        /// Peak-to-sidelobe ratio of the candidate trajectory.
        sharpness: f64,
        /// Which stage failed: `"peak_shape"`, `"flat_history"`,
        /// `"preamble_mismatch"` or `"header_crc"`. Borrowed from the
        /// receiver's static labels on the hot path (no per-event
        /// allocation); owned only when deserialized back from JSONL.
        reason: Cow<'static, str>,
    },
    /// B's receiver re-armed and returned to acquisition after a
    /// rejected lock.
    RxRearm {
        /// Link-clock sample index.
        sample: usize,
        /// Candidate locks attempted so far this frame.
        attempts: usize,
    },
    /// B integrated one data chip.
    RxChip {
        /// Link-clock sample index.
        sample: usize,
        /// Mean envelope over the chip.
        energy: f64,
        /// Live slicer threshold the chip was compared against.
        threshold: f64,
    },
    /// B decoded one data bit.
    RxBit {
        /// Link-clock sample index.
        sample: usize,
        /// Bit index since lock.
        index: usize,
        /// Decoded value.
        bit: bool,
    },
    /// B completed one payload block.
    RxBlock {
        /// Link-clock sample index.
        sample: usize,
        /// Block index within the frame.
        index: usize,
        /// CRC verdict.
        ok: bool,
    },
    /// A's feedback integrator dumped one half-bit integral.
    FbHalf {
        /// Link-clock sample index.
        sample: usize,
        /// Mean corrected envelope over the half-bit.
        integral: f64,
    },
    /// A consumed one feedback pilot bit.
    FbPilot {
        /// Link-clock sample index.
        sample: usize,
        /// Pilot index (0-based).
        index: usize,
        /// `|E_first − E_second|` for this pilot.
        margin: f64,
    },
    /// A finished checking the pilot sequence.
    FbPilotsChecked {
        /// Link-clock sample index.
        sample: usize,
        /// Whether the feedback channel was verified alive.
        verified: bool,
    },
    /// A decoded one post-pilot feedback bit.
    FbBit {
        /// Link-clock sample index.
        sample: usize,
        /// Decoded status bit.
        bit: bool,
        /// Decision margin.
        margin: f64,
    },
    /// A aborted the frame on verified NACK.
    Abort {
        /// Link-clock sample index.
        sample: usize,
    },
    /// A scripted fault window opened (`active = true`) or closed
    /// (`active = false`) — see `fdb_channel::impairment`.
    Fault {
        /// Link-clock sample index.
        sample: usize,
        /// Fault class label (`"noise_burst"`, `"dropout"`,
        /// `"clock_drift"`, `"sic_gain"`, `"ambient_fade"`,
        /// `"interferer"`). Borrowed from the impairment engine's static
        /// labels on the hot path; owned only after deserialization.
        kind: Cow<'static, str>,
        /// `true` at the rising edge of the window, `false` at the
        /// falling edge.
        active: bool,
    },
}

impl TraceEvent {
    /// Coarse stage label, for filtering: `"tx"`, `"channel"`, `"sic"`,
    /// `"rx"`, `"feedback"`, `"mac"` or `"fault"`.
    pub fn stage(&self) -> &'static str {
        match self {
            TraceEvent::TxChip { .. } => "tx",
            TraceEvent::Channel { .. } => "channel",
            TraceEvent::Sic { .. } => "sic",
            TraceEvent::RxLock { .. }
            | TraceEvent::RxSyncReject { .. }
            | TraceEvent::RxRearm { .. }
            | TraceEvent::RxChip { .. }
            | TraceEvent::RxBit { .. }
            | TraceEvent::RxBlock { .. } => "rx",
            TraceEvent::FbHalf { .. }
            | TraceEvent::FbPilot { .. }
            | TraceEvent::FbPilotsChecked { .. }
            | TraceEvent::FbBit { .. } => "feedback",
            TraceEvent::Abort { .. } => "mac",
            TraceEvent::Fault { .. } => "fault",
        }
    }
}

/// Bounded ring buffer of [`TraceEvent`]s for one frame.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: usize,
}

impl Default for FrameTrace {
    /// An empty trace with the default capacity *bound* but no storage —
    /// ring memory grows on first record. This keeps `Default` cheap
    /// enough to serve as `mem::take`'s placeholder on the frame hot
    /// path, where the real ring is recycled through
    /// [`FrameTrace::reset`] every frame.
    fn default() -> Self {
        FrameTrace {
            events: VecDeque::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            dropped: 0,
        }
    }
}

impl FrameTrace {
    /// Creates an empty trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FrameTrace {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Clears the trace for reuse with a (possibly new) capacity bound,
    /// retaining the event storage already grown — the frame hot path
    /// recycles each outcome's ring through here instead of allocating a
    /// fresh one per frame.
    pub fn reset(&mut self, capacity: usize) {
        self.events.clear();
        self.capacity = capacity.max(1);
        self.dropped = 0;
    }

    /// Appends an event, evicting the oldest once full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Pre-sizes the ring for up to `events` retained events (clamped to
    /// the capacity bound) so steady-state recording never grows it.
    pub fn reserve(&mut self, events: usize) {
        let want = events.min(self.capacity);
        self.events.reserve(want.saturating_sub(self.events.len()));
    }

    /// Events belonging to one coarse stage (see [`TraceEvent::stage`]).
    pub fn stage_events<'a>(&'a self, stage: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events().filter(move |e| e.stage() == stage)
    }
}

// ---------------------------------------------------------------------------
// The sink abstraction
// ---------------------------------------------------------------------------

/// Consumer of the per-frame [`TraceEvent`] stream.
///
/// `FdLink::run_frame_into` calls only [`record`](TraceSink::record); the
/// *driver* that knows frame indices (the `fdb_sim` runner, the probe CLI)
/// brackets each frame with [`begin_frame`](TraceSink::begin_frame) /
/// [`end_frame`](TraceSink::end_frame) so streaming backends can label
/// frames and flush on frame boundaries. A sink that is never bracketed
/// still works: [`JsonlFileSink`] opens an auto-numbered frame on the
/// first unbracketed `record`.
///
/// Sinks are deliberately infallible on the hot path: a backend failure
/// (e.g. a full disk) flips the sink into a dead state that counts every
/// subsequent event as dropped, and is surfaced afterwards through
/// [`io_error`](TraceSink::io_error).
pub trait TraceSink {
    /// Pre-sizes internal buffers for frames expected to carry up to
    /// `events` events each — the explicit half of the sinks' reuse
    /// contract. Drivers call this once before a frame loop; steady-state
    /// recording then reuses (never re-grows) the reserved storage. The
    /// default is a no-op for sinks with nothing to size.
    fn reserve(&mut self, events: usize) {
        let _ = events;
    }

    /// Marks the start of frame `frame` (driver-assigned index).
    fn begin_frame(&mut self, frame: u64) {
        let _ = frame;
    }

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);

    /// Marks the end of the current frame; streaming sinks flush here.
    fn end_frame(&mut self) {}

    /// Events accepted (recorded minus those refused after a backend
    /// failure; includes events later evicted by a bounded backend).
    fn events_recorded(&self) -> u64;

    /// Events lost: ring eviction, per-frame caps, or write failures.
    fn events_dropped(&self) -> u64;

    /// First unrecoverable backend error, if any. The sink drops all
    /// events after it.
    fn io_error(&self) -> Option<String> {
        None
    }
}

/// [`TraceSink`] over a bounded [`FrameTrace`] ring — today's in-memory
/// capture, preserving oldest-first eviction and overflow counting.
#[derive(Debug)]
pub struct RingSink {
    trace: FrameTrace,
    recorded: u64,
}

impl RingSink {
    /// Ring sink holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            trace: FrameTrace::new(capacity),
            recorded: 0,
        }
    }

    /// Wraps an existing (typically [`FrameTrace::reset`]) ring, reusing
    /// its storage. The recorded counter starts at zero.
    pub fn from_trace(trace: FrameTrace) -> Self {
        RingSink { trace, recorded: 0 }
    }

    /// The ring so far.
    pub fn trace(&self) -> &FrameTrace {
        &self.trace
    }

    /// Consumes the sink, handing the ring to the caller (how
    /// `run_frame` attaches it to `FrameOutcome::trace`).
    pub fn into_trace(self) -> FrameTrace {
        self.trace
    }
}

impl TraceSink for RingSink {
    fn reserve(&mut self, events: usize) {
        self.trace.reserve(events);
    }

    fn record(&mut self, event: TraceEvent) {
        self.recorded += 1;
        self.trace.record(event);
    }

    fn events_recorded(&self) -> u64 {
        self.recorded
    }

    fn events_dropped(&self) -> u64 {
        self.trace.dropped() as u64
    }
}

/// Counts and discards every event.
#[derive(Debug, Default)]
pub struct NullSink {
    recorded: u64,
}

impl NullSink {
    /// A fresh discarding sink.
    pub fn new() -> Self {
        NullSink::default()
    }
}

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {
        self.recorded += 1;
    }

    fn events_recorded(&self) -> u64 {
        self.recorded
    }

    fn events_dropped(&self) -> u64 {
        0
    }
}

/// Unbounded in-memory sink for tests that assert on the full stream.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Vec<TraceEvent>,
    frames: u64,
    frame_open: bool,
}

impl CollectSink {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Everything recorded so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the collected events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Completed (`begin`/`end`-bracketed) frames seen.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

impl TraceSink for CollectSink {
    fn reserve(&mut self, events: usize) {
        self.events.reserve(events.saturating_sub(self.events.len()));
    }

    fn begin_frame(&mut self, _frame: u64) {
        self.frame_open = true;
    }

    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn end_frame(&mut self) {
        if self.frame_open {
            self.frames += 1;
            self.frame_open = false;
        }
    }

    fn events_recorded(&self) -> u64 {
        self.events.len() as u64
    }

    fn events_dropped(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// JSONL streaming sink
// ---------------------------------------------------------------------------

/// Closing statistics of a [`JsonlFileSink`] (see
/// [`finish`](JsonlFileSink::finish)).
#[derive(Debug, Clone, Serialize)]
pub struct JsonlSinkSummary {
    /// Every file written, in chronological order (rotated-out files
    /// first, the live path last).
    pub files: Vec<String>,
    /// Frames completed.
    pub frames: u64,
    /// Events written.
    pub events: u64,
    /// Events dropped (per-frame cap or write failure).
    pub dropped: u64,
    /// Total bytes written across all files.
    pub bytes: u64,
}

/// Shared line-staging engine behind the streaming sinks.
///
/// Stages exactly one frame's JSONL block in memory — a
/// `{"frame_start":N}` marker, at most `frame_cap` event lines, and a
/// `{"frame_end":N,"events":K,"dropped":D}` marker — so that every
/// streaming backend emits **byte-identical framing** for the same event
/// stream. [`JsonlFileSink`] appends the block to a file;
/// [`ChannelSink`] sends it through an in-process channel (how the job
/// service streams traces over its socket). The service-smoke check that
/// a socket-streamed trace equals the file sink's output byte-for-byte
/// rests on both backends staging through this one engine.
#[derive(Debug)]
struct FrameStager {
    /// Lines of the currently open frame.
    staged: String,
    /// Recycled block storage handed back by the backend after a
    /// completed frame was consumed — the next frame stages into it
    /// instead of re-growing a fresh `String`.
    spare: String,
    staged_events: u64,
    frame: Option<u64>,
    next_auto_frame: u64,
    frame_dropped: u64,
    frame_cap: usize,
    peak_staged_bytes: usize,
}

/// One completed frame's staged JSONL block.
#[derive(Debug)]
struct StagedFrame {
    /// Driver-assigned frame index.
    frame: u64,
    /// The frame's lines, each `\n`-terminated.
    text: String,
    /// Event lines staged (markers excluded).
    events: u64,
}

impl FrameStager {
    /// Nominal serialized bytes per event line, for [`reserve`](FrameStager::reserve).
    const NOMINAL_LINE_BYTES: usize = 48;

    fn new() -> Self {
        FrameStager {
            staged: String::new(),
            spare: String::new(),
            staged_events: 0,
            frame: None,
            next_auto_frame: 0,
            frame_dropped: 0,
            frame_cap: DEFAULT_TRACE_CAPACITY,
            peak_staged_bytes: 0,
        }
    }

    fn set_frame_cap(&mut self, cap: usize) {
        self.frame_cap = cap.max(1);
    }

    /// Pre-sizes the staging buffer for frames of up to `events` lines
    /// (clamped to the per-frame cap): the larger of the high-water mark
    /// already observed and a nominal per-line estimate.
    fn reserve(&mut self, events: usize) {
        let want = self
            .peak_staged_bytes
            .max(events.min(self.frame_cap).saturating_mul(Self::NOMINAL_LINE_BYTES));
        let cap = self.staged.capacity();
        if cap < want {
            self.staged.reserve(want - cap);
        }
    }

    /// Hands a consumed frame block's storage back for reuse by the next
    /// frame.
    fn recycle(&mut self, mut text: String) {
        text.clear();
        if text.capacity() > self.spare.capacity() {
            self.spare = text;
        }
    }

    fn open(&self) -> bool {
        self.frame.is_some()
    }

    fn stage_line(&mut self, line: &str) {
        self.staged.push_str(line);
        self.staged.push('\n');
        self.peak_staged_bytes = self.peak_staged_bytes.max(self.staged.len());
    }

    /// Opens frame `frame` (caller guarantees no frame is open).
    fn begin_frame(&mut self, frame: u64) {
        debug_assert!(self.frame.is_none(), "frame already open");
        if self.staged.capacity() < self.spare.capacity() {
            std::mem::swap(&mut self.staged, &mut self.spare);
        }
        self.frame = Some(frame);
        self.frame_dropped = 0;
        self.stage_line(&format!("{{\"frame_start\":{frame}}}"));
    }

    /// Opens the next auto-numbered frame (unbracketed `record`).
    fn begin_auto_frame(&mut self) {
        let frame = self.next_auto_frame;
        self.begin_frame(frame);
    }

    /// Stages one event line; `false` means the event was dropped (cap
    /// reached or serialization failed).
    fn record(&mut self, event: &TraceEvent) -> bool {
        if self.staged_events >= self.frame_cap as u64 {
            self.frame_dropped += 1;
            return false;
        }
        match serde_json::to_string(event) {
            Ok(line) => {
                self.stage_line(&line);
                self.staged_events += 1;
                true
            }
            Err(_) => {
                self.frame_dropped += 1;
                false
            }
        }
    }

    /// Closes the open frame, staging the end marker, and hands the
    /// completed block to the backend. `None` when no frame was open.
    fn end_frame(&mut self) -> Option<StagedFrame> {
        let frame = self.frame.take()?;
        self.next_auto_frame = frame + 1;
        self.stage_line(&format!(
            "{{\"frame_end\":{frame},\"events\":{},\"dropped\":{}}}",
            self.staged_events, self.frame_dropped
        ));
        let text = std::mem::take(&mut self.staged);
        let out = StagedFrame {
            frame,
            text,
            events: self.staged_events,
        };
        self.staged_events = 0;
        self.frame_dropped = 0;
        Some(out)
    }

    /// Discards anything currently staged (backend failure), returning
    /// how many staged event lines never reached the backend.
    fn abandon_staged(&mut self) -> u64 {
        let n = self.staged_events;
        self.staged.clear();
        self.staged_events = 0;
        n
    }
}

/// Streams [`TraceEvent`]s to a JSON-lines file.
///
/// Each frame appears as a `{"frame_start":N}` line, the frame's event
/// lines (one externally-tagged [`TraceEvent`] object per line), and a
/// `{"frame_end":N,"events":K,"dropped":D}` line. At most one frame is
/// staged in memory — bounded by the per-frame event cap — and the staged
/// bytes are written and flushed on every frame boundary, so resident
/// memory stays constant over arbitrarily long sweeps. Rotation (when
/// enabled) also happens only on frame boundaries, so a frame is never
/// split across files.
#[derive(Debug)]
pub struct JsonlFileSink {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    stager: FrameStager,
    rotate_bytes: Option<u64>,
    /// Rotated-out files, chronological.
    rotated: Vec<PathBuf>,
    bytes_current: u64,
    bytes_total: u64,
    frames: u64,
    events: u64,
    dropped: u64,
    error: Option<String>,
}

impl JsonlFileSink {
    /// Creates (truncates) `path` and returns a sink streaming to it,
    /// with the default per-frame cap ([`DEFAULT_TRACE_CAPACITY`]) and no
    /// rotation.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let writer = BufWriter::new(File::create(&path)?);
        Ok(JsonlFileSink {
            path,
            writer: Some(writer),
            stager: FrameStager::new(),
            rotate_bytes: None,
            rotated: Vec::new(),
            bytes_current: 0,
            bytes_total: 0,
            frames: 0,
            events: 0,
            dropped: 0,
            error: None,
        })
    }

    /// Caps the events retained per frame (mirrors the ring bound; the
    /// overflow is counted as dropped). Zero is clamped to 1.
    pub fn with_frame_cap(mut self, cap: usize) -> Self {
        self.stager.set_frame_cap(cap);
        self
    }

    /// Starts a new file once the current one exceeds `bytes` (checked on
    /// frame boundaries): the live path is renamed to `<path>.1`,
    /// `<path>.2`, … and writing continues at `path`.
    pub fn with_rotate_bytes(mut self, bytes: Option<u64>) -> Self {
        self.rotate_bytes = bytes;
        self
    }

    /// Largest number of bytes ever staged in memory for one frame — the
    /// resident-memory high-water mark of the sink.
    pub fn peak_staged_bytes(&self) -> usize {
        self.stager.peak_staged_bytes
    }

    /// Every file written so far, chronological (rotated first, live
    /// path last).
    pub fn files(&self) -> Vec<PathBuf> {
        let mut files = self.rotated.clone();
        files.push(self.path.clone());
        files
    }

    fn fail(&mut self, e: &std::io::Error) {
        if self.error.is_none() {
            self.error = Some(format!("{}: {e}", self.path.display()));
        }
        self.writer = None;
        // Anything staged never reached the file: recount it as dropped.
        let lost = self.stager.abandon_staged();
        self.dropped += lost;
        self.events -= lost;
    }

    fn rotate(&mut self) {
        let rotated_to = PathBuf::from(format!(
            "{}.{}",
            self.path.display(),
            self.rotated.len() + 1
        ));
        // Close (flushing) before the rename.
        self.writer = None;
        if let Err(e) = std::fs::rename(&self.path, &rotated_to) {
            self.fail(&e);
            return;
        }
        match File::create(&self.path) {
            Ok(f) => {
                self.rotated.push(rotated_to);
                self.bytes_current = 0;
                self.writer = Some(BufWriter::new(f));
            }
            Err(e) => self.fail(&e),
        }
    }

    /// Flushes any open frame and closes the sink, returning the final
    /// statistics (or the first backend error).
    pub fn finish(mut self) -> std::io::Result<JsonlSinkSummary> {
        self.end_frame();
        if let Some(mut w) = self.writer.take() {
            if let Err(e) = w.flush() {
                self.fail(&e);
            }
        }
        match self.error {
            Some(reason) => Err(std::io::Error::other(reason)),
            None => Ok(JsonlSinkSummary {
                files: self
                    .files()
                    .iter()
                    .map(|p| p.display().to_string())
                    .collect(),
                frames: self.frames,
                events: self.events,
                dropped: self.dropped,
                bytes: self.bytes_total,
            }),
        }
    }
}

impl TraceSink for JsonlFileSink {
    fn reserve(&mut self, events: usize) {
        self.stager.reserve(events);
    }

    fn begin_frame(&mut self, frame: u64) {
        if self.stager.open() {
            self.end_frame();
        }
        if self.error.is_some() {
            return;
        }
        self.stager.begin_frame(frame);
    }

    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        if !self.stager.open() {
            self.stager.begin_auto_frame();
        }
        if self.stager.record(&event) {
            self.events += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn end_frame(&mut self) {
        let Some(staged) = self.stager.end_frame() else {
            return;
        };
        let Some(w) = self.writer.as_mut() else {
            return;
        };
        let res = w.write_all(staged.text.as_bytes()).and_then(|_| w.flush());
        if let Err(e) = res {
            self.fail(&e);
            // The frame was taken from the stager before the write, so
            // recount its events here rather than in `fail`.
            self.dropped += staged.events;
            self.events -= staged.events;
            return;
        }
        self.bytes_current += staged.text.len() as u64;
        self.bytes_total += staged.text.len() as u64;
        self.frames += 1;
        self.stager.recycle(staged.text);
        if let Some(limit) = self.rotate_bytes {
            if self.bytes_current >= limit {
                self.rotate();
            }
        }
    }

    fn events_recorded(&self) -> u64 {
        self.events
    }

    fn events_dropped(&self) -> u64 {
        self.dropped
    }

    fn io_error(&self) -> Option<String> {
        self.error.clone()
    }
}

// ---------------------------------------------------------------------------
// Channel-streaming sink
// ---------------------------------------------------------------------------

/// One completed frame's JSONL block, as streamed by [`ChannelSink`].
///
/// `text` is **exactly** the bytes [`JsonlFileSink`] would have appended
/// to its file for the same frame under the same per-frame cap: the
/// `{"frame_start":N}` line, the (capped) event lines, and the
/// `{"frame_end":N,"events":K,"dropped":D}` line, each `\n`-terminated.
/// Concatenating every chunk of a run reproduces the file sink's output
/// byte-for-byte — the property the job service's socket trace streaming
/// is verified against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChunk {
    /// Driver-assigned frame index.
    pub frame: u64,
    /// The frame's JSONL block.
    pub text: String,
}

/// Streams each completed frame's JSONL block through an
/// [`std::sync::mpsc`] channel.
///
/// The socket/channel backend the [`TraceSink`] trait was designed for:
/// the run side records events exactly as it would into a
/// [`JsonlFileSink`]; a receiver on another thread (the job service's
/// client connection) drains [`TraceChunk`]s as frames complete. A
/// disconnected receiver behaves like a failed file write — the sink goes
/// inert, subsequent events count as dropped, and the error surfaces via
/// [`TraceSink::io_error`].
#[derive(Debug)]
pub struct ChannelSink {
    tx: std::sync::mpsc::Sender<TraceChunk>,
    stager: FrameStager,
    frames: u64,
    events: u64,
    dropped: u64,
    error: Option<String>,
}

impl ChannelSink {
    /// Wraps `tx` with the default per-frame cap
    /// ([`DEFAULT_TRACE_CAPACITY`]).
    pub fn new(tx: std::sync::mpsc::Sender<TraceChunk>) -> Self {
        ChannelSink {
            tx,
            stager: FrameStager::new(),
            frames: 0,
            events: 0,
            dropped: 0,
            error: None,
        }
    }

    /// Caps the events retained per frame (must match the file sink's cap
    /// for byte-identical output). Zero is clamped to 1.
    pub fn with_frame_cap(mut self, cap: usize) -> Self {
        self.stager.set_frame_cap(cap);
        self
    }

    /// Frames sent so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flushes any open frame and returns the send-side statistics (or
    /// the disconnect error).
    pub fn finish(mut self) -> std::io::Result<JsonlSinkSummary> {
        self.end_frame();
        match self.error {
            Some(reason) => Err(std::io::Error::other(reason)),
            None => Ok(JsonlSinkSummary {
                files: Vec::new(),
                frames: self.frames,
                events: self.events,
                dropped: self.dropped,
                bytes: 0,
            }),
        }
    }
}

impl TraceSink for ChannelSink {
    fn reserve(&mut self, events: usize) {
        self.stager.reserve(events);
    }

    fn begin_frame(&mut self, frame: u64) {
        if self.stager.open() {
            self.end_frame();
        }
        if self.error.is_some() {
            return;
        }
        self.stager.begin_frame(frame);
    }

    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        if !self.stager.open() {
            self.stager.begin_auto_frame();
        }
        if self.stager.record(&event) {
            self.events += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn end_frame(&mut self) {
        let Some(staged) = self.stager.end_frame() else {
            return;
        };
        if self.error.is_some() {
            return;
        }
        let chunk = TraceChunk {
            frame: staged.frame,
            text: staged.text,
        };
        if self.tx.send(chunk).is_err() {
            self.error = Some("trace channel receiver disconnected".to_string());
            // The frame never reached the receiver: recount it as dropped.
            self.dropped += staged.events;
            self.events -= staged.events;
            return;
        }
        self.frames += 1;
    }

    fn events_recorded(&self) -> u64 {
        self.events
    }

    fn events_dropped(&self) -> u64 {
        self.dropped
    }

    fn io_error(&self) -> Option<String> {
        self.error.clone()
    }
}

// ---------------------------------------------------------------------------
// Serialisable sink selection
// ---------------------------------------------------------------------------

/// Declarative sink selection, serialisable into scenario JSON (carried
/// on `fdb_sim::MeasureSpec`; built per run by the measurement driver).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum TraceSinkSpec {
    /// No tracing (the default).
    #[default]
    Null,
    /// Bounded in-memory ring over the whole run; `None` capacity uses
    /// the PHY's configured per-frame ring capacity.
    Ring {
        /// Maximum events retained (oldest evicted).
        capacity: Option<usize>,
    },
    /// Unbounded in-memory collection (tests only).
    Collect,
    /// Streaming JSONL file capture.
    Jsonl {
        /// Output path.
        path: String,
        /// Rotate the file once it exceeds this many bytes.
        rotate_bytes: Option<u64>,
        /// Per-frame event cap; `None` uses the PHY's configured ring
        /// capacity.
        frame_cap: Option<usize>,
    },
}

impl TraceSinkSpec {
    /// Convenience constructor for a non-rotating JSONL capture.
    pub fn jsonl(path: impl Into<String>) -> Self {
        TraceSinkSpec::Jsonl {
            path: path.into(),
            rotate_bytes: None,
            frame_cap: None,
        }
    }

    /// `true` for [`TraceSinkSpec::Null`] — no sink should be attached.
    pub fn is_null(&self) -> bool {
        matches!(self, TraceSinkSpec::Null)
    }

    /// Builds the described sink. `default_capacity` fills the
    /// unspecified ring capacity / per-frame cap (drivers pass the PHY's
    /// configured trace ring capacity).
    pub fn build(&self, default_capacity: usize) -> std::io::Result<Box<dyn TraceSink>> {
        Ok(match self {
            TraceSinkSpec::Null => Box::new(NullSink::new()),
            TraceSinkSpec::Ring { capacity } => {
                Box::new(RingSink::new(capacity.unwrap_or(default_capacity)))
            }
            TraceSinkSpec::Collect => Box::new(CollectSink::new()),
            TraceSinkSpec::Jsonl {
                path,
                rotate_bytes,
                frame_cap,
            } => Box::new(
                JsonlFileSink::create(path)?
                    .with_frame_cap(frame_cap.unwrap_or(default_capacity))
                    .with_rotate_bytes(*rotate_bytes),
            ),
        })
    }
}

// ---------------------------------------------------------------------------
// JSONL parsing / validation
// ---------------------------------------------------------------------------

/// One parsed line of a [`JsonlFileSink`] file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// `{"frame_start":N}`
    FrameStart {
        /// Frame index.
        frame: u64,
    },
    /// `{"frame_end":N,"events":K,"dropped":D}`
    FrameEnd {
        /// Frame index.
        frame: u64,
        /// Events written for the frame.
        events: u64,
        /// Events dropped for the frame.
        dropped: u64,
    },
    /// A [`TraceEvent`] line.
    Event(TraceEvent),
}

/// Parses one line of a trace JSONL file (frame marker or event),
/// rejecting anything else with a descriptive message. This is the
/// line-by-line validator behind the probe CLI's `--validate-trace`.
pub fn parse_trace_line(line: &str) -> Result<TraceLine, String> {
    #[derive(Deserialize)]
    struct StartLine {
        frame_start: u64,
    }
    #[derive(Deserialize)]
    struct EndLine {
        frame_end: u64,
        events: u64,
        dropped: u64,
    }
    // Frame markers have a unique leading key; try them first so event
    // parsing only sees candidate event objects.
    if line.contains("\"frame_start\"") {
        if let Ok(s) = serde_json::from_str::<StartLine>(line) {
            return Ok(TraceLine::FrameStart {
                frame: s.frame_start,
            });
        }
    }
    if line.contains("\"frame_end\"") {
        if let Ok(e) = serde_json::from_str::<EndLine>(line) {
            return Ok(TraceLine::FrameEnd {
                frame: e.frame_end,
                events: e.events,
                dropped: e.dropped,
            });
        }
    }
    serde_json::from_str::<TraceEvent>(line)
        .map(TraceLine::Event)
        .map_err(|e| format!("not a trace event or frame marker ({e}): {line}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut t = FrameTrace::new(3);
        for i in 0..5 {
            t.record(TraceEvent::Abort { sample: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest evicted: samples 2, 3, 4 remain.
        let first = t.events().next().unwrap();
        assert_eq!(*first, TraceEvent::Abort { sample: 2 });
    }

    #[test]
    fn stage_labels_partition_events() {
        let mut t = FrameTrace::new(16);
        t.record(TraceEvent::TxChip { sample: 0, chip: 0, state: true });
        t.record(TraceEvent::RxChip { sample: 1, energy: 0.5, threshold: 0.4 });
        t.record(TraceEvent::FbBit { sample: 2, bit: true, margin: 0.1 });
        assert_eq!(t.stage_events("tx").count(), 1);
        assert_eq!(t.stage_events("rx").count(), 1);
        assert_eq!(t.stage_events("feedback").count(), 1);
        assert_eq!(t.stage_events("channel").count(), 0);
    }

    #[test]
    fn events_serialize_to_tagged_objects() {
        use serde::Serialize;
        let ev = TraceEvent::RxBlock { sample: 7, index: 1, ok: false };
        let v = ev.to_value();
        let obj = v.as_object().expect("tagged object");
        assert_eq!(obj.len(), 1);
        assert_eq!(obj[0].0, "RxBlock");
    }

    /// One instance of every variant, with awkward float values.
    fn one_of_each() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TxChip { sample: 0, chip: 3, state: true },
            TraceEvent::Channel {
                sample: 1,
                source_power_w: 1.25e-7,
                env_a: 0.1,
                env_b: 3.0000000000000004,
            },
            TraceEvent::Sic {
                sample: 2,
                device: 'B',
                own_state: false,
                input: 0.5,
                output: Some(0.25),
            },
            TraceEvent::Sic {
                sample: 3,
                device: 'A',
                own_state: true,
                input: 0.5,
                output: None,
            },
            TraceEvent::RxLock { sample: 4, score: 0.71, peak_seen: 0.73 },
            TraceEvent::RxSyncReject {
                sample: 5,
                score: 0.64,
                sharpness: 1.01,
                reason: "peak_shape".into(),
            },
            TraceEvent::RxRearm { sample: 6, attempts: 2 },
            TraceEvent::RxChip { sample: 7, energy: 0.33, threshold: 0.3 },
            TraceEvent::RxBit { sample: 8, index: 11, bit: false },
            TraceEvent::RxBlock { sample: 9, index: 0, ok: true },
            TraceEvent::FbHalf { sample: 10, integral: -0.002 },
            TraceEvent::FbPilot { sample: 11, index: 4, margin: 0.07 },
            TraceEvent::FbPilotsChecked { sample: 12, verified: true },
            TraceEvent::FbBit { sample: 13, bit: true, margin: 0.125 },
            TraceEvent::Abort { sample: 14 },
            TraceEvent::Fault {
                sample: 15,
                kind: "noise_burst".into(),
                active: true,
            },
            TraceEvent::Fault {
                sample: 16,
                kind: "clock_drift".into(),
                active: false,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        for ev in one_of_each() {
            let line = serde_json::to_string(&ev).expect("serializes");
            let back: TraceEvent = serde_json::from_str(&line)
                .unwrap_or_else(|e| panic!("{line} failed to parse back: {e}"));
            assert_eq!(back, ev, "round-trip changed {line}");
            // And through the line validator.
            assert_eq!(parse_trace_line(&line), Ok(TraceLine::Event(ev)));
        }
    }

    #[test]
    fn ring_sink_counts_recorded_and_dropped() {
        let mut sink = RingSink::new(3);
        for i in 0..5 {
            sink.record(TraceEvent::Abort { sample: i });
        }
        assert_eq!(sink.events_recorded(), 5);
        assert_eq!(sink.events_dropped(), 2);
        let trace = sink.into_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn null_and_collect_sinks_count() {
        let mut null = NullSink::new();
        let mut collect = CollectSink::new();
        for i in 0..4 {
            collect.begin_frame(i);
            null.record(TraceEvent::Abort { sample: i as usize });
            collect.record(TraceEvent::Abort { sample: i as usize });
            collect.end_frame();
        }
        assert_eq!(null.events_recorded(), 4);
        assert_eq!(null.events_dropped(), 0);
        assert_eq!(collect.events_recorded(), 4);
        assert_eq!(collect.frames(), 4);
        assert_eq!(collect.events().len(), 4);
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fdb_trace_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn jsonl_sink_writes_framed_parseable_lines() {
        let path = temp_path("framed");
        let mut sink = JsonlFileSink::create(&path).unwrap();
        sink.begin_frame(0);
        sink.record(TraceEvent::TxChip { sample: 0, chip: 0, state: true });
        sink.record(TraceEvent::Abort { sample: 9 });
        sink.end_frame();
        sink.begin_frame(1);
        sink.record(TraceEvent::RxRearm { sample: 3, attempts: 1 });
        let summary = sink.finish().unwrap();
        assert_eq!(summary.frames, 2, "finish closes the open frame");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.dropped, 0);
        assert_eq!(summary.files, vec![path.display().to_string()]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<TraceLine> = text
            .lines()
            .map(|l| parse_trace_line(l).expect("valid line"))
            .collect();
        assert_eq!(
            lines,
            vec![
                TraceLine::FrameStart { frame: 0 },
                TraceLine::Event(TraceEvent::TxChip { sample: 0, chip: 0, state: true }),
                TraceLine::Event(TraceEvent::Abort { sample: 9 }),
                TraceLine::FrameEnd { frame: 0, events: 2, dropped: 0 },
                TraceLine::FrameStart { frame: 1 },
                TraceLine::Event(TraceEvent::RxRearm { sample: 3, attempts: 1 }),
                TraceLine::FrameEnd { frame: 1, events: 1, dropped: 0 },
            ]
        );
        assert_eq!(summary.bytes, text.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_caps_events_per_frame_and_counts_drops() {
        let path = temp_path("cap");
        let mut sink = JsonlFileSink::create(&path).unwrap().with_frame_cap(2);
        sink.begin_frame(0);
        for i in 0..5 {
            sink.record(TraceEvent::Abort { sample: i });
        }
        sink.end_frame();
        assert_eq!(sink.events_recorded(), 2);
        assert_eq!(sink.events_dropped(), 3);
        let summary = sink.finish().unwrap();
        assert_eq!(summary.events, 2);
        assert_eq!(summary.dropped, 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().last().unwrap().contains("\"dropped\":3"),
            "frame_end must report the drop count: {text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_auto_opens_frames_for_unbracketed_records() {
        let path = temp_path("auto");
        let mut sink = JsonlFileSink::create(&path).unwrap();
        sink.record(TraceEvent::Abort { sample: 1 });
        sink.end_frame();
        sink.record(TraceEvent::Abort { sample: 2 });
        let summary = sink.finish().unwrap();
        assert_eq!(summary.frames, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("{\"frame_start\":0}"));
        assert!(text.contains("{\"frame_start\":1}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_rotates_on_frame_boundaries() {
        let path = temp_path("rotate");
        let mut sink = JsonlFileSink::create(&path)
            .unwrap()
            .with_rotate_bytes(Some(1)); // rotate after every frame
        for f in 0..3 {
            sink.begin_frame(f);
            sink.record(TraceEvent::Abort { sample: f as usize });
            sink.end_frame();
        }
        let summary = sink.finish().unwrap();
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.files.len(), 4, "3 rotated chunks + live file");
        // Chronological concatenation holds all frames in order, and the
        // final live file is empty (rotation happened after frame 2).
        let mut frames = Vec::new();
        for file in &summary.files {
            let text = std::fs::read_to_string(file).unwrap();
            for line in text.lines() {
                if let TraceLine::FrameStart { frame } = parse_trace_line(line).unwrap() {
                    frames.push(frame);
                }
            }
            std::fs::remove_file(file).ok();
        }
        assert_eq!(frames, vec![0, 1, 2]);
    }

    #[test]
    fn jsonl_sink_memory_stays_bounded_by_frame_cap() {
        let path = temp_path("bounded");
        let mut sink = JsonlFileSink::create(&path).unwrap().with_frame_cap(4);
        for f in 0..200u64 {
            sink.begin_frame(f);
            for i in 0..50 {
                sink.record(TraceEvent::RxChip {
                    sample: i,
                    energy: 0.123456789,
                    threshold: 0.1,
                });
            }
            sink.end_frame();
        }
        // 4 retained events + 2 markers per frame, never more.
        let line = serde_json::to_string(&TraceEvent::RxChip {
            sample: 49,
            energy: 0.123456789,
            threshold: 0.1,
        })
        .unwrap();
        let generous_frame_bytes = (line.len() + 64) * (4 + 2);
        assert!(
            sink.peak_staged_bytes() <= generous_frame_bytes,
            "peak staged {} exceeds one frame's bound {}",
            sink.peak_staged_bytes(),
            generous_frame_bytes
        );
        assert_eq!(sink.events_recorded(), 200 * 4);
        assert_eq!(sink.events_dropped(), 200 * 46);
        sink.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_failure_counts_subsequent_events_as_dropped() {
        let dir = std::env::temp_dir().join(format!(
            "fdb_trace_dir_{}_failure",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut sink = JsonlFileSink::create(&path).unwrap();
        sink.begin_frame(0);
        sink.record(TraceEvent::Abort { sample: 0 });
        // Make the write fail by replacing the open path's parent… not
        // portable; instead simulate by dropping the writer through a
        // rotation onto an unwritable target.
        std::fs::remove_dir_all(&dir).unwrap();
        sink.end_frame(); // write fails: file's directory is gone on flush…
        // Depending on the platform the flush may still succeed (the fd
        // stays valid); the contract we can assert portably is that a
        // sink with an error drops instead of panicking.
        if sink.io_error().is_some() {
            sink.record(TraceEvent::Abort { sample: 1 });
            assert_eq!(sink.events_recorded(), 0);
            assert!(sink.events_dropped() >= 1);
            assert!(sink.finish().is_err());
        } else {
            sink.finish().ok();
        }
    }

    #[test]
    fn channel_sink_matches_jsonl_file_bytes() {
        // The tentpole contract: the same event stream through a
        // ChannelSink and a JsonlFileSink (same frame cap) produces
        // byte-identical output, including the cap-overflow frame.
        let path = temp_path("channel_match");
        let mut file_sink = JsonlFileSink::create(&path).unwrap().with_frame_cap(3);
        let (tx, rx) = std::sync::mpsc::channel();
        let mut chan_sink = ChannelSink::new(tx).with_frame_cap(3);

        let events = one_of_each();
        for (f, chunk) in events.chunks(5).enumerate() {
            file_sink.begin_frame(f as u64);
            chan_sink.begin_frame(f as u64);
            for ev in chunk {
                file_sink.record(ev.clone());
                chan_sink.record(ev.clone());
            }
            file_sink.end_frame();
            chan_sink.end_frame();
        }
        assert_eq!(chan_sink.events_recorded(), file_sink.events_recorded());
        assert_eq!(chan_sink.events_dropped(), file_sink.events_dropped());
        let file_summary = file_sink.finish().unwrap();
        let chan_summary = chan_sink.finish().unwrap();
        assert_eq!(chan_summary.frames, file_summary.frames);

        let mut streamed = String::new();
        let mut frames = Vec::new();
        while let Ok(chunk) = rx.try_recv() {
            frames.push(chunk.frame);
            streamed.push_str(&chunk.text);
        }
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, written, "streamed bytes differ from file bytes");
        assert_eq!(frames, (0..file_summary.frames).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn channel_sink_auto_frames_and_caps() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut sink = ChannelSink::new(tx).with_frame_cap(2);
        for i in 0..5 {
            sink.record(TraceEvent::Abort { sample: i });
        }
        sink.end_frame();
        assert_eq!(sink.events_recorded(), 2);
        assert_eq!(sink.events_dropped(), 3);
        assert_eq!(sink.frames(), 1);
        let chunk = rx.try_recv().unwrap();
        assert_eq!(chunk.frame, 0);
        assert!(chunk.text.starts_with("{\"frame_start\":0}\n"));
        assert!(chunk.text.ends_with("{\"frame_end\":0,\"events\":2,\"dropped\":3}\n"));
    }

    #[test]
    fn channel_sink_disconnect_goes_inert() {
        let (tx, rx) = std::sync::mpsc::channel();
        drop(rx);
        let mut sink = ChannelSink::new(tx);
        sink.begin_frame(0);
        sink.record(TraceEvent::Abort { sample: 0 });
        sink.end_frame();
        assert!(sink.io_error().is_some(), "send to dropped receiver fails");
        assert_eq!(sink.events_recorded(), 0, "lost frame recounted as dropped");
        assert_eq!(sink.events_dropped(), 1);
        sink.record(TraceEvent::Abort { sample: 1 });
        assert_eq!(sink.events_dropped(), 2, "inert sink keeps counting drops");
        assert!(sink.finish().is_err());
    }

    #[test]
    fn sink_spec_round_trips_and_builds() {
        let specs = [
            TraceSinkSpec::Null,
            TraceSinkSpec::Ring { capacity: Some(7) },
            TraceSinkSpec::Ring { capacity: None },
            TraceSinkSpec::Collect,
            TraceSinkSpec::Jsonl {
                path: temp_path("spec").display().to_string(),
                rotate_bytes: Some(1024),
                frame_cap: None,
            },
        ];
        for spec in &specs {
            let json = serde_json::to_string(spec).unwrap();
            let back: TraceSinkSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, spec, "{json}");
            let mut sink = spec.build(16).unwrap();
            sink.record(TraceEvent::Abort { sample: 0 });
            assert!(sink.events_recorded() <= 1);
        }
        assert!(TraceSinkSpec::Null.is_null());
        assert!(!TraceSinkSpec::Collect.is_null());
        std::fs::remove_file(temp_path("spec")).ok();
    }

    #[test]
    fn stager_recycles_frame_block_storage() {
        // After the first frame's block is written and recycled, staging
        // identical frames never grows the staging buffer again.
        let path = temp_path("recycle");
        let mut sink = JsonlFileSink::create(&path).unwrap();
        let frame = |sink: &mut JsonlFileSink, f: u64| {
            sink.begin_frame(f);
            for i in 0..32 {
                sink.record(TraceEvent::RxChip {
                    sample: i,
                    energy: 0.123456789,
                    threshold: 0.1,
                });
            }
            sink.end_frame();
        };
        frame(&mut sink, 0);
        let cap_after_warmup = sink.stager.staged.capacity().max(sink.stager.spare.capacity());
        for f in 1..50 {
            frame(&mut sink, f);
        }
        let cap_final = sink.stager.staged.capacity().max(sink.stager.spare.capacity());
        assert_eq!(
            cap_final, cap_after_warmup,
            "steady-state frames must reuse the recycled block storage"
        );
        sink.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reserve_presizes_every_sink_backend() {
        let mut ring = RingSink::new(8);
        ring.reserve(1000); // clamped to the ring bound
        let mut collect = CollectSink::new();
        collect.reserve(64);
        assert!(collect.events.capacity() >= 64);
        let path = temp_path("reserve");
        let mut jsonl = JsonlFileSink::create(&path).unwrap();
        jsonl.reserve(100);
        let reserved = jsonl.stager.staged.capacity();
        assert!(reserved >= 100 * 48, "stager reserved {reserved}");
        jsonl.begin_frame(0);
        jsonl.record(TraceEvent::Abort { sample: 0 });
        jsonl.end_frame();
        jsonl.finish().unwrap();
        std::fs::remove_file(&path).ok();
        // NullSink takes the default no-op without panicking.
        NullSink::new().reserve(10);
    }

    #[test]
    fn parse_trace_line_rejects_garbage() {
        assert!(parse_trace_line("not json").is_err());
        assert!(parse_trace_line("{\"Unknown\":{}}").is_err());
        assert!(parse_trace_line("{\"frame_start\":\"x\"}").is_err());
        assert_eq!(
            parse_trace_line("{\"frame_end\":3,\"events\":10,\"dropped\":1}"),
            Ok(TraceLine::FrameEnd { frame: 3, events: 10, dropped: 1 })
        );
    }
}
