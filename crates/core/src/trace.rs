//! Frame-level diagnostics: structured per-stage event capture.
//!
//! When the `trace` cargo feature is enabled, [`crate::link::FdLink::run_frame`]
//! records a [`TraceEvent`] stream into a bounded [`FrameTrace`] ring buffer
//! carried on the [`crate::link::FrameOutcome`]. The stream covers every
//! stage of the PHY pipeline:
//!
//! * **tx** — chip emission ([`TraceEvent::TxChip`]);
//! * **channel** — instantaneous source power and both detector envelopes
//!   ([`TraceEvent::Channel`]);
//! * **sic** — self-interference correction input/output, including
//!   blanked samples ([`TraceEvent::Sic`]);
//! * **rx** — acquisition lock with correlation score, rejected lock
//!   candidates and re-arms from two-stage verification, per-chip energies
//!   against the live slicer threshold, decoded bits, and per-block CRC
//!   verdicts ([`TraceEvent::RxLock`], [`TraceEvent::RxSyncReject`],
//!   [`TraceEvent::RxRearm`], [`TraceEvent::RxChip`],
//!   [`TraceEvent::RxBit`], [`TraceEvent::RxBlock`]);
//! * **feedback** — integrate-and-dump half-bit integrals, per-pilot
//!   margins, the pilot verification verdict, and decoded status bits
//!   ([`TraceEvent::FbHalf`], [`TraceEvent::FbPilot`],
//!   [`TraceEvent::FbPilotsChecked`], [`TraceEvent::FbBit`]);
//! * **mac reflex** — the abort decision ([`TraceEvent::Abort`]).
//!
//! Sample-rate stages (tx/channel/sic/rx-chip) are decimated to chip
//! boundaries so a whole frame fits in the default ring capacity; decision
//! events are recorded unconditionally. When the ring overflows, the
//! *oldest* events are evicted and counted, so the tail of a frame — where
//! failures usually manifest — is always retained.
//!
//! With the feature disabled this module still compiles (it has no
//! feature-gated items itself) but nothing constructs a `FrameTrace`, and
//! `run_frame` contains no tracing code at all — zero hot-path cost.

use serde::Serialize;
use std::collections::VecDeque;

/// Default ring capacity in events: comfortably holds a chip-decimated
/// 256-byte frame with full feedback activity.
pub const DEFAULT_TRACE_CAPACITY: usize = 32_768;

/// One structured event from a single pipeline stage.
///
/// `sample` is always the link-clock sample index at which the event was
/// recorded (device-clock resampling happens downstream of the fields
/// observed here).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// Transmitter A emitted a chip: its antenna state for this chip.
    TxChip {
        /// Link-clock sample index.
        sample: usize,
        /// Chip index since frame start.
        chip: usize,
        /// `true` = reflect.
        state: bool,
    },
    /// Channel/ambient snapshot at the detectors.
    Channel {
        /// Link-clock sample index.
        sample: usize,
        /// Instantaneous ambient power at the source (watts).
        source_power_w: f64,
        /// Detected envelope at device A (post detector RC).
        env_a: f64,
        /// Detected envelope at device B.
        env_b: f64,
    },
    /// One self-interference correction.
    Sic {
        /// Link-clock sample index.
        sample: usize,
        /// `'A'` (feedback path) or `'B'` (data path).
        device: char,
        /// Device's own antenna state at this sample.
        own_state: bool,
        /// Detected envelope before correction.
        input: f64,
        /// Corrected envelope, or `None` when transition-blanked.
        output: Option<f64>,
    },
    /// B's receiver achieved preamble lock.
    RxLock {
        /// Link-clock sample index.
        sample: usize,
        /// Peak normalised correlation at lock.
        score: f64,
        /// Highest correlation observed during the whole hunt (equals
        /// `score` at lock; keeps climbing history for missed locks).
        peak_seen: f64,
    },
    /// B's receiver rejected a candidate lock (two-stage verification).
    RxSyncReject {
        /// Link-clock sample index.
        sample: usize,
        /// Peak correlation of the rejected candidate.
        score: f64,
        /// Peak-to-sidelobe ratio of the candidate trajectory.
        sharpness: f64,
        /// Which stage failed: `"peak_shape"`, `"flat_history"`,
        /// `"preamble_mismatch"` or `"header_crc"`.
        reason: &'static str,
    },
    /// B's receiver re-armed and returned to acquisition after a
    /// rejected lock.
    RxRearm {
        /// Link-clock sample index.
        sample: usize,
        /// Candidate locks attempted so far this frame.
        attempts: usize,
    },
    /// B integrated one data chip.
    RxChip {
        /// Link-clock sample index.
        sample: usize,
        /// Mean envelope over the chip.
        energy: f64,
        /// Live slicer threshold the chip was compared against.
        threshold: f64,
    },
    /// B decoded one data bit.
    RxBit {
        /// Link-clock sample index.
        sample: usize,
        /// Bit index since lock.
        index: usize,
        /// Decoded value.
        bit: bool,
    },
    /// B completed one payload block.
    RxBlock {
        /// Link-clock sample index.
        sample: usize,
        /// Block index within the frame.
        index: usize,
        /// CRC verdict.
        ok: bool,
    },
    /// A's feedback integrator dumped one half-bit integral.
    FbHalf {
        /// Link-clock sample index.
        sample: usize,
        /// Mean corrected envelope over the half-bit.
        integral: f64,
    },
    /// A consumed one feedback pilot bit.
    FbPilot {
        /// Link-clock sample index.
        sample: usize,
        /// Pilot index (0-based).
        index: usize,
        /// `|E_first − E_second|` for this pilot.
        margin: f64,
    },
    /// A finished checking the pilot sequence.
    FbPilotsChecked {
        /// Link-clock sample index.
        sample: usize,
        /// Whether the feedback channel was verified alive.
        verified: bool,
    },
    /// A decoded one post-pilot feedback bit.
    FbBit {
        /// Link-clock sample index.
        sample: usize,
        /// Decoded status bit.
        bit: bool,
        /// Decision margin.
        margin: f64,
    },
    /// A aborted the frame on verified NACK.
    Abort {
        /// Link-clock sample index.
        sample: usize,
    },
}

impl TraceEvent {
    /// Coarse stage label, for filtering: `"tx"`, `"channel"`, `"sic"`,
    /// `"rx"`, `"feedback"` or `"mac"`.
    pub fn stage(&self) -> &'static str {
        match self {
            TraceEvent::TxChip { .. } => "tx",
            TraceEvent::Channel { .. } => "channel",
            TraceEvent::Sic { .. } => "sic",
            TraceEvent::RxLock { .. }
            | TraceEvent::RxSyncReject { .. }
            | TraceEvent::RxRearm { .. }
            | TraceEvent::RxChip { .. }
            | TraceEvent::RxBit { .. }
            | TraceEvent::RxBlock { .. } => "rx",
            TraceEvent::FbHalf { .. }
            | TraceEvent::FbPilot { .. }
            | TraceEvent::FbPilotsChecked { .. }
            | TraceEvent::FbBit { .. } => "feedback",
            TraceEvent::Abort { .. } => "mac",
        }
    }
}

/// Bounded ring buffer of [`TraceEvent`]s for one frame.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: usize,
}

impl Default for FrameTrace {
    fn default() -> Self {
        FrameTrace::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl FrameTrace {
    /// Creates an empty trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FrameTrace {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest once full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Events belonging to one coarse stage (see [`TraceEvent::stage`]).
    pub fn stage_events<'a>(&'a self, stage: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events().filter(move |e| e.stage() == stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut t = FrameTrace::new(3);
        for i in 0..5 {
            t.record(TraceEvent::Abort { sample: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest evicted: samples 2, 3, 4 remain.
        let first = t.events().next().unwrap();
        assert_eq!(*first, TraceEvent::Abort { sample: 2 });
    }

    #[test]
    fn stage_labels_partition_events() {
        let mut t = FrameTrace::new(16);
        t.record(TraceEvent::TxChip { sample: 0, chip: 0, state: true });
        t.record(TraceEvent::RxChip { sample: 1, energy: 0.5, threshold: 0.4 });
        t.record(TraceEvent::FbBit { sample: 2, bit: true, margin: 0.1 });
        assert_eq!(t.stage_events("tx").count(), 1);
        assert_eq!(t.stage_events("rx").count(), 1);
        assert_eq!(t.stage_events("feedback").count(), 1);
        assert_eq!(t.stage_events("channel").count(), 0);
    }

    #[test]
    fn events_serialize_to_tagged_objects() {
        use serde::Serialize;
        let ev = TraceEvent::RxBlock { sample: 7, index: 1, ok: false };
        let v = ev.to_value();
        let obj = v.as_object().expect("tagged object");
        assert_eq!(obj.len(), 1);
        assert_eq!(obj[0].0, "RxBlock");
    }
}
