//! K-device backscatter networks with mutual first-order scattering.
//!
//! The two-device [`crate::link::FdLink`] is the paper's focus; this module
//! generalises the field assembly to K devices sharing one ambient source,
//! for the multi-link experiments (collision detection, carrier sense,
//! ALOHA baselines — E6). Scattering is truncated at first order: device
//! `i` sees the direct field plus every other device's backscatter of *its
//! own direct field*. Higher-order bounces scale as the product of two
//! device-hop gains (≈ −50 dB at metre scales) and are far below the
//! first-order interference this module exists to study.
//!
//! The network deliberately exposes a lower-level interface than `FdLink`:
//! the MAC sets every device's antenna state each sample and reads every
//! device's envelope. PHY entities (transmitters, receivers) are layered on
//! top by `fdb-mac`.

use crate::error::PhyError;
use fdb_ambient::{Ambient, AmbientConfig};
use fdb_channel::awgn::Awgn;
use fdb_channel::fading::Fading;
use fdb_channel::link::Hop;
use fdb_channel::pathloss::PathLoss;
use fdb_device::{TagConfig, TagHardware};
use fdb_dsp::sample::dbm_to_watts;
use fdb_dsp::Iq;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for a K-device shared-source network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Device positions on the plane, metres (the source is far away in
    /// the +y direction; its per-device distance is `source_dist_m` plus
    /// the device's y coordinate).
    pub positions: Vec<(f64, f64)>,
    /// Nominal source distance in metres.
    pub source_dist_m: f64,
    /// Ambient source power in dBm.
    pub source_power_dbm: f64,
    /// Path loss to the source.
    pub pathloss_source: PathLoss,
    /// Path loss between devices.
    pub pathloss_device: PathLoss,
    /// Fading on source hops.
    pub fading_source: Fading,
    /// Fading on device↔device hops.
    pub fading_device: Fading,
    /// Ambient source model.
    pub ambient: AmbientConfig,
    /// Field noise per device antenna, dBm.
    pub field_noise_dbm: f64,
    /// Per-device hardware (one per position).
    pub tags: Vec<TagConfig>,
    /// Ambient seed.
    pub ambient_seed: u64,
}

impl NetworkConfig {
    /// Places `n` devices uniformly on a circle of radius `radius_m`
    /// (pairwise distances of the same order), all with `tag` hardware.
    pub fn ring(n: usize, radius_m: f64, tag: TagConfig) -> Self {
        let n = n.max(1);
        let positions = (0..n)
            .map(|i| {
                let theta = std::f64::consts::TAU * i as f64 / n as f64;
                (radius_m * theta.cos(), radius_m * theta.sin())
            })
            .collect();
        NetworkConfig {
            positions,
            source_dist_m: 1000.0,
            source_power_dbm: 60.0,
            pathloss_source: PathLoss::tv_band(),
            pathloss_device: PathLoss::FreeSpace { freq_hz: 539e6 },
            fading_source: Fading::Static,
            fading_device: Fading::Static,
            ambient: AmbientConfig::TvWideband { k_factor: 300.0 },
            field_noise_dbm: -110.0,
            tags: vec![tag; n],
            ambient_seed: 1,
        }
    }
}

/// A running K-device network.
pub struct BackscatterNetwork {
    source: Ambient,
    source_amp: f64,
    noise: Awgn,
    hops_source: Vec<Hop>,
    /// Upper-triangular pairwise hops: `pair_hop(i, j)` with `i < j`.
    hops_pair: Vec<Hop>,
    n: usize,
    tags: Vec<TagHardware>,
    dt: f64,
    /// Per-step field staging (direct fields), retained across steps.
    direct: Vec<Iq>,
    /// Per-step reflection-coefficient staging, retained across steps.
    gamma: Vec<Iq>,
}

impl BackscatterNetwork {
    /// Builds the network; fading initial states come from `rng`.
    pub fn new<R: Rng + ?Sized>(
        cfg: &NetworkConfig,
        dt: f64,
        rng: &mut R,
    ) -> Result<Self, PhyError> {
        let mut net = BackscatterNetwork {
            source: Ambient::from_config(cfg.ambient, cfg.ambient_seed),
            source_amp: dbm_to_watts(cfg.source_power_dbm).sqrt(),
            noise: Awgn::from_dbm(cfg.field_noise_dbm),
            hops_source: Vec::new(),
            hops_pair: Vec::new(),
            n: 0,
            tags: Vec::new(),
            dt,
            direct: Vec::new(),
            gamma: Vec::new(),
        };
        net.reinit(cfg, dt, rng)?;
        Ok(net)
    }

    /// Rebuilds the network in place for a (possibly different) config,
    /// retaining every internal buffer's capacity.
    ///
    /// Observably identical to `*self = BackscatterNetwork::new(cfg, dt,
    /// rng)?` — the fading initial states are drawn from `rng` in the same
    /// order (`hops_source` in position order, then the upper-triangular
    /// `hops_pair` row-major) — but allocation-free once the buffers have
    /// grown to the largest device count seen.
    pub fn reinit<R: Rng + ?Sized>(
        &mut self,
        cfg: &NetworkConfig,
        dt: f64,
        rng: &mut R,
    ) -> Result<(), PhyError> {
        let n = cfg.positions.len();
        if n == 0 || cfg.tags.len() != n {
            return Err(PhyError::InvalidConfig {
                field: "positions/tags",
                reason: format!("{} positions but {} tag configs", n, cfg.tags.len()),
            });
        }
        self.hops_source.clear();
        self.hops_source.extend(cfg.positions.iter().map(|&(_, y)| {
            Hop::new(
                cfg.pathloss_source,
                (cfg.source_dist_m + y).max(1.0),
                cfg.fading_source,
                rng,
            )
        }));
        self.hops_pair.clear();
        self.hops_pair.reserve(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let (xi, yi) = cfg.positions[i];
                let (xj, yj) = cfg.positions[j];
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(0.1);
                self.hops_pair
                    .push(Hop::new(cfg.pathloss_device, d, cfg.fading_device, rng));
            }
        }
        self.tags.clear();
        self.tags
            .extend(cfg.tags.iter().map(|&t| TagHardware::new(t, dt)));
        self.source = Ambient::from_config(cfg.ambient, cfg.ambient_seed);
        self.source_amp = dbm_to_watts(cfg.source_power_dbm).sqrt();
        self.noise = Awgn::from_dbm(cfg.field_noise_dbm);
        self.n = n;
        self.dt = dt;
        Ok(())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for an (invalid) empty network — never constructed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Row-major upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Channel coefficient between devices `i` and `j` (reciprocal).
    pub fn pair_coeff(&self, i: usize, j: usize) -> Iq {
        if i == j {
            return Iq::ZERO;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.hops_pair[self.pair_index(a, b)].coeff()
    }

    /// Device hardware access.
    pub fn tag(&self, i: usize) -> &TagHardware {
        &self.tags[i]
    }

    /// Mutable device hardware access.
    pub fn tag_mut(&mut self, i: usize) -> &mut TagHardware {
        &mut self.tags[i]
    }

    /// Advances fading on all hops by one block.
    pub fn advance_fading<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for h in &mut self.hops_source {
            h.advance_block(rng);
        }
        for h in &mut self.hops_pair {
            h.advance_block(rng);
        }
    }

    /// One simulation sample: sets every device's antenna to
    /// `states[i]`, assembles fields with first-order mutual scattering,
    /// and returns each device's detected envelope.
    ///
    /// Allocates the result; the hot path is
    /// [`step_into`](BackscatterNetwork::step_into), which reuses a
    /// caller-owned envelope buffer.
    pub fn step<R: Rng + ?Sized>(&mut self, states: &[bool], rng: &mut R) -> Vec<f64> {
        let mut envelopes = Vec::with_capacity(self.n);
        self.step_into(states, rng, &mut envelopes);
        envelopes
    }

    /// [`step`](BackscatterNetwork::step) into a reused buffer:
    /// `envelopes` is cleared and refilled with one envelope per device.
    /// Field staging uses internal scratch, so steady-state steps perform
    /// no heap allocation.
    pub fn step_into<R: Rng + ?Sized>(
        &mut self,
        states: &[bool],
        rng: &mut R,
        envelopes: &mut Vec<f64>,
    ) {
        debug_assert_eq!(states.len(), self.n);
        let x = self.source_amp * self.source.next_power(rng).sqrt();
        // Direct fields and reflection coefficients.
        let mut direct = std::mem::take(&mut self.direct);
        let mut gamma = std::mem::take(&mut self.gamma);
        direct.clear();
        gamma.clear();
        for (i, &state) in states.iter().enumerate().take(self.n) {
            self.tags[i].set_antenna(state);
            direct.push(self.hops_source[i].coeff() * x);
            gamma.push(self.tags[i].reflected(Iq::ONE));
        }
        envelopes.clear();
        for i in 0..self.n {
            let mut field = direct[i];
            for j in 0..self.n {
                if j != i {
                    field += self.pair_coeff(i, j) * gamma[j] * direct[j];
                }
            }
            let field = self.noise.corrupt(field, rng);
            let env = self.tags[i].step_receive(field, self.dt, rng);
            self.tags[i].charge_awake(self.dt, true);
            envelopes.push(env);
        }
        self.direct = direct;
        self.gamma = gamma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(n: usize) -> NetworkConfig {
        let mut c = NetworkConfig::ring(n, 1.0, TagConfig::typical(5e-5));
        c.ambient = AmbientConfig::Cw;
        c.field_noise_dbm = -160.0;
        c
    }

    #[test]
    fn rejects_mismatched_tags() {
        let mut c = cfg(3);
        c.tags.pop();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(BackscatterNetwork::new(&c, 5e-5, &mut rng).is_err());
    }

    #[test]
    fn pair_index_covers_triangle() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = BackscatterNetwork::new(&cfg(5), 5e-5, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(seen.insert(net.pair_index(i, j)), "dup at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(*seen.iter().max().unwrap(), 9);
    }

    #[test]
    fn reciprocity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = BackscatterNetwork::new(&cfg(4), 5e-5, &mut rng).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(net.pair_coeff(i, j), net.pair_coeff(j, i));
                }
            }
        }
    }

    #[test]
    fn toggling_one_device_moves_others_envelopes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = BackscatterNetwork::new(&cfg(3), 5e-5, &mut rng).unwrap();
        // Settle detector RCs.
        for _ in 0..2000 {
            net.step(&[false, false, false], &mut rng);
        }
        let quiet = net.step(&[false, false, false], &mut rng);
        for _ in 0..2000 {
            net.step(&[true, false, false], &mut rng);
        }
        let loud = net.step(&[true, false, false], &mut rng);
        // Device 1 and 2 must see device 0's reflection.
        for k in [1, 2] {
            let delta = (loud[k] - quiet[k]).abs() / quiet[k];
            assert!(delta > 1e-3, "device {k} blind to device 0: {delta}");
        }
        // Device 0's own envelope drops (reflect state passes less power).
        assert!(loud[0] < quiet[0]);
    }

    #[test]
    fn more_reflectors_more_interference() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = BackscatterNetwork::new(&cfg(4), 5e-5, &mut rng).unwrap();
        let settle = |net: &mut BackscatterNetwork, st: &[bool], rng: &mut ChaCha8Rng| {
            for _ in 0..2000 {
                net.step(st, rng);
            }
            net.step(st, rng)
        };
        let e0 = settle(&mut net, &[false, false, false, false], &mut rng)[0];
        let e1 = settle(&mut net, &[false, true, false, false], &mut rng)[0];
        let e2 = settle(&mut net, &[false, true, true, true], &mut rng)[0];
        let d1 = (e1 - e0).abs();
        let d2 = (e2 - e0).abs();
        assert!(d2 > d1, "interference should grow: {d1} vs {d2}");
    }

    #[test]
    fn envelopes_scale_with_source_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut weak_cfg = cfg(2);
        weak_cfg.source_power_dbm = 40.0;
        let mut strong = BackscatterNetwork::new(&cfg(2), 5e-5, &mut rng).unwrap();
        let mut weak = BackscatterNetwork::new(&weak_cfg, 5e-5, &mut rng).unwrap();
        let mut es = 0.0;
        let mut ew = 0.0;
        for _ in 0..3000 {
            es = strong.step(&[false, false], &mut rng)[0];
            ew = weak.step(&[false, false], &mut rng)[0];
        }
        // 20 dB power difference → 100× envelope (power) difference.
        assert!((es / ew - 100.0).abs() < 5.0, "ratio {}", es / ew);
    }
}
