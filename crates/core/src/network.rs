//! K-device backscatter networks with mutual first-order scattering.
//!
//! The two-device [`crate::link::FdLink`] is the paper's focus; this module
//! generalises the field assembly to K devices sharing one ambient source,
//! for the multi-link experiments (collision detection, carrier sense,
//! ALOHA baselines — E6). Scattering is truncated at first order: device
//! `i` sees the direct field plus every other device's backscatter of *its
//! own direct field*. Higher-order bounces scale as the product of two
//! device-hop gains (≈ −50 dB at metre scales) and are far below the
//! first-order interference this module exists to study.
//!
//! The network deliberately exposes a lower-level interface than `FdLink`:
//! the MAC sets every device's antenna state each sample and reads every
//! device's envelope. PHY entities (transmitters, receivers) are layered on
//! top by `fdb-mac`.

use crate::error::PhyError;
use crate::seed::derive_seed;
use fdb_ambient::{Ambient, AmbientConfig};
use fdb_channel::awgn::Awgn;
use fdb_channel::fading::Fading;
use fdb_channel::link::Hop;
use fdb_channel::pathloss::PathLoss;
use fdb_device::{TagConfig, TagHardware};
use fdb_dsp::sample::dbm_to_watts;
use fdb_dsp::Iq;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Salt separating source-hop fading streams from pair-hop streams in the
/// [`derive_seed`] lineage rooted at [`NetworkConfig::fading_seed`].
const SOURCE_FADING_STREAM: u64 = 0x46_44_42_53; // "FDBS"
/// Salt for device↔device pair-hop fading streams.
const PAIR_FADING_STREAM: u64 = 0x46_44_42_50; // "FDBP"

/// Configuration for a K-device shared-source network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Device positions on the plane, metres (the source is far away in
    /// the +y direction; its per-device distance is `source_dist_m` plus
    /// the device's y coordinate).
    pub positions: Vec<(f64, f64)>,
    /// Nominal source distance in metres.
    pub source_dist_m: f64,
    /// Ambient source power in dBm.
    pub source_power_dbm: f64,
    /// Path loss to the source.
    pub pathloss_source: PathLoss,
    /// Path loss between devices.
    pub pathloss_device: PathLoss,
    /// Fading on source hops.
    pub fading_source: Fading,
    /// Fading on device↔device hops.
    pub fading_device: Fading,
    /// Ambient source model.
    pub ambient: AmbientConfig,
    /// Field noise per device antenna, dBm.
    pub field_noise_dbm: f64,
    /// Per-device hardware (one per position).
    pub tags: Vec<TagConfig>,
    /// Ambient seed.
    pub ambient_seed: u64,
    /// Master seed of the per-hop fading streams. Every hop's fading draws
    /// come from its own [`derive_seed`]-keyed stream — source hop `i` from
    /// `(fading_seed, source-stream, i)`, pair hop `(i, j)` from
    /// `(fading_seed, pair-stream, i·2³² + j)` — so a hop's coefficient
    /// history depends only on its endpoints and this seed, never on how
    /// many other devices share the network. Older configs without the
    /// field default to 0.
    #[serde(default)]
    pub fading_seed: u64,
}

impl NetworkConfig {
    /// Places `n` devices uniformly on a circle of radius `radius_m`
    /// (pairwise distances of the same order), all with `tag` hardware.
    pub fn ring(n: usize, radius_m: f64, tag: TagConfig) -> Self {
        let n = n.max(1);
        let positions = (0..n)
            .map(|i| {
                let theta = std::f64::consts::TAU * i as f64 / n as f64;
                (radius_m * theta.cos(), radius_m * theta.sin())
            })
            .collect();
        NetworkConfig {
            positions,
            source_dist_m: 1000.0,
            source_power_dbm: 60.0,
            pathloss_source: PathLoss::tv_band(),
            pathloss_device: PathLoss::FreeSpace { freq_hz: 539e6 },
            fading_source: Fading::Static,
            fading_device: Fading::Static,
            ambient: AmbientConfig::TvWideband { k_factor: 300.0 },
            field_noise_dbm: -110.0,
            tags: vec![tag; n],
            ambient_seed: 1,
            fading_seed: 0,
        }
    }

    /// Euclidean distance between two device positions, clamped to the
    /// same 0.1 m near-field floor every pair hop uses.
    pub fn pair_distance(a: (f64, f64), b: (f64, f64)) -> f64 {
        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt().max(0.1)
    }

    /// The amplitude-gain kernel of [`BackscatterNetwork::pair_coeff`] for
    /// two arbitrary positions: `pathloss_device` over their clamped
    /// Euclidean distance. For `Static` device fading this equals
    /// `pair_coeff(i, j).abs()` of any network placing devices at `a` and
    /// `b`; the event-driven city engine uses it to score interference
    /// between concurrently-active links without instantiating the dense
    /// O(n²) hop set.
    pub fn pair_gain(&self, a: (f64, f64), b: (f64, f64)) -> f64 {
        self.pathloss_device
            .amplitude_gain(Self::pair_distance(a, b))
    }

    /// Harvesting/excitation amplitude gain from the ambient source to a
    /// device at `pos` (the source sits `source_dist_m` away in +y, as in
    /// [`BackscatterNetwork`]'s hop construction).
    pub fn source_gain(&self, pos: (f64, f64)) -> f64 {
        self.pathloss_source
            .amplitude_gain((self.source_dist_m + pos.1).max(1.0))
    }
}

/// A running K-device network.
pub struct BackscatterNetwork {
    source: Ambient,
    source_amp: f64,
    noise: Awgn,
    hops_source: Vec<Hop>,
    /// Upper-triangular pairwise hops: `pair_hop(i, j)` with `i < j`.
    hops_pair: Vec<Hop>,
    /// Per-hop fading streams, parallel to `hops_source`/`hops_pair`.
    /// Keyed from `NetworkConfig::fading_seed` so a hop's draws are
    /// independent of the device population (see `advance_fading`).
    rngs_source: Vec<ChaCha8Rng>,
    rngs_pair: Vec<ChaCha8Rng>,
    n: usize,
    tags: Vec<TagHardware>,
    dt: f64,
    /// Per-step field staging (direct fields), retained across steps.
    direct: Vec<Iq>,
    /// Per-step reflection-coefficient staging, retained across steps.
    gamma: Vec<Iq>,
}

impl BackscatterNetwork {
    /// Builds the network. Fading initial states come from per-hop streams
    /// keyed by `cfg.fading_seed` (see [`NetworkConfig::fading_seed`]),
    /// never from a shared generator — adding a device to the config
    /// cannot perturb any existing hop's coefficient history.
    pub fn new(cfg: &NetworkConfig, dt: f64) -> Result<Self, PhyError> {
        let mut net = BackscatterNetwork {
            source: Ambient::from_config(cfg.ambient, cfg.ambient_seed),
            source_amp: dbm_to_watts(cfg.source_power_dbm).sqrt(),
            noise: Awgn::from_dbm(cfg.field_noise_dbm),
            hops_source: Vec::new(),
            hops_pair: Vec::new(),
            rngs_source: Vec::new(),
            rngs_pair: Vec::new(),
            n: 0,
            tags: Vec::new(),
            dt,
            direct: Vec::new(),
            gamma: Vec::new(),
        };
        net.reinit(cfg, dt)?;
        Ok(net)
    }

    /// Rebuilds the network in place for a (possibly different) config,
    /// retaining every internal buffer's capacity.
    ///
    /// Observably identical to `*self = BackscatterNetwork::new(cfg,
    /// dt)?`: every per-hop fading stream restarts from its derived seed,
    /// so a reinit to the same config replays the same coefficient
    /// history. Allocation-free once the buffers have grown to the largest
    /// device count seen.
    pub fn reinit(&mut self, cfg: &NetworkConfig, dt: f64) -> Result<(), PhyError> {
        let n = cfg.positions.len();
        if n == 0 || cfg.tags.len() != n {
            return Err(PhyError::InvalidConfig {
                field: "positions/tags",
                reason: format!("{} positions but {} tag configs", n, cfg.tags.len()),
            });
        }
        let source_master = derive_seed(cfg.fading_seed, SOURCE_FADING_STREAM);
        let pair_master = derive_seed(cfg.fading_seed, PAIR_FADING_STREAM);
        self.hops_source.clear();
        self.rngs_source.clear();
        for (i, &(_, y)) in cfg.positions.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(source_master, i as u64));
            self.hops_source.push(Hop::new(
                cfg.pathloss_source,
                (cfg.source_dist_m + y).max(1.0),
                cfg.fading_source,
                &mut rng,
            ));
            self.rngs_source.push(rng);
        }
        self.hops_pair.clear();
        self.rngs_pair.clear();
        self.hops_pair.reserve(n * (n - 1) / 2);
        self.rngs_pair.reserve(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = NetworkConfig::pair_distance(cfg.positions[i], cfg.positions[j]);
                // Pair key `i·2³² + j` depends only on the endpoints'
                // indices, not on n — stream (i, j) is identical in a
                // 3-device and a 10 000-device network.
                let key = ((i as u64) << 32) | j as u64;
                let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(pair_master, key));
                self.hops_pair
                    .push(Hop::new(cfg.pathloss_device, d, cfg.fading_device, &mut rng));
                self.rngs_pair.push(rng);
            }
        }
        self.tags.clear();
        self.tags
            .extend(cfg.tags.iter().map(|&t| TagHardware::new(t, dt)));
        self.source = Ambient::from_config(cfg.ambient, cfg.ambient_seed);
        self.source_amp = dbm_to_watts(cfg.source_power_dbm).sqrt();
        self.noise = Awgn::from_dbm(cfg.field_noise_dbm);
        self.n = n;
        self.dt = dt;
        Ok(())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for an (invalid) empty network — never constructed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Row-major upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Channel coefficient between devices `i` and `j` (reciprocal).
    pub fn pair_coeff(&self, i: usize, j: usize) -> Iq {
        if i == j {
            return Iq::ZERO;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.hops_pair[self.pair_index(a, b)].coeff()
    }

    /// Device hardware access.
    pub fn tag(&self, i: usize) -> &TagHardware {
        &self.tags[i]
    }

    /// Mutable device hardware access.
    pub fn tag_mut(&mut self, i: usize) -> &mut TagHardware {
        &mut self.tags[i]
    }

    /// Advances fading on all hops by one block. Each hop draws from its
    /// own [`derive_seed`]-keyed stream (rooted at
    /// [`NetworkConfig::fading_seed`]), so hop `(i, j)`'s coefficient
    /// history is byte-identical no matter how many other devices the
    /// network holds — the invariant the city engine's scale-invariance
    /// suite pins.
    pub fn advance_fading(&mut self) {
        for (h, rng) in self.hops_source.iter_mut().zip(&mut self.rngs_source) {
            h.advance_block(rng);
        }
        for (h, rng) in self.hops_pair.iter_mut().zip(&mut self.rngs_pair) {
            h.advance_block(rng);
        }
    }

    /// One simulation sample: sets every device's antenna to
    /// `states[i]`, assembles fields with first-order mutual scattering,
    /// and returns each device's detected envelope.
    ///
    /// Allocates the result; the hot path is
    /// [`step_into`](BackscatterNetwork::step_into), which reuses a
    /// caller-owned envelope buffer.
    pub fn step<R: Rng + ?Sized>(&mut self, states: &[bool], rng: &mut R) -> Vec<f64> {
        let mut envelopes = Vec::with_capacity(self.n);
        self.step_into(states, rng, &mut envelopes);
        envelopes
    }

    /// [`step`](BackscatterNetwork::step) into a reused buffer:
    /// `envelopes` is cleared and refilled with one envelope per device.
    /// Field staging uses internal scratch, so steady-state steps perform
    /// no heap allocation.
    pub fn step_into<R: Rng + ?Sized>(
        &mut self,
        states: &[bool],
        rng: &mut R,
        envelopes: &mut Vec<f64>,
    ) {
        debug_assert_eq!(states.len(), self.n);
        let x = self.source_amp * self.source.next_power(rng).sqrt();
        // Direct fields and reflection coefficients.
        let mut direct = std::mem::take(&mut self.direct);
        let mut gamma = std::mem::take(&mut self.gamma);
        direct.clear();
        gamma.clear();
        for (i, &state) in states.iter().enumerate().take(self.n) {
            self.tags[i].set_antenna(state);
            direct.push(self.hops_source[i].coeff() * x);
            gamma.push(self.tags[i].reflected(Iq::ONE));
        }
        envelopes.clear();
        for i in 0..self.n {
            let mut field = direct[i];
            for j in 0..self.n {
                if j != i {
                    field += self.pair_coeff(i, j) * gamma[j] * direct[j];
                }
            }
            let field = self.noise.corrupt(field, rng);
            let env = self.tags[i].step_receive(field, self.dt, rng);
            self.tags[i].charge_awake(self.dt, true);
            envelopes.push(env);
        }
        self.direct = direct;
        self.gamma = gamma;
    }

    /// Sparse variant of [`step_into`](BackscatterNetwork::step_into):
    /// only the devices listed in `subset` participate. Non-subset devices
    /// are quiescent — antenna absorbing, no reflection contribution, and
    /// their detectors/harvesters are not advanced — and, crucially, **no
    /// noise is drawn for them**, so the envelope a subset member sees
    /// depends only on `subset`'s membership and order, never on how many
    /// idle devices exist in the network.
    ///
    /// `states[k]` is the antenna state of device `subset[k]`; `envelopes`
    /// is refilled with one envelope per subset member, in subset order.
    /// Indices in `subset` must be distinct and in-range.
    pub fn step_subset_into<R: Rng + ?Sized>(
        &mut self,
        subset: &[usize],
        states: &[bool],
        rng: &mut R,
        envelopes: &mut Vec<f64>,
    ) {
        debug_assert_eq!(states.len(), subset.len());
        let x = self.source_amp * self.source.next_power(rng).sqrt();
        let mut direct = std::mem::take(&mut self.direct);
        let mut gamma = std::mem::take(&mut self.gamma);
        direct.clear();
        gamma.clear();
        for (&i, &state) in subset.iter().zip(states) {
            debug_assert!(i < self.n);
            self.tags[i].set_antenna(state);
            direct.push(self.hops_source[i].coeff() * x);
            gamma.push(self.tags[i].reflected(Iq::ONE));
        }
        envelopes.clear();
        for (k, &i) in subset.iter().enumerate() {
            let mut field = direct[k];
            for (m, &j) in subset.iter().enumerate() {
                if j != i {
                    field += self.pair_coeff(i, j) * gamma[m] * direct[m];
                }
            }
            let field = self.noise.corrupt(field, rng);
            let env = self.tags[i].step_receive(field, self.dt, rng);
            self.tags[i].charge_awake(self.dt, true);
            envelopes.push(env);
        }
        self.direct = direct;
        self.gamma = gamma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(n: usize) -> NetworkConfig {
        let mut c = NetworkConfig::ring(n, 1.0, TagConfig::typical(5e-5));
        c.ambient = AmbientConfig::Cw;
        c.field_noise_dbm = -160.0;
        c
    }

    #[test]
    fn rejects_mismatched_tags() {
        let mut c = cfg(3);
        c.tags.pop();
        assert!(BackscatterNetwork::new(&c, 5e-5).is_err());
    }

    #[test]
    fn pair_index_covers_triangle() {
        let net = BackscatterNetwork::new(&cfg(5), 5e-5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(seen.insert(net.pair_index(i, j)), "dup at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(*seen.iter().max().unwrap(), 9);
    }

    #[test]
    fn reciprocity() {
        let net = BackscatterNetwork::new(&cfg(4), 5e-5).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(net.pair_coeff(i, j), net.pair_coeff(j, i));
                }
            }
        }
    }

    #[test]
    fn toggling_one_device_moves_others_envelopes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = BackscatterNetwork::new(&cfg(3), 5e-5).unwrap();
        // Settle detector RCs.
        for _ in 0..2000 {
            net.step(&[false, false, false], &mut rng);
        }
        let quiet = net.step(&[false, false, false], &mut rng);
        for _ in 0..2000 {
            net.step(&[true, false, false], &mut rng);
        }
        let loud = net.step(&[true, false, false], &mut rng);
        // Device 1 and 2 must see device 0's reflection.
        for k in [1, 2] {
            let delta = (loud[k] - quiet[k]).abs() / quiet[k];
            assert!(delta > 1e-3, "device {k} blind to device 0: {delta}");
        }
        // Device 0's own envelope drops (reflect state passes less power).
        assert!(loud[0] < quiet[0]);
    }

    #[test]
    fn more_reflectors_more_interference() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = BackscatterNetwork::new(&cfg(4), 5e-5).unwrap();
        let settle = |net: &mut BackscatterNetwork, st: &[bool], rng: &mut ChaCha8Rng| {
            for _ in 0..2000 {
                net.step(st, rng);
            }
            net.step(st, rng)
        };
        let e0 = settle(&mut net, &[false, false, false, false], &mut rng)[0];
        let e1 = settle(&mut net, &[false, true, false, false], &mut rng)[0];
        let e2 = settle(&mut net, &[false, true, true, true], &mut rng)[0];
        let d1 = (e1 - e0).abs();
        let d2 = (e2 - e0).abs();
        assert!(d2 > d1, "interference should grow: {d1} vs {d2}");
    }

    #[test]
    fn envelopes_scale_with_source_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut weak_cfg = cfg(2);
        weak_cfg.source_power_dbm = 40.0;
        let mut strong = BackscatterNetwork::new(&cfg(2), 5e-5).unwrap();
        let mut weak = BackscatterNetwork::new(&weak_cfg, 5e-5).unwrap();
        let mut es = 0.0;
        let mut ew = 0.0;
        for _ in 0..3000 {
            es = strong.step(&[false, false], &mut rng)[0];
            ew = weak.step(&[false, false], &mut rng)[0];
        }
        // 20 dB power difference → 100× envelope (power) difference.
        assert!((es / ew - 100.0).abs() < 5.0, "ratio {}", es / ew);
    }

    /// Regression for the population-dependent fading bug: with per-hop
    /// derive_seed-keyed streams, growing the network from 3 to 4 devices
    /// must leave every shared hop's coefficient history byte-identical.
    #[test]
    fn fading_streams_are_population_independent() {
        let fading = |c: &mut NetworkConfig| {
            c.fading_source = Fading::Rayleigh { coherence_blocks: 1.0 };
            c.fading_device = Fading::Rayleigh { coherence_blocks: 1.0 };
            c.fading_seed = 42;
        };
        let mut c3 = cfg(3);
        fading(&mut c3);
        // c4: same first three positions, one extra device appended.
        let mut c4 = cfg(3);
        fading(&mut c4);
        c4.positions.push((0.3, 0.7));
        c4.tags.push(c4.tags[0]);
        let mut small = BackscatterNetwork::new(&c3, 5e-5).unwrap();
        let mut big = BackscatterNetwork::new(&c4, 5e-5).unwrap();
        for block in 0..8 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    assert_eq!(
                        small.pair_coeff(i, j),
                        big.pair_coeff(i, j),
                        "pair ({i},{j}) diverged at block {block}"
                    );
                }
            }
            small.advance_fading();
            big.advance_fading();
        }
    }

    /// `NetworkConfig::pair_gain` is the geometry kernel of `pair_coeff`:
    /// for Static device fading the hop coefficient's magnitude equals the
    /// pathloss amplitude gain over the pair distance.
    #[test]
    fn pair_gain_matches_static_pair_coeff() {
        let c = cfg(5);
        let net = BackscatterNetwork::new(&c, 5e-5).unwrap();
        for i in 0..5 {
            for j in (i + 1)..5 {
                let mag = net.pair_coeff(i, j).abs();
                let gain = c.pair_gain(c.positions[i], c.positions[j]);
                assert!(
                    (mag - gain).abs() < 1e-12 * gain.max(1e-30),
                    "({i},{j}): |coeff| {mag} vs pair_gain {gain}"
                );
            }
        }
    }

    /// Stepping only a subset must produce the same envelopes as stepping
    /// the full network with the complement held quiescent would for those
    /// devices — and must be independent of idle-device count by
    /// construction (noise drawn only for subset members).
    #[test]
    fn subset_step_ignores_idle_population() {
        let mut c_small = cfg(3);
        c_small.field_noise_dbm = -110.0;
        // Same first three positions, five extra idle devices appended.
        let mut c_big = c_small.clone();
        for k in 0..5 {
            c_big.positions.push((10.0 + k as f64, 10.0));
            c_big.tags.push(c_big.tags[0]);
        }
        let subset = [0usize, 2];
        let states = [true, false];
        let mut small = BackscatterNetwork::new(&c_small, 5e-5).unwrap();
        let mut big = BackscatterNetwork::new(&c_big, 5e-5).unwrap();
        let mut env_a = Vec::new();
        let mut env_b = Vec::new();
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..500 {
            small.step_subset_into(&subset, &states, &mut rng_a, &mut env_a);
            big.step_subset_into(&subset, &states, &mut rng_b, &mut env_b);
            assert_eq!(env_a, env_b);
        }
        assert_eq!(env_a.len(), subset.len());
    }
}
