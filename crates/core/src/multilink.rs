//! Coexisting full-duplex pairs over one shared ambient source.
//!
//! [`crate::link::FdLink`] owns a private two-device world; this module
//! runs **K pairs at once** on a [`crate::network::BackscatterNetwork`], so
//! every device's receiver sees every other device's backscatter — the
//! regime where dense deployments live. Each pair runs the same PHY
//! (transmitter, receiver, feedback encoder/decoder, SIC) as the
//! single-link simulator; only the field assembly is shared.
//!
//! Frame starts can be staggered per pair: synchronised starts are the
//! worst case for preamble capture, staggered starts model uncoordinated
//! traffic.
//!
//! ## Capture caveat
//!
//! The frame format carries no link addressing, and the preamble
//! correlator is scale-invariant — so over an unrealistically clean
//! excitation (CW, no noise) an idle receiver will happily lock onto a
//! *far* pair's preamble, however faint. Under realistic source
//! fluctuation (the wideband-TV model) faint cross-pair preambles drown in
//! the source noise and capture resolves by SNR, but closely co-located
//! pairs still cross-capture; production deployments would add a link ID
//! to the header (future work noted in DESIGN.md).

use crate::config::PhyConfig;
use crate::error::PhyError;
use crate::feedback::{FeedbackDecoder, FeedbackEncoder};
use crate::frame::BlockStatus;
use crate::network::{BackscatterNetwork, NetworkConfig};
use crate::rx::{DataReceiver, RxState};
use crate::sic::SelfInterferenceCanceller;
use crate::tx::DataTransmitter;
use fdb_device::TagConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Placement of one reader/tag pair on the plane (metres).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairPlacement {
    /// Data transmitter (device A) position.
    pub a: (f64, f64),
    /// Data receiver / feedback transmitter (device B) position.
    pub b: (f64, f64),
}

/// Configuration for a K-pair scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLinkConfig {
    /// Shared PHY parameters.
    pub phy: PhyConfig,
    /// Pair placements.
    pub pairs: Vec<PairPlacement>,
    /// Shared-network physical parameters (source, path loss, noise). The
    /// `positions`/`tags` fields are overwritten from `pairs`.
    pub network: NetworkConfig,
    /// Device A hardware (per pair).
    pub tag_a: TagConfig,
    /// Device B hardware (per pair).
    pub tag_b: TagConfig,
    /// Per-pair frame start offsets in samples (empty = all start at 0).
    pub start_offsets: Vec<usize>,
}

impl MultiLinkConfig {
    /// K pairs in a row: pair `i` is centred at `x = i·pair_spacing_m`,
    /// with its two devices `intra_pair_m` apart along y.
    pub fn row(k: usize, intra_pair_m: f64, pair_spacing_m: f64) -> Self {
        let phy = PhyConfig::default_fd();
        let dt = phy.sample_period_s();
        let mut tag_a = TagConfig::typical(dt);
        tag_a.rho = 0.4;
        let mut tag_b = TagConfig::typical(dt);
        tag_b.rho = 0.2;
        let pairs: Vec<PairPlacement> = (0..k.max(1))
            .map(|i| {
                let x = i as f64 * pair_spacing_m;
                PairPlacement {
                    a: (x, 0.0),
                    b: (x, intra_pair_m),
                }
            })
            .collect();
        let network = NetworkConfig::ring(1, 1.0, tag_a); // placeholder, rebuilt below
        MultiLinkConfig {
            phy,
            pairs,
            network,
            tag_a,
            tag_b,
            start_offsets: Vec::new(),
        }
    }

    fn build_network_config(&self) -> NetworkConfig {
        let mut net = self.network.clone();
        net.positions = self
            .pairs
            .iter()
            .flat_map(|p| [p.a, p.b])
            .collect();
        net.tags = self
            .pairs
            .iter()
            .flat_map(|_| [self.tag_a, self.tag_b])
            .collect();
        net
    }
}

/// Per-pair result of a multi-link run.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Whether this pair's receiver locked.
    pub locked: bool,
    /// Whether the frame fully delivered (all blocks intact).
    pub fully_delivered: bool,
    /// Per-block verdicts of completed blocks.
    pub blocks: Vec<BlockStatus>,
    /// Whether the pair's feedback pilots verified at its transmitter.
    pub pilots_verified: bool,
    /// Decoded feedback bits at the transmitter.
    pub feedback_bits: Vec<bool>,
}

/// Runs one frame per pair, sample-synchronously, on the shared network.
///
/// Every pair uses [`crate::link::FeedbackPolicy`]-`AckStatus` semantics
/// (live status, no abort — measurement mode).
pub fn run_multilink<R: Rng + ?Sized>(
    cfg: &MultiLinkConfig,
    payloads: &[Vec<u8>],
    rng: &mut R,
) -> Result<Vec<PairOutcome>, PhyError> {
    let k = cfg.pairs.len();
    if payloads.len() != k {
        return Err(PhyError::InvalidConfig {
            field: "payloads",
            reason: format!("{} payloads for {k} pairs", payloads.len()),
        });
    }
    cfg.phy.validate()?;
    let phy = &cfg.phy;
    let dt = phy.sample_period_s();
    let spb = phy.samples_per_bit();
    let half_fb = (phy.feedback_ratio / 2) * spb;
    let net_cfg = cfg.build_network_config();
    let mut net = BackscatterNetwork::new(&net_cfg, dt, rng)?;

    let mut txs = Vec::with_capacity(k);
    let mut rxs = Vec::with_capacity(k);
    let mut fb_encs = Vec::with_capacity(k);
    let mut fb_decs = Vec::with_capacity(k);
    let mut sic_a: Vec<SelfInterferenceCanceller> = Vec::with_capacity(k);
    let mut sic_b: Vec<SelfInterferenceCanceller> = Vec::with_capacity(k);
    let mut offsets = Vec::with_capacity(k);
    let mut b_epochs: Vec<Option<usize>> = vec![None; k];
    let mut b_holds = vec![0.0f64; k];
    for (i, payload) in payloads.iter().enumerate() {
        txs.push(DataTransmitter::new(phy, payload)?);
        rxs.push(DataReceiver::new(phy.clone()));
        fb_encs.push(FeedbackEncoder::new(half_fb));
        fb_decs.push(FeedbackDecoder::new(half_fb));
        sic_a.push(SelfInterferenceCanceller::new(
            phy.sic,
            cfg.tag_a.rho,
            cfg.tag_a.rho_residual,
        ));
        sic_b.push(
            SelfInterferenceCanceller::new(phy.sic, cfg.tag_b.rho, cfg.tag_b.rho_residual)
                .with_blanking(2),
        );
        offsets.push(cfg.start_offsets.get(i).copied().unwrap_or(0));
    }
    let total = txs
        .iter()
        .zip(&offsets)
        .map(|(tx, off)| tx.total_samples() + off)
        .max()
        .unwrap_or(0);
    let max_samples = total + 2 * phy.samples_per_feedback_bit() + 8 * spb;
    let mut fb_seen: Vec<Vec<bool>> = vec![Vec::new(); k];

    let mut states = vec![false; 2 * k];
    for t in 0..max_samples {
        // Antenna schedules.
        for i in 0..k {
            let a_state = if t >= offsets[i] {
                txs[i].next_state().unwrap_or(false)
            } else {
                false
            };
            states[2 * i] = a_state;
            let fb_active = b_epochs[i].map(|e| t >= e).unwrap_or(false);
            states[2 * i + 1] = if fb_active {
                if fb_encs[i].at_bit_boundary() {
                    let nack = rxs[i].nack();
                    fb_encs[i].set_idle_bit(!nack);
                }
                fb_encs[i].tick()
            } else {
                false
            };
        }
        let envs = net.step(&states, rng);
        for i in 0..k {
            // B-side data reception.
            let corrected = match sic_b[i].correct(envs[2 * i + 1], states[2 * i + 1]) {
                Some(v) => {
                    b_holds[i] = v;
                    v
                }
                None => b_holds[i],
            };
            let was_locked = rxs[i].state() != RxState::Acquiring;
            rxs[i].push_sample(corrected);
            if !was_locked && rxs[i].state() != RxState::Acquiring {
                b_epochs[i] = Some(t + phy.feedback_guard_bits * spb);
            }
            // A-side feedback reception (epoch mirrors its own frame start).
            let a_epoch =
                offsets[i] + (phy.preamble.len() + phy.feedback_guard_bits) * spb;
            if t >= a_epoch {
                if let Some(v) = sic_a[i].correct(envs[2 * i], states[2 * i]) {
                    if let Some(d) = fb_decs[i].push(v) {
                        fb_seen[i].push(d.bit);
                    }
                }
            }
        }
    }

    Ok((0..k)
        .map(|i| {
            let locked = rxs[i].state() != RxState::Acquiring;
            let result = rxs[i].take_result();
            let (fully, blocks) = match result {
                Some(r) => (
                    !r.blocks.is_empty() && r.blocks.iter().all(|b| b.ok),
                    r.blocks,
                ),
                None => (false, rxs[i].blocks().to_vec()),
            };
            PairOutcome {
                locked,
                fully_delivered: fully,
                blocks,
                pilots_verified: fb_decs[i].pilots_verified(),
                feedback_bits: std::mem::take(&mut fb_seen[i]),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(k: usize, spacing: f64) -> MultiLinkConfig {
        let mut c = MultiLinkConfig::row(k, 0.4, spacing);
        // Realistic excitation: the source fluctuation is what keeps idle
        // receivers from capturing far pairs' faint preambles (see the
        // module-level capture caveat).
        c.network.ambient = AmbientConfig::TvWideband { k_factor: 300.0 };
        // Stagger starts so preambles don't collide.
        c.start_offsets = (0..k).map(|i| i * 977).collect();
        c
    }

    #[test]
    fn single_pair_matches_link_behaviour() {
        let mut rng = ChaCha8Rng::seed_from_u64(700);
        let c = cfg(1, 5.0);
        let payloads = vec![vec![0xA5u8; 48]];
        let out = run_multilink(&c, &payloads, &mut rng).unwrap();
        assert!(out[0].locked);
        assert!(out[0].fully_delivered, "blocks {:?}", out[0].blocks);
        assert!(out[0].pilots_verified);
        assert!(out[0].feedback_bits.iter().all(|&b| b));
    }

    #[test]
    fn distant_pairs_coexist() {
        let mut rng = ChaCha8Rng::seed_from_u64(701);
        let c = cfg(2, 20.0); // 20 m apart: negligible cross-talk
        let payloads = vec![vec![1u8; 48], vec![2u8; 48]];
        let out = run_multilink(&c, &payloads, &mut rng).unwrap();
        for (i, o) in out.iter().enumerate() {
            assert!(o.fully_delivered, "pair {i} lost its frame");
        }
    }

    #[test]
    fn colocated_pairs_interfere() {
        let mut rng = ChaCha8Rng::seed_from_u64(702);
        // Pairs 0.5 m apart: cross-device distances comparable to the
        // intra-pair distance — heavy mutual interference.
        let c = cfg(2, 0.5);
        let payloads = vec![vec![1u8; 48], vec![2u8; 48]];
        let mut failures = 0;
        for _ in 0..4 {
            let out = run_multilink(&c, &payloads, &mut rng).unwrap();
            failures += out.iter().filter(|o| !o.fully_delivered).count();
        }
        assert!(failures > 0, "co-located pairs should interfere");
    }

    #[test]
    fn payload_count_mismatch_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(703);
        let c = cfg(2, 5.0);
        assert!(run_multilink(&c, &[vec![1u8; 8]], &mut rng).is_err());
    }
}
