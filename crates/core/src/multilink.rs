//! Coexisting full-duplex pairs over one shared ambient source.
//!
//! [`crate::link::FdLink`] owns a private two-device world; this module
//! runs **K pairs at once** on a [`crate::network::BackscatterNetwork`], so
//! every device's receiver sees every other device's backscatter — the
//! regime where dense deployments live. Each pair runs the same PHY
//! (transmitter, receiver, feedback encoder/decoder, SIC) as the
//! single-link simulator; only the field assembly is shared.
//!
//! Frame starts can be staggered per pair: synchronised starts are the
//! worst case for preamble capture, staggered starts model uncoordinated
//! traffic.
//!
//! ## Capture caveat
//!
//! The frame format carries no link addressing, and the preamble
//! correlator is scale-invariant — so over an unrealistically clean
//! excitation (CW, no noise) an idle receiver will happily lock onto a
//! *far* pair's preamble, however faint. Under realistic source
//! fluctuation (the wideband-TV model) faint cross-pair preambles drown in
//! the source noise and capture resolves by SNR, but closely co-located
//! pairs still cross-capture; production deployments would add a link ID
//! to the header (future work noted in DESIGN.md).

use crate::config::PhyConfig;
use crate::error::PhyError;
use crate::feedback::{FeedbackDecoder, FeedbackEncoder};
use crate::frame::BlockStatus;
use crate::network::{BackscatterNetwork, NetworkConfig};
use crate::rx::{DataReceiver, RxState};
use crate::sic::SelfInterferenceCanceller;
use crate::tx::DataTransmitter;
use fdb_device::TagConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Placement of one reader/tag pair on the plane (metres).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairPlacement {
    /// Data transmitter (device A) position.
    pub a: (f64, f64),
    /// Data receiver / feedback transmitter (device B) position.
    pub b: (f64, f64),
}

/// Configuration for a K-pair scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLinkConfig {
    /// Shared PHY parameters.
    pub phy: PhyConfig,
    /// Pair placements.
    pub pairs: Vec<PairPlacement>,
    /// Shared-network physical parameters (source, path loss, noise). The
    /// `positions`/`tags` fields are overwritten from `pairs`.
    pub network: NetworkConfig,
    /// Device A hardware (per pair).
    pub tag_a: TagConfig,
    /// Device B hardware (per pair).
    pub tag_b: TagConfig,
    /// Per-pair frame start offsets in samples (empty = all start at 0).
    pub start_offsets: Vec<usize>,
}

impl MultiLinkConfig {
    /// K pairs in a row: pair `i` is centred at `x = i·pair_spacing_m`,
    /// with its two devices `intra_pair_m` apart along y.
    pub fn row(k: usize, intra_pair_m: f64, pair_spacing_m: f64) -> Self {
        let phy = PhyConfig::default_fd();
        let dt = phy.sample_period_s();
        let mut tag_a = TagConfig::typical(dt);
        tag_a.rho = 0.4;
        let mut tag_b = TagConfig::typical(dt);
        tag_b.rho = 0.2;
        let pairs: Vec<PairPlacement> = (0..k.max(1))
            .map(|i| {
                let x = i as f64 * pair_spacing_m;
                PairPlacement {
                    a: (x, 0.0),
                    b: (x, intra_pair_m),
                }
            })
            .collect();
        let network = NetworkConfig::ring(1, 1.0, tag_a); // placeholder, rebuilt below
        MultiLinkConfig {
            phy,
            pairs,
            network,
            tag_a,
            tag_b,
            start_offsets: Vec::new(),
        }
    }

    /// Writes the expanded network config (positions/tags from `pairs`)
    /// into `net`, reusing its buffers.
    fn write_network_config(&self, net: &mut NetworkConfig) {
        net.source_dist_m = self.network.source_dist_m;
        net.source_power_dbm = self.network.source_power_dbm;
        net.pathloss_source = self.network.pathloss_source;
        net.pathloss_device = self.network.pathloss_device;
        net.fading_source = self.network.fading_source;
        net.fading_device = self.network.fading_device;
        net.ambient = self.network.ambient;
        net.field_noise_dbm = self.network.field_noise_dbm;
        net.ambient_seed = self.network.ambient_seed;
        net.fading_seed = self.network.fading_seed;
        net.positions.clear();
        net.positions
            .extend(self.pairs.iter().flat_map(|p| [p.a, p.b]));
        net.tags.clear();
        net.tags
            .extend(self.pairs.iter().flat_map(|_| [self.tag_a, self.tag_b]));
    }
}

/// Per-pair result of a multi-link run.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Whether this pair's receiver locked.
    pub locked: bool,
    /// Whether the frame fully delivered (all blocks intact).
    pub fully_delivered: bool,
    /// Per-block verdicts of completed blocks.
    pub blocks: Vec<BlockStatus>,
    /// Whether the pair's feedback pilots verified at its transmitter.
    pub pilots_verified: bool,
    /// Decoded feedback bits at the transmitter.
    pub feedback_bits: Vec<bool>,
}

/// Reusable working set for [`run_multilink_into`]: every per-pair engine
/// and staging buffer one K-pair frame needs, retained across frames.
///
/// The multi-link analogue of [`crate::scratch::LinkScratch`]: construct
/// once per worker, thread through every frame by `&mut` borrow. The
/// first frame (and any frame that grows the pair count) allocates; at a
/// steady pair count, frames allocate nothing.
#[derive(Default)]
pub struct MultiLinkScratch {
    txs: Vec<DataTransmitter>,
    rxs: Vec<DataReceiver>,
    fb_encs: Vec<FeedbackEncoder>,
    fb_decs: Vec<FeedbackDecoder>,
    sic_a: Vec<SelfInterferenceCanceller>,
    sic_b: Vec<SelfInterferenceCanceller>,
    offsets: Vec<usize>,
    b_epochs: Vec<Option<usize>>,
    b_holds: Vec<f64>,
    fb_seen: Vec<Vec<bool>>,
    states: Vec<bool>,
    envs: Vec<f64>,
    net_cfg: Option<NetworkConfig>,
    net: Option<BackscatterNetwork>,
}

/// Runs one frame per pair, sample-synchronously, on the shared network.
///
/// Every pair uses [`crate::link::FeedbackPolicy`]-`AckStatus` semantics
/// (live status, no abort — measurement mode). Allocates a fresh scratch
/// and result per call; repeated-frame callers should hold a
/// [`MultiLinkScratch`] and use [`run_multilink_into`].
pub fn run_multilink<R: Rng + ?Sized>(
    cfg: &MultiLinkConfig,
    payloads: &[Vec<u8>],
    rng: &mut R,
) -> Result<Vec<PairOutcome>, PhyError> {
    let mut scratch = MultiLinkScratch::default();
    let mut out = Vec::new();
    run_multilink_into(cfg, payloads, rng, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`run_multilink`] into reused storage: per-pair engines, staging
/// buffers and the network itself live in `scratch`, and `out` is
/// refilled in place (one [`PairOutcome`] per pair, capacity retained).
///
/// Byte-identical to [`run_multilink`] — the network rebuild replays the
/// same seed-keyed per-hop fading streams as a fresh construction.
pub fn run_multilink_into<R: Rng + ?Sized>(
    cfg: &MultiLinkConfig,
    payloads: &[Vec<u8>],
    rng: &mut R,
    scratch: &mut MultiLinkScratch,
    out: &mut Vec<PairOutcome>,
) -> Result<(), PhyError> {
    let k = cfg.pairs.len();
    if payloads.len() != k {
        return Err(PhyError::InvalidConfig {
            field: "payloads",
            reason: format!("{} payloads for {k} pairs", payloads.len()),
        });
    }
    cfg.phy.validate()?;
    let phy = &cfg.phy;
    let dt = phy.sample_period_s();
    let spb = phy.samples_per_bit();
    let half_fb = (phy.feedback_ratio / 2) * spb;
    let net_cfg = match scratch.net_cfg.as_mut() {
        Some(n) => {
            cfg.write_network_config(n);
            n
        }
        None => {
            let mut n = cfg.network.clone();
            cfg.write_network_config(&mut n);
            scratch.net_cfg.insert(n)
        }
    };
    let net = match scratch.net.as_mut() {
        Some(n) => {
            n.reinit(net_cfg, dt)?;
            n
        }
        None => scratch.net.insert(BackscatterNetwork::new(net_cfg, dt)?),
    };

    // Per-pair engines: reload every slot that already exists, then grow
    // or shrink to K. A pool that oscillates between pair counts (the
    // city engine's active-link slots) only ever allocates for slots
    // beyond the high-water mark.
    let reuse = scratch.txs.len().min(k);
    for (i, payload) in payloads.iter().enumerate().take(reuse) {
        scratch.txs[i].load(phy, payload)?;
        scratch.rxs[i].load(phy);
        scratch.fb_encs[i].rearm(half_fb);
        scratch.fb_decs[i].rearm(half_fb);
    }
    scratch.txs.truncate(k);
    scratch.rxs.truncate(k);
    scratch.fb_encs.truncate(k);
    scratch.fb_decs.truncate(k);
    for payload in payloads.iter().skip(reuse) {
        scratch.txs.push(DataTransmitter::new(phy, payload)?);
        scratch.rxs.push(DataReceiver::new(phy.clone()));
        scratch.fb_encs.push(FeedbackEncoder::new(half_fb));
        scratch.fb_decs.push(FeedbackDecoder::new(half_fb));
    }
    scratch.sic_a.clear();
    scratch.sic_b.clear();
    scratch.offsets.clear();
    for i in 0..k {
        scratch.sic_a.push(SelfInterferenceCanceller::new(
            phy.sic,
            cfg.tag_a.rho,
            cfg.tag_a.rho_residual,
        ));
        scratch.sic_b.push(
            SelfInterferenceCanceller::new(phy.sic, cfg.tag_b.rho, cfg.tag_b.rho_residual)
                .with_blanking(2),
        );
        scratch.offsets.push(cfg.start_offsets.get(i).copied().unwrap_or(0));
    }
    scratch.b_epochs.clear();
    scratch.b_epochs.resize(k, None);
    scratch.b_holds.clear();
    scratch.b_holds.resize(k, 0.0);
    if scratch.fb_seen.len() < k {
        scratch.fb_seen.resize_with(k, Vec::new);
    }
    for seen in &mut scratch.fb_seen {
        seen.clear();
    }
    let total = scratch
        .txs
        .iter()
        .zip(&scratch.offsets)
        .map(|(tx, off)| tx.total_samples() + off)
        .max()
        .unwrap_or(0);
    let max_samples = total + 2 * phy.samples_per_feedback_bit() + 8 * spb;

    scratch.states.clear();
    scratch.states.resize(2 * k, false);
    for t in 0..max_samples {
        // Antenna schedules.
        for i in 0..k {
            let a_state = if t >= scratch.offsets[i] {
                scratch.txs[i].next_state().unwrap_or(false)
            } else {
                false
            };
            scratch.states[2 * i] = a_state;
            let fb_active = scratch.b_epochs[i].map(|e| t >= e).unwrap_or(false);
            scratch.states[2 * i + 1] = if fb_active {
                if scratch.fb_encs[i].at_bit_boundary() {
                    let nack = scratch.rxs[i].nack();
                    scratch.fb_encs[i].set_idle_bit(!nack);
                }
                scratch.fb_encs[i].tick()
            } else {
                false
            };
        }
        net.step_into(&scratch.states, rng, &mut scratch.envs);
        let envs = &scratch.envs;
        for i in 0..k {
            // B-side data reception.
            let corrected = match scratch.sic_b[i].correct(envs[2 * i + 1], scratch.states[2 * i + 1])
            {
                Some(v) => {
                    scratch.b_holds[i] = v;
                    v
                }
                None => scratch.b_holds[i],
            };
            let was_locked = scratch.rxs[i].state() != RxState::Acquiring;
            scratch.rxs[i].push_sample(corrected);
            if !was_locked && scratch.rxs[i].state() != RxState::Acquiring {
                scratch.b_epochs[i] = Some(t + phy.feedback_guard_bits * spb);
            }
            // A-side feedback reception (epoch mirrors its own frame start).
            let a_epoch =
                scratch.offsets[i] + (phy.preamble.len() + phy.feedback_guard_bits) * spb;
            if t >= a_epoch {
                if let Some(v) = scratch.sic_a[i].correct(envs[2 * i], scratch.states[2 * i]) {
                    if let Some(d) = scratch.fb_decs[i].push(v) {
                        scratch.fb_seen[i].push(d.bit);
                    }
                }
            }
        }
    }

    out.truncate(k);
    while out.len() < k {
        out.push(PairOutcome {
            locked: false,
            fully_delivered: false,
            blocks: Vec::new(),
            pilots_verified: false,
            feedback_bits: Vec::new(),
        });
    }
    for (i, o) in out.iter_mut().enumerate() {
        o.locked = scratch.rxs[i].state() != RxState::Acquiring;
        o.blocks.clear();
        match scratch.rxs[i].take_result() {
            Some(r) => {
                o.fully_delivered = !r.blocks.is_empty() && r.blocks.iter().all(|b| b.ok);
                o.blocks.extend_from_slice(&r.blocks);
                scratch.rxs[i].recycle_result(r);
            }
            None => {
                o.fully_delivered = false;
                o.blocks.extend_from_slice(scratch.rxs[i].blocks());
            }
        }
        o.pilots_verified = scratch.fb_decs[i].pilots_verified();
        o.feedback_bits.clear();
        o.feedback_bits.extend_from_slice(&scratch.fb_seen[i]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(k: usize, spacing: f64) -> MultiLinkConfig {
        let mut c = MultiLinkConfig::row(k, 0.4, spacing);
        // Realistic excitation: the source fluctuation is what keeps idle
        // receivers from capturing far pairs' faint preambles (see the
        // module-level capture caveat).
        c.network.ambient = AmbientConfig::TvWideband { k_factor: 300.0 };
        // Stagger starts so preambles don't collide.
        c.start_offsets = (0..k).map(|i| i * 977).collect();
        c
    }

    #[test]
    fn single_pair_matches_link_behaviour() {
        let mut rng = ChaCha8Rng::seed_from_u64(700);
        let c = cfg(1, 5.0);
        let payloads = vec![vec![0xA5u8; 48]];
        let out = run_multilink(&c, &payloads, &mut rng).unwrap();
        assert!(out[0].locked);
        assert!(out[0].fully_delivered, "blocks {:?}", out[0].blocks);
        assert!(out[0].pilots_verified);
        assert!(out[0].feedback_bits.iter().all(|&b| b));
    }

    #[test]
    fn distant_pairs_coexist() {
        let mut rng = ChaCha8Rng::seed_from_u64(701);
        let c = cfg(2, 20.0); // 20 m apart: negligible cross-talk
        let payloads = vec![vec![1u8; 48], vec![2u8; 48]];
        let out = run_multilink(&c, &payloads, &mut rng).unwrap();
        for (i, o) in out.iter().enumerate() {
            assert!(o.fully_delivered, "pair {i} lost its frame");
        }
    }

    #[test]
    fn colocated_pairs_interfere() {
        let mut rng = ChaCha8Rng::seed_from_u64(702);
        // Pairs 0.5 m apart: cross-device distances comparable to the
        // intra-pair distance — heavy mutual interference.
        let c = cfg(2, 0.5);
        let payloads = vec![vec![1u8; 48], vec![2u8; 48]];
        let mut failures = 0;
        for _ in 0..4 {
            let out = run_multilink(&c, &payloads, &mut rng).unwrap();
            failures += out.iter().filter(|o| !o.fully_delivered).count();
        }
        assert!(failures > 0, "co-located pairs should interfere");
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        let c = cfg(2, 5.0);
        let payloads = vec![vec![1u8; 48], vec![2u8; 48]];
        let mut scratch = MultiLinkScratch::default();
        let mut out = Vec::new();
        for seed in [800u64, 801, 802] {
            let fresh =
                run_multilink(&c, &payloads, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
            run_multilink_into(
                &c,
                &payloads,
                &mut ChaCha8Rng::seed_from_u64(seed),
                &mut scratch,
                &mut out,
            )
            .unwrap();
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.locked, b.locked);
                assert_eq!(a.fully_delivered, b.fully_delivered);
                assert_eq!(a.blocks, b.blocks);
                assert_eq!(a.pilots_verified, b.pilots_verified);
                assert_eq!(a.feedback_bits, b.feedback_bits);
            }
        }
    }

    #[test]
    fn payload_count_mismatch_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(703);
        let c = cfg(2, 5.0);
        assert!(run_multilink(&c, &[vec![1u8; 8]], &mut rng).is_err());
    }
}
