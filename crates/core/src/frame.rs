//! Frame format: length header + per-block CRC payload.
//!
//! The frame layout is built around the *instantaneous feedback* use case:
//! the payload is cut into small blocks, each closed by a CRC-8 trailer, so
//! the receiver knows within one block whether reception is still healthy —
//! that per-block verdict is what the feedback channel streams back while
//! the frame is still in the air.
//!
//! Layout (bit order MSB-first, before line coding; the preamble is added
//! by the transmitter, not here):
//!
//! ```text
//! [ length u16 + CRC-8, Hamming(7,4)-coded : 42 bits ]
//! [ block 0 : block_len bytes + CRC-8 ][ block 1 : … ] … [ last block (short ok) + CRC-8 ]
//! ```
//!
//! The header is Hamming-protected because nothing can be retransmitted if
//! the receiver doesn't even learn the frame length; payload blocks rely on
//! detection + feedback instead of FEC (the paper's design point: spend the
//! energy budget on retransmitting only what broke).

use crate::config::PhyConfig;
use crate::error::PhyError;
use fdb_dsp::crc::crc8;
use fdb_dsp::fec::{
    hamming74_decode_stream_into, hamming74_encode_into, Interleaver,
};
use fdb_dsp::prbs::{PrbsOrder, Scrambler};

/// Interleaver depth used when `payload_fec` is on: spreads a burst of up
/// to 7 chip errors across distinct Hamming codewords.
const FEC_INTERLEAVE_ROWS: usize = 7;

/// Scrambler seed — fixed protocol constant (both ends must agree).
const SCRAMBLE_SEED: u64 = 0x1CEB00DA;

/// Mask XORed into the header CRC. Without it, an all-zero bit stream
/// (e.g. a slicer stuck at one level) decodes as a *valid* empty frame:
/// length 0 with CRC-8(0,0) = 0. The mask makes the degenerate pattern
/// fail header validation.
const HEADER_CRC_MASK: u8 = 0x5C;

/// Header length in coded bits: (2 length bytes + 1 CRC byte) × 14.
pub const HEADER_BITS: usize = 42;

/// Maximum payload size representable by the u16 length field.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// Converts bytes to MSB-first bits.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    bytes_to_bits_into(bytes, &mut bits);
    bits
}

/// [`bytes_to_bits`] appending into a caller-owned buffer (not cleared, so
/// a frame assembler can chain sections without an intermediate copy).
pub fn bytes_to_bits_into(bytes: &[u8], out: &mut Vec<bool>) {
    out.reserve(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            out.push((b >> i) & 1 == 1);
        }
    }
}

/// Converts MSB-first bits to bytes (trailing partial byte dropped).
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len() / 8);
    bits_to_bytes_into(bits, &mut out);
    out
}

/// [`bits_to_bytes`] into a caller-owned buffer (cleared and refilled,
/// capacity retained).
pub fn bits_to_bytes_into(bits: &[bool], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(bits.len() / 8);
    out.extend(
        bits.chunks_exact(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b))),
    );
}

/// Number of CRC blocks a payload of `len` bytes occupies.
pub fn block_count(len: usize, block_len: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(block_len)
    }
}

/// Bits on the air for one block carrying `payload_bytes` of payload
/// (+1 CRC byte), with or without FEC.
pub fn block_bits(cfg: &PhyConfig, payload_bytes: usize) -> usize {
    let raw = (payload_bytes + 1) * 8;
    if cfg.payload_fec {
        raw / 4 * 7 // Hamming(7,4): 14 coded bits per byte
    } else {
        raw
    }
}

/// Total frame length in (pre-line-code) bits for a payload of `len` bytes.
pub fn frame_bits_len(cfg: &PhyConfig, len: usize) -> usize {
    let mut bits = HEADER_BITS;
    let bl = cfg.block_len_bytes;
    let mut remaining = len;
    while remaining > 0 {
        let this = remaining.min(bl);
        bits += block_bits(cfg, this);
        remaining -= this;
    }
    bits
}

/// Reusable working buffers for [`encode_frame_into`]: per-block byte
/// staging, the Hamming-coded bit run, and its interleaved form. Owned by
/// whoever encodes frames repeatedly (the transmitter's scratch arena) so
/// steady-state encoding performs no heap allocations.
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    bytes: Vec<u8>,
    coded: Vec<bool>,
    inter: Vec<bool>,
}

/// Encodes a frame body (header + blocks), excluding the preamble.
pub fn encode_frame(cfg: &PhyConfig, payload: &[u8]) -> Result<Vec<bool>, PhyError> {
    let mut scratch = EncodeScratch::default();
    let mut bits = Vec::new();
    encode_frame_into(cfg, payload, &mut scratch, &mut bits)?;
    Ok(bits)
}

/// [`encode_frame`] into a caller-owned buffer: `out` is cleared and
/// refilled (capacity retained) with bit-identical content to the owned
/// path; intermediates live in `scratch`.
pub fn encode_frame_into(
    cfg: &PhyConfig,
    payload: &[u8],
    scratch: &mut EncodeScratch,
    out: &mut Vec<bool>,
) -> Result<(), PhyError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(PhyError::PayloadTooLarge {
            got: payload.len(),
            max: MAX_PAYLOAD,
        });
    }
    out.clear();
    out.reserve(frame_bits_len(cfg, payload.len()));
    let len = payload.len() as u16;
    let len_bytes = len.to_be_bytes();
    let hdr_crc = crc8(&len_bytes) ^ HEADER_CRC_MASK;
    hamming74_encode_into(&[len_bytes[0], len_bytes[1], hdr_crc], out);
    debug_assert_eq!(out.len(), HEADER_BITS);

    let EncodeScratch { bytes, coded, inter } = scratch;
    let interleaver = Interleaver::new(FEC_INTERLEAVE_ROWS);
    for block in payload.chunks(cfg.block_len_bytes) {
        if cfg.payload_fec {
            bytes.clear();
            bytes.extend_from_slice(block);
            bytes.push(crc8(block));
            coded.clear();
            hamming74_encode_into(bytes, coded);
            interleaver.interleave_into(coded, inter);
            out.extend_from_slice(inter);
        } else {
            bytes_to_bits_into(block, out);
            bytes_to_bits_into(&[crc8(block)], out);
        }
    }
    if cfg.scramble {
        Scrambler::new(PrbsOrder::Prbs23, SCRAMBLE_SEED).apply(&mut out[HEADER_BITS..]);
    }
    Ok(())
}

/// Per-block verdict from the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStatus {
    /// Block index within the frame.
    pub index: usize,
    /// Whether the block's CRC-8 verified.
    pub ok: bool,
}

/// Events emitted by [`FrameParser::push_bit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEvent {
    /// The header decoded successfully; the frame will carry this many
    /// payload bytes.
    Header {
        /// Payload length in bytes.
        payload_len: usize,
    },
    /// The header failed its CRC even after Hamming correction — the frame
    /// cannot be recovered.
    HeaderInvalid,
    /// A payload block completed (CRC verdict attached).
    Block(BlockStatus),
    /// The final block completed; the frame is done. The payload bytes are
    /// available via [`FrameParser::partial_payload`] as received (blocks
    /// that failed CRC are included — the MAC decides what to do with
    /// them), and the per-block verdicts via [`FrameParser::blocks`]. The
    /// event itself carries no buffers so the hot path stays
    /// allocation-free.
    Done,
}

enum ParserState {
    Header,
    Body { payload_len: usize },
    Finished,
    Dead,
}

/// Streaming frame parser: feed decoded data bits, receive structure.
pub struct FrameParser {
    cfg: PhyConfig,
    state: ParserState,
    bits: Vec<bool>,
    descrambler: Scrambler,
    payload: Vec<u8>,
    blocks: Vec<BlockStatus>,
    /// Deinterleave scratch for the FEC block path.
    work_bits: Vec<bool>,
    /// Hamming/byte-packing output scratch for header and block decode.
    work_bytes: Vec<u8>,
}

impl FrameParser {
    /// Creates a parser for one frame.
    pub fn new(cfg: PhyConfig) -> Self {
        FrameParser {
            cfg,
            state: ParserState::Header,
            bits: Vec::with_capacity(HEADER_BITS),
            descrambler: Scrambler::new(PrbsOrder::Prbs23, SCRAMBLE_SEED),
            payload: Vec::new(),
            blocks: Vec::new(),
            work_bits: Vec::new(),
            work_bytes: Vec::new(),
        }
    }

    /// Returns the parser to its start-of-frame state without releasing any
    /// buffer capacity: observably identical to a fresh
    /// [`FrameParser::new`] with the same config, but allocation-free.
    pub fn reset(&mut self) {
        self.state = ParserState::Header;
        self.bits.clear();
        self.descrambler = Scrambler::new(PrbsOrder::Prbs23, SCRAMBLE_SEED);
        self.payload.clear();
        self.blocks.clear();
    }

    /// `true` once the frame is fully parsed or unrecoverable.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, ParserState::Finished | ParserState::Dead)
    }

    /// Number of payload bytes expected (known after the header parses).
    pub fn payload_len(&self) -> Option<usize> {
        match self.state {
            ParserState::Body { payload_len } => Some(payload_len),
            ParserState::Finished => Some(self.payload.len()),
            _ => None,
        }
    }

    /// Feeds one decoded bit; may emit a structural event.
    pub fn push_bit(&mut self, bit: bool) -> Option<ParseEvent> {
        match self.state {
            ParserState::Header => {
                self.bits.push(bit);
                if self.bits.len() < HEADER_BITS {
                    return None;
                }
                hamming74_decode_stream_into(&self.bits, &mut self.work_bytes);
                self.bits.clear();
                let bytes = &self.work_bytes;
                if bytes.len() != 3 || crc8(&bytes[..2]) ^ HEADER_CRC_MASK != bytes[2] {
                    self.state = ParserState::Dead;
                    return Some(ParseEvent::HeaderInvalid);
                }
                let payload_len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
                if payload_len == 0 {
                    self.state = ParserState::Finished;
                    return Some(ParseEvent::Done);
                }
                self.state = ParserState::Body { payload_len };
                Some(ParseEvent::Header { payload_len })
            }
            ParserState::Body { payload_len } => {
                let b = if self.cfg.scramble {
                    let mut tmp = [bit];
                    self.descrambler.apply(&mut tmp);
                    tmp[0]
                } else {
                    bit
                };
                self.bits.push(b);
                let block_index = self.blocks.len();
                let this_block_payload = self
                    .cfg
                    .block_len_bytes
                    .min(payload_len - block_index * self.cfg.block_len_bytes);
                let need = block_bits(&self.cfg, this_block_payload);
                if self.bits.len() < need {
                    return None;
                }
                if self.cfg.payload_fec {
                    Interleaver::new(FEC_INTERLEAVE_ROWS)
                        .deinterleave_into(&self.bits, &mut self.work_bits);
                    hamming74_decode_stream_into(&self.work_bits, &mut self.work_bytes);
                } else {
                    bits_to_bytes_into(&self.bits, &mut self.work_bytes);
                }
                self.bits.clear();
                let (data, crc_byte) = self.work_bytes.split_at(this_block_payload);
                let ok = crc8(data) == crc_byte[0];
                let status = BlockStatus {
                    index: block_index,
                    ok,
                };
                self.payload.extend_from_slice(data);
                self.blocks.push(status);
                if self.payload.len() >= payload_len {
                    self.state = ParserState::Finished;
                    Some(ParseEvent::Done)
                } else {
                    Some(ParseEvent::Block(status))
                }
            }
            ParserState::Finished | ParserState::Dead => None,
        }
    }

    /// `true` if every completed block so far verified.
    pub fn all_blocks_ok(&self) -> bool {
        self.blocks.iter().all(|b| b.ok)
    }

    /// Per-block verdicts so far.
    pub fn blocks(&self) -> &[BlockStatus] {
        &self.blocks
    }

    /// Payload bytes of all *completed* blocks so far — available even when
    /// the frame never finishes (the transmitter aborted mid-air). Partial
    /// retransmission protocols build on this.
    pub fn partial_payload(&self) -> &[u8] {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhyConfig {
        PhyConfig::default_fd()
    }

    fn run_parser(cfg: &PhyConfig, bits: &[bool]) -> (Vec<ParseEvent>, FrameParser) {
        let mut p = FrameParser::new(cfg.clone());
        let mut evs = Vec::new();
        for &b in bits {
            if let Some(e) = p.push_bit(b) {
                evs.push(e);
            }
        }
        (evs, p)
    }

    #[test]
    fn round_trip_clean() {
        let cfg = cfg();
        let payload: Vec<u8> = (0..40u8).collect();
        let bits = encode_frame(&cfg, &payload).unwrap();
        assert_eq!(bits.len(), frame_bits_len(&cfg, payload.len()));
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert_eq!(p.partial_payload(), &payload);
        assert_eq!(p.blocks().len(), 3); // 16+16+8
        assert!(p.all_blocks_ok());
    }

    #[test]
    fn empty_payload_frame() {
        let cfg = cfg();
        let bits = encode_frame(&cfg, &[]).unwrap();
        assert_eq!(bits.len(), HEADER_BITS);
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert!(p.partial_payload().is_empty());
        assert!(p.blocks().is_empty());
    }

    #[test]
    fn block_error_is_localised() {
        let cfg = cfg();
        let payload: Vec<u8> = (0..48u8).collect(); // 3 full blocks
        let mut bits = encode_frame(&cfg, &payload).unwrap();
        // Corrupt one bit inside block 1 (after header + block0).
        let pos = HEADER_BITS + (16 + 1) * 8 + 5;
        bits[pos] = !bits[pos];
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert!(p.blocks()[0].ok);
        assert!(!p.blocks()[1].ok);
        assert!(p.blocks()[2].ok);
    }

    #[test]
    fn header_survives_single_bit_error() {
        let cfg = cfg();
        let payload = vec![7u8; 5];
        for pos in 0..HEADER_BITS {
            let mut bits = encode_frame(&cfg, &payload).unwrap();
            bits[pos] = !bits[pos];
            let (evs, p) = run_parser(&cfg, &bits);
            assert!(
                matches!(evs.last().unwrap(), ParseEvent::Done)
                    && p.partial_payload() == payload,
                "failed at header bit {pos}"
            );
        }
    }

    #[test]
    fn shredded_header_reports_invalid() {
        let cfg = cfg();
        let mut bits = encode_frame(&cfg, &[1, 2, 3]).unwrap();
        // Many errors defeat Hamming; header CRC must catch it.
        for pos in (0..HEADER_BITS).step_by(2) {
            bits[pos] = !bits[pos];
        }
        let (evs, _) = run_parser(&cfg, &bits);
        assert!(evs.iter().any(|e| matches!(e, ParseEvent::HeaderInvalid)));
    }

    #[test]
    fn scrambling_round_trips_and_changes_bits() {
        let mut c1 = cfg();
        c1.scramble = true;
        let mut c2 = cfg();
        c2.scramble = false;
        let payload = vec![0u8; 32]; // pathological all-zero
        let b1 = encode_frame(&c1, &payload).unwrap();
        let b2 = encode_frame(&c2, &payload).unwrap();
        assert_ne!(b1, b2);
        // Scrambled body should not be constant.
        let body = &b1[HEADER_BITS..];
        assert!(body.iter().any(|&b| b) && body.iter().any(|&b| !b));
        // And still decode.
        let (evs, p) = run_parser(&c1, &b1);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert_eq!(p.partial_payload(), &payload);
    }

    #[test]
    fn partial_last_block() {
        let cfg = cfg();
        let payload: Vec<u8> = (0..20u8).collect(); // 16 + 4
        let bits = encode_frame(&cfg, &payload).unwrap();
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert_eq!(p.partial_payload(), &payload);
        assert_eq!(p.blocks().len(), 2);
    }

    #[test]
    fn reset_matches_fresh_parser() {
        // A reset parser must be observably identical to a new one — same
        // events, same payload/blocks — across consecutive frames of
        // different sizes, with and without scrambling/FEC.
        for (scramble, fec) in [(false, false), (true, false), (true, true)] {
            let mut c = cfg();
            c.scramble = scramble;
            c.payload_fec = fec;
            let mut reused = FrameParser::new(c.clone());
            for len in [40usize, 5, 0, 33] {
                let payload: Vec<u8> = (0..len as u16).map(|i| (i * 7) as u8).collect();
                let bits = encode_frame(&c, &payload).unwrap();
                reused.reset();
                let mut reused_evs = Vec::new();
                for &b in &bits {
                    if let Some(e) = reused.push_bit(b) {
                        reused_evs.push(e);
                    }
                }
                let (fresh_evs, fresh) = run_parser(&c, &bits);
                assert_eq!(reused_evs, fresh_evs, "len {len}");
                assert_eq!(reused.partial_payload(), fresh.partial_payload());
                assert_eq!(reused.blocks(), fresh.blocks());
            }
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let cfg = cfg();
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            encode_frame(&cfg, &payload),
            Err(PhyError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn bits_bytes_round_trip() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn block_count_arithmetic() {
        assert_eq!(block_count(0, 16), 0);
        assert_eq!(block_count(1, 16), 1);
        assert_eq!(block_count(16, 16), 1);
        assert_eq!(block_count(17, 16), 2);
        assert_eq!(block_count(48, 16), 3);
    }

    #[test]
    fn fec_round_trip_clean() {
        let mut cfg = cfg();
        cfg.payload_fec = true;
        let payload: Vec<u8> = (0..40u8).collect();
        let bits = encode_frame(&cfg, &payload).unwrap();
        assert_eq!(bits.len(), frame_bits_len(&cfg, payload.len()));
        // 1.75x the uncoded body length.
        let mut plain = cfg.clone();
        plain.payload_fec = false;
        let plain_bits = frame_bits_len(&plain, payload.len()) - HEADER_BITS;
        assert_eq!(bits.len() - HEADER_BITS, plain_bits / 4 * 7);
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert_eq!(p.partial_payload(), &payload);
        assert!(p.all_blocks_ok());
    }

    #[test]
    fn fec_corrects_scattered_bit_errors() {
        let mut cfg = cfg();
        cfg.payload_fec = true;
        let payload: Vec<u8> = (0..32u8).collect(); // 2 blocks
        let mut bits = encode_frame(&cfg, &payload).unwrap();
        // One error every 40 coded bits across the whole body: far more
        // than CRC-only frames survive, but at most one per codeword after
        // deinterleaving.
        let body_start = HEADER_BITS;
        let mut pos = body_start + 3;
        while pos < bits.len() {
            bits[pos] = !bits[pos];
            pos += 40;
        }
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert_eq!(p.partial_payload(), &payload, "FEC failed to correct");
        assert!(p.all_blocks_ok());
    }

    #[test]
    fn fec_corrects_a_short_burst() {
        let mut cfg = cfg();
        cfg.payload_fec = true;
        let payload: Vec<u8> = (0..16u8).collect(); // 1 block
        let mut bits = encode_frame(&cfg, &payload).unwrap();
        // A 5-bit burst inside the block: the depth-7 interleaver spreads
        // it across distinct codewords.
        for b in bits.iter_mut().skip(HEADER_BITS + 60).take(5) {
            *b = !*b;
        }
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(
            matches!(evs.last().unwrap(), ParseEvent::Done) && p.partial_payload() == payload,
            "burst not corrected"
        );
    }

    #[test]
    fn fec_overwhelmed_fails_the_block_crc() {
        let mut cfg = cfg();
        cfg.payload_fec = true;
        let payload: Vec<u8> = (0..16u8).collect();
        let mut bits = encode_frame(&cfg, &payload).unwrap();
        // Dense corruption defeats Hamming; the CRC must still catch it.
        for b in bits.iter_mut().skip(HEADER_BITS + 10).take(60) {
            *b = !*b;
        }
        let (evs, p) = run_parser(&cfg, &bits);
        assert!(matches!(evs.last().unwrap(), ParseEvent::Done));
        assert!(!p.blocks()[0].ok);
    }
}
