//! Stable content addressing for deterministic job results.
//!
//! The determinism work across the workspace (seed lineage in [`crate::seed`],
//! fault streams isolated from the link RNG, rate-stable session rebuilds)
//! means identical `(PhyConfig, JobSpec, seed)` tuples produce byte-exact
//! results. This module turns that property into an *address*: a stable
//! 128-bit hash of the job's canonical JSON form, used by the job service's
//! result cache so a repeated job is a disk read, not a recompute.
//!
//! ## Canonicalization rules
//!
//! * The canonical form of a serde value is its **compact JSON** rendering
//!   through the workspace writer ([`serde_json::to_string`]): struct
//!   fields in declaration order, floats in shortest-round-trip form,
//!   no whitespace.
//! * The hash input is `"<domain>:<canonical json>"` — every address space
//!   (jobs, cache envelopes) carries a versioned domain prefix so a format
//!   bump changes every address instead of silently aliasing old entries.
//! * The hash itself is two independently-keyed FNV-1a/splitmix64 lanes
//!   concatenated to 128 bits, rendered as 32 lowercase hex digits.
//!
//! These rules are deliberately *fragile* against serde reshapes: renaming
//! or reordering a field changes the canonical form and therefore every
//! address derived from it. The golden hash-stability vectors in
//! `tests/job_hash.rs` exist to turn that fragility into a CI failure
//! rather than a silently cold (or worse, silently wrong) cache.

use serde::Serialize;
use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` seeded from `basis`.
fn fnv1a64_from(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Plain FNV-1a 64-bit hash (standard offset basis).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_from(FNV_OFFSET, bytes)
}

/// splitmix64 finalizer — the same mix [`crate::seed::derive_seed`] uses,
/// applied here to decorrelate the two FNV lanes.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 128-bit content address, displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 16]);

impl ContentHash {
    /// Hashes raw bytes: two FNV-1a lanes with distinct bases, each passed
    /// through a splitmix64 finalizer, concatenated big-endian.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let lo = mix64(fnv1a64_from(FNV_OFFSET, bytes));
        // Second lane: offset basis perturbed by a fixed salt so the lanes
        // are independent functions of the input.
        let hi = mix64(fnv1a64_from(FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15, bytes));
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&hi.to_be_bytes());
        out[8..].copy_from_slice(&lo.to_be_bytes());
        ContentHash(out)
    }

    /// Hashes a serde value under a versioned domain prefix (see module
    /// docs for the canonicalization rules).
    pub fn of_canonical<T: Serialize + ?Sized>(domain: &str, value: &T) -> Self {
        let json = canonical_json(value);
        let mut input = String::with_capacity(domain.len() + 1 + json.len());
        input.push_str(domain);
        input.push(':');
        input.push_str(&json);
        ContentHash::of_bytes(input.as_bytes())
    }

    /// Lowercase-hex rendering (32 digits) — the on-disk file stem the
    /// cache store uses.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the 32-hex-digit rendering back.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hex = std::str::from_utf8(chunk).ok()?;
            out[i] = u8::from_str_radix(hex, 16).ok()?;
        }
        Some(ContentHash(out))
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// The canonical JSON form of a serde value: compact rendering through the
/// workspace writer. Struct fields appear in declaration order and floats
/// use shortest-round-trip formatting, so the output is a pure function of
/// the value *and* the type's serde shape.
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string(value).expect("canonical serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_round_trips() {
        let h = ContentHash::of_bytes(b"hello");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(ContentHash::from_hex(&hex), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
        assert_eq!(ContentHash::from_hex(&hex[..30]), None);
    }

    #[test]
    fn lanes_are_independent() {
        // If both halves were the same function the address space would be
        // 64-bit; check the halves differ on ordinary inputs.
        for input in [&b"abc"[..], b"", b"full duplex backscatter"] {
            let h = ContentHash::of_bytes(input);
            assert_ne!(h.0[..8], h.0[8..], "lanes collide on {input:?}");
        }
    }

    #[test]
    fn domain_prefix_separates_address_spaces() {
        let a = ContentHash::of_canonical("fdb-job-v1", &42u64);
        let b = ContentHash::of_canonical("fdb-other-v1", &42u64);
        assert_ne!(a, b);
    }

    #[test]
    fn adjacent_inputs_disperse() {
        let hashes: std::collections::HashSet<_> =
            (0..10_000u64).map(|i| ContentHash::of_canonical("t", &i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn canonical_json_is_compact_and_ordered() {
        #[derive(serde::Serialize)]
        struct S {
            b: u32,
            a: u32,
        }
        // Declaration order, not alphabetical; no whitespace.
        assert_eq!(canonical_json(&S { b: 1, a: 2 }), "{\"b\":1,\"a\":2}");
    }
}
