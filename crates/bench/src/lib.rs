//! # fdb-bench — the experiment harness
//!
//! One module per evaluation experiment (E1–E13, plus ablations A1–A4), each
//! regenerating a figure/table of the reconstructed evaluation suite
//! described in DESIGN.md §3. Run them through the `experiments` binary:
//!
//! ```text
//! cargo run --release -p fdb-bench --bin experiments -- e1
//! cargo run --release -p fdb-bench --bin experiments -- all --quick
//! ```
//!
//! Every experiment prints a markdown table (pasted into EXPERIMENTS.md)
//! and writes a CSV under `results/`. All randomness derives from fixed
//! master seeds, so outputs regenerate identically.

#![deny(missing_docs)]

pub mod experiments;
pub mod fault_matrix;

use fdb_sim::report::Table;
use std::path::PathBuf;

/// Effort level for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Few frames per point — smoke-test speed.
    Quick,
    /// Full statistical weight (what EXPERIMENTS.md records).
    Full,
}

impl Effort {
    /// Scales a frame count by the effort level.
    pub fn frames(&self, full: u64) -> u64 {
        match self {
            Effort::Quick => (full / 8).max(4),
            Effort::Full => full,
        }
    }
}

/// A completed experiment: identifier, human title, result table.
pub struct ExperimentResult {
    /// Short identifier (`e1`, `e4b`, `a1`, …).
    pub id: &'static str,
    /// One-line description (becomes the table caption).
    pub title: &'static str,
    /// The regenerated table.
    pub table: Table,
}

impl ExperimentResult {
    /// Prints the markdown form and writes the CSV under `results/`.
    pub fn emit(&self) {
        println!("\n## {} — {}\n", self.id.to_uppercase(), self.title);
        println!("{}", self.table.to_markdown());
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.csv", self.id));
            if let Err(e) = std::fs::write(&path, self.table.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[csv written to {}]", path.display());
            }
        }
    }
}

/// Where experiment CSVs land (workspace `results/`, overridable via
/// `FDB_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FDB_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::Full.frames(80), 80);
        assert_eq!(Effort::Quick.frames(80), 10);
        assert_eq!(Effort::Quick.frames(8), 4); // floor
    }
}
