//! Compatibility shim: the conformance matrix moved to
//! [`fdb_sim::matrix`] (so the job service can run grids without
//! depending on the experiment harness). Existing
//! `fdb_bench::fault_matrix::*` call sites keep working through this
//! re-export.

pub use fdb_sim::matrix::{class_plans, run_cell, run_matrix, MatrixCell};
