//! E9 — Clock-offset tolerance: how much ppm error the receiver survives.
//!
//! Passive tags run on RC oscillators with hundreds-to-thousands of ppm
//! error. The Manchester mid-bit transition gives the DLL something to
//! lock to every bit; without it (FM0's transitions are data-dependent and
//! the DLL is disabled for non-Manchester codes), sync drifts by
//! `ppm·frame_bits·samples_per_bit·1e-6` samples and the frame dies once
//! that exceeds half a chip.

use crate::{Effort, ExperimentResult};
use fdb_core::link::LinkConfig;
use fdb_dsp::line_code::LineCode;
use fdb_sim::report::{fmt_ber, fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};

/// Runs E9.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(32);
    let ppms: Vec<f64> = vec![0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0];
    let rows = parallel_sweep(&ppms, 8, |&ppm| {
        let mk = |code: LineCode| {
            let mut cfg = LinkConfig::default_fd();
            cfg.geometry.device_dist_m = 0.35; // strong link: isolate timing
            cfg.phy.line_code = code;
            cfg.tag_b.clock = fdb_device::oscillator::TagClockConfig {
                static_ppm: ppm,
                jitter_ppm: 0.0,
                reversion: 1.0,
            };
            run_link(
                &cfg,
                &MeasureSpec {
                    frames,
                    payload_len: 96,
                    seed: derive_seed(0xE9, ppm as u64),
                    feedback_probe: Some(false),
                    trace: Default::default(),
                    faults: None,
                },
                LinkRun::new(),
            )
            .expect("E9 run")
        };
        (ppm, mk(LineCode::Manchester), mk(LineCode::Fm0))
    });
    let mut table = Table::new(&[
        "clock_error_ppm",
        "delivery_manchester_dll",
        "ber_manchester_dll",
        "delivery_fm0_no_dll",
        "ber_fm0_no_dll",
    ]);
    for (ppm, man, fm0) in &rows {
        table.row(&[
            fmt_sig(*ppm, 4),
            fmt_sig(man.delivery_rate(), 3),
            fmt_ber(&man.data_ber),
            fmt_sig(fm0.delivery_rate(), 3),
            fmt_ber(&fm0.data_ber),
        ]);
    }
    vec![ExperimentResult {
        id: "e9",
        title: "clock-offset tolerance: Manchester+DLL vs FM0 (no DLL) vs ppm error",
        table,
    }]
}
