//! E10 — Harvesting feasibility vs distance from the ambient source.
//!
//! How far from a TV tower can a tag sustain itself? Sweeps the source
//! distance, reads the behavioural harvester through a real link run, and
//! overlays the closed-form duty-cycle and Rayleigh-outage models.

use crate::{Effort, ExperimentResult};
use fdb_analysis::harvest::HarvestModel;
use fdb_channel::pathloss::PathLoss;
use fdb_core::link::LinkConfig;
use fdb_dsp::sample::dbm_to_watts;
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};

/// Runs E10.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(16);
    let dists_m: Vec<f64> = vec![50.0, 100.0, 200.0, 400.0, 800.0, 1600.0];
    let model = HarvestModel {
        sensitivity_w: 1e-5,
        saturation_w: 3.16e-4,
        max_efficiency: 0.4,
    };
    let rows = parallel_sweep(&dists_m, 8, |&d| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.source_dist_a_m = d;
        cfg.geometry.source_dist_b_m = d;
        let metrics = run_link(
            &cfg,
            &MeasureSpec {
                frames,
                payload_len: 64,
                seed: derive_seed(0xE10, d as u64),
                feedback_probe: Some(false),
                trace: Default::default(),
                faults: None,
            },
            LinkRun::new(),
        )
        .expect("E10 run");
        // Mean harvested power at B over the run.
        let secs = metrics.elapsed_samples as f64 / cfg.phy.sample_rate_hz;
        let harvested_w = if secs > 0.0 {
            metrics.harvested_b_j / secs
        } else {
            0.0
        };
        // Incident power and theory overlays.
        let incident_w =
            dbm_to_watts(cfg.geometry.source_power_dbm) * PathLoss::tv_band().gain(d);
        let duty = model.sustainable_duty(incident_w, 1e-6); // 1 µW load
        let outage = model.rayleigh_outage(incident_w);
        (d, harvested_w, incident_w, duty, outage, metrics.delivery_rate())
    });
    let mut table = Table::new(&[
        "source_dist_m",
        "incident_dbm",
        "harvested_uw_measured",
        "harvested_uw_theory",
        "sustainable_duty(1uW load)",
        "rayleigh_harvest_outage",
        "delivery_rate",
    ]);
    for (d, harvested_w, incident_w, duty, outage, delivery) in &rows {
        table.row(&[
            fmt_sig(*d, 4),
            fmt_sig(fdb_dsp::sample::watts_to_dbm(*incident_w), 3),
            fmt_sig(harvested_w * 1e6, 3),
            fmt_sig(model.harvested_w(*incident_w) * 1e6, 3),
            fmt_sig(*duty, 3),
            fmt_sig(*outage, 3),
            fmt_sig(*delivery, 3),
        ]);
    }
    vec![ExperimentResult {
        id: "e10",
        title: "harvesting feasibility vs distance from a 60 dBm TV tower",
        table,
    }]
}
