//! E2 — Feedback BER vs rate ratio `m`, with the integrator-gain model.
//!
//! The design's central dial: a feedback bit integrates `m` data bits of
//! envelope, so its BER falls as `Q(s·√(k·N)/√2)` while its rate falls as
//! `1/m`. The experiment locates the usable-`m` threshold at two
//! distances and checks the integration-gain shape.

use crate::{Effort, ExperimentResult};
use fdb_analysis::ber::{relative_swing, LinkNoiseModel};
use fdb_ambient::AmbientConfig;
use fdb_core::link::LinkConfig;
use fdb_sim::report::{fmt_ber, fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};

/// Predicted feedback BER for a configuration (theory overlay).
pub fn predicted_feedback_ber(cfg: &LinkConfig) -> f64 {
    let g = &cfg.geometry;
    // A decodes B's reflection: far device is B.
    let h_ab = g.pathloss_device.amplitude_gain(g.device_dist_m);
    let g_self = g.pathloss_source.gain(g.source_dist_a_m);
    let g_far = g.pathloss_source.gain(g.source_dist_b_m);
    let swing = relative_swing(h_ab, cfg.tag_b.rho, cfg.tag_b.rho_residual, g_far, g_self);
    let k = match cfg.ambient {
        AmbientConfig::TvWideband { k_factor } => k_factor,
        AmbientConfig::Cw => 1e12,
        _ => 1.0,
    };
    let model = LinkNoiseModel {
        k_factor: k,
        samples_per_chip: cfg.phy.samples_per_chip,
        detector_noise_rel: 0.0,
    };
    let half_samples = (cfg.phy.feedback_ratio / 2) * cfg.phy.samples_per_bit();
    model.feedback_ber(swing, half_samples)
}

/// Runs E2.
///
/// The sweep runs at a *weak* feedback operating point (ρ_B = 0.03, wider
/// device separation): at the default ρ_B = 0.2 the feedback channel is
/// essentially error-free at every m — robustness worth knowing, but the
/// experiment's purpose is to locate the usable-m threshold, which needs
/// the channel pushed to where integration length visibly matters.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(64);
    let ratios: Vec<usize> = vec![4, 8, 16, 32, 64, 128];
    let mut out = Vec::new();
    for &dist in &[0.7f64, 0.85] {
        let rows = parallel_sweep(&ratios, 8, |&m| {
            let mut cfg = LinkConfig::default_fd();
            cfg.geometry.device_dist_m = dist;
            cfg.tag_b.rho = 0.03;
            cfg.phy.feedback_ratio = m;
            // Long frames so even m = 128 yields several feedback bits.
            let metrics = run_link(
                &cfg,
                &MeasureSpec {
                    frames,
                    payload_len: 192,
                    seed: derive_seed(0xE2, m as u64 + (dist * 100.0) as u64),
                    feedback_probe: Some(true),
                    trace: Default::default(),
                    faults: None,
                },
                LinkRun::new(),
            )
            .expect("E2 run");
            let theory = predicted_feedback_ber(&cfg);
            let fb_rate = cfg.phy.feedback_rate_bps();
            (m, metrics, theory, fb_rate)
        });
        let mut table = Table::new(&[
            "m_ratio",
            "feedback_rate_bps",
            "feedback_ber",
            "feedback_ber_theory",
            "pilot_verify_rate",
        ]);
        for (m, metrics, theory, fb_rate) in &rows {
            table.row(&[
                m.to_string(),
                fmt_sig(*fb_rate, 4),
                fmt_ber(&metrics.feedback_ber),
                fmt_sig(*theory, 3),
                fmt_sig(
                    metrics.pilots_ok as f64 / metrics.frames.max(1) as f64,
                    3,
                ),
            ]);
        }
        out.push(ExperimentResult {
            id: if dist < 0.8 { "e2" } else { "e2b" },
            title: if dist < 0.8 {
                "feedback BER vs rate ratio m (weak feedback: rho_B=0.03, d = 0.7 m)"
            } else {
                "feedback BER vs rate ratio m (weak feedback: rho_B=0.03, d = 0.85 m)"
            },
            table,
        });
    }
    out
}
