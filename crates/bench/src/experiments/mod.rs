//! The experiment suite (see DESIGN.md §3 for the per-experiment index).

pub mod a3_resume;
pub mod ablations;
pub mod e1_ber_distance;
pub mod e2_feedback_ratio;
pub mod e3_sic_ablation;
pub mod e4_goodput;
pub mod e5_energy;
pub mod e6_collision;
pub mod e7_rate_adapt;
pub mod e8_sources;
pub mod e9_clock;
pub mod e10_harvest;
pub mod e11_flow;
pub mod e12_coexistence;
pub mod e13_duty;

use crate::{Effort, ExperimentResult};

/// All experiment entry points by identifier.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "a1", "a2", "a3", "a4",
    ]
}

/// Runs one experiment by identifier.
pub fn run(id: &str, effort: Effort) -> Option<Vec<ExperimentResult>> {
    Some(match id {
        "e1" => e1_ber_distance::run(effort),
        "e2" => e2_feedback_ratio::run(effort),
        "e3" => e3_sic_ablation::run(effort),
        "e4" => e4_goodput::run(effort),
        "e5" => e5_energy::run(effort),
        "e6" => e6_collision::run(effort),
        "e7" => e7_rate_adapt::run(effort),
        "e8" => e8_sources::run(effort),
        "e9" => e9_clock::run(effort),
        "e10" => e10_harvest::run(effort),
        "e11" => e11_flow::run(effort),
        "e12" => e12_coexistence::run(effort),
        "e13" => e13_duty::run(effort),
        "a1" => ablations::line_codes(effort),
        "a2" => ablations::block_size(effort),
        "a3" => a3_resume::run(effort),
        "a4" => ablations::fec(effort),
        _ => return None,
    })
}
