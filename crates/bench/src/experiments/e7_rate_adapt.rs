//! E7 — Rate adaptation: feedback-driven AIMD vs fixed rates vs distance.
//!
//! A link's best fixed rate depends on a distance the deployer doesn't
//! know. The adaptive controller (PHY-backed: each frame really runs at
//! the controller's chip rate) should trace the upper envelope of the
//! fixed-rate goodput curves across the distance sweep.

use crate::{Effort, ExperimentResult};
use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use fdb_mac::rate_adapt::RateController;
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::{derive_seed, random_payload};
use fdb_sim::parallel_sweep;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cfg_with_sps(distance_m: f64, sps: usize) -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = distance_m;
    cfg.phy.samples_per_chip = sps;
    cfg
}

/// Runs `frames` frames at a fixed sps; returns delivered payload bits and
/// elapsed samples.
fn run_fixed(
    distance_m: f64,
    sps: usize,
    frames: u64,
    payload_len: usize,
    seed: u64,
) -> (u64, u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = cfg_with_sps(distance_m, sps);
    let mut link = FdLink::new(cfg, &mut rng).expect("E7 link");
    let mut bits = 0u64;
    let mut samples = 0u64;
    for _ in 0..frames {
        let payload = random_payload(&mut rng, payload_len);
        let out = link
            .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
            .expect("E7 frame");
        samples += out.samples_run as u64;
        if out.fully_delivered() {
            bits += (payload_len * 8) as u64;
        }
    }
    (bits, samples)
}

/// Runs the adaptive controller: the link is rebuilt whenever the rate
/// changes (a rate switch re-establishes the link in a real deployment).
///
/// The first `frames/2` frames are the convergence transient (the
/// controller starts at the most robust rate and has to earn its way up);
/// goodput is scored over the steady-state second half, matching how
/// rate-adaptation evaluations are conventionally reported.
fn run_adaptive(distance_m: f64, frames: u64, payload_len: usize, seed: u64) -> (u64, u64, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ctrl = RateController::default_ladder();
    let mut link = FdLink::new(cfg_with_sps(distance_m, ctrl.current_sps()), &mut rng)
        .expect("E7 adaptive link");
    let mut bits = 0u64;
    let mut samples = 0u64;
    let mut switches = 0usize;
    let warmup = frames / 2;
    for i in 0..frames {
        let payload = random_payload(&mut rng, payload_len);
        let out = link
            .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
            .expect("E7 adaptive frame");
        let clean = out.fully_delivered();
        if i >= warmup {
            samples += out.samples_run as u64;
            if clean {
                bits += (payload_len * 8) as u64;
            }
        }
        let nacks = out.feedback.iter().filter(|f| !f.bit).count();
        let nack_fraction = if out.feedback.is_empty() {
            1.0
        } else {
            nacks as f64 / out.feedback.len() as f64
        };
        let before = ctrl.current_sps();
        ctrl.on_frame(clean, nack_fraction);
        if ctrl.current_sps() != before {
            switches += 1;
            link = FdLink::new(cfg_with_sps(distance_m, ctrl.current_sps()), &mut rng)
                .expect("E7 rate switch");
        }
    }
    (bits, samples, switches)
}

/// Runs E7.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(40);
    let payload_len = 64;
    let distances = vec![0.25, 0.4, 0.55, 0.7, 0.85];
    let ladder = [5usize, 10, 20, 40];
    let fs = LinkConfig::default_fd().phy.sample_rate_hz;

    let rows = parallel_sweep(&distances, 8, |&d| {
        let seed = derive_seed(0xE7, (d * 1000.0) as u64);
        let fixed: Vec<f64> = ladder
            .iter()
            .enumerate()
            .map(|(i, &sps)| {
                let (bits, samples) = run_fixed(d, sps, frames, payload_len, seed + i as u64);
                if samples == 0 {
                    0.0
                } else {
                    bits as f64 / (samples as f64 / fs)
                }
            })
            .collect();
        let (abits, asamples, switches) = run_adaptive(d, frames, payload_len, seed ^ 0xADA);
        let adaptive = if asamples == 0 {
            0.0
        } else {
            abits as f64 / (asamples as f64 / fs)
        };
        (d, fixed, adaptive, switches)
    });

    let mut table = Table::new(&[
        "distance_m",
        "fixed_2kbps(sps5)",
        "fixed_1kbps(sps10)",
        "fixed_500bps(sps20)",
        "fixed_250bps(sps40)",
        "adaptive_bps",
        "best_fixed_bps",
        "adaptive_over_best_fixed",
        "rate_switches",
    ]);
    for (d, fixed, adaptive, switches) in &rows {
        let best = fixed.iter().cloned().fold(0.0f64, f64::max);
        table.row(&[
            fmt_sig(*d, 3),
            fmt_sig(fixed[0], 3),
            fmt_sig(fixed[1], 3),
            fmt_sig(fixed[2], 3),
            fmt_sig(fixed[3], 3),
            fmt_sig(*adaptive, 3),
            fmt_sig(best, 3),
            fmt_sig(if best > 0.0 { adaptive / best } else { f64::NAN }, 3),
            switches.to_string(),
        ]);
    }
    vec![ExperimentResult {
        id: "e7",
        title: "rate adaptation: AIMD on in-frame feedback vs fixed rates vs distance",
        table,
    }]
}
