//! E11 — Flow control: in-band backpressure vs overflow-and-retransmit.
//!
//! An under-provisioned receiver (drain slower than line rate, occasional
//! stalls) is fed a stream of blocks. Without feedback the sender discovers
//! overflow only by losing blocks and re-sending them a round trip later;
//! with the FD busy bit it pauses within one feedback latency. Sweeps the
//! receiver's drain ratio and reports drops, retransmission overhead and
//! goodput for both strategies.

use crate::{Effort, ExperimentResult};
use fdb_mac::flow::{run as run_flow, FlowConfig, FlowMode};
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::parallel_sweep;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs E11.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let total_blocks = match effort {
        Effort::Quick => 2_000,
        Effort::Full => 20_000,
    };
    let drain_ratios: Vec<f64> = vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let rows = parallel_sweep(&drain_ratios, 8, |&drain| {
        let mk = |mode| FlowConfig {
            total_blocks,
            drain_ratio: drain,
            ..FlowConfig::default_with(mode)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(0xE11, (drain * 100.0) as u64));
        let fd = run_flow(&mk(FlowMode::FdBackpressure), &mut rng);
        let hd = run_flow(&mk(FlowMode::OverflowRetransmit), &mut rng);
        (drain, fd, hd)
    });
    let mut table = Table::new(&[
        "drain_ratio",
        "goodput_fd",
        "goodput_hd",
        "drops_fd",
        "drops_hd",
        "retx_overhead_fd",
        "retx_overhead_hd",
        "fd_paused_fraction",
    ]);
    for (drain, fd, hd) in &rows {
        table.row(&[
            fmt_sig(*drain, 3),
            fmt_sig(fd.goodput_fraction(), 3),
            fmt_sig(hd.goodput_fraction(), 3),
            fd.dropped.to_string(),
            hd.dropped.to_string(),
            fmt_sig(fd.retransmit_overhead(), 3),
            fmt_sig(hd.retransmit_overhead(), 3),
            fmt_sig(fd.paused_time as f64 / fd.elapsed.max(1) as f64, 3),
        ]);
    }
    vec![ExperimentResult {
        id: "e11",
        title: "flow control: FD in-band backpressure vs overflow-and-retransmit",
        table,
    }]
}
