//! E1 — Forward-link BER and delivery vs device separation, full-duplex
//! on/off, with the analytical overlay.
//!
//! The headline figure: turning the feedback channel on (with SIC) must
//! cost the forward link almost nothing, and the measured BER curve must
//! track the closed-form `Q(s/(σ√2))` model as the swing shrinks with
//! distance.
//!
//! E1B repeats the sweep under Rayleigh block fading on the device hop
//! (mobility): fades shrink the usable range and soften the cliff, but the
//! FD-vs-HD equivalence must survive.

use crate::{Effort, ExperimentResult};
use fdb_analysis::ber::{relative_swing, LinkNoiseModel};
use fdb_ambient::AmbientConfig;
use fdb_core::link::LinkConfig;
use fdb_sim::report::{fmt_ber, fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};

/// Distance sweep used by several experiments (metres).
pub fn distances() -> Vec<f64> {
    vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0]
}

/// Predicted forward BER for a link configuration (theory overlay).
pub fn predicted_data_ber(cfg: &LinkConfig) -> f64 {
    let g = &cfg.geometry;
    let h_ab = g.pathloss_device.amplitude_gain(g.device_dist_m);
    let g_self = g.pathloss_source.gain(g.source_dist_b_m);
    let g_far = g.pathloss_source.gain(g.source_dist_a_m);
    let swing = relative_swing(h_ab, cfg.tag_a.rho, cfg.tag_a.rho_residual, g_far, g_self);
    let k = match cfg.ambient {
        AmbientConfig::TvWideband { k_factor } => k_factor,
        AmbientConfig::Cw => 1e12, // effectively noise-free source
        _ => 1.0,
    };
    let model = LinkNoiseModel {
        k_factor: k,
        samples_per_chip: cfg.phy.samples_per_chip,
        detector_noise_rel: 0.0,
    };
    model.manchester_ber(swing)
}

/// Runs E1 (static channels) and E1B (Rayleigh fading on the device hop).
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let mut out = run_variant(effort, false);
    out.extend(run_variant(effort, true));
    out
}

fn run_variant(effort: Effort, fading: bool) -> Vec<ExperimentResult> {
    let frames = effort.frames(64);
    let payload = 64;
    let rows = parallel_sweep(&distances(), 8, |&d| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = d;
        if fading {
            // Rician scatter on the device hop (strong LOS at sub-metre
            // ranges, K = 8) evolving every 64 data bits.
            cfg.geometry.fading_device = fdb_channel::fading::Fading::Rician {
                k_factor: 8.0,
                coherence_blocks: 20.0,
            };
            cfg.fading_advance_bits = 64;
        }
        let seed = derive_seed(if fading { 0x1B } else { 0xE1 }, (d * 1000.0) as u64);
        let fd = run_link(
            &cfg,
            &MeasureSpec {
                frames,
                payload_len: payload,
                seed,
                feedback_probe: Some(false),
                trace: Default::default(),
                faults: None,
            },
            LinkRun::new(),
        )
        .expect("E1 fd run");
        let hd = run_link(
            &cfg,
            &MeasureSpec {
                frames,
                payload_len: payload,
                seed: seed ^ 1,
                feedback_probe: None,
                trace: Default::default(),
                faults: None,
            },
            LinkRun::new(),
        )
        .expect("E1 hd run");
        let theory = predicted_data_ber(&cfg);
        (d, fd, hd, theory)
    });

    let mut table = Table::new(&[
        "distance_m",
        "ber_full_duplex",
        "ber_half_duplex",
        "ber_theory",
        "lock_rate_fd",
        "delivery_fd",
        "delivery_hd",
    ]);
    for (d, fd, hd, theory) in &rows {
        table.row(&[
            fmt_sig(*d, 3),
            fmt_ber(&fd.data_ber),
            fmt_ber(&hd.data_ber),
            fmt_sig(*theory, 3),
            fmt_sig(fd.lock_rate(), 3),
            fmt_sig(fd.delivery_rate(), 3),
            fmt_sig(hd.delivery_rate(), 3),
        ]);
    }
    vec![ExperimentResult {
        id: if fading { "e1b" } else { "e1" },
        title: if fading {
            "forward BER & delivery vs distance under Rician fading (K=8, mobility)"
        } else {
            "forward BER & delivery vs device separation (FD vs HD vs theory)"
        },
        table,
    }]
}
