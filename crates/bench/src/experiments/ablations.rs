//! Design-choice ablations.
//!
//! * **A1 — line codes.** DC balance is what lets the feedback integrator
//!   cancel the forward data *without* digital help: with known-state SIC
//!   switched off (the paper's analog situation), a balanced code's
//!   self-interference averages out of every feedback half-bit while NRZ's
//!   does not. With perfect digital SIC the cancellation is exact for any
//!   code — both columns are reported so the mechanism is visible.
//! * **A2 — block size.** Smaller CRC blocks give earlier NACKs and less
//!   retransmitted data but cost more trailer overhead; the sweep locates
//!   the goodput knee.
//! * **A4 — per-block FEC.** Hamming(7,4)+interleaving trades 1.75×
//!   airtime for single-error correction per codeword; the sweep locates
//!   the FEC-vs-ARQ crossover distance.

use crate::{Effort, ExperimentResult};
use fdb_core::link::LinkConfig;
use fdb_dsp::line_code::LineCode;
use fdb_mac::early_abort::{EarlyAbortArq, EarlyAbortConfig};
use fdb_mac::report::TransferReport;
use fdb_sim::report::{fmt_ber, fmt_sig, Table};
use fdb_sim::runner::{derive_seed, random_payload};
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A1 — line-code ablation.
pub fn line_codes(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(40);
    let codes = vec![
        LineCode::Manchester,
        LineCode::Fm0,
        LineCode::Miller,
        LineCode::Nrz,
    ];
    let rows = parallel_sweep(&codes, 4, |&code| {
        let seed = derive_seed(
            0xA1,
            code.chips_per_bit() as u64 + format!("{code:?}").len() as u64,
        );
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.4;
        cfg.phy.line_code = code;
        let spec = MeasureSpec {
            frames,
            payload_len: 96,
            seed,
            feedback_probe: Some(true),
            trace: Default::default(),
            faults: None,
        };
        let with_sic = run_link(&cfg, &spec, LinkRun::new()).expect("A1 sic-on run");
        let mut no_sic_cfg = cfg.clone();
        no_sic_cfg.phy.sic = fdb_core::config::SicMode::Off;
        // Keep B's data path viable without SIC by making its feedback
        // toggle gentle; the quantity under test is A's feedback decode.
        no_sic_cfg.tag_b.rho = 0.05;
        let no_sic = run_link(&no_sic_cfg, &spec, LinkRun::new()).expect("A1 sic-off run");
        (code, with_sic, no_sic)
    });
    let mut table = Table::new(&[
        "line_code",
        "dc_balanced",
        "data_ber",
        "fb_ber_sic_on",
        "fb_ber_sic_off",
        "delivery_rate",
        "lock_rate",
    ]);
    for (code, m, m_off) in &rows {
        table.row(&[
            format!("{code:?}"),
            code.is_dc_balanced_short_horizon().to_string(),
            fmt_ber(&m.data_ber),
            fmt_ber(&m.feedback_ber),
            fmt_ber(&m_off.feedback_ber),
            fmt_sig(m.delivery_rate(), 3),
            fmt_sig(m.lock_rate(), 3),
        ]);
    }
    vec![ExperimentResult {
        id: "a1",
        title: "ablation: line code (DC balance is what carries the feedback channel)",
        table,
    }]
}

/// A2 — CRC block-size sweep under early-abort ARQ.
pub fn block_size(effort: Effort) -> Vec<ExperimentResult> {
    let transfers = effort.frames(16);
    let payload_len = 96;
    let blocks: Vec<usize> = vec![4, 8, 16, 32, 96];
    let fs = LinkConfig::default_fd().phy.sample_rate_hz;
    let rows = parallel_sweep(&blocks, 8, |&bl| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.5; // lossy enough that aborts matter
        cfg.phy.block_len_bytes = bl;
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(0xA2, bl as u64));
        let mut arq = EarlyAbortArq::new(
            cfg,
            EarlyAbortConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("A2 arq");
        let mut total = TransferReport {
            delivered: true,
            ..Default::default()
        };
        for _ in 0..transfers {
            let payload = random_payload(&mut rng, payload_len);
            let r = arq.transfer(&payload, &mut rng).expect("A2 transfer");
            total.accumulate(&r);
        }
        (bl, total)
    });
    let mut table = Table::new(&[
        "block_len_bytes",
        "overhead_fraction",
        "goodput_bps",
        "aborts",
        "frames_sent",
        "delivered_all",
    ]);
    for (bl, r) in &rows {
        let overhead = 1.0 / (*bl as f64 + 1.0);
        table.row(&[
            bl.to_string(),
            fmt_sig(overhead, 3),
            fmt_sig(r.goodput_bps(fs), 3),
            r.aborts.to_string(),
            r.frames_sent.to_string(),
            r.delivered.to_string(),
        ]);
    }
    vec![ExperimentResult {
        id: "a2",
        title: "ablation: CRC block size vs early-abort goodput (overhead vs NACK latency)",
        table,
    }]
}

/// A4 — per-block FEC (Hamming(7,4) + interleaving) vs plain CRC blocks,
/// under early-abort ARQ.
///
/// FEC costs 1.75× the airtime per block but corrects one error per
/// codeword, so it extends the usable range: at short distances the coding
/// overhead loses; once raw block error rates climb, coded blocks keep
/// verifying where uncoded ones die.
pub fn fec(effort: Effort) -> Vec<ExperimentResult> {
    let transfers = effort.frames(16);
    let payload_len = 96;
    let distances: Vec<f64> = vec![0.35, 0.45, 0.5, 0.55, 0.6, 0.65];
    let fs = LinkConfig::default_fd().phy.sample_rate_hz;
    let rows = parallel_sweep(&distances, 8, |&d| {
        let run = |use_fec: bool, seed: u64| {
            let mut cfg = LinkConfig::default_fd();
            cfg.geometry.device_dist_m = d;
            cfg.phy.payload_fec = use_fec;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut arq = EarlyAbortArq::new(
                cfg,
                EarlyAbortConfig {
                    max_attempts: 24,
                    ..Default::default()
                },
                &mut rng,
            )
            .expect("A4 arq");
            let mut reports = Vec::new();
            for _ in 0..transfers {
                let payload = random_payload(&mut rng, payload_len);
                reports.push(arq.transfer(&payload, &mut rng).expect("A4 transfer"));
            }
            reports
        };
        let seed = derive_seed(0xA4, (d * 1000.0) as u64);
        (d, run(false, seed), run(true, seed ^ 0xFEC))
    });
    let mut table = Table::new(&[
        "distance_m",
        "goodput_plain_bps",
        "goodput_fec_bps",
        "fec_over_plain",
        "delivery_plain",
        "delivery_fec",
    ]);
    for (d, plain, fec) in &rows {
        let g_p = super::e4_goodput::batch_goodput_bps(plain, fs);
        let g_f = super::e4_goodput::batch_goodput_bps(fec, fs);
        table.row(&[
            fmt_sig(*d, 3),
            fmt_sig(g_p, 3),
            fmt_sig(g_f, 3),
            fmt_sig(if g_p > 0.0 { g_f / g_p } else { f64::NAN }, 3),
            fmt_sig(super::e4_goodput::batch_delivery_rate(plain), 3),
            fmt_sig(super::e4_goodput::batch_delivery_rate(fec), 3),
        ]);
    }
    vec![ExperimentResult {
        id: "a4",
        title: "ablation: per-block FEC (Hamming 7/4 + interleave) vs plain CRC under early abort",
        table,
    }]
}
