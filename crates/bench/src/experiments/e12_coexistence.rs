//! E12 — Coexisting full-duplex pairs: delivery vs pair separation.
//!
//! Two FD pairs share the ambient source; the sweep moves them apart. At
//! small separations the cross-device backscatter rivals the intra-pair
//! signal and both links suffer (including preamble cross-capture — the
//! frame format carries no addressing); past a few metres each pair is
//! alone again. Staggered and synchronised frame starts are compared:
//! synchronised preambles are the worst case for acquisition.

use crate::{Effort, ExperimentResult};
use fdb_core::multilink::{run_multilink, MultiLinkConfig};
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::parallel_sweep;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn measure(spacing: f64, staggered: bool, rounds: u64, seed: u64) -> (f64, f64) {
    let mut cfg = MultiLinkConfig::row(2, 0.4, spacing);
    cfg.network.ambient = fdb_ambient::AmbientConfig::TvWideband { k_factor: 300.0 };
    cfg.start_offsets = if staggered { vec![0, 977] } else { vec![0, 0] };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut delivered = 0u64;
    let mut locked = 0u64;
    for r in 0..rounds {
        let payloads = vec![vec![r as u8; 48], vec![(r as u8) ^ 0xFF; 48]];
        let out = run_multilink(&cfg, &payloads, &mut rng).expect("E12 run");
        delivered += out.iter().filter(|o| o.fully_delivered).count() as u64;
        locked += out.iter().filter(|o| o.locked).count() as u64;
    }
    (
        delivered as f64 / (2 * rounds) as f64,
        locked as f64 / (2 * rounds) as f64,
    )
}

/// Runs E12.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let rounds = effort.frames(24);
    let spacings: Vec<f64> = vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let rows = parallel_sweep(&spacings, 8, |&s| {
        let seed = derive_seed(0xE12, (s * 100.0) as u64);
        let stag = measure(s, true, rounds, seed);
        let sync = measure(s, false, rounds, seed ^ 0x5);
        (s, stag, sync)
    });
    let mut table = Table::new(&[
        "pair_spacing_m",
        "delivery_staggered",
        "lock_staggered",
        "delivery_synchronised",
        "lock_synchronised",
    ]);
    for (s, stag, sync) in &rows {
        table.row(&[
            fmt_sig(*s, 3),
            fmt_sig(stag.0, 3),
            fmt_sig(stag.1, 3),
            fmt_sig(sync.0, 3),
            fmt_sig(sync.1, 3),
        ]);
    }
    vec![ExperimentResult {
        id: "e12",
        title: "coexisting FD pairs: per-link delivery vs pair separation (2 pairs, d_intra = 0.4 m)",
        table,
    }]
}
