//! E6 — Multi-access: FD collision detection vs ALOHA vs contention.
//!
//! The event-level MAC model (calibrated by the PHY: frame length and
//! pilot-window latency come from the default configuration, and the
//! underlying "overlap ⇒ no lock" assumption is validated in the
//! workspace integration tests against the sample-level K-device network).
//! The renewal-model theory column shows the expected ordering.

use crate::{Effort, ExperimentResult};
use fdb_analysis::access::{aloha_renewal_throughput, CollisionDetectModel};
use fdb_mac::csma::{run as run_csma, AccessMode, CsmaConfig};
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::parallel_sweep;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs E6.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let horizon: u64 = match effort {
        Effort::Quick => 400_000,
        Effort::Full => 4_000_000,
    };
    let node_counts: Vec<usize> = vec![2, 4, 8, 16, 32];
    let rows = parallel_sweep(&node_counts, 8, |&n| {
        let mut aloha_cfg = CsmaConfig::default_with(n, AccessMode::Aloha);
        aloha_cfg.horizon_bits = horizon;
        aloha_cfg.arrival_per_bit = 4e-5;
        let mut fd_cfg = aloha_cfg;
        fd_cfg.mode = AccessMode::FdCollisionDetect;
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(0xE6, n as u64));
        let aloha = run_csma(&aloha_cfg, &mut rng);
        let fd = run_csma(&fd_cfg, &mut rng);
        // Theory: offered load G in frames per frame-time.
        let g = n as f64 * aloha_cfg.arrival_per_bit * aloha_cfg.frame_bits as f64;
        let cd_model = CollisionDetectModel {
            pilot_fraction: fd_cfg.pilot_latency_bits as f64 / fd_cfg.frame_bits as f64,
        };
        (n, aloha, fd, g, aloha_renewal_throughput(g), cd_model.throughput(g), aloha_cfg.frame_bits)
    });

    let mut table = Table::new(&[
        "nodes",
        "offered_load_G",
        "goodput_aloha",
        "goodput_fd_cd",
        "theory_aloha",
        "theory_fd_cd",
        "waste_aloha",
        "waste_fd_cd",
        "dropped_aloha",
        "dropped_fd_cd",
    ]);
    for (n, aloha, fd, g, th_a, th_cd, frame_bits) in &rows {
        table.row(&[
            n.to_string(),
            fmt_sig(*g, 3),
            fmt_sig(aloha.goodput_fraction(*frame_bits), 3),
            fmt_sig(fd.goodput_fraction(*frame_bits), 3),
            fmt_sig(*th_a, 3),
            fmt_sig(*th_cd, 3),
            fmt_sig(aloha.waste_fraction(), 3),
            fmt_sig(fd.waste_fraction(), 3),
            aloha.dropped.to_string(),
            fd.dropped.to_string(),
        ]);
    }
    vec![ExperimentResult {
        id: "e6",
        title: "multi-access throughput: FD collision detection vs ALOHA vs contention",
        table,
    }]
}
