//! A3 — Extension: resume-from-failed-block vs full-frame early abort vs
//! stop-and-wait, on long frames.
//!
//! The analytical model (`fdb_analysis::arq`) shows plain early abort's
//! advantage shrinking for long frames: both it and stop-and-wait end up
//! paying `E[attempts]·frame`. Partial retransmission changes the
//! asymptotics — a retry costs only the surviving tail — and this
//! experiment measures all three protocols on 160-byte (10-block) frames
//! across the loss sweep.

use crate::{Effort, ExperimentResult};
use fdb_core::link::LinkConfig;
use fdb_mac::arq::{ArqConfig, StopAndWait};
use fdb_mac::early_abort::{EarlyAbortArq, EarlyAbortConfig};
use fdb_mac::report::TransferReport;
use fdb_mac::selective::{ResumeArq, ResumeArqConfig};
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::{derive_seed, random_payload};
use fdb_sim::parallel_sweep;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::e4_goodput::{batch_delivery_rate, batch_goodput_bps};

/// Runs A3.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let transfers = effort.frames(16);
    let payload_len = 160; // 10 blocks: long enough that resume matters
    let distances = vec![0.35, 0.45, 0.5, 0.55];
    let fs = LinkConfig::default_fd().phy.sample_rate_hz;
    let rows = parallel_sweep(&distances, 8, |&d| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = d;
        let seed = derive_seed(0xA3, (d * 1000.0) as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut sw = StopAndWait::new(
            cfg.clone(),
            ArqConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("A3 sw");
        let mut ea = EarlyAbortArq::new(
            cfg.clone(),
            EarlyAbortConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("A3 ea");
        let mut resume = ResumeArq::new(
            cfg,
            ResumeArqConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("A3 resume");
        let mut sw_r: Vec<TransferReport> = Vec::new();
        let mut ea_r: Vec<TransferReport> = Vec::new();
        let mut re_r: Vec<TransferReport> = Vec::new();
        for _ in 0..transfers {
            let payload = random_payload(&mut rng, payload_len);
            sw_r.push(sw.transfer(&payload, &mut rng).expect("sw"));
            ea_r.push(ea.transfer(&payload, &mut rng).expect("ea"));
            re_r.push(resume.transfer(&payload, &mut rng).expect("resume"));
        }
        (d, sw_r, ea_r, re_r)
    });
    let mut table = Table::new(&[
        "distance_m",
        "goodput_sw_bps",
        "goodput_early_abort_bps",
        "goodput_resume_bps",
        "resume_over_ea",
        "delivery_sw",
        "delivery_ea",
        "delivery_resume",
    ]);
    for (d, sw_r, ea_r, re_r) in &rows {
        let g_sw = batch_goodput_bps(sw_r, fs);
        let g_ea = batch_goodput_bps(ea_r, fs);
        let g_re = batch_goodput_bps(re_r, fs);
        table.row(&[
            fmt_sig(*d, 3),
            fmt_sig(g_sw, 3),
            fmt_sig(g_ea, 3),
            fmt_sig(g_re, 3),
            fmt_sig(if g_ea > 0.0 { g_re / g_ea } else { f64::NAN }, 3),
            fmt_sig(batch_delivery_rate(sw_r), 3),
            fmt_sig(batch_delivery_rate(ea_r), 3),
            fmt_sig(batch_delivery_rate(re_r), 3),
        ]);
    }
    vec![ExperimentResult {
        id: "a3",
        title: "extension: resume-from-failed-block vs full-frame early abort (160 B frames)",
        table,
    }]
}
