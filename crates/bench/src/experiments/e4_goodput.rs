//! E4 — Goodput: early-abort ARQ vs stop-and-wait, PHY-backed.
//!
//! The paper's motivating win. Both protocols transfer the same payloads
//! over the same channels; stop-and-wait pays a reverse ACK frame and two
//! turnarounds per attempt and only discovers corruption at frame end,
//! while early abort cuts dead frames short and carries its ACK in-band.
//! The analytical advantage model overlays the measurement.

use crate::{Effort, ExperimentResult};
use fdb_analysis::arq::FrameModel;
use fdb_core::link::LinkConfig;
use fdb_mac::arq::{ArqConfig, StopAndWait};
use fdb_mac::early_abort::{EarlyAbortArq, EarlyAbortConfig};
use fdb_mac::report::TransferReport;
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::{derive_seed, random_payload};
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One protocol-comparison measurement at a given distance.
pub struct GoodputPoint {
    /// Device separation (metres).
    pub distance_m: f64,
    /// Measured per-block error rate (calibration for the model).
    pub p_block: f64,
    /// Per-transfer stop-and-wait reports.
    pub sw: Vec<TransferReport>,
    /// Per-transfer early-abort reports.
    pub ea: Vec<TransferReport>,
    /// Model-predicted advantage ratio.
    pub predicted_advantage: f64,
}

/// Aggregate goodput over a batch of transfers: delivered payload bits over
/// *all* elapsed time (failed transfers burn time but deliver nothing).
pub fn batch_goodput_bps(reports: &[TransferReport], sample_rate_hz: f64) -> f64 {
    let bits: u64 = reports
        .iter()
        .filter(|r| r.delivered)
        .map(|r| (r.payload_bytes * 8) as u64)
        .sum();
    let samples: u64 = reports.iter().map(|r| r.elapsed_samples).sum();
    if samples == 0 {
        0.0
    } else {
        bits as f64 / (samples as f64 / sample_rate_hz)
    }
}

/// Aggregate energy per delivered bit over a batch (all energy spent,
/// divided by bits that actually arrived).
pub fn batch_energy_per_bit_j(reports: &[TransferReport]) -> f64 {
    let bits: u64 = reports
        .iter()
        .filter(|r| r.delivered)
        .map(|r| (r.payload_bytes * 8) as u64)
        .sum();
    let energy: f64 = reports.iter().map(|r| r.energy_a_j + r.energy_b_j).sum();
    if bits == 0 {
        f64::INFINITY
    } else {
        energy / bits as f64
    }
}

/// Fraction of transfers that completed.
pub fn batch_delivery_rate(reports: &[TransferReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().filter(|r| r.delivered).count() as f64 / reports.len() as f64
}

/// Measures both protocols at one distance.
pub fn measure_point(
    distance_m: f64,
    payload_len: usize,
    transfers: u64,
    seed: u64,
) -> GoodputPoint {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = distance_m;

    // Calibrate the per-block error rate for the analytical overlay.
    let cal = run_link(
        &cfg,
        &MeasureSpec {
            frames: transfers.max(8),
            payload_len,
            seed: seed ^ 0xCA11,
            feedback_probe: Some(false),
            trace: Default::default(),
            faults: None,
        },
        LinkRun::new(),
    )
    .expect("E4 calibration");
    let p_block = cal.block_error_rate();

    let phy = &cfg.phy;
    let n_blocks = payload_len.div_ceil(phy.block_len_bytes) as u32;
    let model = FrameModel {
        overhead_bits: (phy.preamble.len() + fdb_core::frame::HEADER_BITS) as f64,
        n_blocks,
        block_bits: ((phy.block_len_bytes + 1) * 8) as f64,
        p_block,
    };
    let ack_bits = fdb_core::frame::frame_bits_len(phy, 2) as f64 + phy.preamble.len() as f64;
    let latency_bits =
        (phy.feedback_guard_bits + (fdb_core::feedback::PILOTS.len() + 1) * phy.feedback_ratio) as f64;
    let predicted_advantage = model.early_abort_advantage(ack_bits, 400.0 / 20.0, latency_bits, 20.0);

    // Run the protocols.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let arq_cfg = ArqConfig {
        max_attempts: 16,
        ..Default::default()
    };
    let ea_cfg = EarlyAbortConfig {
        max_attempts: 16,
        ..Default::default()
    };
    let mut sw = StopAndWait::new(cfg.clone(), arq_cfg, &mut rng).expect("E4 stop-and-wait");
    let mut ea = EarlyAbortArq::new(cfg, ea_cfg, &mut rng).expect("E4 early-abort");
    let mut sw_reports = Vec::with_capacity(transfers as usize);
    let mut ea_reports = Vec::with_capacity(transfers as usize);
    for _ in 0..transfers {
        let payload = random_payload(&mut rng, payload_len);
        sw_reports.push(sw.transfer(&payload, &mut rng).expect("sw transfer"));
        ea_reports.push(ea.transfer(&payload, &mut rng).expect("ea transfer"));
    }
    GoodputPoint {
        distance_m,
        p_block,
        sw: sw_reports,
        ea: ea_reports,
        predicted_advantage,
    }
}

/// Runs E4.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let transfers = effort.frames(24);
    let payload_len = 96;
    let distances = vec![0.3, 0.4, 0.45, 0.5, 0.55, 0.6];
    let fs = LinkConfig::default_fd().phy.sample_rate_hz;
    let rows = parallel_sweep(&distances, 8, |&d| {
        measure_point(d, payload_len, transfers, derive_seed(0xE4, (d * 1000.0) as u64))
    });
    let mut table = Table::new(&[
        "distance_m",
        "p_block",
        "goodput_sw_bps",
        "goodput_ea_bps",
        "measured_advantage",
        "predicted_advantage",
        "delivery_sw",
        "delivery_ea",
        "ea_aborts",
        "sw_frames",
        "ea_frames",
    ]);
    for p in &rows {
        let g_sw = batch_goodput_bps(&p.sw, fs);
        let g_ea = batch_goodput_bps(&p.ea, fs);
        let adv = if g_sw > 0.0 { g_ea / g_sw } else { f64::NAN };
        table.row(&[
            fmt_sig(p.distance_m, 3),
            fmt_sig(p.p_block, 3),
            fmt_sig(g_sw, 3),
            fmt_sig(g_ea, 3),
            fmt_sig(adv, 3),
            fmt_sig(p.predicted_advantage, 3),
            fmt_sig(batch_delivery_rate(&p.sw), 3),
            fmt_sig(batch_delivery_rate(&p.ea), 3),
            p.ea.iter().map(|r| r.aborts).sum::<u32>().to_string(),
            p.sw.iter().map(|r| r.frames_sent).sum::<u32>().to_string(),
            p.ea.iter().map(|r| r.frames_sent).sum::<u32>().to_string(),
        ]);
    }
    vec![ExperimentResult {
        id: "e4",
        title: "goodput: early-abort FD ARQ vs stop-and-wait HD ARQ vs loss rate",
        table,
    }]
}
