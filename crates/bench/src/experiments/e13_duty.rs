//! E13 — Energy-neutral operation: sustainable throughput vs source
//! distance.
//!
//! A battery-free sensor at distance `d` from the tower banks harvested
//! energy and fires one report per charge cycle. Near the tower the link
//! is airtime-limited (duty → 1); beyond the harvester's sensitivity the
//! tag is dead. In between, throughput rolls off as the harvested power —
//! the charge-and-fire staircase this experiment measures.
//!
//! Per-transfer energy and airtime come from real PHY-backed transfers
//! (the sensor's transmit/receive loads); the inter-transfer banking uses
//! the closed-form harvester income at that distance.

use crate::{Effort, ExperimentResult};
use fdb_analysis::harvest::HarvestModel;
use fdb_channel::pathloss::PathLoss;
use fdb_core::link::LinkConfig;
use fdb_mac::duty::{DutyConfig, DutyCycleController};
use fdb_mac::early_abort::{EarlyAbortArq, EarlyAbortConfig};
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::{derive_seed, random_payload};
use fdb_sim::parallel_sweep;
use fdb_dsp::sample::dbm_to_watts;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs E13.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let transfers = effort.frames(24);
    let dists: Vec<f64> = vec![50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 600.0];
    let payload_len = 64usize;
    let model = HarvestModel {
        sensitivity_w: 1e-5,
        saturation_w: 3.16e-4,
        max_efficiency: 0.4,
    };
    let rows = parallel_sweep(&dists, 8, |&d| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.source_dist_a_m = d;
        cfg.geometry.source_dist_b_m = d;
        let fs = cfg.phy.sample_rate_hz;
        let incident_w = dbm_to_watts(cfg.geometry.source_power_dbm)
            * PathLoss::tv_band().gain(d);
        let income_w = model.harvested_w(incident_w);

        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(0xE13, d as u64));
        let mut arq = EarlyAbortArq::new(
            cfg,
            EarlyAbortConfig {
                max_attempts: 8,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("E13 arq");
        let mut duty = DutyCycleController::new(DutyConfig::default());
        let mut delivered_bits = 0u64;
        let mut wall_s = 0.0f64;
        let mut dead = false;
        for _ in 0..transfers {
            match duty.sleep_until_ready(income_w) {
                Some(t) => wall_s += t,
                None => {
                    dead = true;
                    break;
                }
            }
            let payload = random_payload(&mut rng, payload_len);
            let r = arq.transfer(&payload, &mut rng).expect("E13 transfer");
            let dur = r.elapsed_samples as f64 / fs;
            wall_s += dur;
            duty.fire(r.energy_a_j, dur, income_w);
            if r.delivered {
                delivered_bits += (payload_len * 8) as u64;
            }
        }
        let goodput = if wall_s > 0.0 && !dead {
            delivered_bits as f64 / wall_s
        } else {
            0.0
        };
        let (fired, brown) = duty.counts();
        (d, income_w, goodput, duty.slept_s(), wall_s, fired, brown, dead)
    });

    let mut table = Table::new(&[
        "source_dist_m",
        "harvest_income_uw",
        "sustainable_goodput_bps",
        "duty_cycle",
        "transfers_fired",
        "brown_outs",
        "tag_dead",
    ]);
    for (d, income, goodput, slept, wall, fired, brown, dead) in &rows {
        let duty_cycle = if *wall > 0.0 {
            (wall - slept) / wall
        } else {
            0.0
        };
        table.row(&[
            fmt_sig(*d, 4),
            fmt_sig(income * 1e6, 3),
            fmt_sig(*goodput, 3),
            fmt_sig(duty_cycle, 3),
            fired.to_string(),
            brown.to_string(),
            dead.to_string(),
        ]);
    }
    vec![ExperimentResult {
        id: "e13",
        title: "energy-neutral duty cycling: sustainable goodput vs source distance",
        table,
    }]
}
