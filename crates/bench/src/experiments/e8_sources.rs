//! E8 — Ambient-source sensitivity: CW vs TV vs bursty OFDM.
//!
//! The excitation's envelope statistics are the backscatter channel's
//! noise floor. Expected ordering at a fixed geometry: a dedicated CW
//! carrier is essentially error-free, wideband TV adds the `1/√k`
//! fluctuation, narrowband TV (small k) is worse, and a bursty OFDM
//! source — which vanishes between frames — is the harshest.

use crate::{Effort, ExperimentResult};
use fdb_ambient::AmbientConfig;
use fdb_core::link::LinkConfig;
use fdb_sim::report::{fmt_ber, fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};

/// Runs E8.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(48);
    let sources: Vec<(&'static str, AmbientConfig)> = vec![
        ("cw-carrier", AmbientConfig::Cw),
        ("tv-wideband(k=300)", AmbientConfig::TvWideband { k_factor: 300.0 }),
        ("tv-wideband(k=60)", AmbientConfig::TvWideband { k_factor: 60.0 }),
        (
            "ofdm-bursty(duty=0.6)",
            AmbientConfig::OfdmBursty {
                duty_cycle: 0.6,
                burst_len: 4000,
            },
        ),
    ];
    let rows = parallel_sweep(&sources, 4, |(name, ambient)| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.45;
        cfg.ambient = *ambient;
        let metrics = run_link(
            &cfg,
            &MeasureSpec {
                frames,
                payload_len: 64,
                seed: derive_seed(0xE8, name.len() as u64),
                feedback_probe: Some(true),
                trace: Default::default(),
                faults: None,
            },
            LinkRun::new(),
        )
        .expect("E8 run");
        (*name, metrics)
    });
    let mut table = Table::new(&[
        "source",
        "lock_rate",
        "data_ber",
        "feedback_ber",
        "delivery_rate",
        "harvested_b_uj",
    ]);
    for (name, m) in &rows {
        table.row(&[
            name.to_string(),
            fmt_sig(m.lock_rate(), 3),
            fmt_ber(&m.data_ber),
            fmt_ber(&m.feedback_ber),
            fmt_sig(m.delivery_rate(), 3),
            fmt_sig(m.harvested_b_j * 1e6, 3),
        ]);
    }
    vec![ExperimentResult {
        id: "e8",
        title: "ambient-source sensitivity at d = 0.45 m (CW / TV / bursty OFDM)",
        table,
    }]
}
