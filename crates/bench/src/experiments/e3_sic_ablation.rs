//! E3 — Self-interference ablation: what breaks without known-state SIC.
//!
//! Sweeps the feedback reflection coefficient ρ_B (the strength of the
//! receiver's own toggling) with cancellation on and off. Without SIC, the
//! receiver's own antenna flips amplitude-modulate its detector by
//! `(1 − ρ_B)` and the forward BER floors; with SIC the flips divide out
//! and the forward link barely notices. The transmitter side is measured
//! too: A's feedback decoder without SIC sees A's *own data* as a huge
//! in-band interferer.

use crate::{Effort, ExperimentResult};
use fdb_core::config::SicMode;
use fdb_core::link::LinkConfig;
use fdb_sim::report::{fmt_ber, fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::{parallel_sweep, run_link, LinkRun, MeasureSpec};

/// Runs E3.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let frames = effort.frames(48);
    let rhos: Vec<f64> = vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5];
    let rows = parallel_sweep(&rhos, 8, |&rho_b| {
        let mut on_cfg = LinkConfig::default_fd();
        on_cfg.geometry.device_dist_m = 0.35; // strong link: isolate SIC effect
        on_cfg.tag_b.rho = rho_b;
        let mut off_cfg = on_cfg.clone();
        off_cfg.phy.sic = SicMode::Off;
        let seed = derive_seed(0xE3, (rho_b * 1000.0) as u64);
        let spec = MeasureSpec {
            frames,
            payload_len: 96,
            seed,
            feedback_probe: Some(true),
            trace: Default::default(),
            faults: None,
        };
        let on = run_link(&on_cfg, &spec, LinkRun::new()).expect("E3 on");
        let off = run_link(&off_cfg, &spec, LinkRun::new()).expect("E3 off");
        (rho_b, on, off)
    });

    let mut table = Table::new(&[
        "rho_feedback",
        "data_ber_sic_on",
        "data_ber_sic_off",
        "delivery_sic_on",
        "delivery_sic_off",
        "fb_ber_sic_on",
        "fb_ber_sic_off",
    ]);
    for (rho, on, off) in &rows {
        table.row(&[
            fmt_sig(*rho, 3),
            fmt_ber(&on.data_ber),
            fmt_ber(&off.data_ber),
            fmt_sig(on.delivery_rate(), 3),
            fmt_sig(off.delivery_rate(), 3),
            fmt_ber(&on.feedback_ber),
            fmt_ber(&off.feedback_ber),
        ]);
    }
    vec![ExperimentResult {
        id: "e3",
        title: "self-interference cancellation ablation vs feedback reflection strength",
        table,
    }]
}
