//! E5 — Energy per delivered bit vs distance.
//!
//! Battery-free devices live or die on joules per bit. Early abort saves
//! energy two ways: aborted frames stop burning both devices' receive
//! chains, and the missing ACK frames remove the reverse-direction cost
//! entirely. This experiment reuses the E4 protocol machinery and reads
//! the devices' energy ledgers.

use crate::experiments::e4_goodput::{
    batch_delivery_rate, batch_energy_per_bit_j, measure_point,
};
use crate::{Effort, ExperimentResult};
use fdb_sim::report::{fmt_sig, Table};
use fdb_sim::runner::derive_seed;
use fdb_sim::parallel_sweep;

/// Runs E5.
pub fn run(effort: Effort) -> Vec<ExperimentResult> {
    let transfers = effort.frames(24);
    let payload_len = 96;
    let distances = vec![0.3, 0.4, 0.45, 0.5, 0.55, 0.6];
    let rows = parallel_sweep(&distances, 8, |&d| {
        measure_point(
            d,
            payload_len,
            transfers,
            derive_seed(0xE5, (d * 1000.0) as u64),
        )
    });
    let mut table = Table::new(&[
        "distance_m",
        "p_block",
        "energy_per_bit_sw_j",
        "energy_per_bit_ea_j",
        "energy_ratio_sw_over_ea",
        "delivery_sw",
        "delivery_ea",
    ]);
    for p in &rows {
        let e_sw = batch_energy_per_bit_j(&p.sw);
        let e_ea = batch_energy_per_bit_j(&p.ea);
        let ratio = if e_ea > 0.0 && e_ea.is_finite() && e_sw.is_finite() {
            e_sw / e_ea
        } else {
            f64::NAN
        };
        table.row(&[
            fmt_sig(p.distance_m, 3),
            fmt_sig(p.p_block, 3),
            fmt_sig(e_sw, 3),
            fmt_sig(e_ea, 3),
            fmt_sig(ratio, 3),
            fmt_sig(batch_delivery_rate(&p.sw), 3),
            fmt_sig(batch_delivery_rate(&p.ea), 3),
        ]);
    }
    vec![ExperimentResult {
        id: "e5",
        title: "energy per delivered bit: early abort vs stop-and-wait vs distance",
        table,
    }]
}
