//! Frame-trace probe.
//!
//! Default mode replays **one seeded frame** over the default link and
//! prints the per-stage diagnostic trace as JSON lines — one
//! [`fdb_core::trace::TraceEvent`] per line, followed by a final `summary`
//! object. This is the fastest way to see *where* inside the PHY pipeline
//! a frame dies: tx chip emission, channel envelopes, SIC correction,
//! receiver lock/chips/bits/block CRCs and the feedback pilot/bit decode
//! all appear as separate stages. With `--trace-out PATH` the events
//! stream to a JSONL file (with frame markers) instead of stdout.
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe -- \
//!     [--seed N] [--dist METERS] [--payload-len BYTES] [--mode fd|hd] \
//!     [--stage tx|channel|sic|rx|feedback] [--trace-out PATH]
//! ```
//!
//! Reports replay a batch of frames and emit one JSON line per frame plus
//! a closing summary:
//!
//! * `--report sync` — two-stage acquisition counters per frame (candidate
//!   locks, rejections, peak correlation). Works without the `trace`
//!   feature; the CI smoke check for lock discrimination.
//! * `--report link` — aggregate `LinkMetrics` for the batch; with
//!   `--trace-out PATH` every frame's events stream to a JSONL file
//!   through a `JsonlFileSink` while the run stays at constant resident
//!   memory (needs the `trace` feature).
//! * `--report mac` — runs an adaptive-vs-oblivious
//!   [`fdb_sim::AblationPair`] (`--config configs/scenarios/*.json`,
//!   required): one JSON line per session slot for each arm (tagged
//!   `"arm":"adaptive"|"oblivious"`), then a summary with both goodputs,
//!   the achieved margin and the pair's `min_margin` gate. Exits non-zero
//!   when the margin is not met — the CI regression gate for the
//!   adaptive-MAC loop.
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe -- \
//!     --report sync|link|mac [--config configs/default_link.json] \
//!     [--frames N] [--seed N] [--trace-out PATH]
//! ```
//!
//! `--sync-report` is the backward-compatible alias for `--report sync`.
//!
//! `--faults PATH` attaches a scripted [`fdb_sim::faults::FaultPlan`]
//! (JSON, see `configs/faults/`) to any mode: report runs inject the plan
//! through `MeasureSpec::with_faults`; the single-frame trace replay and
//! `--report sync` inject each frame's schedule directly. Fault
//! activations land in the metrics/summary output.
//!
//! `--fault-matrix CFG1,CFG2,...` sweeps every listed scenario config
//! against the built-in per-class fault plans
//! ([`fdb_bench::fault_matrix::class_plans`]), printing one JSON line per
//! grid cell and exiting non-zero if any cell violates a conformance
//! invariant — the CI smoke check for the fault layer.
//!
//! `--validate-trace PATH` parses a trace JSONL file line-by-line
//! (`serde_json`-backed), exits non-zero on the first malformed line, and
//! prints a summary — the CI check that streamed traces stay readable.
//!
//! The legacy operating-envelope sweep is still available:
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe -- --sweep [frames-per-point]
//! ```
//!
//! The single-frame trace replay needs the `trace` feature, which is on by
//! default for this crate; a `--no-default-features` build keeps
//! `--sweep`, `--report sync` and `--validate-trace`.

use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use fdb_core::trace::parse_trace_line;
use fdb_sim::faults::FaultPlan;
use fdb_sim::MeasureSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[derive(PartialEq)]
enum Report {
    Sync,
    Link,
    Mac,
}

struct Args {
    seed: u64,
    seed_given: bool,
    dist: f64,
    payload_len: usize,
    full_duplex: bool,
    /// Restrict JSONL output to one stage (tx/channel/sic/rx/feedback).
    stage: Option<String>,
    /// `Some(frames)` = run the legacy distance sweep instead.
    sweep: Option<u32>,
    /// Batch report mode (`--report sync|link`; `--sync-report` aliases
    /// `--report sync`).
    report: Option<Report>,
    /// Bundled scenario file (`{link, spec}` JSON) for report modes.
    config: Option<String>,
    /// Frame-count override for report modes.
    frames: Option<u64>,
    /// Stream trace events to this JSONL file instead of stdout.
    trace_out: Option<String>,
    /// Validate a trace JSONL file line-by-line and exit.
    validate_trace: Option<String>,
    /// Scripted fault plan (JSON file) injected into the run.
    faults: Option<String>,
    /// Comma-separated scenario configs for the conformance matrix.
    fault_matrix: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: probe [--seed N] [--dist METERS] [--payload-len BYTES] \
         [--mode fd|hd] [--stage NAME] [--trace-out PATH] [--faults PATH]\n\
         \x20      probe --report sync|link [--config PATH] [--frames N] \
         [--seed N] [--trace-out PATH] [--faults PATH]\n\
         \x20      probe --report mac --config configs/scenarios/PAIR.json \
         [--seed N]\n\
         \x20      probe --fault-matrix CFG1,CFG2,... [--frames N] [--seed N]\n\
         \x20      probe --validate-trace PATH\n\
         \x20      probe --sweep [frames]\n\
         (--sync-report is the legacy alias for --report sync)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 7,
        seed_given: false,
        dist: 0.3,
        payload_len: 64,
        full_duplex: true,
        stage: None,
        sweep: None,
        report: None,
        config: None,
        frames: None,
        trace_out: None,
        validate_trace: None,
        faults: None,
        fault_matrix: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        });
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| usage());
                args.seed_given = true;
            }
            "--dist" => args.dist = value("--dist").parse().unwrap_or_else(|_| usage()),
            "--payload-len" => {
                args.payload_len = value("--payload-len").parse().unwrap_or_else(|_| usage())
            }
            "--mode" => match value("--mode").as_str() {
                "fd" => args.full_duplex = true,
                "hd" => args.full_duplex = false,
                _ => usage(),
            },
            "--stage" => args.stage = Some(value("--stage")),
            "--sweep" => {
                args.sweep = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or(20))
            }
            "--report" => match value("--report").as_str() {
                "sync" => args.report = Some(Report::Sync),
                "link" => args.report = Some(Report::Link),
                "mac" => args.report = Some(Report::Mac),
                other => {
                    eprintln!("unknown report '{other}' (expected sync|link|mac)");
                    usage()
                }
            },
            "--sync-report" => args.report = Some(Report::Sync),
            "--config" => args.config = Some(value("--config")),
            "--frames" => {
                args.frames = Some(value("--frames").parse().unwrap_or_else(|_| usage()))
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--validate-trace" => args.validate_trace = Some(value("--validate-trace")),
            "--faults" => args.faults = Some(value("--faults")),
            "--fault-matrix" => args.fault_matrix = Some(value("--fault-matrix")),
            "--help" | "-h" => usage(),
            // Bare number: legacy `probe N` sweep invocation.
            n if n.parse::<u32>().is_ok() => args.sweep = Some(n.parse().unwrap()),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.validate_trace {
        validate_trace(path);
        return;
    }
    if let Some(configs) = &args.fault_matrix {
        fault_matrix(&args, configs);
        return;
    }
    match args.report {
        Some(Report::Sync) => {
            sync_report(&args);
            return;
        }
        Some(Report::Link) => {
            link_report(&args);
            return;
        }
        Some(Report::Mac) => {
            mac_report(&args);
            return;
        }
        None => {}
    }
    if let Some(frames) = args.sweep {
        sweep(frames);
        return;
    }
    #[cfg(feature = "trace")]
    trace_frame(&args);
    #[cfg(not(feature = "trace"))]
    {
        eprintln!(
            "probe was built without the `trace` feature; rebuild with default \
             features (or use --sweep / --report / --validate-trace)"
        );
        std::process::exit(2);
    }
}

/// Loads and validates a [`FaultPlan`] JSON file, exiting on failure.
fn load_fault_plan(path: &str) -> FaultPlan {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let plan: FaultPlan = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} invalid: {e}");
        std::process::exit(2);
    });
    plan.validate().unwrap_or_else(|e| {
        eprintln!("{path} invalid: {e}");
        std::process::exit(2);
    });
    plan
}

/// Loads `{link, spec}` from `--config` (or the built-in default scenario)
/// and applies the CLI overrides shared by the report modes.
fn load_scenario(args: &Args, default_frames: u64) -> (LinkConfig, MeasureSpec) {
    #[derive(serde::Deserialize)]
    struct Scenario {
        link: LinkConfig,
        spec: MeasureSpec,
    }

    let (cfg, mut spec) = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let scenario: Scenario = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("{path} invalid: {e}");
                std::process::exit(2);
            });
            (scenario.link, scenario.spec)
        }
        None => {
            let mut cfg = LinkConfig::default_fd();
            cfg.geometry.device_dist_m = args.dist;
            let spec = MeasureSpec {
                frames: default_frames,
                payload_len: args.payload_len,
                seed: args.seed,
                feedback_probe: Some(false),
                trace: Default::default(),
                faults: None,
            };
            (cfg, spec)
        }
    };
    if let Some(n) = args.frames {
        spec.frames = n;
    }
    if args.seed_given {
        spec.seed = args.seed;
    }
    if let Some(path) = &args.faults {
        spec = spec.with_faults(load_fault_plan(path));
    }
    cfg.phy.validate().unwrap_or_else(|e| {
        eprintln!("invalid PHY config: {e}");
        std::process::exit(2);
    });
    (cfg, spec)
}

/// The conformance matrix (`--fault-matrix`): every listed scenario
/// config crossed with the built-in per-class plans (plus the `--faults`
/// plan when given). One JSON line per grid cell; exits non-zero when any
/// cell reports an invariant violation.
fn fault_matrix(args: &Args, configs: &str) {
    let mut scenarios = Vec::new();
    for path in configs.split(',').filter(|s| !s.is_empty()) {
        let one = Args {
            seed: args.seed,
            seed_given: args.seed_given,
            dist: args.dist,
            payload_len: args.payload_len,
            full_duplex: args.full_duplex,
            stage: None,
            sweep: None,
            report: None,
            config: Some(path.to_string()),
            // Matrix cells default to a short batch; --frames overrides.
            frames: Some(args.frames.unwrap_or(4)),
            trace_out: None,
            validate_trace: None,
            faults: None,
            fault_matrix: None,
        };
        let (cfg, spec) = load_scenario(&one, 4);
        scenarios.push((path.to_string(), cfg, spec));
    }
    if scenarios.is_empty() {
        eprintln!("--fault-matrix needs at least one config path");
        usage();
    }
    let mut plans: Vec<(String, fdb_sim::faults::FaultPlan)> =
        fdb_bench::fault_matrix::class_plans(args.seed)
            .into_iter()
            .map(|(label, plan)| (label.to_string(), plan))
            .collect();
    if let Some(path) = &args.faults {
        plans.push((path.clone(), load_fault_plan(path)));
    }
    let cells = fdb_bench::fault_matrix::run_matrix(&scenarios, &plans).unwrap_or_else(|e| {
        eprintln!("matrix run failed: {e}");
        std::process::exit(1);
    });
    let mut violations = 0usize;
    for cell in &cells {
        violations += cell.violations.len();
        println!("{}", serde_json::to_string(cell).expect("cell serializes"));
    }
    println!(
        "{{\"summary\":true,\"cells\":{},\"violations\":{violations}}}",
        cells.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}

#[cfg(feature = "trace")]
fn trace_frame(args: &Args) {
    use fdb_core::trace::{JsonlFileSink, TraceSink};
    use serde::Serialize;

    #[derive(Serialize)]
    struct Summary {
        seed: u64,
        dist_m: f64,
        payload_len: usize,
        mode: String,
        b_locked: bool,
        rx_sync_peak: f64,
        fully_delivered: bool,
        blocks_ok: usize,
        blocks_total: usize,
        pilots_verified: bool,
        feedback_bits: usize,
        aborted_at_sample: Option<usize>,
        samples_run: usize,
        trace_events: usize,
        trace_dropped: usize,
    }

    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = args.dist;
    let frame_cap = cfg.phy.trace_ring_capacity();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
    let payload: Vec<u8> = (0..args.payload_len).map(|i| (i % 251) as u8).collect();
    let opts = if args.full_duplex {
        RunOptions::fd_monitor()
    } else {
        RunOptions::half_duplex()
    };
    // Single-frame replay: frame 0 of the plan's schedule applies.
    let plan = args.faults.as_deref().map(load_fault_plan);
    let mut frame_faults = plan.as_ref().and_then(|p| p.frame_faults(0));

    let (out, trace_events, trace_dropped) = match &args.trace_out {
        Some(path) => {
            if args.stage.is_some() {
                eprintln!("--stage filters stdout output only; ignored with --trace-out");
            }
            let mut sink = JsonlFileSink::create(path)
                .unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(2);
                })
                .with_frame_cap(frame_cap);
            sink.begin_frame(0);
            let out = link
                .run_frame_faulted_into(&payload, &opts, &mut rng, frame_faults.as_mut(), &mut sink)
                .expect("frame");
            sink.end_frame();
            let summary = sink.finish().unwrap_or_else(|e| {
                eprintln!("trace sink failed: {e}");
                std::process::exit(1);
            });
            (out, summary.events as usize, summary.dropped as usize)
        }
        None => {
            let out = link
                .run_frame_faulted(&payload, &opts, &mut rng, frame_faults.as_mut())
                .expect("frame");
            for ev in out.trace.events() {
                if let Some(stage) = &args.stage {
                    if ev.stage() != stage {
                        continue;
                    }
                }
                println!("{}", serde_json::to_string(ev).expect("event serializes"));
            }
            let (n, d) = (out.trace.len(), out.trace.dropped());
            (out, n, d)
        }
    };

    let summary = Summary {
        seed: args.seed,
        dist_m: args.dist,
        payload_len: args.payload_len,
        mode: if args.full_duplex { "fd" } else { "hd" }.into(),
        b_locked: out.b_locked,
        rx_sync_peak: out.rx_sync_peak,
        fully_delivered: out.fully_delivered(),
        blocks_ok: out.blocks_ok(),
        blocks_total: out.blocks_total(),
        pilots_verified: out.pilots_verified,
        feedback_bits: out.feedback.len(),
        aborted_at_sample: out.aborted_at_sample,
        samples_run: out.samples_run,
        trace_events,
        trace_dropped,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Per-frame two-stage acquisition report: one JSON line per frame with
/// the sync attempt/rejection counters, then a `summary` line. Needs no
/// trace feature — everything comes off the [`fdb_core::link::FrameOutcome`].
fn sync_report(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct FrameLine {
        frame: u64,
        locked: bool,
        fully_delivered: bool,
        sync_attempts: usize,
        sync_rejections: usize,
        sync_peak: f64,
        nack: bool,
    }

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        seed: u64,
        frames: u64,
        locked: u64,
        fully_delivered: u64,
        sync_attempts: u64,
        sync_rejections: u64,
    }

    let (cfg, spec) = load_scenario(args, 20);
    let config_name = args.config.clone().unwrap_or_else(|| "default".into());
    let frames = spec.frames;

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("validated config");
    let payload: Vec<u8> = (0..args.payload_len).map(|i| (i % 251) as u8).collect();
    let (mut locked, mut delivered, mut attempts, mut rejections) = (0u64, 0u64, 0u64, 0u64);
    for frame in 0..frames {
        let mut frame_faults = spec
            .faults
            .as_ref()
            .and_then(|plan| plan.frame_faults(frame));
        let out = link
            .run_frame_faulted(
                &payload,
                &RunOptions::fd_monitor(),
                &mut rng,
                frame_faults.as_mut(),
            )
            .expect("frame");
        locked += u64::from(out.b_locked);
        delivered += u64::from(out.fully_delivered());
        attempts += out.sync_attempts as u64;
        rejections += out.sync_rejections as u64;
        let line = FrameLine {
            frame,
            locked: out.b_locked,
            fully_delivered: out.fully_delivered(),
            sync_attempts: out.sync_attempts,
            sync_rejections: out.sync_rejections,
            sync_peak: out.rx_sync_peak,
            nack: out.nack,
        };
        println!("{}", serde_json::to_string(&line).expect("frame line serializes"));
    }
    let summary = SummaryLine {
        summary: true,
        config: config_name,
        seed: spec.seed,
        frames,
        locked,
        fully_delivered: delivered,
        sync_attempts: attempts,
        sync_rejections: rejections,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Aggregate-metrics report over a batch of frames; with `--trace-out`,
/// every frame's diagnostic events stream to a JSONL file while the run
/// itself stays at constant resident memory.
fn link_report(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        metrics: fdb_sim::LinkMetrics,
        trace_out: Option<String>,
    }

    let (cfg, mut spec) = load_scenario(args, 20);
    if let Some(path) = &args.trace_out {
        spec = spec.with_trace(fdb_core::trace::TraceSinkSpec::jsonl(path.clone()));
    }
    let metrics = fdb_sim::measure_link(&cfg, &spec).unwrap_or_else(|e| {
        eprintln!("measurement failed: {e}");
        std::process::exit(1);
    });
    let summary = SummaryLine {
        summary: true,
        config: args.config.clone().unwrap_or_else(|| "default".into()),
        metrics,
        trace_out: args.trace_out.clone(),
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Adaptive-MAC ablation report (`--report mac`): loads an
/// [`fdb_sim::AblationPair`] from `--config`, runs both arms over the
/// same fault timeline, prints one JSON line per session slot per arm
/// and a closing summary with the goodput margin. Exits non-zero when
/// the adaptive arm misses the pair's `min_margin` — the CI regression
/// gate for the adaptive-MAC loop.
fn mac_report(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct SlotLine {
        arm: String,
        record: fdb_mac::scenario::FrameRecord,
    }

    #[derive(Serialize)]
    struct ArmSummary {
        goodput_bps: f64,
        delivered_payloads: u64,
        failed_payloads: u64,
        false_acks: u64,
        attempts: u64,
        paused_slots: u64,
        aborted_frames: u64,
        rate_switches: u64,
        retransmit_passes: u64,
        blocks_dropped: u64,
        elapsed_samples: u64,
        ladder_trajectory: Vec<usize>,
    }

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        label: String,
        adaptive: ArmSummary,
        oblivious: ArmSummary,
        margin: f64,
        min_margin: f64,
        pass: bool,
    }

    fn arm_summary(r: &fdb_mac::scenario::AdaptationReport) -> ArmSummary {
        ArmSummary {
            goodput_bps: r.goodput_bps(),
            delivered_payloads: r.delivered_payloads,
            failed_payloads: r.failed_payloads,
            false_acks: r.false_acks,
            attempts: r.attempts,
            paused_slots: r.paused_slots,
            aborted_frames: r.aborted_frames,
            rate_switches: r.rate_switches,
            retransmit_passes: r.retransmit_passes,
            blocks_dropped: r.blocks_dropped,
            elapsed_samples: r.elapsed_samples,
            ladder_trajectory: r.ladder_trajectory(),
        }
    }

    let Some(path) = &args.config else {
        eprintln!("--report mac needs --config with an ablation-pair JSON");
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut pair: fdb_sim::AblationPair = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} invalid: {e}");
        std::process::exit(2);
    });
    if args.seed_given {
        pair.adaptive.seed = args.seed;
        pair.oblivious.seed = args.seed;
    }
    pair.link.phy.validate().unwrap_or_else(|e| {
        eprintln!("invalid PHY config: {e}");
        std::process::exit(2);
    });
    let outcome = pair.run().unwrap_or_else(|e| {
        eprintln!("pair run failed: {e}");
        std::process::exit(1);
    });
    for (arm, report) in [
        ("adaptive", &outcome.adaptive),
        ("oblivious", &outcome.oblivious),
    ] {
        for record in &report.records {
            let line = SlotLine {
                arm: arm.to_string(),
                record: record.clone(),
            };
            println!("{}", serde_json::to_string(&line).expect("slot line serializes"));
        }
    }
    let summary = SummaryLine {
        summary: true,
        config: path.clone(),
        label: outcome.label.clone(),
        adaptive: arm_summary(&outcome.adaptive),
        oblivious: arm_summary(&outcome.oblivious),
        margin: outcome.margin,
        min_margin: outcome.min_margin,
        pass: outcome.pass,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
    if !outcome.pass {
        eprintln!(
            "FAIL: adaptive/oblivious goodput margin {:.3} below required {:.3}",
            outcome.margin, outcome.min_margin
        );
        std::process::exit(1);
    }
}

/// Parses a trace JSONL file line-by-line, exiting non-zero with the
/// offending line number on the first parse failure.
fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let (mut events, mut frames) = (0u64, 0u64);
    for (i, line) in text.lines().enumerate() {
        match parse_trace_line(line) {
            Ok(fdb_core::trace::TraceLine::Event(_)) => events += 1,
            Ok(fdb_core::trace::TraceLine::FrameEnd { .. }) => frames += 1,
            Ok(fdb_core::trace::TraceLine::FrameStart { .. }) => {}
            Err(e) => {
                eprintln!("{path}:{}: {e}", i + 1);
                std::process::exit(1);
            }
        }
    }
    println!(
        "{{\"validated\":\"{path}\",\"frames\":{frames},\"events\":{events}}}"
    );
}

/// Legacy operating-envelope sweep: lock/delivery/block/feedback summary
/// across device separations.
fn sweep(frames: u32) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    println!("frames per point: {frames}");
    println!("distance | locked | delivered | blocks_ok | fb_nack_bits");
    for dist in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0] {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
        let payload: Vec<u8> = (0..64u8).collect();
        let (mut locked, mut ok, mut blocks_ok, mut blocks, mut fb_nack, mut fb_total) =
            (0u32, 0u32, 0usize, 0usize, 0usize, 0usize);
        for _ in 0..frames {
            let out = link
                .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
                .expect("frame");
            locked += u32::from(out.b_locked);
            ok += u32::from(out.fully_delivered());
            blocks_ok += out.blocks_ok();
            blocks += out.blocks_total();
            fb_total += out.feedback.len();
            fb_nack += out.feedback.iter().filter(|f| !f.bit).count();
        }
        println!(
            "  {dist:.2} m | {locked:>4}/{frames} | {ok:>6}/{frames} | {blocks_ok:>5}/{blocks:<5} | {fb_nack:>5}/{fb_total}"
        );
    }
}
