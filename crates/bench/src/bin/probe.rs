//! Frame-trace probe.
//!
//! Replays **one seeded frame** over the default link and prints the
//! per-stage diagnostic trace as JSON lines — one [`TraceEvent`] per line,
//! followed by a final `summary` object. This is the fastest way to see
//! *where* inside the PHY pipeline a frame dies: tx chip emission, channel
//! envelopes, SIC correction, receiver lock/chips/bits/block CRCs and the
//! feedback pilot/bit decode all appear as separate stages.
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe -- \
//!     [--seed N] [--dist METERS] [--payload-len BYTES] [--mode fd|hd] \
//!     [--stage tx|channel|sic|rx|feedback]
//! ```
//!
//! The legacy operating-envelope sweep is still available:
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe -- --sweep [frames-per-point]
//! ```
//!
//! `--sync-report` replays a batch of frames and emits one JSON line per
//! frame with the two-stage acquisition counters (candidate locks,
//! rejections, peak correlation) plus a closing summary — the CI smoke
//! check for lock discrimination. It works with or without the `trace`
//! feature and accepts a bundled scenario file:
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe -- \
//!     --sync-report [--config configs/default_link.json] [--frames N] [--seed N]
//! ```
//!
//! The trace replay needs the `trace` feature, which is on by default for
//! this crate; a `--no-default-features` build keeps `--sweep` and
//! `--sync-report`.

use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use fdb_sim::MeasureSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Args {
    seed: u64,
    dist: f64,
    payload_len: usize,
    full_duplex: bool,
    /// Restrict JSONL output to one stage (tx/channel/sic/rx/feedback).
    stage: Option<String>,
    /// `Some(frames)` = run the legacy distance sweep instead.
    sweep: Option<u32>,
    /// Emit per-frame sync attempt/rejection JSONL instead of a trace.
    sync_report: bool,
    /// Bundled scenario file (`{link, spec}` JSON) for `--sync-report`.
    config: Option<String>,
    /// Frame-count override for `--sync-report`.
    frames: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: probe [--seed N] [--dist METERS] [--payload-len BYTES] \
         [--mode fd|hd] [--stage NAME] | --sweep [frames] | \
         --sync-report [--config PATH] [--frames N] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 7,
        dist: 0.3,
        payload_len: 64,
        full_duplex: true,
        stage: None,
        sweep: None,
        sync_report: false,
        config: None,
        frames: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        });
        match flag.as_str() {
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--dist" => args.dist = value("--dist").parse().unwrap_or_else(|_| usage()),
            "--payload-len" => {
                args.payload_len = value("--payload-len").parse().unwrap_or_else(|_| usage())
            }
            "--mode" => match value("--mode").as_str() {
                "fd" => args.full_duplex = true,
                "hd" => args.full_duplex = false,
                _ => usage(),
            },
            "--stage" => args.stage = Some(value("--stage")),
            "--sweep" => {
                args.sweep = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or(20))
            }
            "--sync-report" => args.sync_report = true,
            "--config" => args.config = Some(value("--config")),
            "--frames" => {
                args.frames = Some(value("--frames").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            // Bare number: legacy `probe N` sweep invocation.
            n if n.parse::<u32>().is_ok() => args.sweep = Some(n.parse().unwrap()),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.sync_report {
        sync_report(&args);
        return;
    }
    if let Some(frames) = args.sweep {
        sweep(frames);
        return;
    }
    #[cfg(feature = "trace")]
    trace_frame(&args);
    #[cfg(not(feature = "trace"))]
    {
        eprintln!(
            "probe was built without the `trace` feature; rebuild with default \
             features (or use --sweep)"
        );
        std::process::exit(2);
    }
}

#[cfg(feature = "trace")]
fn trace_frame(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Summary {
        seed: u64,
        dist_m: f64,
        payload_len: usize,
        mode: String,
        b_locked: bool,
        rx_sync_peak: f64,
        fully_delivered: bool,
        blocks_ok: usize,
        blocks_total: usize,
        pilots_verified: bool,
        feedback_bits: usize,
        aborted_at_sample: Option<usize>,
        samples_run: usize,
        trace_events: usize,
        trace_dropped: usize,
    }

    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = args.dist;
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
    let payload: Vec<u8> = (0..args.payload_len).map(|i| (i % 251) as u8).collect();
    let opts = if args.full_duplex {
        RunOptions::fd_monitor()
    } else {
        RunOptions::half_duplex()
    };
    let out = link.run_frame(&payload, &opts, &mut rng).expect("frame");

    for ev in out.trace.events() {
        if let Some(stage) = &args.stage {
            if ev.stage() != stage {
                continue;
            }
        }
        println!("{}", serde_json::to_string(ev).expect("event serializes"));
    }
    let summary = Summary {
        seed: args.seed,
        dist_m: args.dist,
        payload_len: args.payload_len,
        mode: if args.full_duplex { "fd" } else { "hd" }.into(),
        b_locked: out.b_locked,
        rx_sync_peak: out.rx_sync_peak,
        fully_delivered: out.fully_delivered(),
        blocks_ok: out.blocks_ok(),
        blocks_total: out.blocks_total(),
        pilots_verified: out.pilots_verified,
        feedback_bits: out.feedback.len(),
        aborted_at_sample: out.aborted_at_sample,
        samples_run: out.samples_run,
        trace_events: out.trace.len(),
        trace_dropped: out.trace.dropped(),
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Per-frame two-stage acquisition report: one JSON line per frame with
/// the sync attempt/rejection counters, then a `summary` line. Needs no
/// trace feature — everything comes off the [`fdb_core::link::FrameOutcome`].
fn sync_report(args: &Args) {
    use serde::Serialize;

    #[derive(serde::Deserialize)]
    struct Scenario {
        link: LinkConfig,
        spec: MeasureSpec,
    }

    #[derive(Serialize)]
    struct FrameLine {
        frame: u64,
        locked: bool,
        fully_delivered: bool,
        sync_attempts: usize,
        sync_rejections: usize,
        sync_peak: f64,
        nack: bool,
    }

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        seed: u64,
        frames: u64,
        locked: u64,
        fully_delivered: u64,
        sync_attempts: u64,
        sync_rejections: u64,
    }

    let (cfg, mut frames, config_name) = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let scenario: Scenario = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("{path} invalid: {e}");
                std::process::exit(2);
            });
            (scenario.link, scenario.spec.frames, path.clone())
        }
        None => {
            let mut cfg = LinkConfig::default_fd();
            cfg.geometry.device_dist_m = args.dist;
            (cfg, 20, "default".to_string())
        }
    };
    if let Some(n) = args.frames {
        frames = n;
    }
    cfg.phy.validate().unwrap_or_else(|e| {
        eprintln!("invalid PHY config: {e}");
        std::process::exit(2);
    });

    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("validated config");
    let payload: Vec<u8> = (0..args.payload_len).map(|i| (i % 251) as u8).collect();
    let (mut locked, mut delivered, mut attempts, mut rejections) = (0u64, 0u64, 0u64, 0u64);
    for frame in 0..frames {
        let out = link
            .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
            .expect("frame");
        locked += u64::from(out.b_locked);
        delivered += u64::from(out.fully_delivered());
        attempts += out.sync_attempts as u64;
        rejections += out.sync_rejections as u64;
        let line = FrameLine {
            frame,
            locked: out.b_locked,
            fully_delivered: out.fully_delivered(),
            sync_attempts: out.sync_attempts,
            sync_rejections: out.sync_rejections,
            sync_peak: out.rx_sync_peak,
            nack: out.nack,
        };
        println!("{}", serde_json::to_string(&line).expect("frame line serializes"));
    }
    let summary = SummaryLine {
        summary: true,
        config: config_name,
        seed: args.seed,
        frames,
        locked,
        fully_delivered: delivered,
        sync_attempts: attempts,
        sync_rejections: rejections,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Legacy operating-envelope sweep: lock/delivery/block/feedback summary
/// across device separations.
fn sweep(frames: u32) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    println!("frames per point: {frames}");
    println!("distance | locked | delivered | blocks_ok | fb_nack_bits");
    for dist in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0] {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
        let payload: Vec<u8> = (0..64u8).collect();
        let (mut locked, mut ok, mut blocks_ok, mut blocks, mut fb_nack, mut fb_total) =
            (0u32, 0u32, 0usize, 0usize, 0usize, 0usize);
        for _ in 0..frames {
            let out = link
                .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
                .expect("frame");
            locked += u32::from(out.b_locked);
            ok += u32::from(out.fully_delivered());
            blocks_ok += out.blocks_ok();
            blocks += out.blocks_total();
            fb_total += out.feedback.len();
            fb_nack += out.feedback.iter().filter(|f| !f.bit).count();
        }
        println!(
            "  {dist:.2} m | {locked:>4}/{frames} | {ok:>6}/{frames} | {blocks_ok:>5}/{blocks:<5} | {fb_nack:>5}/{fb_total}"
        );
    }
}
