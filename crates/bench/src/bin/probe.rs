//! PHY/MAC probe CLI — one binary, subcommand per workflow:
//!
//! ```text
//! probe replay  [--seed N] [--dist METERS] [--payload-len BYTES]
//!               [--mode fd|hd] [--stage NAME] [--trace-out PATH]
//!               [--faults PATH]
//! probe sync    [--config PATH] [--frames N] [--seed N] [--faults PATH]
//! probe link    [--config PATH] [--frames N] [--seed N] [--faults PATH]
//!               [--trace-out PATH]
//! probe mac     --config configs/scenarios/PAIR.json [--seed N]
//! probe matrix  --configs CFG1,CFG2,... [--frames N] [--seed N]
//!               [--faults PATH]
//! probe serve   [--socket PATH] [--cache-dir DIR] [--jobs N]
//!               [--queue N] [--seed-golden]
//! probe submit  [--socket PATH] (--job PATH | --pair PATH |
//!               [--config PATH] [--frames N] [--seed N] [--faults PATH])
//!               [--stream-trace --trace-out PATH] [--timeout-ms N]
//! probe submit  [--socket PATH] --ping | --recheck N | --stop-service
//! probe --validate-trace PATH
//! probe --sweep [frames]
//! ```
//!
//! * `replay` — replays **one seeded frame** over the default link and
//!   prints the per-stage diagnostic trace as JSON lines — one
//!   [`fdb_core::trace::TraceEvent`] per line, then a `summary` object.
//!   The fastest way to see *where* inside the PHY pipeline a frame dies.
//!   With `--trace-out PATH` the events stream to a JSONL file (with
//!   frame markers) instead of stdout. Needs the `trace` feature (on by
//!   default for this crate).
//! * `sync` — per-frame two-stage acquisition counters (candidate locks,
//!   rejections, peak correlation) plus a closing summary. Works without
//!   the `trace` feature; the CI smoke check for lock discrimination.
//! * `link` — aggregate [`fdb_sim::LinkMetrics`] for a batch; with
//!   `--trace-out PATH` every frame's events stream to a JSONL file
//!   through a `JsonlFileSink` at constant resident memory (needs the
//!   `trace` feature).
//! * `mac` — runs an adaptive-vs-oblivious [`fdb_sim::AblationPair`]:
//!   one JSON line per session slot per arm, then a summary with both
//!   goodputs and the achieved margin. Exits non-zero when the margin is
//!   not met — the CI regression gate for the adaptive-MAC loop.
//! * `matrix` — sweeps every listed scenario config against the built-in
//!   per-class fault plans ([`fdb_sim::matrix::class_plans`]), one JSON
//!   line per grid cell, exiting non-zero if any cell violates a
//!   conformance invariant — the CI smoke check for the fault layer.
//! * `serve` / `submit` — the long-running job service
//!   ([`fdb_service`]): `serve` binds a Unix socket, executes submitted
//!   [`fdb_sim::JobSpec`]s on a bounded worker pool and replays repeated
//!   jobs byte-identically from a content-addressed result cache;
//!   `submit` sends one job (or a `--ping`/`--recheck N`/`--stop-service`
//!   control request) and relays the response stream — progress to
//!   stderr, streamed trace chunks to `--trace-out`, the result and a
//!   `{"summary":...,"cached":...}` line to stdout.
//!
//! `--faults PATH` attaches a scripted [`fdb_sim::faults::FaultPlan`]
//! (JSON, see `configs/faults/`) to any run mode; fault activations land
//! in the metrics/summary output. `--validate-trace PATH` parses a trace
//! JSONL file line-by-line and exits non-zero on the first malformed
//! line. `--sweep [frames]` is the legacy operating-envelope sweep.
//!
//! Every pre-subcommand spelling keeps working as a hidden alias:
//! `--report sync|link|mac`, `--sync-report`, `--fault-matrix CFGS`, a
//! bare default invocation (→ `replay`) and `probe N` (→ `--sweep N`).

use fdb_core::link::{FdLink, FrameRun, LinkConfig, RunOptions};
use fdb_core::trace::parse_trace_line;
use fdb_sim::faults::FaultPlan;
use fdb_sim::{LinkRun, MeasureSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Replay,
    Sync,
    Link,
    Mac,
    City,
    Matrix,
    Serve,
    Submit,
    Validate,
    Sweep,
}

struct Args {
    mode: Option<Mode>,
    seed: u64,
    seed_given: bool,
    dist: f64,
    payload_len: usize,
    full_duplex: bool,
    /// Restrict JSONL output to one stage (tx/channel/sic/rx/feedback).
    stage: Option<String>,
    /// Frames per point for the legacy distance sweep.
    sweep_frames: u32,
    /// Bundled scenario file (`{link, spec}` JSON) for report modes.
    config: Option<String>,
    /// Frame-count override for report modes.
    frames: Option<u64>,
    /// Stream trace events to this JSONL file instead of stdout.
    trace_out: Option<String>,
    /// Validate a trace JSONL file line-by-line and exit.
    validate_trace: Option<String>,
    /// Write the full city report as pretty JSON to this path (`city`).
    json_out: Option<String>,
    /// Scripted fault plan (JSON file) injected into the run.
    faults: Option<String>,
    /// Comma-separated scenario configs for the conformance matrix.
    matrix_configs: Option<String>,
    /// Service socket path (`serve`/`submit`).
    socket: Option<String>,
    /// Result-cache directory (`serve`).
    cache_dir: Option<String>,
    /// Worker threads (`serve`).
    jobs: usize,
    /// Queue bound (`serve`).
    queue: usize,
    /// Seed the cache from the repo golden corpus (`serve`).
    seed_golden: bool,
    /// Raw `JobSpec` JSON file (`submit`).
    job_file: Option<String>,
    /// Ablation-pair JSON file submitted as a job (`submit`).
    pair_file: Option<String>,
    /// Stream per-frame trace chunks over the socket (`submit`).
    stream_trace: bool,
    /// Per-job timeout in milliseconds (`submit`; 0 = none).
    timeout_ms: u64,
    /// Send a liveness ping instead of a job (`submit`).
    ping: bool,
    /// Recompute every n-th cache entry and diff (`submit`).
    recheck: Option<u64>,
    /// Ask the service to shut down (`submit`).
    stop_service: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: probe replay  [--seed N] [--dist M] [--payload-len BYTES] [--mode fd|hd]\n\
         \x20                    [--stage NAME] [--trace-out PATH] [--faults PATH]\n\
         \x20      probe sync|link [--config PATH] [--frames N] [--seed N]\n\
         \x20                    [--faults PATH] [--trace-out PATH]\n\
         \x20      probe mac     --config configs/scenarios/PAIR.json [--seed N]\n\
         \x20      probe city    [--config configs/scenarios/CITY.json] [--seed N]\n\
         \x20                    [--json-out PATH]\n\
         \x20      probe matrix  --configs CFG1,CFG2,... [--frames N] [--seed N]\n\
         \x20      probe serve   [--socket PATH] [--cache-dir DIR] [--jobs N]\n\
         \x20                    [--queue N] [--seed-golden]\n\
         \x20      probe submit  [--socket PATH] (--job PATH | --pair PATH | [--config PATH])\n\
         \x20                    [--stream-trace --trace-out PATH] [--timeout-ms N]\n\
         \x20      probe submit  [--socket PATH] --ping | --recheck N | --stop-service\n\
         \x20      probe --validate-trace PATH\n\
         \x20      probe --sweep [frames]\n\
         (legacy aliases: --report sync|link|mac, --sync-report, --fault-matrix CFGS)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: None,
        seed: 7,
        seed_given: false,
        dist: 0.3,
        payload_len: 64,
        full_duplex: true,
        stage: None,
        sweep_frames: 20,
        config: None,
        frames: None,
        trace_out: None,
        validate_trace: None,
        json_out: None,
        faults: None,
        matrix_configs: None,
        socket: None,
        cache_dir: None,
        jobs: 2,
        queue: 32,
        seed_golden: false,
        job_file: None,
        pair_file: None,
        stream_trace: false,
        timeout_ms: 0,
        ping: false,
        recheck: None,
        stop_service: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    let mut first_token = true;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            // Subcommands (first token only).
            "replay" if first_token => args.mode = Some(Mode::Replay),
            "sync" if first_token => args.mode = Some(Mode::Sync),
            "link" if first_token => args.mode = Some(Mode::Link),
            "mac" if first_token => args.mode = Some(Mode::Mac),
            "city" if first_token => args.mode = Some(Mode::City),
            "matrix" if first_token => args.mode = Some(Mode::Matrix),
            "serve" if first_token => args.mode = Some(Mode::Serve),
            "submit" if first_token => args.mode = Some(Mode::Submit),
            // Shared options.
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| usage());
                args.seed_given = true;
            }
            "--dist" => args.dist = value("--dist").parse().unwrap_or_else(|_| usage()),
            "--payload-len" => {
                args.payload_len = value("--payload-len").parse().unwrap_or_else(|_| usage())
            }
            "--mode" => match value("--mode").as_str() {
                "fd" => args.full_duplex = true,
                "hd" => args.full_duplex = false,
                _ => usage(),
            },
            "--stage" => args.stage = Some(value("--stage")),
            "--config" => args.config = Some(value("--config")),
            "--configs" => args.matrix_configs = Some(value("--configs")),
            "--frames" => {
                args.frames = Some(value("--frames").parse().unwrap_or_else(|_| usage()))
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--json-out" => args.json_out = Some(value("--json-out")),
            "--faults" => args.faults = Some(value("--faults")),
            // Service options.
            "--socket" => args.socket = Some(value("--socket")),
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")),
            "--jobs" => args.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--seed-golden" => args.seed_golden = true,
            "--job" => args.job_file = Some(value("--job")),
            "--pair" => args.pair_file = Some(value("--pair")),
            "--stream-trace" => args.stream_trace = true,
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--ping" => args.ping = true,
            "--recheck" => {
                args.recheck = Some(value("--recheck").parse().unwrap_or_else(|_| usage()))
            }
            "--stop-service" => args.stop_service = true,
            // Legacy aliases (pre-subcommand spellings).
            "--report" => match value("--report").as_str() {
                "sync" => args.mode = Some(Mode::Sync),
                "link" => args.mode = Some(Mode::Link),
                "mac" => args.mode = Some(Mode::Mac),
                other => {
                    eprintln!("unknown report '{other}' (expected sync|link|mac)");
                    usage()
                }
            },
            "--sync-report" => args.mode = Some(Mode::Sync),
            "--fault-matrix" => {
                args.mode = Some(Mode::Matrix);
                args.matrix_configs = Some(value("--fault-matrix"));
            }
            "--validate-trace" => {
                args.mode = Some(Mode::Validate);
                args.validate_trace = Some(value("--validate-trace"));
            }
            "--sweep" => {
                args.mode = Some(Mode::Sweep);
                if let Some(n) = it.peek().and_then(|s| s.parse().ok()) {
                    args.sweep_frames = n;
                    it.next();
                }
            }
            "--help" | "-h" => usage(),
            // Positional comma-list after `matrix`.
            cfgs if args.mode == Some(Mode::Matrix)
                && args.matrix_configs.is_none()
                && !cfgs.starts_with('-') =>
            {
                args.matrix_configs = Some(cfgs.to_string())
            }
            // Bare number: legacy `probe N` sweep invocation.
            n if n.parse::<u32>().is_ok() => {
                args.mode = Some(Mode::Sweep);
                args.sweep_frames = n.parse().unwrap();
            }
            _ => usage(),
        }
        first_token = false;
    }
    args
}

fn main() {
    let args = parse_args();
    match args.mode.unwrap_or(Mode::Replay) {
        Mode::Validate => validate_trace(args.validate_trace.as_deref().unwrap_or_else(|| {
            eprintln!("--validate-trace needs a path");
            usage()
        })),
        Mode::Matrix => fault_matrix(&args),
        Mode::Sync => sync_report(&args),
        Mode::Link => link_report(&args),
        Mode::Mac => mac_report(&args),
        Mode::City => city_report(&args),
        Mode::Serve => serve_cmd(&args),
        Mode::Submit => submit_cmd(&args),
        Mode::Sweep => sweep(args.sweep_frames),
        Mode::Replay => {
            #[cfg(feature = "trace")]
            trace_frame(&args);
            #[cfg(not(feature = "trace"))]
            {
                eprintln!(
                    "probe was built without the `trace` feature; rebuild with default \
                     features (or use sync/link/matrix/--sweep/--validate-trace)"
                );
                std::process::exit(2);
            }
        }
    }
}

/// Loads and validates a [`FaultPlan`] JSON file, exiting on failure.
fn load_fault_plan(path: &str) -> FaultPlan {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let plan: FaultPlan = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} invalid: {e}");
        std::process::exit(2);
    });
    plan.validate().unwrap_or_else(|e| {
        eprintln!("{path} invalid: {e}");
        std::process::exit(2);
    });
    plan
}

/// Loads `{link, spec}` from `--config` (or the built-in default scenario)
/// and applies the CLI overrides shared by the report modes.
fn load_scenario(args: &Args, default_frames: u64) -> (LinkConfig, MeasureSpec) {
    #[derive(serde::Deserialize)]
    struct Scenario {
        link: LinkConfig,
        spec: MeasureSpec,
    }

    let (cfg, mut spec) = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let scenario: Scenario = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("{path} invalid: {e}");
                std::process::exit(2);
            });
            (scenario.link, scenario.spec)
        }
        None => {
            let mut cfg = LinkConfig::default_fd();
            cfg.geometry.device_dist_m = args.dist;
            let spec = MeasureSpec {
                frames: default_frames,
                payload_len: args.payload_len,
                seed: args.seed,
                feedback_probe: Some(false),
                trace: Default::default(),
                faults: None,
            };
            (cfg, spec)
        }
    };
    if let Some(n) = args.frames {
        spec.frames = n;
    }
    if args.seed_given {
        spec.seed = args.seed;
    }
    if let Some(path) = &args.faults {
        spec = spec.with_faults(load_fault_plan(path));
    }
    cfg.phy.validate().unwrap_or_else(|e| {
        eprintln!("invalid PHY config: {e}");
        std::process::exit(2);
    });
    (cfg, spec)
}

/// The conformance matrix (`probe matrix`): every listed scenario config
/// crossed with the built-in per-class plans (plus the `--faults` plan
/// when given). One JSON line per grid cell; exits non-zero when any
/// cell reports an invariant violation.
fn fault_matrix(args: &Args) {
    let Some(configs) = &args.matrix_configs else {
        eprintln!("probe matrix needs --configs CFG1,CFG2,...");
        usage();
    };
    let mut scenarios = Vec::new();
    for path in configs.split(',').filter(|s| !s.is_empty()) {
        let one = Args {
            config: Some(path.to_string()),
            // Matrix cells default to a short batch; --frames overrides.
            frames: Some(args.frames.unwrap_or(4)),
            faults: None,
            trace_out: None,
            stage: None,
            matrix_configs: None,
            ..clone_args(args)
        };
        let (cfg, spec) = load_scenario(&one, 4);
        scenarios.push((path.to_string(), cfg, spec));
    }
    if scenarios.is_empty() {
        eprintln!("probe matrix needs at least one config path");
        usage();
    }
    let mut plans: Vec<(String, fdb_sim::faults::FaultPlan)> =
        fdb_sim::matrix::class_plans(args.seed)
            .into_iter()
            .map(|(label, plan)| (label.to_string(), plan))
            .collect();
    if let Some(path) = &args.faults {
        plans.push((path.clone(), load_fault_plan(path)));
    }
    let cells = fdb_sim::matrix::run_matrix(&scenarios, &plans).unwrap_or_else(|e| {
        eprintln!("matrix run failed: {e}");
        std::process::exit(1);
    });
    let mut violations = 0usize;
    for cell in &cells {
        violations += cell.violations.len();
        println!("{}", serde_json::to_string(cell).expect("cell serializes"));
    }
    println!(
        "{{\"summary\":true,\"cells\":{},\"violations\":{violations}}}",
        cells.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}

/// Field-by-field copy of the shared scalar options (the struct holds
/// `String`s, so a derived `Clone` would be misleading for the per-mode
/// fields the callers override — they pass explicit values instead).
fn clone_args(args: &Args) -> Args {
    Args {
        mode: args.mode,
        seed: args.seed,
        seed_given: args.seed_given,
        dist: args.dist,
        payload_len: args.payload_len,
        full_duplex: args.full_duplex,
        stage: args.stage.clone(),
        sweep_frames: args.sweep_frames,
        config: args.config.clone(),
        frames: args.frames,
        trace_out: args.trace_out.clone(),
        validate_trace: args.validate_trace.clone(),
        json_out: args.json_out.clone(),
        faults: args.faults.clone(),
        matrix_configs: args.matrix_configs.clone(),
        socket: args.socket.clone(),
        cache_dir: args.cache_dir.clone(),
        jobs: args.jobs,
        queue: args.queue,
        seed_golden: args.seed_golden,
        job_file: args.job_file.clone(),
        pair_file: args.pair_file.clone(),
        stream_trace: args.stream_trace,
        timeout_ms: args.timeout_ms,
        ping: args.ping,
        recheck: args.recheck,
        stop_service: args.stop_service,
    }
}

#[cfg(feature = "trace")]
fn trace_frame(args: &Args) {
    use fdb_core::trace::{JsonlFileSink, TraceSink};
    use serde::Serialize;

    #[derive(Serialize)]
    struct Summary {
        seed: u64,
        dist_m: f64,
        payload_len: usize,
        mode: String,
        b_locked: bool,
        rx_sync_peak: f64,
        fully_delivered: bool,
        blocks_ok: usize,
        blocks_total: usize,
        pilots_verified: bool,
        feedback_bits: usize,
        aborted_at_sample: Option<usize>,
        samples_run: usize,
        trace_events: usize,
        trace_dropped: usize,
    }

    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = args.dist;
    let frame_cap = cfg.phy.trace_ring_capacity();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
    let payload: Vec<u8> = (0..args.payload_len).map(|i| (i % 251) as u8).collect();
    let opts = if args.full_duplex {
        RunOptions::fd_monitor()
    } else {
        RunOptions::half_duplex()
    };
    // Single-frame replay: frame 0 of the plan's schedule applies.
    let plan = args.faults.as_deref().map(load_fault_plan);
    let mut frame_faults = plan.as_ref().and_then(|p| p.frame_faults(0));

    let (out, trace_events, trace_dropped) = match &args.trace_out {
        Some(path) => {
            if args.stage.is_some() {
                eprintln!("--stage filters stdout output only; ignored with --trace-out");
            }
            let mut sink = JsonlFileSink::create(path)
                .unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(2);
                })
                .with_frame_cap(frame_cap);
            sink.begin_frame(0);
            let out = link
                .run_frame_with(
                    &payload,
                    &opts,
                    &mut rng,
                    FrameRun::faulted(frame_faults.as_mut()).with_sink(&mut sink),
                )
                .expect("frame");
            sink.end_frame();
            let summary = sink.finish().unwrap_or_else(|e| {
                eprintln!("trace sink failed: {e}");
                std::process::exit(1);
            });
            (out, summary.events as usize, summary.dropped as usize)
        }
        None => {
            let out = link
                .run_frame_with(
                    &payload,
                    &opts,
                    &mut rng,
                    FrameRun::faulted(frame_faults.as_mut()),
                )
                .expect("frame");
            for ev in out.trace.events() {
                if let Some(stage) = &args.stage {
                    if ev.stage() != stage {
                        continue;
                    }
                }
                println!("{}", serde_json::to_string(ev).expect("event serializes"));
            }
            let (n, d) = (out.trace.len(), out.trace.dropped());
            (out, n, d)
        }
    };

    let summary = Summary {
        seed: args.seed,
        dist_m: args.dist,
        payload_len: args.payload_len,
        mode: if args.full_duplex { "fd" } else { "hd" }.into(),
        b_locked: out.b_locked,
        rx_sync_peak: out.rx_sync_peak,
        fully_delivered: out.fully_delivered(),
        blocks_ok: out.blocks_ok(),
        blocks_total: out.blocks_total(),
        pilots_verified: out.pilots_verified,
        feedback_bits: out.feedback.len(),
        aborted_at_sample: out.aborted_at_sample,
        samples_run: out.samples_run,
        trace_events,
        trace_dropped,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Per-frame two-stage acquisition report: one JSON line per frame with
/// the sync attempt/rejection counters, then a `summary` line. Needs no
/// trace feature — everything comes off the [`fdb_core::link::FrameOutcome`].
fn sync_report(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct FrameLine {
        frame: u64,
        locked: bool,
        fully_delivered: bool,
        sync_attempts: usize,
        sync_rejections: usize,
        sync_peak: f64,
        nack: bool,
    }

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        seed: u64,
        frames: u64,
        locked: u64,
        fully_delivered: u64,
        sync_attempts: u64,
        sync_rejections: u64,
    }

    let (cfg, spec) = load_scenario(args, 20);
    let config_name = args.config.clone().unwrap_or_else(|| "default".into());
    let frames = spec.frames;

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("validated config");
    let payload: Vec<u8> = (0..args.payload_len).map(|i| (i % 251) as u8).collect();
    let (mut locked, mut delivered, mut attempts, mut rejections) = (0u64, 0u64, 0u64, 0u64);
    for frame in 0..frames {
        let mut frame_faults = spec
            .faults
            .as_ref()
            .and_then(|plan| plan.frame_faults(frame));
        let out = link
            .run_frame_with(
                &payload,
                &RunOptions::fd_monitor(),
                &mut rng,
                FrameRun::faulted(frame_faults.as_mut()),
            )
            .expect("frame");
        locked += u64::from(out.b_locked);
        delivered += u64::from(out.fully_delivered());
        attempts += out.sync_attempts as u64;
        rejections += out.sync_rejections as u64;
        let line = FrameLine {
            frame,
            locked: out.b_locked,
            fully_delivered: out.fully_delivered(),
            sync_attempts: out.sync_attempts,
            sync_rejections: out.sync_rejections,
            sync_peak: out.rx_sync_peak,
            nack: out.nack,
        };
        println!("{}", serde_json::to_string(&line).expect("frame line serializes"));
    }
    let summary = SummaryLine {
        summary: true,
        config: config_name,
        seed: spec.seed,
        frames,
        locked,
        fully_delivered: delivered,
        sync_attempts: attempts,
        sync_rejections: rejections,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Aggregate-metrics report over a batch of frames; with `--trace-out`,
/// every frame's diagnostic events stream to a JSONL file while the run
/// itself stays at constant resident memory.
fn link_report(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        metrics: fdb_sim::LinkMetrics,
        trace_out: Option<String>,
    }

    let (cfg, mut spec) = load_scenario(args, 20);
    if let Some(path) = &args.trace_out {
        spec = spec.with_trace(fdb_core::trace::TraceSinkSpec::jsonl(path.clone()));
    }
    let metrics = fdb_sim::run_link(&cfg, &spec, LinkRun::new()).unwrap_or_else(|e| {
        eprintln!("measurement failed: {e}");
        std::process::exit(1);
    });
    let summary = SummaryLine {
        summary: true,
        config: args.config.clone().unwrap_or_else(|| "default".into()),
        metrics,
        trace_out: args.trace_out.clone(),
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

/// Adaptive-MAC ablation report (`probe mac`): loads an
/// [`fdb_sim::AblationPair`] from `--config`, runs both arms over the
/// same fault timeline, prints one JSON line per session slot per arm
/// and a closing summary with the goodput margin. Exits non-zero when
/// the adaptive arm misses the pair's `min_margin` — the CI regression
/// gate for the adaptive-MAC loop.
fn mac_report(args: &Args) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct SlotLine {
        arm: String,
        record: fdb_mac::scenario::FrameRecord,
    }

    #[derive(Serialize)]
    struct ArmSummary {
        goodput_bps: f64,
        delivered_payloads: u64,
        failed_payloads: u64,
        false_acks: u64,
        attempts: u64,
        paused_slots: u64,
        aborted_frames: u64,
        rate_switches: u64,
        retransmit_passes: u64,
        blocks_dropped: u64,
        elapsed_samples: u64,
        ladder_trajectory: Vec<usize>,
    }

    #[derive(Serialize)]
    struct SummaryLine {
        summary: bool,
        config: String,
        label: String,
        adaptive: ArmSummary,
        oblivious: ArmSummary,
        margin: f64,
        min_margin: f64,
        pass: bool,
    }

    fn arm_summary(r: &fdb_mac::scenario::AdaptationReport) -> ArmSummary {
        ArmSummary {
            goodput_bps: r.goodput_bps(),
            delivered_payloads: r.delivered_payloads,
            failed_payloads: r.failed_payloads,
            false_acks: r.false_acks,
            attempts: r.attempts,
            paused_slots: r.paused_slots,
            aborted_frames: r.aborted_frames,
            rate_switches: r.rate_switches,
            retransmit_passes: r.retransmit_passes,
            blocks_dropped: r.blocks_dropped,
            elapsed_samples: r.elapsed_samples,
            ladder_trajectory: r.ladder_trajectory(),
        }
    }

    let Some(path) = &args.config else {
        eprintln!("probe mac needs --config with an ablation-pair JSON");
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut pair: fdb_sim::AblationPair = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} invalid: {e}");
        std::process::exit(2);
    });
    if args.seed_given {
        pair.adaptive.seed = args.seed;
        pair.oblivious.seed = args.seed;
    }
    pair.link.phy.validate().unwrap_or_else(|e| {
        eprintln!("invalid PHY config: {e}");
        std::process::exit(2);
    });
    let outcome = pair.run().unwrap_or_else(|e| {
        eprintln!("pair run failed: {e}");
        std::process::exit(1);
    });
    for (arm, report) in [
        ("adaptive", &outcome.adaptive),
        ("oblivious", &outcome.oblivious),
    ] {
        for record in &report.records {
            let line = SlotLine {
                arm: arm.to_string(),
                record: record.clone(),
            };
            println!("{}", serde_json::to_string(&line).expect("slot line serializes"));
        }
    }
    let summary = SummaryLine {
        summary: true,
        config: path.clone(),
        label: outcome.label.clone(),
        adaptive: arm_summary(&outcome.adaptive),
        oblivious: arm_summary(&outcome.oblivious),
        margin: outcome.margin,
        min_margin: outcome.min_margin,
        pass: outcome.pass,
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
    if !outcome.pass {
        eprintln!(
            "FAIL: adaptive/oblivious goodput margin {:.3} below required {:.3}",
            outcome.margin, outcome.min_margin
        );
        std::process::exit(1);
    }
}

/// `probe city`: run one event-driven city scenario and print its JSONL
/// report (one line per active-tag ledger, then a summary line). Exits 1
/// if the conservation invariant (`offered == delivered + lost +
/// pending`) is violated.
fn city_report(args: &Args) {
    use std::io::Write;

    let mut spec = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            serde_json::from_str::<fdb_sim::CityScenarioSpec>(&text).unwrap_or_else(|e| {
                eprintln!("{path} invalid: {e}");
                std::process::exit(2);
            })
        }
        None => fdb_sim::CityScenarioSpec::default(),
    };
    if args.seed_given {
        spec.seed = args.seed;
    }
    let start = std::time::Instant::now();
    let report = fdb_sim::CityEngine::run(&spec).unwrap_or_else(|e| {
        eprintln!("city run failed: {e}");
        std::process::exit(1);
    });
    let wall = start.elapsed();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    report.write_jsonl(&mut out).expect("stdout writable");
    out.flush().expect("stdout flush");
    if let Some(path) = &args.json_out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
    eprintln!(
        "{}: {} events in {:.3} s wall ({:.0} events/s), peak queue {}",
        report.label,
        report.events_processed,
        wall.as_secs_f64(),
        report.events_processed as f64 / wall.as_secs_f64().max(1e-9),
        report.peak_queue,
    );
    if !report.totals.conserved() {
        eprintln!(
            "FAIL: conservation violated: offered {} != delivered {} + lost {} + pending {}",
            report.totals.offered,
            report.totals.delivered,
            report.totals.lost,
            report.totals.pending
        );
        std::process::exit(1);
    }
}

/// Default socket path shared by `serve` and `submit`.
fn socket_path(args: &Args) -> String {
    args.socket
        .clone()
        .unwrap_or_else(|| "target/fdb-service.sock".to_string())
}

/// `probe serve`: bind the job service on a Unix socket and run until a
/// client sends `Shutdown`. Prints one readiness line to stdout once the
/// socket is listening (CI waits for it before submitting).
#[cfg(unix)]
fn serve_cmd(args: &Args) {
    use std::io::Write;
    use std::sync::Arc;

    let socket = socket_path(args);
    let cache_dir = args
        .cache_dir
        .clone()
        .unwrap_or_else(|| "target/fdb-cache".to_string());
    let mut config = fdb_service::ServiceConfig::new(&cache_dir);
    config.workers = args.jobs;
    config.max_queue = args.queue;
    if args.seed_golden {
        config.seed_golden_from = Some(std::path::PathBuf::from("."));
    }
    let service = Arc::new(fdb_service::Service::start(config).unwrap_or_else(|e| {
        eprintln!("service failed to start: {e}");
        std::process::exit(1);
    }));
    println!(
        "{{\"serving\":\"{socket}\",\"cache_dir\":\"{cache_dir}\",\"workers\":{},\"queue\":{},\"cache_entries\":{}}}",
        args.jobs,
        args.queue,
        service.store().len()
    );
    let _ = std::io::stdout().flush();
    let serve_on = std::path::Path::new(&socket);
    fdb_service::serve_unix(Arc::clone(&service), serve_on).unwrap_or_else(|e| {
        eprintln!("serve loop failed: {e}");
        std::process::exit(1);
    });
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => eprintln!("warning: connections still referenced the service at exit"),
    }
}

/// `probe submit`: send one request to a running service and relay the
/// response stream. Progress goes to stderr; streamed trace chunks go to
/// `--trace-out` (verbatim JSONL); the result JSON and then a
/// `{"summary":true,...,"cached":...}` line go to stdout.
#[cfg(unix)]
fn submit_cmd(args: &Args) {
    use fdb_service::{Request, Response};
    use std::io::Write;

    let socket = socket_path(args);
    let mut client =
        fdb_service::Client::connect(std::path::Path::new(&socket)).unwrap_or_else(|e| {
            eprintln!("cannot connect to {socket}: {e}");
            std::process::exit(1);
        });
    let recv = |client: &mut fdb_service::Client| {
        client
            .recv()
            .unwrap_or_else(|e| {
                eprintln!("connection error: {e}");
                std::process::exit(1);
            })
            .unwrap_or_else(|| {
                eprintln!("service hung up");
                std::process::exit(1);
            })
    };

    // Control-plane requests first: each is a single request/response.
    if args.ping {
        client.send(&Request::Ping).expect("send ping");
        let resp = recv(&mut client);
        println!("{}", serde_json::to_string(&resp).expect("pong serializes"));
        return;
    }
    if let Some(sample_every) = args.recheck {
        client
            .send(&Request::Recheck { sample_every })
            .expect("send recheck");
        let resp = recv(&mut client);
        println!("{}", serde_json::to_string(&resp).expect("report serializes"));
        if let Response::RecheckReport { mismatched, .. } = &resp {
            if !mismatched.is_empty() {
                eprintln!("FAIL: {} cache entries no longer reproduce", mismatched.len());
                std::process::exit(1);
            }
        }
        return;
    }
    if args.stop_service {
        client.send(&Request::Shutdown).expect("send shutdown");
        let resp = recv(&mut client);
        println!("{}", serde_json::to_string(&resp).expect("ack serializes"));
        return;
    }

    let job = build_job(args);
    client
        .send(&Request::Submit {
            job,
            stream_trace: args.stream_trace,
            timeout_ms: args.timeout_ms,
        })
        .expect("send job");

    let mut trace_out = args.trace_out.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        })
    });
    loop {
        match recv(&mut client) {
            Response::Accepted { id, job_hash, kind } => {
                eprintln!("accepted: id={id} kind={kind} hash={job_hash}");
            }
            Response::Rejected { reason } => {
                eprintln!("rejected: {reason}");
                std::process::exit(1);
            }
            Response::Progress { done, total, .. } => {
                eprintln!("progress: {done}/{total}");
            }
            Response::Trace { text, .. } => match &mut trace_out {
                Some(file) => file.write_all(text.as_bytes()).unwrap_or_else(|e| {
                    eprintln!("trace write failed: {e}");
                    std::process::exit(1);
                }),
                None => print!("{text}"),
            },
            Response::Done {
                id,
                job_hash,
                cached,
                result,
            } => {
                println!("{}", serde_json::to_string(&result).expect("result serializes"));
                println!(
                    "{{\"summary\":true,\"id\":{id},\"job_hash\":\"{job_hash}\",\"cached\":{cached}}}"
                );
                return;
            }
            Response::Failed { error, .. } => {
                eprintln!("failed: {error}");
                std::process::exit(1);
            }
            Response::Cancelled { frames_done, .. } => {
                eprintln!("cancelled after {frames_done} units");
                std::process::exit(1);
            }
            other => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
        }
    }
}

/// Builds the `JobSpec` a `probe submit` invocation describes:
/// `--job PATH` (raw spec JSON) > `--pair PATH` (ablation pair) >
/// `--config`/defaults (link job via [`load_scenario`]).
#[cfg(unix)]
fn build_job(args: &Args) -> fdb_sim::JobSpec {
    if let Some(path) = &args.job_file {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        return serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("{path} invalid: {e}");
            std::process::exit(2);
        });
    }
    if let Some(path) = &args.pair_file {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let mut pair: fdb_sim::AblationPair = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("{path} invalid: {e}");
            std::process::exit(2);
        });
        if args.seed_given {
            pair.adaptive.seed = args.seed;
            pair.oblivious.seed = args.seed;
        }
        return fdb_sim::JobSpec::Ablation { pair };
    }
    let (link, spec) = load_scenario(args, 20);
    fdb_sim::JobSpec::Link { link, spec }
}

#[cfg(not(unix))]
fn serve_cmd(_args: &Args) {
    eprintln!("probe serve needs a Unix socket; unsupported on this platform");
    std::process::exit(2);
}

#[cfg(not(unix))]
fn submit_cmd(_args: &Args) {
    eprintln!("probe submit needs a Unix socket; unsupported on this platform");
    std::process::exit(2);
}

/// Parses a trace JSONL file line-by-line, exiting non-zero with the
/// offending line number on the first parse failure.
fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let (mut events, mut frames) = (0u64, 0u64);
    for (i, line) in text.lines().enumerate() {
        match parse_trace_line(line) {
            Ok(fdb_core::trace::TraceLine::Event(_)) => events += 1,
            Ok(fdb_core::trace::TraceLine::FrameEnd { .. }) => frames += 1,
            Ok(fdb_core::trace::TraceLine::FrameStart { .. }) => {}
            Err(e) => {
                eprintln!("{path}:{}: {e}", i + 1);
                std::process::exit(1);
            }
        }
    }
    println!(
        "{{\"validated\":\"{path}\",\"frames\":{frames},\"events\":{events}}}"
    );
}

/// Legacy operating-envelope sweep: lock/delivery/block/feedback summary
/// across device separations.
fn sweep(frames: u32) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    println!("frames per point: {frames}");
    println!("distance | locked | delivered | blocks_ok | fb_nack_bits");
    for dist in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0] {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
        let payload: Vec<u8> = (0..64u8).collect();
        let (mut locked, mut ok, mut blocks_ok, mut blocks, mut fb_nack, mut fb_total) =
            (0u32, 0u32, 0usize, 0usize, 0usize, 0usize);
        for _ in 0..frames {
            let out = link
                .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
                .expect("frame");
            locked += u32::from(out.b_locked);
            ok += u32::from(out.fully_delivered());
            blocks_ok += out.blocks_ok();
            blocks += out.blocks_total();
            fb_total += out.feedback.len();
            fb_nack += out.feedback.iter().filter(|f| !f.bit).count();
        }
        println!(
            "  {dist:.2} m | {locked:>4}/{frames} | {ok:>6}/{frames} | {blocks_ok:>5}/{blocks:<5} | {fb_nack:>5}/{fb_total}"
        );
    }
}
