//! Link operating-envelope probe.
//!
//! Prints a fast summary of the default link across device separations:
//! lock rate, delivery, block success and feedback health. Useful when
//! calibrating new scenarios or sanity-checking a configuration change.
//!
//! ```text
//! cargo run --release -p fdb-bench --bin probe [frames-per-point]
//! ```

use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use rand::SeedableRng;

fn main() {
    let frames: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    println!("frames per point: {frames}");
    println!("distance | locked | delivered | blocks_ok | fb_nack_bits");
    for dist in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0] {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        let mut link = FdLink::new(cfg, &mut rng).expect("valid default config");
        let payload: Vec<u8> = (0..64u8).collect();
        let (mut locked, mut ok, mut blocks_ok, mut blocks, mut fb_nack, mut fb_total) =
            (0u32, 0u32, 0usize, 0usize, 0usize, 0usize);
        for _ in 0..frames {
            let out = link
                .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
                .expect("frame");
            locked += u32::from(out.b_locked);
            ok += u32::from(out.fully_delivered());
            blocks_ok += out.blocks_ok();
            blocks += out.blocks_total();
            fb_total += out.feedback.len();
            fb_nack += out.feedback.iter().filter(|f| !f.bit).count();
        }
        println!(
            "  {dist:.2} m | {locked:>4}/{frames} | {ok:>6}/{frames} | {blocks_ok:>5}/{blocks:<5} | {fb_nack:>5}/{fb_total}"
        );
    }
}
