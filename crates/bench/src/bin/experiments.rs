//! Experiment runner CLI.
//!
//! ```text
//! experiments <id>... [--quick]     run specific experiments (e1..e10, a1, a2)
//! experiments all [--quick]         run everything
//! experiments list                  list experiment identifiers
//! ```

use fdb_bench::experiments;
use fdb_bench::Effort;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    if ids.is_empty() || ids.iter().any(|a| a == "help" || a == "--help") {
        eprintln!("usage: experiments <id>...|all|list [--quick]");
        eprintln!("ids: {}", experiments::all_ids().join(", "));
        std::process::exit(2);
    }
    if ids.iter().any(|a| a == "list") {
        for id in experiments::all_ids() {
            println!("{id}");
        }
        return;
    }
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let selected: Vec<&str> = if ids.iter().any(|a| a == "all") {
        experiments::all_ids().to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let started = std::time::Instant::now();
    for id in &selected {
        let t0 = std::time::Instant::now();
        match experiments::run(id, effort) {
            Some(results) => {
                for r in results {
                    r.emit();
                }
                eprintln!("[{} finished in {:.1?}]", id, t0.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{id}' — try 'experiments list'");
                std::process::exit(2);
            }
        }
    }
    eprintln!("\n[all selected experiments done in {:.1?}]", started.elapsed());
}
