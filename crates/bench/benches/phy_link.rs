//! End-to-end PHY benchmarks: what one simulated frame costs, and the
//! resulting real-time factor (simulated seconds per wall second).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fdb_ambient::AmbientConfig;
use fdb_core::config::PhyConfig;
use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use fdb_core::rx::DataReceiver;
use fdb_core::tx::DataTransmitter;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_tx_rx_loopback(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy_loopback");
    let cfg = PhyConfig::default_fd();
    let payload = vec![0xA5u8; 64];
    // Pre-render the ideal waveform once.
    let mut tx = DataTransmitter::new(&cfg, &payload).unwrap();
    let mut wave = Vec::with_capacity(tx.total_samples());
    while let Some(s) = tx.next_state() {
        wave.push(if s { 1.0 } else { 0.4 });
    }
    wave.extend(vec![0.4; cfg.samples_per_bit() * 2]);
    g.throughput(Throughput::Elements(wave.len() as u64));
    g.bench_function("rx_decode_64B_frame", |b| {
        b.iter(|| {
            let mut rx = DataReceiver::new(cfg.clone());
            for &v in &wave {
                rx.push_sample(black_box(v));
            }
            rx.take_result().is_some()
        })
    });
    // Same decode through the block entry point, fed in segment-sized
    // slices like the block frame pipeline produces. Byte-identical result
    // (rx tests assert it); this pair measures the dispatch amortisation.
    g.bench_function("rx_decode_64B_frame_slices", |b| {
        b.iter(|| {
            let mut rx = DataReceiver::new(cfg.clone());
            for chunk in wave.chunks(4096) {
                rx.push_slice(black_box(chunk));
            }
            rx.take_result().is_some()
        })
    });
    g.bench_function("tx_schedule_64B_frame", |b| {
        b.iter(|| {
            let mut tx = DataTransmitter::new(&cfg, black_box(&payload)).unwrap();
            let mut n = 0usize;
            while tx.next_state().is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

/// The B-side receive chain (SIC → clock resampler → data receiver) on a
/// realistic listening workload — a long idle/noise hunt region before the
/// frame — in the two shapes the frame engines use it: the reference
/// engine's per-sample pattern (clear a scratch Vec, resample one sample,
/// push each output individually into `push_sample`) versus the block
/// engine's pass-2 pattern (accumulate a whole segment of resampled
/// samples, then one `push_slice`, which screens the acquisition phase
/// with the FFT correlator). This is the end-to-end pair behind the PR-6
/// "≥2× end-to-end" acceptance floor: the per-sample path pays the O(M)
/// sliding correlation on every hunt sample, the block path does not —
/// with a byte-identical decode (the rx equivalence tests assert it).
fn bench_rx_chain(c: &mut Criterion) {
    use fdb_core::config::SicMode;
    use fdb_core::sic::SelfInterferenceCanceller;
    use fdb_dsp::resample::Resampler;

    let mut g = c.benchmark_group("rx_chain");
    let cfg = PhyConfig::default_fd();
    let payload = vec![0xA5u8; 64];
    // The receiver listens through two frame-lengths of ambient noise
    // before the preamble arrives.
    let mut wave = Vec::new();
    let mut lcg: u64 = 0x2545F491_4F6CDD1D;
    for _ in 0..24_000 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((lcg >> 33) as f64) / ((1u64 << 31) as f64);
        wave.push(0.55 + 0.18 * (u - 0.5));
    }
    let mut tx = DataTransmitter::new(&cfg, &payload).unwrap();
    while let Some(s) = tx.next_state() {
        wave.push(if s { 1.0 } else { 0.4 });
    }
    wave.extend(vec![0.4; cfg.samples_per_bit() * 2]);

    // B's own feedback antenna toggles under the data it is receiving; the
    // canceller divides the toggle back out. Folding the pass fraction into
    // the envelope makes the corrected stream exactly the decodable
    // waveform, so both variants below must deliver the frame.
    const RHO: f64 = 0.2;
    const RHO_RESIDUAL: f64 = 0.02;
    let toggle = cfg.samples_per_bit() * 4;
    let b_state: Vec<bool> = (0..wave.len()).map(|i| (i / toggle) % 2 == 1).collect();
    let env: Vec<f64> = wave
        .iter()
        .zip(&b_state)
        .map(|(&v, &s)| v * (1.0 - if s { RHO } else { RHO_RESIDUAL }))
        .collect();
    let ppm = 30.0;

    let per_sample = |env: &[f64], b_state: &[bool]| {
        let mut sic = SelfInterferenceCanceller::new(SicMode::KnownState, RHO, RHO_RESIDUAL)
            .with_blanking(2);
        let mut rs = Resampler::from_ppm(ppm);
        let mut rx = DataReceiver::new(cfg.clone());
        let mut hold = 0.0f64;
        let mut scratch: Vec<f64> = Vec::new();
        for (&e, &s) in env.iter().zip(b_state) {
            let corrected = match sic.correct(e, s) {
                Some(v) => {
                    hold = v;
                    v
                }
                None => hold,
            };
            scratch.clear();
            rs.push(corrected, &mut scratch);
            for &v in &scratch {
                rx.push_sample(v);
            }
        }
        rx.take_result().is_some()
    };
    let block = |env: &[f64], b_state: &[bool]| {
        let mut sic = SelfInterferenceCanceller::new(SicMode::KnownState, RHO, RHO_RESIDUAL)
            .with_blanking(2);
        let mut rs = Resampler::from_ppm(ppm);
        let mut rx = DataReceiver::new(cfg.clone());
        let mut hold = 0.0f64;
        let mut scratch: Vec<f64> = Vec::with_capacity(4096 + 8);
        for (seg_e, seg_s) in env.chunks(4096).zip(b_state.chunks(4096)) {
            scratch.clear();
            for (&e, &s) in seg_e.iter().zip(seg_s) {
                let corrected = match sic.correct(e, s) {
                    Some(v) => {
                        hold = v;
                        v
                    }
                    None => hold,
                };
                rs.push(corrected, &mut scratch);
            }
            rx.push_slice(&scratch);
        }
        rx.take_result().is_some()
    };
    assert!(per_sample(&env, &b_state), "per-sample chain must decode");
    assert!(block(&env, &b_state), "block chain must decode");

    g.throughput(Throughput::Elements(env.len() as u64));
    g.bench_function("sic_resample_decode_64B_per_sample", |b| {
        b.iter(|| per_sample(black_box(&env), black_box(&b_state)))
    });
    g.bench_function("sic_resample_decode_64B_block", |b| {
        b.iter(|| block(black_box(&env), black_box(&b_state)))
    });
    g.finish();
}

fn bench_full_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("fd_link");
    g.sample_size(10);
    for (name, ambient) in [
        ("cw", AmbientConfig::Cw),
        ("tv_wideband", AmbientConfig::TvWideband { k_factor: 300.0 }),
    ] {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = ambient;
        cfg.geometry.device_dist_m = 0.4;
        // ~13k samples per 64-byte frame.
        g.throughput(Throughput::Elements(13_000));
        g.bench_function(format!("run_frame_64B_{name}"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut link = FdLink::new(cfg.clone(), &mut rng).unwrap();
            let payload = vec![0x5Au8; 64];
            b.iter(|| {
                link.run_frame(black_box(&payload), &RunOptions::fd_monitor(), &mut rng)
                    .unwrap()
                    .blocks_ok()
            })
        });
        // The per-sample reference engine on the same workload. In a
        // non-trace build `run_frame` above runs the block pipeline, so
        // this pair is the end-to-end block-vs-scalar comparison (in a
        // trace build both names measure the reference engine).
        g.bench_function(format!("run_frame_64B_{name}_reference"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut link = FdLink::new(cfg.clone(), &mut rng).unwrap();
            let payload = vec![0x5Au8; 64];
            b.iter(|| {
                link.run_frame_reference(
                    black_box(&payload),
                    &RunOptions::fd_monitor(),
                    &mut rng,
                    None,
                )
                .unwrap()
                .blocks_ok()
            })
        });
    }
    g.finish();
}

fn bench_network_step(c: &mut Criterion) {
    use fdb_ambient::AmbientConfig;
    use fdb_core::network::{BackscatterNetwork, NetworkConfig};
    use fdb_device::TagConfig;
    let mut g = c.benchmark_group("network");
    for k in [4usize, 8, 16] {
        let mut cfg = NetworkConfig::ring(k, 1.0, TagConfig::typical(5e-5));
        cfg.ambient = AmbientConfig::TvWideband { k_factor: 300.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = BackscatterNetwork::new(&cfg, 5e-5).unwrap();
        let states = vec![false; k];
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("step_{k}_devices"), |b| {
            b.iter(|| net.step(black_box(&states), &mut rng).len())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tx_rx_loopback,
    bench_rx_chain,
    bench_full_link,
    bench_network_step
);
criterion_main!(benches);
