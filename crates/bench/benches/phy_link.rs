//! End-to-end PHY benchmarks: what one simulated frame costs, and the
//! resulting real-time factor (simulated seconds per wall second).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fdb_ambient::AmbientConfig;
use fdb_core::config::PhyConfig;
use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use fdb_core::rx::DataReceiver;
use fdb_core::tx::DataTransmitter;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_tx_rx_loopback(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy_loopback");
    let cfg = PhyConfig::default_fd();
    let payload = vec![0xA5u8; 64];
    // Pre-render the ideal waveform once.
    let mut tx = DataTransmitter::new(&cfg, &payload).unwrap();
    let mut wave = Vec::with_capacity(tx.total_samples());
    while let Some(s) = tx.next_state() {
        wave.push(if s { 1.0 } else { 0.4 });
    }
    wave.extend(vec![0.4; cfg.samples_per_bit() * 2]);
    g.throughput(Throughput::Elements(wave.len() as u64));
    g.bench_function("rx_decode_64B_frame", |b| {
        b.iter(|| {
            let mut rx = DataReceiver::new(cfg.clone());
            for &v in &wave {
                rx.push_sample(black_box(v));
            }
            rx.take_result().is_some()
        })
    });
    g.bench_function("tx_schedule_64B_frame", |b| {
        b.iter(|| {
            let mut tx = DataTransmitter::new(&cfg, black_box(&payload)).unwrap();
            let mut n = 0usize;
            while tx.next_state().is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_full_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("fd_link");
    g.sample_size(10);
    for (name, ambient) in [
        ("cw", AmbientConfig::Cw),
        ("tv_wideband", AmbientConfig::TvWideband { k_factor: 300.0 }),
    ] {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = ambient;
        cfg.geometry.device_dist_m = 0.4;
        // ~13k samples per 64-byte frame.
        g.throughput(Throughput::Elements(13_000));
        g.bench_function(format!("run_frame_64B_{name}"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut link = FdLink::new(cfg.clone(), &mut rng).unwrap();
            let payload = vec![0x5Au8; 64];
            b.iter(|| {
                link.run_frame(black_box(&payload), &RunOptions::fd_monitor(), &mut rng)
                    .unwrap()
                    .blocks_ok()
            })
        });
    }
    g.finish();
}

fn bench_network_step(c: &mut Criterion) {
    use fdb_ambient::AmbientConfig;
    use fdb_core::network::{BackscatterNetwork, NetworkConfig};
    use fdb_device::TagConfig;
    let mut g = c.benchmark_group("network");
    for k in [4usize, 8, 16] {
        let mut cfg = NetworkConfig::ring(k, 1.0, TagConfig::typical(5e-5));
        cfg.ambient = AmbientConfig::TvWideband { k_factor: 300.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = BackscatterNetwork::new(&cfg, 5e-5, &mut rng).unwrap();
        let states = vec![false; k];
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("step_{k}_devices"), |b| {
            b.iter(|| net.step(black_box(&states), &mut rng).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tx_rx_loopback, bench_full_link, bench_network_step);
criterion_main!(benches);
