//! Microbenchmarks of the DSP kernels on the per-sample hot path.
//!
//! These bound the simulation's throughput (samples/second of simulated
//! link time) and catch performance regressions in the primitives every
//! experiment leans on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fdb_dsp::correlate::ncc;
use fdb_dsp::crc::{crc16_ccitt, crc32_ieee, crc8};
use fdb_dsp::envelope::EnvelopeDetector;
use fdb_dsp::fft::fft_correlate;
use fdb_dsp::fir::{rrc_taps, Fir};
use fdb_dsp::line_code::LineCode;
use fdb_dsp::moving_average::{IntegrateDump, MovingAverage};
use fdb_dsp::prbs::{Prbs, PrbsOrder};
use fdb_dsp::threshold::PeakTracker;
use fdb_dsp::Iq;

fn bench_fir(c: &mut Criterion) {
    let mut g = c.benchmark_group("fir");
    let input: Vec<Iq> = (0..4096).map(|i| Iq::phasor(i as f64 * 0.1)).collect();
    for taps in [9usize, 33, 65] {
        // span·sps+1 realises exactly the advertised count for these sizes.
        let mut f = Fir::new(rrc_taps(4, 0.3, (taps - 1) / 4));
        assert_eq!(f.len(), taps, "rrc span does not realise {taps} taps");
        g.throughput(Throughput::Elements(input.len() as u64));
        g.bench_function(format!("{}tap_per_sample_4096", f.len()), |b| {
            b.iter(|| {
                let mut acc = Iq::ZERO;
                for &x in &input {
                    acc += f.process(black_box(x));
                }
                acc
            })
        });
        let mut out = Vec::with_capacity(input.len());
        g.bench_function(format!("{}tap_block_4096", f.len()), |b| {
            b.iter(|| {
                f.process_block_into(black_box(&input), &mut out);
                out.last().copied()
            })
        });
    }
    g.finish();
}

fn bench_envelope_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("envelope");
    let input: Vec<Iq> = (0..4096).map(|i| Iq::phasor(i as f64 * 0.31)).collect();
    g.throughput(Throughput::Elements(input.len() as u64));
    g.bench_function("square_law_rc_4096", |b| {
        let mut d = EnvelopeDetector::new(5e-6, 5e-5);
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &input {
                acc += d.process(black_box(x));
            }
            acc
        })
    });
    g.bench_function("moving_average64_4096", |b| {
        let mut ma = MovingAverage::new(64);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..4096 {
                acc += ma.process(black_box(i as f64));
            }
            acc
        })
    });
    g.bench_function("integrate_dump320_4096", |b| {
        let mut id = IntegrateDump::new(320);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..4096 {
                if let Some(v) = id.process(black_box(i as f64)) {
                    acc += v;
                }
            }
            acc
        })
    });
    g.bench_function("peak_tracker_4096", |b| {
        let mut t = PeakTracker::new(1e-3);
        b.iter(|| {
            let mut ones = 0u32;
            for i in 0..4096 {
                if t.process(black_box((i % 7) as f64)) {
                    ones += 1;
                }
            }
            ones
        })
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc");
    let data: Vec<u8> = (0..1024u32).map(|i| (i * 31) as u8).collect();
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("crc8_1k", |b| b.iter(|| crc8(black_box(&data))));
    g.bench_function("crc16_1k", |b| b.iter(|| crc16_ccitt(black_box(&data))));
    g.bench_function("crc32_1k", |b| b.iter(|| crc32_ieee(black_box(&data))));
    g.finish();
}

fn bench_line_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_code");
    let bits: Vec<bool> = (0..2048).map(|i| (i * 7) % 3 == 0).collect();
    g.throughput(Throughput::Elements(bits.len() as u64));
    for code in [LineCode::Manchester, LineCode::Fm0, LineCode::Miller] {
        g.bench_function(format!("encode_{code:?}_2048"), |b| {
            b.iter(|| code.encode(black_box(&bits)))
        });
        let chips = code.encode(&bits);
        g.bench_function(format!("decode_{code:?}_2048"), |b| {
            b.iter(|| code.decode_hard(black_box(&chips)))
        });
    }
    g.finish();
}

fn bench_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    let template: Vec<f64> = (0..320).map(|i| ((i / 10) % 2) as f64).collect();
    let window = template.clone();
    g.bench_function("ncc_320", |b| {
        b.iter(|| ncc(black_box(&window), black_box(&template)))
    });
    // Frame-acquisition search: scan a 16 Ki-sample capture for the
    // 320-sample preamble. The sliding scan is the seed's O(N·M) approach;
    // fft_correlate is the convolution-theorem replacement. Same template,
    // same capture, both return the arg-max lag.
    let capture: Vec<f64> = (0..16_384)
        .map(|i| {
            let noise = ((i as f64 * 12.9898).sin() * 43_758.547).fract() * 0.3;
            if (4_000..4_320).contains(&i) {
                template[i - 4_000] + noise
            } else {
                noise
            }
        })
        .collect();
    let lags = capture.len() - template.len() + 1;
    g.throughput(Throughput::Elements(lags as u64));
    g.bench_function("preamble_sliding_ncc_16k", |b| {
        b.iter(|| {
            let mut best = (f64::NEG_INFINITY, 0usize);
            for lag in 0..lags {
                let s = ncc(&capture[lag..lag + template.len()], black_box(&template));
                if s > best.0 {
                    best = (s, lag);
                }
            }
            best
        })
    });
    g.bench_function("preamble_fft_correlate_16k", |b| {
        b.iter(|| {
            let scores = fft_correlate(black_box(&capture), black_box(&template));
            let mut best = (f64::NEG_INFINITY, 0usize);
            for (lag, &s) in scores.iter().enumerate() {
                if s > best.0 {
                    best = (s, lag);
                }
            }
            best
        })
    });
    g.bench_function("prbs23_4096bits", |b| {
        let mut p = Prbs::new(PrbsOrder::Prbs23, 7);
        b.iter(|| {
            let mut ones = 0u32;
            for _ in 0..4096 {
                ones += u32::from(p.next_bit());
            }
            ones
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fir,
    bench_envelope_chain,
    bench_crc,
    bench_line_codes,
    bench_sync
);
criterion_main!(benches);
