//! Energy-harvesting feasibility models (E10 cross-checks).
//!
//! Harvested power falls as the source path gain; a tag is *sustainable*
//! at duty cycle `d` when `η·P_in ≥ d·P_load`. Under Rayleigh fading the
//! incident power is exponential around its mean, giving a closed-form
//! harvesting-outage probability.

use serde::{Deserialize, Serialize};

/// Parametric harvester model (mirrors `fdb_device::Harvester`'s curve).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HarvestModel {
    /// Sensitivity floor, watts.
    pub sensitivity_w: f64,
    /// Saturation input, watts.
    pub saturation_w: f64,
    /// Peak efficiency.
    pub max_efficiency: f64,
}

impl HarvestModel {
    /// Efficiency at a given input power (log-linear rise, like the
    /// behavioural model).
    pub fn efficiency(&self, input_w: f64) -> f64 {
        if input_w <= self.sensitivity_w || self.sensitivity_w <= 0.0 {
            0.0
        } else if input_w >= self.saturation_w {
            self.max_efficiency
        } else {
            self.max_efficiency * (input_w / self.sensitivity_w).ln()
                / (self.saturation_w / self.sensitivity_w).ln()
        }
    }

    /// Harvested power at a given input.
    pub fn harvested_w(&self, input_w: f64) -> f64 {
        self.efficiency(input_w) * input_w
    }

    /// Maximum sustainable duty cycle for a load.
    pub fn sustainable_duty(&self, input_w: f64, load_w: f64) -> f64 {
        if load_w <= 0.0 {
            1.0
        } else {
            (self.harvested_w(input_w) / load_w).min(1.0)
        }
    }

    /// Harvesting outage probability under Rayleigh fading with mean
    /// incident power `mean_w`: `P(P_in < sensitivity) = 1 − e^(−sens/mean)`.
    pub fn rayleigh_outage(&self, mean_w: f64) -> f64 {
        if mean_w <= 0.0 {
            return 1.0;
        }
        1.0 - (-self.sensitivity_w / mean_w).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HarvestModel {
        HarvestModel {
            sensitivity_w: 1e-5,
            saturation_w: 3.16e-4,
            max_efficiency: 0.4,
        }
    }

    #[test]
    fn efficiency_curve_shape() {
        let m = model();
        assert_eq!(m.efficiency(5e-6), 0.0);
        assert!(m.efficiency(5e-5) > 0.0 && m.efficiency(5e-5) < 0.4);
        assert!((m.efficiency(1e-3) - 0.4).abs() < 1e-12);
        // Monotone.
        assert!(m.efficiency(1e-4) > m.efficiency(3e-5));
    }

    #[test]
    fn duty_cycle_scaling() {
        let m = model();
        // Harvest ≈ 126 µW at saturation; 1 mW load → ~12.6 % duty.
        let d = m.sustainable_duty(3.16e-4, 1e-3);
        assert!((d - 0.126).abs() < 0.01, "duty {d}");
        assert_eq!(m.sustainable_duty(1e-6, 1e-3), 0.0);
        assert_eq!(m.sustainable_duty(1.0, 0.0), 1.0);
    }

    #[test]
    fn rayleigh_outage_limits() {
        let m = model();
        // Mean far above the floor ⇒ outage ≈ sens/mean (small).
        let p = m.rayleigh_outage(1e-3);
        assert!((p - 1e-2).abs() < 1e-3, "outage {p}");
        // Mean at the floor ⇒ outage = 1 − e⁻¹.
        let p = m.rayleigh_outage(1e-5);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(m.rayleigh_outage(0.0), 1.0);
    }

    #[test]
    fn outage_monotone_in_mean_power() {
        let m = model();
        assert!(m.rayleigh_outage(1e-5) > m.rayleigh_outage(1e-4));
        assert!(m.rayleigh_outage(1e-4) > m.rayleigh_outage(1e-3));
    }
}
