//! Retransmission-protocol throughput and energy models.
//!
//! These closed forms predict the shapes of experiments E4/E5: stop-and-
//! wait ARQ pays a full frame + turnaround + ACK per failure, while
//! early-abort pays only up to the first failed block plus one feedback
//! latency — the gap grows with loss rate and frame length.

use serde::{Deserialize, Serialize};

/// Expected transmissions until first success for per-attempt failure
/// probability `p` (geometric): `1/(1−p)`. Infinite at `p = 1`.
pub fn expected_attempts(p_fail: f64) -> f64 {
    let p = p_fail.clamp(0.0, 1.0);
    if p >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - p)
    }
}

/// Airtime model of one frame, in bits (chips are a constant factor away).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrameModel {
    /// Preamble + header overhead bits.
    pub overhead_bits: f64,
    /// Number of payload blocks.
    pub n_blocks: u32,
    /// Bits per block (payload + CRC trailer).
    pub block_bits: f64,
    /// Per-block error probability (i.i.d.).
    pub p_block: f64,
}

impl FrameModel {
    /// Total frame airtime in bits.
    pub fn frame_bits(&self) -> f64 {
        self.overhead_bits + self.n_blocks as f64 * self.block_bits
    }

    /// Frame failure probability.
    pub fn p_frame(&self) -> f64 {
        1.0 - (1.0 - self.p_block.clamp(0.0, 1.0)).powi(self.n_blocks as i32)
    }

    /// Expected airtime of one *failed* early-abort attempt: transmission
    /// up to the end of the first failed block, plus the feedback latency
    /// before the abort lands.
    ///
    /// Conditioned on failure, the first failed block index `i` has
    /// probability `q^i·p / (1 − q^B)` with `q = 1 − p_block`.
    pub fn early_abort_fail_bits(&self, feedback_latency_bits: f64) -> f64 {
        let p = self.p_block.clamp(1e-12, 1.0);
        let q = 1.0 - p;
        let b = self.n_blocks as f64;
        let p_frame = 1.0 - q.powf(b);
        if p_frame <= 0.0 {
            return self.frame_bits();
        }
        // E[i | failure] = Σ_{i=0}^{B-1} i·q^i·p / p_frame.
        let mut e_i = 0.0;
        let mut qi = 1.0;
        for i in 0..self.n_blocks {
            e_i += i as f64 * qi * p;
            qi *= q;
        }
        e_i /= p_frame;
        let through = self.overhead_bits + (e_i + 1.0) * self.block_bits + feedback_latency_bits;
        through.min(self.frame_bits() + feedback_latency_bits)
    }

    /// Expected total airtime (bits) to deliver the frame with stop-and-wait:
    /// every attempt costs the full frame + ACK + turnarounds; expected
    /// attempts are geometric.
    pub fn stop_and_wait_expected_bits(&self, ack_bits: f64, turnaround_bits: f64) -> f64 {
        expected_attempts(self.p_frame()) * (self.frame_bits() + ack_bits + 2.0 * turnaround_bits)
    }

    /// Expected total airtime (bits) with early abort + in-band ACK:
    /// `E[failures]·E[abort cost] + full frame + post-frame verdict`.
    pub fn early_abort_expected_bits(
        &self,
        feedback_latency_bits: f64,
        retry_gap_bits: f64,
    ) -> f64 {
        let p = self.p_frame();
        if p >= 1.0 {
            return f64::INFINITY;
        }
        let e_failures = p / (1.0 - p);
        e_failures * (self.early_abort_fail_bits(feedback_latency_bits) + retry_gap_bits)
            + self.frame_bits()
            + feedback_latency_bits
    }

    /// Throughput advantage of early abort over stop-and-wait (ratio > 1
    /// means early abort wins).
    pub fn early_abort_advantage(
        &self,
        ack_bits: f64,
        turnaround_bits: f64,
        feedback_latency_bits: f64,
        retry_gap_bits: f64,
    ) -> f64 {
        self.stop_and_wait_expected_bits(ack_bits, turnaround_bits)
            / self.early_abort_expected_bits(feedback_latency_bits, retry_gap_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(p_block: f64) -> FrameModel {
        FrameModel {
            overhead_bits: 58.0,
            n_blocks: 8,
            block_bits: 136.0,
            p_block,
        }
    }

    #[test]
    fn expected_attempts_geometric() {
        assert!((expected_attempts(0.0) - 1.0).abs() < 1e-12);
        assert!((expected_attempts(0.5) - 2.0).abs() < 1e-12);
        assert!(expected_attempts(1.0).is_infinite());
    }

    #[test]
    fn p_frame_composes_blocks() {
        let f = frame(0.1);
        assert!((f.p_frame() - (1.0 - 0.9f64.powi(8))).abs() < 1e-12);
    }

    #[test]
    fn clean_channel_both_cost_one_frame() {
        let f = frame(0.0);
        let sw = f.stop_and_wait_expected_bits(100.0, 50.0);
        assert!((sw - (f.frame_bits() + 100.0 + 100.0)).abs() < 1e-9);
        let ea = f.early_abort_expected_bits(64.0, 10.0);
        assert!((ea - (f.frame_bits() + 64.0)).abs() < 1e-9);
    }

    #[test]
    fn abort_cost_below_full_frame() {
        let f = frame(0.3);
        let fail_cost = f.early_abort_fail_bits(64.0);
        assert!(fail_cost < f.frame_bits());
        // High p_block ⇒ failures concentrate at the first block.
        let f_bad = frame(0.9);
        let early = f_bad.early_abort_fail_bits(64.0);
        assert!(
            early < f_bad.overhead_bits + 2.0 * f_bad.block_bits + 64.0 + 1.0,
            "cost {early}"
        );
    }

    #[test]
    fn advantage_grows_with_loss() {
        let adv = |p| frame(p).early_abort_advantage(364.0, 400.0, 64.0, 20.0);
        let a1 = adv(0.02);
        let a2 = adv(0.1);
        let a3 = adv(0.3);
        assert!(a1 > 1.0, "early abort must win even at low loss: {a1}");
        assert!(a2 > a1 && a3 > a2, "advantage not growing: {a1} {a2} {a3}");
    }

    #[test]
    fn advantage_shape_vs_frame_length() {
        // With FULL-frame retransmission, the early-abort advantage is
        // largest for short frames (the saved ACK + turnaround overhead
        // dominates) and decays toward ~1 for long frames, where both
        // protocols pay ≈ E[attempts]·frame. (Partial retransmission —
        // resuming from the failed block — is what rescues long frames;
        // it is modelled by re-running the model on the remaining blocks.)
        let mk = |blocks| FrameModel {
            overhead_bits: 58.0,
            n_blocks: blocks,
            block_bits: 136.0,
            p_block: 0.05,
        };
        let short = mk(2).early_abort_advantage(364.0, 400.0, 64.0, 20.0);
        let long = mk(16).early_abort_advantage(364.0, 400.0, 64.0, 20.0);
        assert!(short > long, "{short} vs {long}");
        assert!(long > 1.0, "early abort must still win: {long}");
    }

    #[test]
    fn hopeless_channel_infinite_cost() {
        let f = frame(1.0);
        assert!(f.early_abort_expected_bits(64.0, 20.0).is_infinite());
        assert!(f.stop_and_wait_expected_bits(100.0, 50.0).is_infinite());
    }
}
