//! Bit-error-rate models for envelope-detected backscatter links.
//!
//! ## The operating regime
//!
//! An ambient backscatter receiver rides a strong carrier whose power
//! fluctuates (source modulation) and adds a small differential swing
//! (the far device's reflection). With the wideband Gamma substitution,
//! each envelope sample is `μ·(1 ± s/2)·(1 + ν)` where `s` is the relative
//! reflect/absorb swing and `ν` has standard deviation `1/√k`. Chip
//! integration averages `n` samples, and a Manchester decision compares
//! two adjacent chips, giving the Gaussian error model
//! `BER = Q( s·√(k·n) / √2 )` — multiplicative noise, so absolute power
//! cancels. The same structure at `m/2`-bit integration scale gives the
//! feedback BER.

use fdb_dsp::math::{binomial_tail, q_func};
use serde::{Deserialize, Serialize};

/// Relative modulation swing at a receiver: the fractional change of
/// detected *power* when the far device toggles between absorb and reflect.
///
/// For a far-device path amplitude gain `h_ab` (≤ 1), reflection
/// coefficients `rho` (reflect) and `rho_res` (absorb residual), and
/// source path gains `g_src_far / g_src_self` (power):
/// `s ≈ 2·(√rho − √rho_res)·h_ab·√(g_far/g_self)`.
pub fn relative_swing(h_ab_amp: f64, rho: f64, rho_res: f64, g_far: f64, g_self: f64) -> f64 {
    if g_self <= 0.0 {
        return 0.0;
    }
    2.0 * (rho.max(0.0).sqrt() - rho_res.max(0.0).sqrt()) * h_ab_amp * (g_far / g_self).sqrt()
}

/// Noise context of an envelope-detected link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkNoiseModel {
    /// Source pre-averaging factor `k` (per-sample relative power variance
    /// is `1/k`; see `fdb_ambient::power`).
    pub k_factor: f64,
    /// Samples integrated per chip.
    pub samples_per_chip: usize,
    /// Additive detector noise, relative to the mean envelope level
    /// (0 = source-fluctuation-limited).
    pub detector_noise_rel: f64,
}

impl LinkNoiseModel {
    /// Relative standard deviation of one *chip energy* estimate.
    pub fn chip_sigma_rel(&self) -> f64 {
        let n = self.samples_per_chip.max(1) as f64;
        let source_var = 1.0 / self.k_factor.max(1e-9) / n;
        let detector_var = self.detector_noise_rel * self.detector_noise_rel / n;
        (source_var + detector_var).sqrt()
    }

    /// Forward-data BER for Manchester chip-pair comparison with relative
    /// swing `s`: `Q( s / (σ_chip·√2) )`.
    pub fn manchester_ber(&self, swing_rel: f64) -> f64 {
        let sigma = self.chip_sigma_rel();
        if sigma <= 0.0 {
            return if swing_rel > 0.0 { 0.0 } else { 0.5 };
        }
        q_func(swing_rel / (sigma * std::f64::consts::SQRT_2))
    }

    /// Feedback BER for Manchester half-bit comparison: integration over
    /// `half_samples` raw samples per half, swing `s`:
    /// `Q( s·√(k·N_half) / √2 )` (+ detector noise folded in).
    pub fn feedback_ber(&self, swing_rel: f64, half_samples: usize) -> f64 {
        let n = half_samples.max(1) as f64;
        let var = (1.0 / self.k_factor.max(1e-9) + self.detector_noise_rel.powi(2)) / n;
        let sigma = var.sqrt();
        if sigma <= 0.0 {
            return if swing_rel > 0.0 { 0.0 } else { 0.5 };
        }
        q_func(swing_rel / (sigma * std::f64::consts::SQRT_2))
    }
}

/// Non-coherent binary orthogonal detection (energy comparison of two
/// chips, one holding all signal energy): `Pe = ½·e^(−γ/2)` with `γ` the
/// per-bit SNR. The additive-noise-limited regime of the tag receiver
/// (relevant near the sensitivity floor, where the carrier itself is
/// weak).
pub fn noncoherent_orthogonal_ber(snr: f64) -> f64 {
    0.5 * (-snr.max(0.0) / 2.0).exp()
}

/// Block error probability for independent bit errors: a `bits`-bit block
/// fails when any bit flips (CRC detects all of them at these sizes).
pub fn block_error_prob(ber: f64, bits: u32) -> f64 {
    1.0 - (1.0 - ber.clamp(0.0, 1.0)).powi(bits as i32)
}

/// Frame success probability over `n_blocks` independent blocks.
pub fn frame_success_prob(p_block: f64, n_blocks: u32) -> f64 {
    (1.0 - p_block.clamp(0.0, 1.0)).powi(n_blocks as i32)
}

/// Error probability after an `n`-way repetition code with majority vote
/// over a raw BER `p` (ties broken against us for even `n`).
pub fn repetition_ber(p: f64, n: u64) -> f64 {
    let k = n / 2 + 1;
    binomial_tail(n, k, p.clamp(0.0, 1.0))
        + if n.is_multiple_of(2) {
            // Half the ties fail.
            0.5 * (binomial_tail(n, n / 2, p) - binomial_tail(n, n / 2 + 1, p))
        } else {
            0.0
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinkNoiseModel {
        LinkNoiseModel {
            k_factor: 300.0,
            samples_per_chip: 10,
            detector_noise_rel: 0.0,
        }
    }

    #[test]
    fn chip_sigma_matches_hand_calc() {
        // 1/√(300·10) ≈ 0.01826.
        assert!((model().chip_sigma_rel() - 0.018257).abs() < 1e-5);
    }

    #[test]
    fn manchester_ber_monotone_in_swing() {
        let m = model();
        let mut prev = 0.6;
        for &s in &[0.02, 0.05, 0.08, 0.12, 0.2] {
            let b = m.manchester_ber(s);
            assert!(b < prev, "not monotone at {s}");
            prev = b;
        }
        // Zero swing = coin flip (tolerance: erfc rational-fit accuracy).
        assert!((m.manchester_ber(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn detector_noise_adds_in_quadrature() {
        let clean = model();
        let noisy = LinkNoiseModel {
            detector_noise_rel: 0.1,
            ..model()
        };
        assert!(noisy.chip_sigma_rel() > clean.chip_sigma_rel());
        let expect = ((1.0 / 300.0 + 0.01) / 10.0f64).sqrt();
        assert!((noisy.chip_sigma_rel() - expect).abs() < 1e-12);
    }

    #[test]
    fn feedback_integration_gain() {
        let m = model();
        // 4× the integration → 2× the argument → much lower BER.
        let b1 = m.feedback_ber(0.02, 160);
        let b2 = m.feedback_ber(0.02, 640);
        assert!(b2 < b1 / 5.0, "{b1} vs {b2}");
    }

    #[test]
    fn swing_formula() {
        // Symmetric source distances: g_far = g_self.
        let s = relative_swing(0.0886, 0.4, 0.0, 1e-9, 1e-9);
        assert!((s - 2.0 * 0.4f64.sqrt() * 0.0886).abs() < 1e-12);
        // Residual reflection eats into the swing.
        let s2 = relative_swing(0.0886, 0.4, 0.1, 1e-9, 1e-9);
        assert!(s2 < s);
    }

    #[test]
    fn noncoherent_known_point() {
        // γ = 2·ln(5) ⇒ Pe = 0.1.
        let snr = 2.0 * 5.0f64.ln();
        assert!((noncoherent_orthogonal_ber(snr) - 0.1).abs() < 1e-12);
        assert!((noncoherent_orthogonal_ber(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn block_and_frame_probabilities() {
        let p = block_error_prob(1e-3, 136);
        assert!((p - (1.0 - 0.999f64.powi(136))).abs() < 1e-12);
        assert!(p > 0.12 && p < 0.13);
        let f = frame_success_prob(p, 4);
        assert!((f - (1.0 - p).powi(4)).abs() < 1e-12);
    }

    #[test]
    fn repetition_helps_and_matches_formula() {
        // n=3, p=0.1 → 3p²(1−p)+p³ = 0.028.
        assert!((repetition_ber(0.1, 3) - 0.028).abs() < 1e-9);
        assert!(repetition_ber(0.1, 5) < repetition_ber(0.1, 3));
        assert!(repetition_ber(0.1, 1) > repetition_ber(0.1, 3));
    }

    #[test]
    fn repetition_even_tie_handling() {
        // n=2, p: error = p² + half of the tie mass 2p(1−p).
        let p: f64 = 0.2;
        let expect = p * p + 0.5 * 2.0 * p * (1.0 - p);
        assert!((repetition_ber(p, 2) - expect).abs() < 1e-9);
    }
}
