//! Random-access throughput models (E6 cross-checks).
//!
//! Unslotted ALOHA with Poisson offered load `G` (frames per frame-time)
//! delivers `S = G·e^(−2G)` — the classic collapse. With full-duplex
//! collision detection, a collision occupies only the pilot window
//! `a = pilot_bits / frame_bits` of a frame-time, so the channel wastes
//! `a·(collisions)` instead of whole frames; the resulting throughput
//! stays monotone far longer.

use serde::{Deserialize, Serialize};

/// Unslotted (pure) ALOHA throughput: `S = G·e^(−2G)`.
pub fn aloha_throughput(g: f64) -> f64 {
    let g = g.max(0.0);
    g * (-2.0 * g).exp()
}

/// Offered load at which pure ALOHA peaks (`G = 1/2`, `S = 1/(2e)`).
pub fn aloha_peak() -> (f64, f64) {
    (0.5, 0.5 * (-1.0f64).exp())
}

/// ALOHA throughput in the same renewal framework as
/// [`CollisionDetectModel`]: each cycle is an idle gap (`1/G`) plus one
/// attempt that burns a full frame-time whether or not it collides:
/// `S = e^(−2G) / (1/G + 1)`. Use this (not the classic closed form) when
/// comparing against the collision-detection model — the two then differ
/// *only* in what a collision costs.
pub fn aloha_renewal_throughput(g: f64) -> f64 {
    let g = g.max(1e-9);
    (-2.0 * g).exp() / (1.0 / g + 1.0)
}

/// Approximate throughput with collision detection: a renewal-cycle model
/// where a successful frame occupies `1` frame-time and a detected
/// collision occupies only `a` (the pilot-window fraction). With Poisson
/// load `G`, the per-cycle success probability is `e^(−2G)`:
///
/// `S = e^(−2G) / ( e^(−2G)·1 + (1 − e^(−2G))·a + idle(G) )`,
/// with mean idle time `1/G` frame-times between cycle starts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CollisionDetectModel {
    /// Pilot window as a fraction of the frame: `pilot_bits / frame_bits`.
    pub pilot_fraction: f64,
}

impl CollisionDetectModel {
    /// Throughput (successful frame-time fraction) at offered load `g`.
    pub fn throughput(&self, g: f64) -> f64 {
        let g = g.max(1e-9);
        let a = self.pilot_fraction.clamp(0.0, 1.0);
        let p_ok = (-2.0 * g).exp();
        let cycle = p_ok * 1.0 + (1.0 - p_ok) * a + 1.0 / g;
        p_ok / cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aloha_peak_value() {
        let (g, s) = aloha_peak();
        assert!((aloha_throughput(g) - s).abs() < 1e-12);
        assert!((s - 0.1839).abs() < 1e-3);
        // Peak is a maximum.
        assert!(aloha_throughput(0.4) < s);
        assert!(aloha_throughput(0.6) < s);
    }

    #[test]
    fn aloha_collapses_at_high_load() {
        assert!(aloha_throughput(3.0) < 0.01);
        assert!(aloha_throughput(10.0) < 1e-7);
    }

    #[test]
    fn cd_beats_renewal_aloha_at_every_load() {
        let cd = CollisionDetectModel {
            pilot_fraction: 0.03,
        };
        for &g in &[0.1, 0.5, 1.0, 2.0, 4.0] {
            assert!(
                cd.throughput(g) > aloha_renewal_throughput(g),
                "at G = {g}: {} vs {}",
                cd.throughput(g),
                aloha_renewal_throughput(g)
            );
        }
    }

    #[test]
    fn cd_advantage_grows_with_load() {
        // The mechanism: as collisions dominate, paying only the pilot
        // window per collision matters more and more.
        let cd = CollisionDetectModel {
            pilot_fraction: 0.03,
        };
        let ratio = |g: f64| cd.throughput(g) / aloha_renewal_throughput(g);
        assert!(ratio(3.0) > ratio(1.0));
        assert!(ratio(1.0) > ratio(0.2));
        assert!(ratio(3.0) > 3.0, "ratio at G=3: {}", ratio(3.0));
    }

    #[test]
    fn larger_pilot_fraction_hurts() {
        let small = CollisionDetectModel {
            pilot_fraction: 0.02,
        };
        let big = CollisionDetectModel {
            pilot_fraction: 0.5,
        };
        assert!(small.throughput(2.0) > big.throughput(2.0));
    }
}
