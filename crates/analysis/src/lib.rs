//! # fdb-analysis — closed-form performance models
//!
//! Small, parametric models of every mechanism in the stack, used three
//! ways:
//!
//! 1. **Cross-checks.** The workspace integration tests compare these
//!    predictions against the sample-level simulation; agreement in shape
//!    (and, where the model is exact, in value) is the repository's main
//!    defence against silent simulation bugs.
//! 2. **Experiment overlays.** The bench harness prints theory columns
//!    next to measured ones.
//! 3. **Design intuition.** The models expose *why* each experiment's
//!    curve bends where it does.
//!
//! Everything here is a pure function of scalars — path gains, noise
//! ratios, block counts — so this crate depends only on `fdb-dsp`'s special
//! functions. The bench harness computes the scalars from the physical
//! configuration.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod access;
pub mod arq;
pub mod ber;
pub mod harvest;

pub use ber::LinkNoiseModel;
