//! Seeded, reproducible measurement runs over one link configuration.

use crate::faults::FaultPlan;
use crate::metrics::LinkMetrics;
use fdb_channel::impairment::FrameFaults;
use fdb_core::frame::bytes_to_bits_into;
use fdb_core::link::{FdLink, FeedbackPolicy, FrameOutcome, FrameRun, LinkConfig, RunOptions};
#[cfg(feature = "trace")]
use fdb_core::trace::TraceSink;
use fdb_core::trace::TraceSinkSpec;
use fdb_core::PhyError;
use fdb_dsp::prbs::{Prbs, PrbsOrder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What to measure and how hard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasureSpec {
    /// Frames to run.
    pub frames: u64,
    /// Payload bytes per frame (PRBS-filled, different every frame).
    pub payload_len: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Whether B runs the feedback channel, and in which mode:
    /// `None` = half-duplex; `Some(false)` = live ACK status;
    /// `Some(true)` = known PRBS stream (enables feedback BER measurement).
    pub feedback_probe: Option<bool>,
    /// Where per-frame diagnostic events go ([`TraceSinkSpec::Null`] =
    /// no capture). Non-null sinks need the `trace` feature; requesting
    /// one in a build without it is a [`PhyError::TraceSink`] error.
    /// Older spec JSON without the field gets `Null`.
    #[serde(default)]
    pub trace: TraceSinkSpec,
    /// Scripted impairment schedule injected into the run (`None` = clean
    /// run; see [`FaultPlan`]). Older spec JSON without the field gets
    /// `None`.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

impl Default for MeasureSpec {
    /// 50 frames of 64 bytes, live-status full duplex, no tracing.
    fn default() -> Self {
        MeasureSpec {
            frames: 50,
            payload_len: 64,
            seed: 0,
            feedback_probe: Some(false),
            trace: TraceSinkSpec::Null,
            faults: None,
        }
    }
}

impl MeasureSpec {
    /// A quick default: 50 frames of 64 bytes, live-status full duplex.
    pub fn quick(seed: u64) -> Self {
        MeasureSpec {
            seed,
            ..MeasureSpec::default()
        }
    }

    /// Builder-style trace attachment: the returned spec routes every
    /// frame's diagnostic events into the described sink when run through
    /// [`run_link`].
    pub fn with_trace(mut self, sink: TraceSinkSpec) -> Self {
        self.trace = sink;
        self
    }

    /// Builder-style fault attachment: the returned spec injects the
    /// plan's scripted impairments when run through [`run_link`]
    /// (mirrors [`with_trace`](MeasureSpec::with_trace)). The plan is
    /// validated at run time.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Number of post-pilot feedback bits that fit in a frame of `bits` data
/// bits with ratio `m` and `guard` bits of epoch offset.
fn feedback_bits_in_frame(bits: usize, m: usize, guard: usize) -> usize {
    let usable = bits.saturating_sub(guard);
    (usable / m).saturating_sub(fdb_core::feedback::PILOTS.len())
}

/// XOR salt separating the payload PRBS stream from the master seed.
const PAYLOAD_SALT: u64 = 0xBAC0_5CA7;
/// XOR salt separating the feedback-probe PRBS stream from the master seed.
const FEEDBACK_SALT: u64 = 0xFEED;

/// Derives a non-zero PRBS register seed from the master seed and a salt.
///
/// The previous expression `seed ^ SALT | 1` parsed as
/// `(seed ^ SALT) | 1` (`^` binds tighter than `|`), which forced bit 0 of
/// the derived seed. Adjacent master seeds differing only in bit 0 (e.g. 2
/// and 3) therefore produced *identical* PRBS streams. A PRBS register only
/// needs to be non-zero, so guard with `max(1)` instead of clobbering a bit.
fn prbs_seed(master: u64, salt: u64) -> u64 {
    (master ^ salt).max(1)
}

/// Per-frame observer callback: `observe(frame_index, outcome)`.
pub type FrameObserver<'a> = dyn FnMut(u64, &FrameOutcome) + 'a;

/// Per-run attachments for [`run_link`] — the single measurement entry
/// point that replaced the `measure_link` / `measure_link_traced` /
/// `measure_link_observed` / `measure_link_with_sink` variant explosion.
///
/// `LinkRun::default()` is a plain batch (spec-selected trace sink, no
/// observer, not cancellable); attach what the run needs through the
/// builder methods:
///
/// ```ignore
/// run_link(&cfg, &spec, LinkRun::new().with_observe(&mut |i, out| { ... }))?;
/// ```
#[derive(Default)]
pub struct LinkRun<'a> {
    /// Caller-owned trace sink receiving every frame's diagnostic events
    /// (frames bracketed with `begin_frame`/`end_frame`); takes precedence
    /// over `spec.trace`. The sink's recorded/dropped deltas land on
    /// `LinkMetrics::trace_events` / `trace_dropped`.
    #[cfg(feature = "trace")]
    pub sink: Option<&'a mut dyn TraceSink>,
    /// Per-frame observer: `observe(frame_index, outcome)` runs on every
    /// raw [`FrameOutcome`] before aggregation (the conformance harness
    /// asserts frame-level invariants through this).
    pub observe: Option<&'a mut FrameObserver<'a>>,
    /// Cooperative cancellation, polled before each frame: when it
    /// returns `true` the run stops with [`PhyError::Cancelled`]
    /// (partial metrics are discarded). The job service routes client
    /// cancels and per-job timeouts through this.
    pub cancel: Option<&'a dyn Fn() -> bool>,
}

impl<'a> LinkRun<'a> {
    /// A plain batch run — what [`run_link`] used to run.
    pub fn new() -> Self {
        LinkRun::default()
    }

    /// Attaches a per-frame observer.
    pub fn with_observe(mut self, observe: &'a mut FrameObserver<'a>) -> Self {
        self.observe = Some(observe);
        self
    }

    /// Attaches a cancellation predicate, polled before each frame.
    pub fn with_cancel(mut self, cancel: &'a dyn Fn() -> bool) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Streams every frame's diagnostic events into a caller-owned sink
    /// (overrides `spec.trace`).
    #[cfg(feature = "trace")]
    pub fn with_sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// Runs `spec.frames` frames over `cfg` and aggregates metrics, with the
/// [`LinkRun`] attachments (trace sink, per-frame observer, cooperative
/// cancellation).
///
/// Reproducible: identical `(cfg, spec)` produce identical metrics, and
/// attaching an observer or cancellation predicate does not perturb the
/// run's random streams. Trace capture follows `run.sink` if present,
/// else `spec.trace` (see [`MeasureSpec::with_trace`]); either way the
/// sink's recorded/dropped totals land on `LinkMetrics::trace_events` /
/// `LinkMetrics::trace_dropped`, and a non-null sink needs the `trace`
/// feature.
pub fn run_link(
    cfg: &LinkConfig,
    spec: &MeasureSpec,
    run: LinkRun<'_>,
) -> Result<LinkMetrics, PhyError> {
    #[cfg(feature = "trace")]
    {
        match run.sink {
            Some(sink) => run_link_sinked(cfg, spec, run.observe, run.cancel, sink),
            None if !spec.trace.is_null() => {
                let mut sink = spec
                    .trace
                    .build(cfg.phy.trace_ring_capacity())
                    .map_err(|e| PhyError::TraceSink {
                        reason: e.to_string(),
                    })?;
                run_link_sinked(cfg, spec, run.observe, run.cancel, sink.as_mut())
            }
            None => run_link_inner(cfg, spec, run.observe, run.cancel, None),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        if !spec.trace.is_null() {
            return Err(PhyError::TraceSink {
                reason: "spec requests a trace sink but this build lacks the `trace` feature"
                    .into(),
            });
        }
        run_link_inner(cfg, spec, run.observe, run.cancel)
    }
}

/// [`run_link`] with the frames streamed into `sink`, trace counters set
/// from the sink's deltas, and the sink's backend error surfaced.
#[cfg(feature = "trace")]
fn run_link_sinked(
    cfg: &LinkConfig,
    spec: &MeasureSpec,
    observe: Option<&mut FrameObserver<'_>>,
    cancel: Option<&dyn Fn() -> bool>,
    sink: &mut dyn TraceSink,
) -> Result<LinkMetrics, PhyError> {
    let (e0, d0) = (sink.events_recorded(), sink.events_dropped());
    let mut metrics = run_link_inner(cfg, spec, observe, cancel, Some(&mut *sink))?;
    metrics.trace_events = sink.events_recorded() - e0;
    metrics.trace_dropped = sink.events_dropped() - d0;
    match sink.io_error() {
        Some(reason) => Err(PhyError::TraceSink { reason }),
        None => Ok(metrics),
    }
}

/// The measurement loop. With the `trace` feature and a sink present,
/// each frame runs through [`FdLink::run_frame_into`] bracketed by the
/// sink's frame markers; otherwise through a plain ring-traced run.
///
/// The loop owns one of everything — outcome, payload buffer, fault
/// engine, BER staging — and re-arms it per frame, so after the first
/// (warmup) frame the steady state performs no heap allocation
/// (`tests/alloc_steady_state.rs` pins this with a counting allocator).
fn run_link_inner(
    cfg: &LinkConfig,
    spec: &MeasureSpec,
    mut observe: Option<&mut FrameObserver<'_>>,
    cancel: Option<&dyn Fn() -> bool>,
    #[cfg(feature = "trace")] mut sink: Option<&mut dyn TraceSink>,
) -> Result<LinkMetrics, PhyError> {
    if let Some(plan) = &spec.faults {
        plan.validate().map_err(|reason| PhyError::InvalidConfig {
            field: "faults",
            reason,
        })?;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut link = FdLink::new(cfg.clone(), &mut rng)?;
    let mut payload_gen = Prbs::new(PrbsOrder::Prbs23, prbs_seed(spec.seed, PAYLOAD_SALT));
    let mut fb_gen = Prbs::new(PrbsOrder::Prbs15, prbs_seed(spec.seed, FEEDBACK_SALT));
    let mut metrics = LinkMetrics::default();

    let frame_bits = cfg.phy.preamble.len()
        + fdb_core::frame::frame_bits_len(&cfg.phy, spec.payload_len);
    let fb_bits_per_frame = feedback_bits_in_frame(
        frame_bits,
        cfg.phy.feedback_ratio,
        cfg.phy.feedback_guard_bits,
    );

    // One of everything, re-armed per frame: the run's steady state reuses
    // these buffers (and the link's own scratch arena) instead of
    // reallocating them.
    let mut out = FrameOutcome::default();
    let mut payload: Vec<u8> = Vec::new();
    let mut fb_expected: Vec<bool> = Vec::new();
    let mut sent_bits: Vec<bool> = Vec::new();
    let mut recv_bits: Vec<bool> = Vec::new();
    let mut fault_engine = FrameFaults::new(Vec::new(), 0);
    let mut opts = match spec.feedback_probe {
        None => RunOptions::half_duplex(),
        Some(false) => RunOptions::fd_monitor(),
        Some(true) => RunOptions {
            feedback: FeedbackPolicy::Stream(Vec::new()),
            abort_on_nack: false,
        },
    };
    #[cfg(feature = "trace")]
    if let Some(s) = sink.as_deref_mut() {
        s.reserve(cfg.phy.trace_ring_capacity());
    }

    for frame_idx in 0..spec.frames {
        if let Some(cancelled) = cancel {
            if cancelled() {
                return Err(PhyError::Cancelled {
                    frames_done: frame_idx,
                });
            }
        }
        payload_gen.bytes_into(spec.payload_len.max(1), &mut payload);
        let probing = if let FeedbackPolicy::Stream(bits) = &mut opts.feedback {
            fb_gen.bits_into(fb_bits_per_frame.max(1), bits);
            fb_expected.clear();
            fb_expected.extend_from_slice(bits);
            true
        } else {
            false
        };
        let has_faults = match &spec.faults {
            Some(plan) => plan.frame_faults_into(frame_idx, &mut fault_engine),
            None => false,
        };
        let frame_faults = has_faults.then_some(&mut fault_engine);
        #[cfg(feature = "trace")]
        match sink.as_deref_mut() {
            Some(s) => {
                s.begin_frame(frame_idx);
                link.run_frame_into(
                    &payload,
                    &opts,
                    &mut rng,
                    FrameRun::faulted(frame_faults).with_sink(s),
                    &mut out,
                )?;
                s.end_frame();
            }
            None => link.run_frame_into(
                &payload,
                &opts,
                &mut rng,
                FrameRun::faulted(frame_faults),
                &mut out,
            )?,
        }
        #[cfg(not(feature = "trace"))]
        link.run_frame_into(
            &payload,
            &opts,
            &mut rng,
            FrameRun::faulted(frame_faults),
            &mut out,
        )?;
        if let Some(observe) = observe.as_deref_mut() {
            observe(frame_idx, &out);
        }
        metrics.faults.merge(&out.fault_activations);
        metrics.frames += 1;
        if out.b_locked {
            metrics.locked += 1;
        }
        if out.pilots_verified {
            metrics.pilots_ok += 1;
        }
        metrics.sync_attempts += out.sync_attempts as u64;
        metrics.sync_rejections += out.sync_rejections as u64;
        metrics.airtime_samples += out.airtime_samples as u64;
        metrics.elapsed_samples += out.samples_run as u64;
        metrics.energy_a_j += out.energy.a_consumed_j;
        metrics.energy_b_j += out.energy.b_consumed_j;
        metrics.harvested_b_j += out.energy.b_harvested_j;
        if let Some(res) = &out.delivered {
            metrics.decoded += 1;
            metrics.blocks_total += res.blocks.len() as u64;
            metrics.blocks_ok += res.blocks.iter().filter(|b| b.ok).count() as u64;
            if out.fully_delivered() {
                metrics.fully_delivered += 1;
            }
            sent_bits.clear();
            recv_bits.clear();
            bytes_to_bits_into(&payload, &mut sent_bits);
            bytes_to_bits_into(&res.payload, &mut recv_bits);
            metrics.data_ber.record_slice(&sent_bits, &recv_bits);
        }
        if probing && out.pilots_verified {
            recv_bits.clear();
            recv_bits.extend(out.feedback.iter().map(|f| f.bit));
            let n = fb_expected.len().min(recv_bits.len());
            metrics
                .feedback_ber
                .record_slice(&fb_expected[..n], &recv_bits[..n]);
        }
    }
    Ok(metrics)
}

/// Derives a per-point seed from a master seed and a point index
/// (splitmix). Re-exported from [`fdb_core::seed`], where it moved so the
/// MAC layer can share the same seed lineage.
pub use fdb_core::seed::derive_seed;

/// Draws `n` payload bytes from an RNG (utility for MAC experiments).
pub fn random_payload<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;

    fn clean_cfg() -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    #[test]
    fn clean_link_measures_perfect() {
        let spec = MeasureSpec {
            frames: 5,
            payload_len: 32,
            seed: 9,
            feedback_probe: Some(false),
            trace: Default::default(),
            faults: None,
        };
        let m = run_link(&clean_cfg(), &spec, LinkRun::new()).unwrap();
        assert_eq!(m.frames, 5);
        assert_eq!(m.fully_delivered, 5);
        assert_eq!(m.data_ber.errors(), 0);
        assert!(m.data_ber.bits() >= 5 * 32 * 8);
    }

    #[test]
    fn reproducible_from_seed() {
        let spec = MeasureSpec::quick(77);
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.55;
        let spec = MeasureSpec { frames: 6, ..spec };
        let a = run_link(&cfg, &spec, LinkRun::new()).unwrap();
        let b = run_link(&cfg, &spec, LinkRun::new()).unwrap();
        assert_eq!(a.data_ber.errors(), b.data_ber.errors());
        assert_eq!(a.fully_delivered, b.fully_delivered);
        assert_eq!(a.airtime_samples, b.airtime_samples);
    }

    #[test]
    fn different_seeds_differ_on_noisy_link() {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.6;
        let a = run_link(&cfg, &MeasureSpec { frames: 6, payload_len: 64, seed: 1, feedback_probe: Some(false), trace: Default::default(), faults: None }, LinkRun::new()).unwrap();
        let b = run_link(&cfg, &MeasureSpec { frames: 6, payload_len: 64, seed: 2, feedback_probe: Some(false), trace: Default::default(), faults: None }, LinkRun::new()).unwrap();
        assert_ne!(
            (a.data_ber.errors(), a.blocks_ok),
            (b.data_ber.errors(), b.blocks_ok)
        );
    }

    #[test]
    fn feedback_probe_measures_fb_ber() {
        let spec = MeasureSpec {
            frames: 4,
            payload_len: 96,
            seed: 3,
            feedback_probe: Some(true),
            trace: Default::default(),
            faults: None,
        };
        let m = run_link(&clean_cfg(), &spec, LinkRun::new()).unwrap();
        assert!(m.feedback_ber.bits() > 0, "no feedback bits measured");
        assert_eq!(m.feedback_ber.errors(), 0, "clean link fb errors");
    }

    #[test]
    fn half_duplex_probe_has_no_feedback() {
        let spec = MeasureSpec {
            frames: 2,
            payload_len: 32,
            seed: 4,
            feedback_probe: None,
            trace: Default::default(),
            faults: None,
        };
        let m = run_link(&clean_cfg(), &spec, LinkRun::new()).unwrap();
        assert_eq!(m.feedback_ber.bits(), 0);
        assert_eq!(m.pilots_ok, 0);
        assert_eq!(m.fully_delivered, 2);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn trace_spec_without_feature_errors() {
        let spec = MeasureSpec::quick(1).with_trace(TraceSinkSpec::Collect);
        assert!(matches!(
            run_link(&clean_cfg(), &spec, LinkRun::new()),
            Err(PhyError::TraceSink { .. })
        ));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn sink_spec_populates_trace_counters() {
        let spec = MeasureSpec {
            frames: 2,
            payload_len: 16,
            seed: 5,
            feedback_probe: Some(false),
            trace: TraceSinkSpec::Collect,
            faults: None,
        };
        let m = run_link(&clean_cfg(), &spec, LinkRun::new()).unwrap();
        assert_eq!(m.frames, 2);
        assert!(m.trace_events > 0, "no events reached the sink");
        assert_eq!(m.trace_dropped, 0);
        // The null spec leaves the counters at zero.
        let m = run_link(&clean_cfg(), &MeasureSpec { trace: TraceSinkSpec::Null, ..spec }, LinkRun::new()).unwrap();
        assert_eq!(m.trace_events, 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn with_trace_builder_does_not_perturb_metrics() {
        let base = MeasureSpec {
            frames: 3,
            payload_len: 32,
            seed: 11,
            feedback_probe: Some(false),
            trace: Default::default(),
            faults: None,
        };
        let plain = run_link(&clean_cfg(), &base, LinkRun::new()).unwrap();
        let traced = run_link(
            &clean_cfg(),
            &base.clone().with_trace(TraceSinkSpec::Ring { capacity: Some(64) }),
            LinkRun::new(),
        )
        .unwrap();
        assert_eq!(plain.fully_delivered, traced.fully_delivered);
        assert_eq!(plain.airtime_samples, traced.airtime_samples);
        assert_eq!(plain.data_ber.errors(), traced.data_ber.errors());
        assert!(traced.trace_events > 0);
    }

    #[test]
    fn adjacent_master_seeds_yield_distinct_prbs_streams() {
        // Regression: master seeds 2 and 3 differ only in bit 0, which the
        // old `seed ^ SALT | 1` derivation forced to 1 — both masters fed
        // identical PRBS registers and every "independent" run replayed the
        // same payloads and feedback probes.
        let mut a = Prbs::new(PrbsOrder::Prbs23, prbs_seed(2, PAYLOAD_SALT));
        let mut b = Prbs::new(PrbsOrder::Prbs23, prbs_seed(3, PAYLOAD_SALT));
        assert_ne!(a.bytes(64), b.bytes(64), "payload streams collide");
        let mut a = Prbs::new(PrbsOrder::Prbs15, prbs_seed(2, FEEDBACK_SALT));
        let mut b = Prbs::new(PrbsOrder::Prbs15, prbs_seed(3, FEEDBACK_SALT));
        assert_ne!(a.bits(64), b.bits(64), "feedback streams collide");
    }

    #[test]
    fn prbs_seed_never_zero() {
        // master == salt would zero the register and stall the PRBS.
        assert_eq!(prbs_seed(PAYLOAD_SALT, PAYLOAD_SALT), 1);
        assert_eq!(prbs_seed(FEEDBACK_SALT, FEEDBACK_SALT), 1);
    }

    #[test]
    fn derive_seed_disperses() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(unique.len(), 100);
    }
}
