//! # fdb-sim — reproducible scenario running, sweeping and reporting
//!
//! The bridge between the sample-level PHY/MAC and the experiment harness:
//!
//! * [`metrics`] — aggregation types (BER counters with confidence
//!   intervals, delivery/energy/airtime tallies).
//! * [`runner`] — runs N frames of a scenario with a seeded RNG and
//!   produces [`metrics::LinkMetrics`]; every run is reproducible
//!   bit-for-bit from `(config, seed)`.
//! * [`faults`] — scripted impairment plans ([`faults::FaultPlan`])
//!   injected into a run at deterministic frame/sample offsets, seeded
//!   stochastic plan generators ([`faults::FaultGen`]), plus the
//!   invariant checks the fault-conformance harness asserts.
//! * [`scenario`] — serde specs for end-to-end adaptive-MAC sessions
//!   ([`scenario::ScenarioSpec`]) and adaptive-vs-oblivious ablation
//!   pairs ([`scenario::AblationPair`]) with margin gates.
//! * [`matrix`] — the PhyConfig × FaultPlan conformance grid
//!   ([`matrix::run_matrix`]), moved here from `fdb-bench` so the job
//!   service can run grids without depending on the experiment harness.
//! * [`job`] — the unified serde job surface ([`job::JobSpec`]): one
//!   enum covering link measurements, fault-matrix grids, MAC
//!   scenario/ablation sessions and city-scale runs, with a stable
//!   content address per job for result caching.
//! * [`city`] — event-driven city-scale simulation
//!   ([`city::CityEngine`]): thousands of harvesting tags contending
//!   through the FD feedback primitives, idle tags costing ~zero, every
//!   tag's trajectory keyed independently so active-tag ledgers are
//!   invariant to the idle population.
//! * [`sweep`] — order-preserving parallel parameter sweeps on
//!   `std::thread::scope` workers (one seed per point, derived
//!   deterministically).
//! * [`report`] — CSV and markdown emitters used by every experiment
//!   binary, so EXPERIMENTS.md tables regenerate byte-identically.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod city;
pub mod faults;
pub mod job;
pub mod matrix;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use city::{CityEngine, CityFidelity, CityReport, CityScenarioSpec, TagLedger};
pub use faults::{check_frame_invariants, check_link_invariants, FaultGen, FaultPlan, FaultSpec};
pub use job::{JobProgress, JobResult, JobSpec, MatrixScenario, NamedPlan, RunControl};
pub use matrix::MatrixCell;
pub use scenario::{AblationPair, FaultSource, PairOutcome, ScenarioSpec};
pub use metrics::LinkMetrics;
pub use runner::{run_link, LinkRun, MeasureSpec};
pub use sweep::parallel_sweep;
#[cfg(feature = "trace")]
pub use sweep::parallel_sweep_traced;
