//! PhyConfig × FaultPlan conformance matrix.
//!
//! The fault-injection layer's promise is *graceful* degradation: a
//! scripted impairment may cost delivery, but it must never crash a run,
//! blow the receiver's re-arm budget, or corrupt the metrics accounting.
//! This module sweeps that promise over a grid — every scenario config
//! crossed with every fault plan — and reports one [`MatrixCell`] per
//! grid point with the run's metrics and any invariant violations.
//!
//! Used two ways:
//!
//! * `tests/fault_conformance.rs` runs the grid over the bundled configs
//!   and the per-class plans from [`class_plans`];
//! * `probe matrix cfg1,cfg2,...` runs the same grid from the CLI (the
//!   CI smoke check), printing one JSON line per cell and exiting
//!   non-zero when any cell reports a violation;
//! * the job service runs it for [`crate::job::JobSpec::Matrix`] jobs.

use crate::faults::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
use crate::metrics::LinkMetrics;
use crate::runner::{run_link, LinkRun, MeasureSpec};
use crate::{check_frame_invariants, check_link_invariants};
use fdb_core::link::LinkConfig;
use fdb_core::PhyError;
use serde::Serialize;

/// One grid point's result: which scenario and plan ran, what came out,
/// and every invariant violation observed (empty = conformant).
#[derive(Debug, Clone, Serialize)]
pub struct MatrixCell {
    /// Scenario label (config file name or "default").
    pub config: String,
    /// Fault-plan label (class name or file name).
    pub plan: String,
    /// Aggregate metrics of the faulted run.
    pub metrics: LinkMetrics,
    /// Invariant violations, frame-level and aggregate. Conformance =
    /// empty.
    pub violations: Vec<String>,
}

/// One single-class [`FaultPlan`] per fault kind, each landing in frame 1
/// with windows sized for the bundled scenarios (≥ 16-byte payloads run
/// ≥ ~3 900 samples per frame at the default 20 samples/bit). The
/// interferer window covers the preamble with chip-rate transitions — the
/// acquisition collision stressor.
pub fn class_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let plan = |kind: FaultKind, start: usize, duration: usize| FaultPlan {
        seed,
        faults: vec![FaultSpec {
            frame: 1,
            start_sample: start,
            duration_samples: duration,
            kind,
        }],
    };
    vec![
        (
            "noise_burst",
            plan(
                FaultKind::NoiseBurst {
                    power_dbm: -78.0,
                    target: FaultTarget::B,
                },
                1_000,
                1_500,
            ),
        ),
        (
            "dropout",
            plan(
                FaultKind::Dropout {
                    target: FaultTarget::B,
                },
                1_200,
                600,
            ),
        ),
        (
            "clock_drift",
            plan(FaultKind::ClockDrift { ppm: 1_500.0 }, 500, 2_500),
        ),
        (
            "sic_gain",
            plan(
                FaultKind::SicGain {
                    gain_db: 6.0,
                    target: FaultTarget::B,
                },
                800,
                2_000,
            ),
        ),
        (
            "ambient_fade",
            plan(FaultKind::AmbientFade { depth_db: 15.0 }, 1_000, 1_200),
        ),
        (
            "interferer",
            plan(
                FaultKind::Interferer {
                    power_dbm: -70.0,
                    period_samples: 20,
                },
                0,
                600,
            ),
        ),
    ]
}

/// Runs one grid point: the scenario with `plan` attached, frame-level
/// invariants checked on every outcome, aggregate invariants checked on
/// the final metrics.
pub fn run_cell(
    config_label: &str,
    cfg: &LinkConfig,
    spec: &MeasureSpec,
    plan_label: &str,
    plan: &FaultPlan,
) -> Result<MatrixCell, PhyError> {
    let spec = spec.clone().with_faults(plan.clone());
    let mut violations = Vec::new();
    let mut observe = |frame: u64, out: &fdb_core::link::FrameOutcome| {
        if let Err(v) = check_frame_invariants(out, &cfg.phy) {
            violations.push(format!("frame {frame}: {v}"));
        }
    };
    let metrics = run_link(cfg, &spec, LinkRun::new().with_observe(&mut observe))?;
    if let Err(v) = check_link_invariants(&metrics) {
        violations.push(format!("aggregate: {v}"));
    }
    if !plan.is_empty()
        && plan.faults.iter().any(|f| f.frame < spec.frames)
        && metrics.faults.total() == 0
    {
        violations.push("aggregate: plan scheduled in-run faults but none activated".into());
    }
    Ok(MatrixCell {
        config: config_label.to_string(),
        plan: plan_label.to_string(),
        metrics,
        violations,
    })
}

/// Sweeps the full grid: every scenario × every plan, in order. Scenario
/// and plan labels carry through to the cells. Fails fast on a scenario
/// that cannot run at all (invalid config), which is distinct from a
/// conformance violation.
pub fn run_matrix(
    scenarios: &[(String, LinkConfig, MeasureSpec)],
    plans: &[(String, FaultPlan)],
) -> Result<Vec<MatrixCell>, PhyError> {
    let mut cells = Vec::with_capacity(scenarios.len() * plans.len());
    for (cfg_label, cfg, spec) in scenarios {
        for (plan_label, plan) in plans {
            cells.push(run_cell(cfg_label, cfg, spec, plan_label, plan)?);
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_plans_cover_every_kind_and_validate() {
        let plans = class_plans(3);
        assert_eq!(plans.len(), 6);
        let labels: Vec<&str> = plans.iter().map(|(l, _)| *l).collect();
        for (label, plan) in &plans {
            plan.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(plan.faults.len(), 1);
            assert_eq!(plan.faults[0].kind.label(), *label);
        }
        assert_eq!(
            labels,
            [
                "noise_burst",
                "dropout",
                "clock_drift",
                "sic_gain",
                "ambient_fade",
                "interferer"
            ]
        );
    }

    #[test]
    fn clean_cell_reports_no_violations() {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = fdb_ambient::AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        let spec = MeasureSpec {
            frames: 3,
            payload_len: 16,
            seed: 2,
            ..Default::default()
        };
        let (label, plan) = &class_plans(1)[1]; // dropout
        let cell = run_cell("default", &cfg, &spec, label, plan).unwrap();
        assert!(cell.violations.is_empty(), "{:?}", cell.violations);
        assert_eq!(cell.metrics.faults.dropout, 1);
    }
}
